#include "detect/violation_graph.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "metric/distance.h"

namespace ftrepair {

namespace {

// Cheap per-pair lower bound on the weighted projection distance using
// only string lengths (numbers and nulls contribute 0).
double LengthLowerBound(const Pattern& a, const Pattern& b, const FD& fd,
                        double w_l, double w_r) {
  double lb = 0;
  int lhs = fd.lhs_size();
  for (int p = 0; p < fd.num_attrs(); ++p) {
    const Value& va = a.values[static_cast<size_t>(p)];
    const Value& vb = b.values[static_cast<size_t>(p)];
    if (!va.is_string() || !vb.is_string()) continue;
    double w = p < lhs ? w_l : w_r;
    lb += w * EditDistanceLengthLowerBound(va.str().size(), vb.str().size());
  }
  return lb;
}

}  // namespace

double ViolationGraph::ProjDistance(const std::vector<Value>& a,
                                    const std::vector<Value>& b, const FD& fd,
                                    const DistanceModel& model, double w_l,
                                    double w_r) {
  double sum = 0;
  int lhs = fd.lhs_size();
  for (int p = 0; p < fd.num_attrs(); ++p) {
    int col = fd.attrs()[static_cast<size_t>(p)];
    double w = p < lhs ? w_l : w_r;
    sum += w * model.CellDistance(col, a[static_cast<size_t>(p)],
                                  b[static_cast<size_t>(p)]);
  }
  return sum;
}

double ViolationGraph::UnitCost(const std::vector<Value>& a,
                                const std::vector<Value>& b, const FD& fd,
                                const DistanceModel& model) {
  double sum = 0;
  for (int p = 0; p < fd.num_attrs(); ++p) {
    int col = fd.attrs()[static_cast<size_t>(p)];
    sum += model.CellDistance(col, a[static_cast<size_t>(p)],
                              b[static_cast<size_t>(p)]);
  }
  return sum;
}

ViolationGraph ViolationGraph::Build(std::vector<Pattern> patterns,
                                     const FD& fd, const DistanceModel& model,
                                     const FTOptions& opts,
                                     const Budget* budget) {
  FTR_TRACE_SPAN("detect.graph_build", {{"fd", fd.name()}});
  Timer build_timer;
  ViolationGraph g;
  g.patterns_ = std::move(patterns);
  int n = g.num_patterns();
  g.adj_.assign(static_cast<size_t>(n), {});
  g.min_edge_cost_.assign(static_cast<size_t>(n), kInfinity);

  for (int i = 0; i < n && !g.truncated_; ++i) {
    const Pattern& pi = g.patterns_[static_cast<size_t>(i)];
    for (int j = i + 1; j < n; ++j) {
      if (!BudgetCharge(budget)) {
        g.truncated_ = true;
        break;
      }
      const Pattern& pj = g.patterns_[static_cast<size_t>(j)];
      if (pi.values == pj.values) continue;  // identical projections
      if (LengthLowerBound(pi, pj, fd, opts.w_l, opts.w_r) > opts.tau) {
        ++g.pairs_length_filtered_;
        continue;
      }
      ++g.pairs_evaluated_;
      double proj =
          ProjDistance(pi.values, pj.values, fd, model, opts.w_l, opts.w_r);
      if (proj > opts.tau) continue;
      double unit = UnitCost(pi.values, pj.values, fd, model);
      g.adj_[static_cast<size_t>(i)].push_back(Edge{j, proj, unit});
      g.adj_[static_cast<size_t>(j)].push_back(Edge{i, proj, unit});
      ++g.num_edges_;
      g.min_edge_cost_[static_cast<size_t>(i)] =
          std::min(g.min_edge_cost_[static_cast<size_t>(i)], unit);
      g.min_edge_cost_[static_cast<size_t>(j)] =
          std::min(g.min_edge_cost_[static_cast<size_t>(j)], unit);
    }
  }
  g.total_min_edge_cost_ = 0;
  for (int i = 0; i < n; ++i) {
    if (g.min_edge_cost_[static_cast<size_t>(i)] != kInfinity) {
      g.total_min_edge_cost_ += g.pattern(i).count() *
                                g.min_edge_cost_[static_cast<size_t>(i)];
    }
  }
  // Similarity-join accounting, once per build (not per pair): the
  // pair-filter effectiveness is the first thing to look at when
  // detection dominates a trace.
  static Counter* pairs_evaluated =
      Metrics().GetCounter("ftrepair.detect.pairs_evaluated");
  static Counter* pairs_filtered =
      Metrics().GetCounter("ftrepair.detect.pairs_length_filtered");
  static Counter* edges = Metrics().GetCounter("ftrepair.detect.edges");
  static Counter* truncated_builds =
      Metrics().GetCounter("ftrepair.detect.truncated_builds");
  static Histogram* build_ms =
      Metrics().GetHistogram("ftrepair.detect.graph_build_ms");
  pairs_evaluated->Increment(g.pairs_evaluated_);
  pairs_filtered->Increment(g.pairs_length_filtered_);
  edges->Increment(g.num_edges_);
  if (g.truncated_) truncated_builds->Increment();
  build_ms->Observe(build_timer.Millis());
  return g;
}

std::vector<std::vector<int>> ViolationGraph::ConnectedComponents() const {
  int n = num_patterns();
  std::vector<bool> visited(static_cast<size_t>(n), false);
  std::vector<std::vector<int>> components;
  for (int i = 0; i < n; ++i) {
    if (visited[static_cast<size_t>(i)]) continue;
    std::vector<int> comp;
    std::vector<int> stack = {i};
    visited[static_cast<size_t>(i)] = true;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      comp.push_back(u);
      for (const Edge& e : Neighbors(u)) {
        if (!visited[static_cast<size_t>(e.to)]) {
          visited[static_cast<size_t>(e.to)] = true;
          stack.push_back(e.to);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
  }
  return components;
}

ViolationGraph ViolationGraph::InducedSubgraph(
    const std::vector<int>& vertices) const {
  ViolationGraph g;
  std::vector<int> local(static_cast<size_t>(num_patterns()), -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    local[static_cast<size_t>(vertices[i])] = static_cast<int>(i);
    g.patterns_.push_back(patterns_[static_cast<size_t>(vertices[i])]);
  }
  g.adj_.resize(vertices.size());
  g.min_edge_cost_.assign(vertices.size(), kInfinity);
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (const Edge& e : Neighbors(vertices[i])) {
      int to = local[static_cast<size_t>(e.to)];
      if (to < 0) continue;
      g.adj_[i].push_back(Edge{to, e.proj_dist, e.unit_cost});
      if (vertices[i] < e.to) ++g.num_edges_;
      g.min_edge_cost_[i] = std::min(g.min_edge_cost_[i], e.unit_cost);
    }
  }
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (g.min_edge_cost_[i] != kInfinity) {
      g.total_min_edge_cost_ +=
          g.patterns_[i].count() * g.min_edge_cost_[i];
    }
  }
  return g;
}

}  // namespace ftrepair
