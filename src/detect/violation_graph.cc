#include "detect/violation_graph.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "common/trace.h"
#include "detect/block_index.h"
#include "metric/distance.h"

namespace ftrepair {

const char* DetectIndexModeName(DetectIndexMode mode) {
  switch (mode) {
    case DetectIndexMode::kAuto:
      return "auto";
    case DetectIndexMode::kAllPairs:
      return "allpairs";
    case DetectIndexMode::kBlocked:
      return "blocked";
  }
  return "?";
}

namespace {

// True when |Δlen| / max_len lower-bounds CellDistance on a string
// pair of this attribute. Edit distance needs >= |Δlen| edits; kAuto
// resolves string-string pairs to edit distance; discrete distance is
// 1 for any differing pair (and differing lengths imply differing
// strings), which dominates the bound. The set-/similarity-based
// metrics (Jaccard, q-gram cosine, Jaro-Winkler) admit no such bound —
// "aaaa" vs "aaaaaaaa" has Jaccard bigram distance 0 — so they must
// skip the filter entirely.
bool LengthBoundValid(ColumnMetric metric) {
  return metric == ColumnMetric::kEdit || metric == ColumnMetric::kAuto ||
         metric == ColumnMetric::kDiscrete;
}

// Cheap per-pair lower bound on the weighted projection distance using
// only string lengths (numbers, nulls, and attributes whose metric
// does not admit a length bound contribute 0).
double LengthLowerBound(const Pattern& a, const Pattern& b, const FD& fd,
                        const DistanceModel& model, double w_l, double w_r) {
  double lb = 0;
  int lhs = fd.lhs_size();
  for (int p = 0; p < fd.num_attrs(); ++p) {
    const Value& va = a.values[static_cast<size_t>(p)];
    const Value& vb = b.values[static_cast<size_t>(p)];
    if (!va.is_string() || !vb.is_string()) continue;
    if (!LengthBoundValid(
            model.column_metric(fd.attrs()[static_cast<size_t>(p)]))) {
      continue;
    }
    double w = p < lhs ? w_l : w_r;
    lb += w * EditDistanceLengthLowerBound(va.str().size(), vb.str().size());
  }
  return lb;
}

// One shard of the triangular i<j pair join = a contiguous block of
// i-rows. Small enough that dynamic claiming balances the (very uneven,
// row i has n-1-i pairs) costs across threads; large enough that the
// claim overhead vanishes.
constexpr int kShardRows = 64;

// ProjDistanceCutoff over coded patterns with a per-shard distance
// memo. Same control flow, weights, and term order as the value
// version; every term that enters `sum` is an exact cell distance (a
// memo hit replays a previously computed exact value, a fresh capped
// result only enters when unclipped, and the borderline fallback is
// exact), so accepted sums are bit-identical to ProjDistanceCutoff.
// Rejecting return values may differ but are all > tau, which is the
// only property callers may rely on.
double ProjDistanceCutoffMemo(const Pattern& a, const Pattern& b,
                              const FD& fd, const DistanceModel& model,
                              double w_l, double w_r, double tau,
                              PairDistanceMemo* memo) {
  double sum = 0;
  int lhs = fd.lhs_size();
  for (int p = 0; p < fd.num_attrs(); ++p) {
    double w = p < lhs ? w_l : w_r;
    if (w == 0.0) continue;  // w * d == +0.0 whatever d is
    int col = fd.attrs()[static_cast<size_t>(p)];
    const Value& va = a.values[static_cast<size_t>(p)];
    const Value& vb = b.values[static_cast<size_t>(p)];
    uint32_t ca = a.codes[static_cast<size_t>(p)];
    uint32_t cb = b.codes[static_cast<size_t>(p)];
    double cap = (tau - sum) / w;
    bool clipped = false;
    double d = model.CellDistanceCappedInterned(
        col, va, vb, ca, cb, cap, &clipped, static_cast<size_t>(p), memo);
    if (clipped) {
      double reject = sum + w * d;
      if (reject > tau) return reject;
      // Borderline (rounding ate the slack): fall back to exact.
      d = model.CellDistanceInterned(col, va, vb, ca, cb,
                                     static_cast<size_t>(p), memo);
    }
    sum += w * d;
    if (sum > tau) return sum;  // later terms only grow the sum
  }
  return sum;
}

// UnitCost over coded patterns, sharing the shard memo (same slots as
// the cutoff: slot p is attribute p's column). Bit-identical sums.
double UnitCostMemo(const Pattern& a, const Pattern& b, const FD& fd,
                    const DistanceModel& model, PairDistanceMemo* memo) {
  double sum = 0;
  for (int p = 0; p < fd.num_attrs(); ++p) {
    int col = fd.attrs()[static_cast<size_t>(p)];
    sum += model.CellDistanceInterned(
        col, a.values[static_cast<size_t>(p)],
        b.values[static_cast<size_t>(p)], a.codes[static_cast<size_t>(p)],
        b.codes[static_cast<size_t>(p)], static_cast<size_t>(p), memo);
  }
  return sum;
}

// An edge discovered by one shard, recorded in (i, then j) order so the
// merge can replay the exact serial adjacency push order.
struct ShardEdge {
  int i;
  int j;
  double proj;
  double unit;
};

struct ShardResult {
  std::vector<ShardEdge> edges;
  size_t pairs_length_filtered = 0;
  size_t pairs_evaluated = 0;
  uint64_t candidates_generated = 0;
  uint64_t candidates_filtered = 0;
  bool truncated = false;
};

}  // namespace

double ViolationGraph::ProjDistance(const std::vector<Value>& a,
                                    const std::vector<Value>& b, const FD& fd,
                                    const DistanceModel& model, double w_l,
                                    double w_r) {
  double sum = 0;
  int lhs = fd.lhs_size();
  for (int p = 0; p < fd.num_attrs(); ++p) {
    int col = fd.attrs()[static_cast<size_t>(p)];
    double w = p < lhs ? w_l : w_r;
    sum += w * model.CellDistance(col, a[static_cast<size_t>(p)],
                                  b[static_cast<size_t>(p)]);
  }
  return sum;
}

double ViolationGraph::ProjDistanceCutoff(const std::vector<Value>& a,
                                          const std::vector<Value>& b,
                                          const FD& fd,
                                          const DistanceModel& model,
                                          double w_l, double w_r, double tau) {
  double sum = 0;
  int lhs = fd.lhs_size();
  for (int p = 0; p < fd.num_attrs(); ++p) {
    double w = p < lhs ? w_l : w_r;
    // A zero-weight attribute contributes w * d == +0.0 whatever d is,
    // so skipping it leaves `sum` bit-identical to ProjDistance.
    if (w == 0.0) continue;
    int col = fd.attrs()[static_cast<size_t>(p)];
    const Value& va = a[static_cast<size_t>(p)];
    const Value& vb = b[static_cast<size_t>(p)];
    // Remaining slack in cell-distance units: any attribute distance
    // beyond this pushes the pair past tau.
    double cap = (tau - sum) / w;
    bool clipped = false;
    double d = model.CellDistanceCapped(col, va, vb, cap, &clipped);
    if (clipped) {
      // d is only a lower bound on the true distance. IEEE addition
      // and multiplication by a positive weight are monotone and every
      // later term is non-negative, so the exact ProjDistance is
      // >= sum + w * d evaluated here: if that already beats tau the
      // pair is rejected without ever running the full kernel.
      double reject = sum + w * d;
      if (reject > tau) return reject;
      // Borderline (rounding ate the slack): fall back to exact.
      d = model.CellDistance(col, va, vb);
    }
    sum += w * d;
    if (sum > tau) return sum;  // later terms only grow the sum
  }
  return sum;
}

double ViolationGraph::UnitCost(const std::vector<Value>& a,
                                const std::vector<Value>& b, const FD& fd,
                                const DistanceModel& model) {
  double sum = 0;
  for (int p = 0; p < fd.num_attrs(); ++p) {
    int col = fd.attrs()[static_cast<size_t>(p)];
    sum += model.CellDistance(col, a[static_cast<size_t>(p)],
                              b[static_cast<size_t>(p)]);
  }
  return sum;
}

ViolationGraph ViolationGraph::Build(std::vector<Pattern> patterns,
                                     const FD& fd, const DistanceModel& model,
                                     const FTOptions& opts,
                                     const Budget* budget) {
  int threads = ResolveThreads(opts.threads);
  FTR_TRACE_SPAN("detect.graph_build",
                 {{"fd", fd.name()}, {"threads", std::to_string(threads)}});
  Timer build_timer;
  ViolationGraph g;
  g.patterns_ = std::move(patterns);
  int n = g.num_patterns();
  g.adj_.assign(static_cast<size_t>(n), {});
  g.min_edge_cost_.assign(static_cast<size_t>(n), kInfinity);

  int num_shards = (n + kShardRows - 1) / kShardRows;
  std::vector<ShardResult> shards(static_cast<size_t>(num_shards));
  static Histogram* shard_ms =
      Metrics().GetHistogram("ftrepair.detect.shard_ms");

  // The columnar fast paths need every pattern to carry codes (mixed
  // inputs fall back wholesale so the two sides of a comparison always
  // key the same way).
  bool use_codes = opts.interned && n > 0;
  for (const Pattern& p : g.patterns_) {
    if (!p.has_codes()) {
      use_codes = false;
      break;
    }
  }

  // The memo only pays when a (code, code) pair recurs. Patterns are
  // *distinct* FD projections, so an attribute whose codes are nearly
  // unique across patterns (typically the LHS key itself) never repeats
  // a pair — every probe there would be a guaranteed miss. Disable such
  // slots up front: each code must recur >= 4x on average for the slot
  // to stay on. Computed once before sharding, so the mask — and hence
  // every emitted distance — is identical at every thread count (and
  // identical to memo-off anyway, since memoized values are exact).
  std::vector<bool> memo_slot_on;
  if (use_codes) {
    memo_slot_on.assign(static_cast<size_t>(fd.num_attrs()), false);
    std::vector<uint32_t> distinct;
    for (int p = 0; p < fd.num_attrs(); ++p) {
      distinct.clear();
      distinct.reserve(static_cast<size_t>(n));
      for (const Pattern& pat : g.patterns_) {
        distinct.push_back(pat.codes[static_cast<size_t>(p)]);
      }
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      memo_slot_on[static_cast<size_t>(p)] =
          distinct.size() * 4 <= static_cast<size_t>(n);
    }
  }

  DetectIndexMode mode = opts.index;
  if (mode == DetectIndexMode::kAuto) {
    mode = BlockIndex::Choose(g.patterns_, fd, model, opts);
  }
  g.index_mode_ = mode;
  std::unique_ptr<BlockIndex> index;
  if (mode == DetectIndexMode::kBlocked) {
    FTR_TRACE_SPAN("detect.block_index",
                   {{"fd", fd.name()}, {"patterns", std::to_string(n)}});
    index = std::make_unique<BlockIndex>(g.patterns_, fd, model, opts);
  }

  // Both joins run the identical per-candidate sequence — budget
  // charge, identical-projection skip, length lower bound, cutoff
  // kernel — and candidates arrive in ascending j within ascending i,
  // so the surviving edges (and their doubles) are bit-identical
  // across modes; only how many candidates were *generated* differs.
  auto verify_candidate = [&](ShardResult& r, int i, int j,
                              PairDistanceMemo* memo) {
    if (!BudgetCharge(budget)) {
      r.truncated = true;
      return false;
    }
    ++r.candidates_generated;
    const Pattern& pi = g.patterns_[static_cast<size_t>(i)];
    const Pattern& pj = g.patterns_[static_cast<size_t>(j)];
    // Identical projections: codes are a bijection onto the referenced
    // values, so the code-vector compare answers exactly the value one.
    bool identical =
        memo != nullptr ? pi.codes == pj.codes : pi.values == pj.values;
    if (identical) {
      ++r.candidates_filtered;
      return true;
    }
    if (LengthLowerBound(pi, pj, fd, model, opts.w_l, opts.w_r) > opts.tau) {
      ++r.pairs_length_filtered;
      ++r.candidates_filtered;
      return true;
    }
    ++r.pairs_evaluated;
    double proj = memo != nullptr
                      ? ProjDistanceCutoffMemo(pi, pj, fd, model, opts.w_l,
                                               opts.w_r, opts.tau, memo)
                      : ProjDistanceCutoff(pi.values, pj.values, fd, model,
                                           opts.w_l, opts.w_r, opts.tau);
    if (proj > opts.tau) return true;
    if (!MemCharge(opts.memory, sizeof(ShardEdge), MemPhase::kGraph)) {
      r.truncated = true;  // per-shard edge scratch out of memory
      return false;
    }
    double unit = memo != nullptr
                      ? UnitCostMemo(pi, pj, fd, model, memo)
                      : UnitCost(pi.values, pj.values, fd, model);
    r.edges.push_back(ShardEdge{i, j, proj, unit});
    return true;
  };

  auto run_shard = [&](int s) {
    ShardResult& r = shards[static_cast<size_t>(s)];
    int row_lo = s * kShardRows;
    int row_hi = std::min(n, row_lo + kShardRows);
    // A budget that already ran out (possibly in another shard)
    // truncates this shard before it charges anything — the parallel
    // analogue of the serial build breaking out of the outer loop.
    // A shard whose only row is the last pattern has no pairs and
    // cannot be truncated, matching the serial loop bounds. An
    // exhausted memory budget (possibly latched by the block-index
    // build above) truncates the same way.
    if (BudgetExhausted(budget) || MemExhausted(opts.memory)) {
      if (row_lo < n - 1) r.truncated = true;
      return;
    }
    Timer shard_timer;
    // Shard-local distance memo for the coded path. Shard-local keeps
    // thread-count invariance trivial (no cross-shard state), and the
    // memoized values are exact, so hits only skip redundant kernels —
    // the emitted edges are bit-identical to the memo-less build.
    // Deliberately uncharged scratch: it is bounded by the shard's
    // distinct code pairs, freed at shard end, and charging it would
    // move the exhaustion trip points of governed runs that pin them.
    std::unique_ptr<PairDistanceMemo> memo;
    if (use_codes) {
      memo = std::make_unique<PairDistanceMemo>(
          static_cast<size_t>(fd.num_attrs()));
      for (int p = 0; p < fd.num_attrs(); ++p) {
        memo->SetSlotEnabled(static_cast<size_t>(p),
                             memo_slot_on[static_cast<size_t>(p)]);
      }
    }
    if (index != nullptr) {
      BlockIndex::Scratch scratch;
      std::vector<int> candidates;
      for (int i = row_lo; i < row_hi && !r.truncated; ++i) {
        candidates.clear();
        index->AppendCandidates(i, &scratch, &candidates);
        for (int j : candidates) {
          if (!verify_candidate(r, i, j, memo.get())) break;
        }
      }
    } else {
      for (int i = row_lo; i < row_hi && !r.truncated; ++i) {
        for (int j = i + 1; j < n; ++j) {
          if (!verify_candidate(r, i, j, memo.get())) break;
        }
      }
    }
    shard_ms->Observe(shard_timer.Millis());
  };
  ParallelFor(num_shards, threads, run_shard);

  // Deterministic merge: shards cover disjoint ascending i-ranges and
  // record edges in (i, j) order, so replaying them in shard order
  // reproduces the serial build's exact adjacency push order — the
  // graph is bit-identical for every thread count.
  uint64_t shard_scratch_bytes = 0;
  bool merge_exhausted = false;
  for (const ShardResult& r : shards) {
    g.pairs_length_filtered_ += r.pairs_length_filtered;
    g.pairs_evaluated_ += r.pairs_evaluated;
    g.candidates_generated_ += r.candidates_generated;
    g.candidates_filtered_ += r.candidates_filtered;
    if (r.truncated) g.truncated_ = true;
    shard_scratch_bytes += r.edges.size() * sizeof(ShardEdge);
    for (const ShardEdge& e : r.edges) {
      // The adjacency lists hold two directed copies of each edge; a
      // failed charge keeps the (deterministic) prefix merged so far
      // and surfaces truncation, never a half-pushed edge pair.
      if (merge_exhausted ||
          !MemCharge(opts.memory, 2 * sizeof(Edge), MemPhase::kGraph)) {
        merge_exhausted = true;
        g.truncated_ = true;
        break;
      }
      g.adj_[static_cast<size_t>(e.i)].push_back(Edge{e.j, e.proj, e.unit});
      g.adj_[static_cast<size_t>(e.j)].push_back(Edge{e.i, e.proj, e.unit});
      ++g.num_edges_;
      g.min_edge_cost_[static_cast<size_t>(e.i)] =
          std::min(g.min_edge_cost_[static_cast<size_t>(e.i)], e.unit);
      g.min_edge_cost_[static_cast<size_t>(e.j)] =
          std::min(g.min_edge_cost_[static_cast<size_t>(e.j)], e.unit);
    }
  }
  if (opts.memory != nullptr) {
    // The per-shard scratch buffers die with this function; return
    // their footprint so resident occupancy tracks the merged graph.
    opts.memory->Release(shard_scratch_bytes);
  }
  g.total_min_edge_cost_ = 0;
  for (int i = 0; i < n; ++i) {
    if (g.min_edge_cost_[static_cast<size_t>(i)] != kInfinity) {
      g.total_min_edge_cost_ += g.pattern(i).count() *
                                g.min_edge_cost_[static_cast<size_t>(i)];
    }
  }
  // Similarity-join accounting, once per build (not per pair): the
  // pair-filter effectiveness is the first thing to look at when
  // detection dominates a trace.
  static Counter* pairs_evaluated =
      Metrics().GetCounter("ftrepair.detect.pairs_evaluated");
  static Counter* pairs_filtered =
      Metrics().GetCounter("ftrepair.detect.pairs_length_filtered");
  static Counter* edges = Metrics().GetCounter("ftrepair.detect.edges");
  static Counter* truncated_builds =
      Metrics().GetCounter("ftrepair.detect.truncated_builds");
  static Counter* cand_generated =
      Metrics().GetCounter("ftrepair.detect.candidates_generated");
  static Counter* cand_verified =
      Metrics().GetCounter("ftrepair.detect.candidates_verified");
  static Counter* cand_filtered =
      Metrics().GetCounter("ftrepair.detect.candidates_filtered");
  static Histogram* build_ms =
      Metrics().GetHistogram("ftrepair.detect.graph_build_ms");
  static Gauge* detect_threads =
      Metrics().GetGauge("ftrepair.detect.threads");
  detect_threads->Set(threads);
  pairs_evaluated->Increment(g.pairs_evaluated_);
  pairs_filtered->Increment(g.pairs_length_filtered_);
  cand_generated->Increment(g.candidates_generated_);
  cand_verified->Increment(g.candidates_verified());
  cand_filtered->Increment(g.candidates_filtered_);
  edges->Increment(g.num_edges_);
  if (g.truncated_) truncated_builds->Increment();
  build_ms->Observe(build_timer.Millis());
  return g;
}

std::vector<std::vector<int>> ViolationGraph::ConnectedComponents() const {
  int n = num_patterns();
  std::vector<bool> visited(static_cast<size_t>(n), false);
  std::vector<std::vector<int>> components;
  for (int i = 0; i < n; ++i) {
    if (visited[static_cast<size_t>(i)]) continue;
    std::vector<int> comp;
    std::vector<int> stack = {i};
    visited[static_cast<size_t>(i)] = true;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      comp.push_back(u);
      for (const Edge& e : Neighbors(u)) {
        if (!visited[static_cast<size_t>(e.to)]) {
          visited[static_cast<size_t>(e.to)] = true;
          stack.push_back(e.to);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
  }
  return components;
}

ViolationGraph ViolationGraph::InducedSubgraph(
    const std::vector<int>& vertices) const {
  ViolationGraph g;
  std::vector<int> local(static_cast<size_t>(num_patterns()), -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    local[static_cast<size_t>(vertices[i])] = static_cast<int>(i);
    g.patterns_.push_back(patterns_[static_cast<size_t>(vertices[i])]);
  }
  g.adj_.resize(vertices.size());
  g.min_edge_cost_.assign(vertices.size(), kInfinity);
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (const Edge& e : Neighbors(vertices[i])) {
      int to = local[static_cast<size_t>(e.to)];
      if (to < 0) continue;
      g.adj_[i].push_back(Edge{to, e.proj_dist, e.unit_cost});
      if (vertices[i] < e.to) ++g.num_edges_;
      g.min_edge_cost_[i] = std::min(g.min_edge_cost_[i], e.unit_cost);
    }
  }
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (g.min_edge_cost_[i] != kInfinity) {
      g.total_min_edge_cost_ +=
          g.patterns_[i].count() * g.min_edge_cost_[i];
    }
  }
  // Build provenance carries over: a component cut out of a
  // budget-truncated graph may itself be missing edges, and its solver
  // must not believe detection was complete.
  g.truncated_ = truncated_;
  g.pairs_evaluated_ = pairs_evaluated_;
  g.pairs_length_filtered_ = pairs_length_filtered_;
  g.candidates_generated_ = candidates_generated_;
  g.candidates_filtered_ = candidates_filtered_;
  g.index_mode_ = index_mode_;
  return g;
}

}  // namespace ftrepair
