#include "detect/block_index.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace ftrepair {

namespace {

// Weights below this cannot be trusted to keep fl(w * d) away from a
// zero underflow for the smallest attribute distances the zero-faithful
// metrics produce (d >= 1 / string-length for edit, d = 1 for
// discrete), so such attributes never join an exact bucket key.
constexpr double kMinKeyWeight = 1e-300;

std::string ValueText(const Value& v) {
  return v.is_string() ? v.str() : v.ToString();
}

// Largest edit distance k in [0, length] whose weighted normalized
// contribution still fits under tau, using the exact double expressions
// the verification kernel evaluates (fl(w * fl(k / length))), so the
// filter's prune predicate and the kernel's accept predicate partition
// the integers with no gap. The float guess is fixed up both ways.
int KMaxFor(double w, double tau, int length) {
  if (length <= 0) return 0;
  double len = static_cast<double>(length);
  int k = static_cast<int>((tau / w) * len);
  if (k > length) k = length;
  if (k < 0) k = 0;
  while (k > 0 && w * (static_cast<double>(k) / len) > tau) --k;
  while (k < length && !(w * (static_cast<double>(k + 1) / len) > tau)) ++k;
  return k;
}

// Per-attribute facts gathered in one pass over the patterns.
struct AttrStats {
  double w = 0;
  ColumnMetric metric = ColumnMetric::kAuto;
  bool has_number = false;
  int num_strings = 0;  // non-null values
  long long sum_len = 0;
  int min_len = 0;
  int max_len = 0;
};

// The join strategy MakePlan settles on; shared by the constructor and
// the kAuto resolution so they can never disagree.
struct JoinPlan {
  bool exact = false;
  std::vector<int> key_attrs;
  std::vector<bool> key_by_tostring;
  int primary = -1;
  std::vector<int> secondary;
  // True when some filter is expected to actually prune; kAuto only
  // switches to the blocked join when this holds.
  bool worthwhile = false;
};

std::vector<AttrStats> GatherStats(const std::vector<Pattern>& patterns,
                                   const FD& fd, const DistanceModel& model,
                                   const FTOptions& opts) {
  int num_attrs = fd.num_attrs();
  int lhs = fd.lhs_size();
  std::vector<AttrStats> stats(static_cast<size_t>(num_attrs));
  for (int p = 0; p < num_attrs; ++p) {
    stats[static_cast<size_t>(p)].w = p < lhs ? opts.w_l : opts.w_r;
    stats[static_cast<size_t>(p)].metric =
        model.column_metric(fd.attrs()[static_cast<size_t>(p)]);
  }
  for (const Pattern& pat : patterns) {
    for (int p = 0; p < num_attrs; ++p) {
      AttrStats& s = stats[static_cast<size_t>(p)];
      const Value& v = pat.values[static_cast<size_t>(p)];
      if (v.is_null()) continue;
      if (v.is_number()) s.has_number = true;
      int len = static_cast<int>(ValueText(v).size());
      if (s.num_strings == 0 || len < s.min_len) s.min_len = len;
      if (s.num_strings == 0 || len > s.max_len) s.max_len = len;
      s.sum_len += len;
      ++s.num_strings;
    }
  }
  return stats;
}

// True when CellDistance on this attribute is edit distance over the
// values' ToString renderings for every non-null pair. kEdit always
// resolves that way; kAuto does once numbers are ruled out (a numeric
// pair would resolve to Euclidean instead).
bool EditFaithful(const AttrStats& s) {
  return s.metric == ColumnMetric::kEdit ||
         (s.metric == ColumnMetric::kAuto && !s.has_number);
}

JoinPlan MakePlan(const std::vector<Pattern>& patterns, const FD& fd,
                  const DistanceModel& model, const FTOptions& opts) {
  JoinPlan plan;
  std::vector<AttrStats> stats = GatherStats(patterns, fd, model, opts);
  int num_attrs = fd.num_attrs();
  double tau = opts.tau;

  if (!(tau > 0)) {
    // tau = 0 (or negative, which admits nothing and verifies trivially):
    // bucket by every attribute whose distance is provably 0 iff its
    // bucket key matches.
    plan.exact = true;
    for (int p = 0; p < num_attrs; ++p) {
      const AttrStats& s = stats[static_cast<size_t>(p)];
      if (!(s.w >= kMinKeyWeight)) continue;
      if (s.metric == ColumnMetric::kDiscrete) {
        plan.key_attrs.push_back(p);
        plan.key_by_tostring.push_back(false);
      } else if (EditFaithful(s)) {
        plan.key_attrs.push_back(p);
        plan.key_by_tostring.push_back(true);
      }
    }
    plan.worthwhile = !plan.key_attrs.empty();
    return plan;
  }

  // tau > 0. A 0/1-discrete attribute with w > tau is an exact key:
  // fl(w * 1) = w already rejects any pair differing there.
  std::vector<int> gram_eligible;
  for (int p = 0; p < num_attrs; ++p) {
    const AttrStats& s = stats[static_cast<size_t>(p)];
    if (s.metric == ColumnMetric::kDiscrete && s.w > tau) {
      plan.key_attrs.push_back(p);
      plan.key_by_tostring.push_back(false);
    } else if (s.w > tau && EditFaithful(s)) {
      gram_eligible.push_back(p);
    }
  }
  if (!plan.key_attrs.empty()) {
    plan.exact = true;
    plan.worthwhile = true;
    plan.secondary = gram_eligible;
    return plan;
  }

  // Pick the gram anchor: the attribute whose count filter has the
  // largest threshold at the attribute's typical length (ties: heavier
  // weight, then position). Attributes where neither the count filter
  // nor the length spread can bite are still *sound* anchors, just not
  // worthwhile ones.
  int best_t = 0;
  double best_w = 0;
  bool best_usable = false;
  for (int p : gram_eligible) {
    const AttrStats& s = stats[static_cast<size_t>(p)];
    if (s.num_strings == 0) continue;
    int avg_len = static_cast<int>(s.sum_len / s.num_strings);
    int t_avg = (avg_len - BlockIndex::kQ + 1) -
                KMaxFor(s.w, tau, avg_len) * BlockIndex::kQ;
    bool len_bites =
        (s.max_len - s.min_len) > KMaxFor(s.w, tau, s.max_len);
    bool usable = t_avg >= 1 || len_bites;
    bool better;
    if (usable != best_usable) {
      better = usable;
    } else if (t_avg != best_t) {
      better = t_avg > best_t;
    } else {
      better = plan.primary < 0 || s.w > best_w;
    }
    if (better) {
      plan.primary = p;
      best_t = t_avg;
      best_w = s.w;
      best_usable = usable;
    }
  }
  if (plan.primary < 0 && !gram_eligible.empty()) {
    plan.primary = gram_eligible.front();
  }
  plan.exact = plan.primary < 0;  // degenerate: no filterable attribute
  plan.worthwhile = best_usable;
  for (int p : gram_eligible) {
    if (p != plan.primary) plan.secondary.push_back(p);
  }
  return plan;
}

// Sorted run-length-encoded q-gram multiset of `s` (q = kQ = 2, grams
// encoded as two bytes packed into a uint32).
std::vector<BlockIndex::GramRun> GramRunsOf(const std::string& s);

int SharedGramCount(const std::vector<BlockIndex::GramRun>& a,
                    const std::vector<BlockIndex::GramRun>& b, int cap);

}  // namespace

void BlockIndex::ChargeIndexBytes(uint64_t bytes) {
  if (!MemCharge(memory_, bytes, MemPhase::kIndex)) {
    memory_exhausted_ = true;
  }
}

void BlockIndex::BuildExactJoin(const std::vector<Pattern>& patterns,
                                const std::vector<int>& key_attrs,
                                const std::vector<bool>& key_by_tostring) {
  bucket_of_.assign(static_cast<size_t>(n_), 0);
  rank_in_bucket_.assign(static_cast<size_t>(n_), 0);
  std::unordered_map<std::vector<Value>, int, ProjectionHash> keys;
  keys.reserve(static_cast<size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    std::vector<Value> key;
    key.reserve(key_attrs.size());
    for (size_t k = 0; k < key_attrs.size(); ++k) {
      const Value& v = patterns[static_cast<size_t>(i)]
                           .values[static_cast<size_t>(key_attrs[k])];
      if (key_by_tostring[k]) {
        key.push_back(Value(ValueText(v)));
      } else {
        key.push_back(v);
      }
    }
    auto [it, inserted] =
        keys.emplace(std::move(key), static_cast<int>(exact_buckets_.size()));
    if (inserted) exact_buckets_.emplace_back();
    std::vector<int>& members = exact_buckets_[static_cast<size_t>(it->second)];
    bucket_of_[static_cast<size_t>(i)] = it->second;
    rank_in_bucket_[static_cast<size_t>(i)] = static_cast<int>(members.size());
    members.push_back(i);
  }
  // bucket_of_ + rank_in_bucket_ + one member id per pattern.
  ChargeIndexBytes(static_cast<uint64_t>(n_) * 3 * sizeof(int));
}

void BlockIndex::BuildExactJoinCoded(
    const std::vector<Pattern>& patterns, const std::vector<int>& key_attrs,
    const std::vector<bool>& key_by_tostring) {
  bucket_of_.assign(static_cast<size_t>(n_), 0);
  rank_in_bucket_.assign(static_cast<size_t>(n_), 0);
  // Per key attribute: dictionary code -> dense equality-class id.
  // Discrete attributes use the code itself (interning is a bijection,
  // so code equality IS raw-value equality). Edit attributes must
  // group by the ToString rendering instead: two distinct codes (say
  // number 5 and string "5") can render identically and then have edit
  // distance 0 — keying by raw code would split their bucket, missing
  // pairs. The class maps are resolved once per distinct code, so the
  // per-pattern key build never touches strings after warm-up.
  struct ClassMap {
    std::unordered_map<uint32_t, uint32_t> of_code;
    std::unordered_map<std::string, uint32_t> of_render;  // tostring only
  };
  std::vector<ClassMap> classes(key_attrs.size());
  std::unordered_map<std::vector<uint32_t>, int, CodeVectorHash> keys;
  keys.reserve(static_cast<size_t>(n_));
  std::vector<uint32_t> key;
  for (int i = 0; i < n_; ++i) {
    key.clear();
    key.reserve(key_attrs.size());
    for (size_t k = 0; k < key_attrs.size(); ++k) {
      uint32_t code = patterns[static_cast<size_t>(i)]
                          .codes[static_cast<size_t>(key_attrs[k])];
      if (!key_by_tostring[k]) {
        key.push_back(code);
        continue;
      }
      ClassMap& cm = classes[k];
      auto it = cm.of_code.find(code);
      if (it == cm.of_code.end()) {
        const Value& v = patterns[static_cast<size_t>(i)]
                             .values[static_cast<size_t>(key_attrs[k])];
        auto [rit, ignored] = cm.of_render.emplace(
            ValueText(v), static_cast<uint32_t>(cm.of_render.size()));
        it = cm.of_code.emplace(code, rit->second).first;
      }
      key.push_back(it->second);
    }
    auto [it, inserted] =
        keys.emplace(key, static_cast<int>(exact_buckets_.size()));
    if (inserted) exact_buckets_.emplace_back();
    std::vector<int>& members = exact_buckets_[static_cast<size_t>(it->second)];
    bucket_of_[static_cast<size_t>(i)] = it->second;
    rank_in_bucket_[static_cast<size_t>(i)] = static_cast<int>(members.size());
    members.push_back(i);
  }
  // Same accounting as the value-keyed join — the persistent output
  // (bucket_of_ + rank_in_bucket_ + member ids) is shaped identically.
  ChargeIndexBytes(static_cast<uint64_t>(n_) * 3 * sizeof(int));
}

void BlockIndex::BuildGramJoin(const std::vector<Pattern>& patterns) {
  (void)patterns;  // anchor data already lives in primary_
  std::unordered_map<int, int> bucket_of_len;
  for (int i = 0; i < n_; ++i) {
    int len = primary_.len[static_cast<size_t>(i)];
    if (len < 0) {
      null_ids_.push_back(i);
      continue;
    }
    auto [it, inserted] =
        bucket_of_len.emplace(len, static_cast<int>(len_buckets_.size()));
    if (inserted) {
      len_buckets_.emplace_back();
      len_buckets_.back().len = len;
    }
    len_buckets_[static_cast<size_t>(it->second)].ids.push_back(i);
  }
  std::sort(len_buckets_.begin(), len_buckets_.end(),
            [](const LenBucket& a, const LenBucket& b) { return a.len < b.len; });
  uint64_t posting_bytes = 0;
  for (LenBucket& bucket : len_buckets_) {
    posting_bytes += bucket.ids.size() * sizeof(int);
    for (size_t rank = 0; rank < bucket.ids.size(); ++rank) {
      int id = bucket.ids[rank];
      for (const GramRun& run : primary_.grams[static_cast<size_t>(id)]) {
        bucket.postings[run.gram].emplace_back(static_cast<int>(rank),
                                               run.count);
        posting_bytes += sizeof(std::pair<int, uint32_t>);
      }
    }
  }
  ChargeIndexBytes(posting_bytes);
}

BlockIndex::BlockIndex(const std::vector<Pattern>& patterns, const FD& fd,
                       const DistanceModel& model, const FTOptions& opts) {
  n_ = static_cast<int>(patterns.size());
  memory_ = opts.memory;
  JoinPlan plan = MakePlan(patterns, fd, model, opts);
  int lhs = fd.lhs_size();
  auto weight_of = [&](int p) { return p < lhs ? opts.w_l : opts.w_r; };

  auto make_filter = [&](int p) {
    AttrFilter f;
    f.pos = p;
    f.len.assign(static_cast<size_t>(n_), -1);
    f.grams.assign(static_cast<size_t>(n_), {});
    int max_len = 0;
    for (int i = 0; i < n_; ++i) {
      const Value& v =
          patterns[static_cast<size_t>(i)].values[static_cast<size_t>(p)];
      if (v.is_null()) continue;
      std::string s = ValueText(v);
      f.len[static_cast<size_t>(i)] = static_cast<int>(s.size());
      if (static_cast<int>(s.size()) > max_len)
        max_len = static_cast<int>(s.size());
      f.grams[static_cast<size_t>(i)] = GramRunsOf(s);
    }
    f.kmax.resize(static_cast<size_t>(max_len) + 1);
    for (int l = 0; l <= max_len; ++l) {
      f.kmax[static_cast<size_t>(l)] = KMaxFor(weight_of(p), opts.tau, l);
    }
    uint64_t filter_bytes =
        f.len.size() * sizeof(int) + f.kmax.size() * sizeof(int);
    for (const std::vector<GramRun>& runs : f.grams) {
      filter_bytes += sizeof(runs) + runs.size() * sizeof(GramRun);
    }
    ChargeIndexBytes(filter_bytes);
    return f;
  };

  for (int p : plan.secondary) secondary_.push_back(make_filter(p));
  if (plan.exact) {
    num_key_attrs_ = static_cast<int>(plan.key_attrs.size());
    bool coded = opts.interned && !plan.key_attrs.empty();
    for (const Pattern& p : patterns) {
      if (!p.has_codes()) {
        coded = false;
        break;
      }
    }
    if (coded) {
      BuildExactJoinCoded(patterns, plan.key_attrs, plan.key_by_tostring);
    } else {
      BuildExactJoin(patterns, plan.key_attrs, plan.key_by_tostring);
    }
  } else {
    gram_primary_ = plan.primary;
    primary_ = make_filter(plan.primary);
    BuildGramJoin(patterns);
  }
}

void BlockIndex::AppendCandidates(int i, Scratch* scratch,
                                  std::vector<int>* out) const {
  std::vector<int>& cand = scratch->cand;
  cand.clear();
  if (exact_join()) {
    if (num_key_attrs_ == 0) {
      for (int j = i + 1; j < n_; ++j) cand.push_back(j);
    } else {
      const std::vector<int>& members =
          exact_buckets_[static_cast<size_t>(bucket_of_[static_cast<size_t>(i)])];
      for (size_t r =
               static_cast<size_t>(rank_in_bucket_[static_cast<size_t>(i)]) + 1;
           r < members.size(); ++r) {
        cand.push_back(members[r]);
      }
    }
  } else {
    int len_i = primary_.len[static_cast<size_t>(i)];
    if (len_i < 0) {
      // A null anchor is at distance 1 from every non-null anchor and
      // the anchor weight exceeds tau, so only null-null pairs survive.
      for (int j : null_ids_) {
        if (j > i) cand.push_back(j);
      }
    } else {
      const std::vector<GramRun>& runs = primary_.grams[static_cast<size_t>(i)];
      for (const LenBucket& bucket : len_buckets_) {
        int lmax = len_i > bucket.len ? len_i : bucket.len;
        int k = primary_.kmax[static_cast<size_t>(lmax)];
        if (std::abs(len_i - bucket.len) > k) continue;
        int t = (lmax - kQ + 1) - k * kQ;
        if (t <= 0) {
          // The count filter cannot bite at these lengths; keep the
          // whole bucket (the length filter above already passed).
          for (int j : bucket.ids) {
            if (j > i) cand.push_back(j);
          }
          continue;
        }
        // Accumulate shared-gram counts by rank within the bucket, so
        // the accumulator is dense over [0, bn) and the threshold
        // screen below can test one member per SIMD lane.
        const int bn = static_cast<int>(bucket.ids.size());
        if (scratch->shared.size() < static_cast<size_t>(bn)) {
          scratch->shared.assign(static_cast<size_t>(bn), 0);
        }
        for (const GramRun& run : runs) {
          auto it = bucket.postings.find(run.gram);
          if (it == bucket.postings.end()) continue;
          for (const std::pair<int, uint32_t>& posting : it->second) {
            uint32_t& acc = scratch->shared[static_cast<size_t>(posting.first)];
            if (acc == 0) scratch->touched.push_back(posting.first);
            acc += run.count < posting.second ? run.count : posting.second;
          }
        }
        // Screen: dense (vectorized over the whole bucket, then a
        // dense reset — amortized by the touched density) when enough
        // ranks were hit, sparse touched-walk otherwise. Both paths
        // keep exactly the ranks with shared >= t; the global sort
        // below makes the emission order identical either way.
        if (scratch->touched.size() * 4 >= static_cast<size_t>(bn)) {
          scratch->ranks.clear();
          ScreenSharedCounts(scratch->shared.data(), bn,
                             static_cast<uint32_t>(t), &scratch->ranks);
          for (int r : scratch->ranks) {
            int id = bucket.ids[static_cast<size_t>(r)];
            if (id > i) cand.push_back(id);
          }
          std::fill_n(scratch->shared.begin(), bn, uint32_t{0});
        } else {
          for (int r : scratch->touched) {
            if (scratch->shared[static_cast<size_t>(r)] >=
                static_cast<uint32_t>(t)) {
              int id = bucket.ids[static_cast<size_t>(r)];
              if (id > i) cand.push_back(id);
            }
            scratch->shared[static_cast<size_t>(r)] = 0;
          }
        }
        scratch->touched.clear();
      }
      std::sort(cand.begin(), cand.end());
    }
  }
  if (secondary_.empty()) {
    out->insert(out->end(), cand.begin(), cand.end());
    return;
  }
  for (int j : cand) {
    if (!SecondaryPrune(i, j)) out->push_back(j);
  }
}

bool BlockIndex::SecondaryPrune(int i, int j) const {
  for (const AttrFilter& f : secondary_) {
    int li = f.len[static_cast<size_t>(i)];
    int lj = f.len[static_cast<size_t>(j)];
    if (li < 0 || lj < 0) {
      // Null vs null is distance 0 — nothing to filter. Null vs
      // non-null is distance 1 and this attribute's weight exceeds tau.
      if ((li < 0) != (lj < 0)) return true;
      continue;
    }
    int lmax = li > lj ? li : lj;
    int k = f.kmax[static_cast<size_t>(lmax)];
    if (std::abs(li - lj) > k) return true;
    int t = (lmax - kQ + 1) - k * kQ;
    if (t >= 1 &&
        SharedGramCount(f.grams[static_cast<size_t>(i)],
                        f.grams[static_cast<size_t>(j)], t) < t) {
      return true;
    }
  }
  return false;
}

DetectIndexMode BlockIndex::Choose(const std::vector<Pattern>& patterns,
                                   const FD& fd, const DistanceModel& model,
                                   const FTOptions& opts) {
  if (static_cast<int>(patterns.size()) < kAutoMinPatterns) {
    return DetectIndexMode::kAllPairs;
  }
  return MakePlan(patterns, fd, model, opts).worthwhile
             ? DetectIndexMode::kBlocked
             : DetectIndexMode::kAllPairs;
}

namespace {

std::vector<BlockIndex::GramRun> GramRunsOf(const std::string& s) {
  std::vector<BlockIndex::GramRun> runs;
  if (static_cast<int>(s.size()) < BlockIndex::kQ) return runs;
  std::vector<uint32_t> codes;
  codes.reserve(s.size() - 1);
  for (size_t i = 0; i + BlockIndex::kQ <= s.size(); ++i) {
    codes.push_back((static_cast<uint32_t>(static_cast<uint8_t>(s[i])) << 8) |
                    static_cast<uint8_t>(s[i + 1]));
  }
  std::sort(codes.begin(), codes.end());
  for (size_t i = 0; i < codes.size();) {
    size_t j = i;
    while (j < codes.size() && codes[j] == codes[i]) ++j;
    runs.push_back(
        BlockIndex::GramRun{codes[i], static_cast<uint32_t>(j - i)});
    i = j;
  }
  return runs;
}

// Multiset intersection size of two sorted gram-run lists, capped at
// `cap` (callers only compare against the threshold).
int SharedGramCount(const std::vector<BlockIndex::GramRun>& a,
                    const std::vector<BlockIndex::GramRun>& b, int cap) {
  int total = 0;
  size_t x = 0;
  size_t y = 0;
  while (x < a.size() && y < b.size()) {
    if (a[x].gram < b[y].gram) {
      ++x;
    } else if (b[y].gram < a[x].gram) {
      ++y;
    } else {
      total += static_cast<int>(a[x].count < b[y].count ? a[x].count
                                                        : b[y].count);
      if (total >= cap) return total;
      ++x;
      ++y;
    }
  }
  return total;
}

}  // namespace

// ---------------------------------------------------------------------
// Threshold screen over a dense count array. All paths evaluate the
// same predicate (unsigned 32-bit counts[r] >= threshold) and emit
// ranks in ascending order, so the dispatch is invisible to callers.

void ScreenSharedCountsScalar(const uint32_t* counts, int n,
                              uint32_t threshold, std::vector<int>* out) {
  for (int r = 0; r < n; ++r) {
    if (counts[r] >= threshold) out->push_back(r);
  }
}

namespace {

using ScreenFn = void (*)(const uint32_t*, int, uint32_t, std::vector<int>*);

#if defined(__x86_64__) || defined(_M_X64)

// Unsigned v >= t has no direct SSE/AVX compare; max_epu32(v, t) == v
// is the standard equivalent and is exact for all 32-bit values.
__attribute__((target("avx2"))) void ScreenAvx2(const uint32_t* counts, int n,
                                                uint32_t threshold,
                                                std::vector<int>* out) {
  const __m256i t = _mm256_set1_epi32(static_cast<int>(threshold));
  int r = 0;
  for (; r + 8 <= n; r += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + r));
    __m256i ge = _mm256_cmpeq_epi32(_mm256_max_epu32(v, t), v);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(ge)));
    while (mask) {
      out->push_back(r + __builtin_ctz(mask));
      mask &= mask - 1;
    }
  }
  for (; r < n; ++r) {
    if (counts[r] >= threshold) out->push_back(r);
  }
}

__attribute__((target("sse4.2"))) void ScreenSse42(const uint32_t* counts,
                                                   int n, uint32_t threshold,
                                                   std::vector<int>* out) {
  const __m128i t = _mm_set1_epi32(static_cast<int>(threshold));
  int r = 0;
  for (; r + 4 <= n; r += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(counts + r));
    __m128i ge = _mm_cmpeq_epi32(_mm_max_epu32(v, t), v);
    unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(ge)));
    while (mask) {
      out->push_back(r + __builtin_ctz(mask));
      mask &= mask - 1;
    }
  }
  for (; r < n; ++r) {
    if (counts[r] >= threshold) out->push_back(r);
  }
}

#endif  // x86-64

#if defined(__aarch64__)

void ScreenNeon(const uint32_t* counts, int n, uint32_t threshold,
                std::vector<int>* out) {
  const uint32x4_t t = vdupq_n_u32(threshold);
  int r = 0;
  for (; r + 4 <= n; r += 4) {
    uint32x4_t v = vld1q_u32(counts + r);
    uint32x4_t ge = vcgeq_u32(v, t);
    // Narrow each 32-bit lane to 16 bits and pull four nibbles out of
    // the 64-bit result — the usual NEON movemask substitute.
    uint64_t bits =
        vget_lane_u64(vreinterpret_u64_u16(vshrn_n_u32(ge, 16)), 0);
    while (bits) {
      int lane = __builtin_ctzll(bits) >> 4;
      out->push_back(r + lane);
      bits &= ~(uint64_t{0xffff} << (lane * 16));
    }
  }
  for (; r < n; ++r) {
    if (counts[r] >= threshold) out->push_back(r);
  }
}

#endif  // aarch64

struct ScreenDispatch {
  ScreenFn fn = &ScreenSharedCountsScalar;
  const char* name = "scalar";
  ScreenDispatch() {
#if defined(__x86_64__) || defined(_M_X64)
    if (__builtin_cpu_supports("avx2")) {
      fn = &ScreenAvx2;
      name = "avx2";
    } else if (__builtin_cpu_supports("sse4.2")) {
      fn = &ScreenSse42;
      name = "sse4.2";
    }
#elif defined(__aarch64__)
    fn = &ScreenNeon;
    name = "neon";
#endif
  }
};

const ScreenDispatch& Screen() {
  static const ScreenDispatch dispatch;
  return dispatch;
}

}  // namespace

void ScreenSharedCounts(const uint32_t* counts, int n, uint32_t threshold,
                        std::vector<int>* out) {
  Screen().fn(counts, n, threshold, out);
}

const char* SimdScreenPathName() { return Screen().name; }

}  // namespace ftrepair
