#ifndef FTREPAIR_DETECT_DETECTOR_H_
#define FTREPAIR_DETECT_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "common/budget.h"
#include "constraint/fd.h"
#include "data/table.h"
#include "detect/violation_graph.h"
#include "metric/projection.h"

namespace ftrepair {

/// A detected violating tuple pair (row1 < row2).
struct Violation {
  int row1 = 0;
  int row2 = 0;
  /// Weighted projection distance of the pair (0 for classical
  /// violations, which have identical LHS).
  double distance = 0;
};

/// Pair-level work accounting of one finder run, unified between the
/// exact and FT paths (the exact finder historically reported nothing,
/// under-reporting detection work on the tau = 0 path). `generated`
/// counts the pairs the finder materialized for inspection, `filtered`
/// the ones dismissed by pre-kernel checks, `verified` the ones whose
/// violation status was actually confirmed. The exact finder's
/// group-by join proves every enumerated pair violating by
/// construction, so it reports filtered = 0 and verified = generated;
/// the FT finder reports its ViolationGraph's candidate stats (pattern
/// pairs, since detection runs on grouped tuples). In both paths:
/// generated = filtered + verified.
struct PairAccounting {
  uint64_t candidates_generated = 0;
  uint64_t candidates_verified = 0;
  uint64_t candidates_filtered = 0;
};

/// Classical violations of `fd`: equal X, different Y (§2.1).
/// At most `max_pairs` pairs are returned, sorted by (row1, row2);
/// when pairs were dropped to the cap, `clipped` (if non-null) is set.
/// `accounting` (when non-null) receives the unified pair accounting;
/// the same totals feed the ftrepair.detect.candidates_* counters.
std::vector<Violation> FindExactViolations(
    const Table& table, const FD& fd,
    size_t max_pairs = SIZE_MAX, bool* clipped = nullptr,
    PairAccounting* accounting = nullptr);

/// Fault-tolerant violations of `fd` under `opts` (§2.1): differing
/// projections within weighted distance tau. The returned list is
/// always sorted by (row1, row2), clipped or not.
///
/// `budget` (optional, not owned) bounds the underlying graph build;
/// on exhaustion the pairs found so far are returned and `truncated`
/// (when non-null) is set — a sound-but-incomplete violation list.
/// `clipped` (when non-null) reports the distinct condition that more
/// than `max_pairs` pairs existed and the excess was dropped.
std::vector<Violation> FindFTViolations(
    const Table& table, const FD& fd, const DistanceModel& model,
    const FTOptions& opts, size_t max_pairs = SIZE_MAX,
    const Budget* budget = nullptr, bool* truncated = nullptr,
    bool* clipped = nullptr, PairAccounting* accounting = nullptr);

/// D |= fd in the classical semantics.
bool IsConsistent(const Table& table, const FD& fd);

/// D |= fd for every fd in `fds`.
bool IsConsistent(const Table& table, const std::vector<FD>& fds);

/// D |=_FT fd (no FT-violations) under `opts`.
bool IsFTConsistent(const Table& table, const FD& fd,
                    const DistanceModel& model, const FTOptions& opts);

/// D |=_FT every fd in `fds`.
bool IsFTConsistent(const Table& table, const std::vector<FD>& fds,
                    const DistanceModel& model, const FTOptions& opts);

/// Number of classical violating pairs (exact count, computed from
/// equivalence-class sizes, never materializing pairs).
uint64_t CountExactViolations(const Table& table, const FD& fd);

/// Number of FT-violating tuple pairs (computed from the grouped graph
/// as sum over edges of count(u) * count(v), plus pairs of tuples whose
/// projections tie... identical projections are never violations).
/// With a `budget` the count is a lower bound when it runs out
/// mid-build (`truncated` reports that, when non-null).
uint64_t CountFTViolations(const Table& table, const FD& fd,
                           const DistanceModel& model, const FTOptions& opts,
                           const Budget* budget = nullptr,
                           bool* truncated = nullptr);

}  // namespace ftrepair

#endif  // FTREPAIR_DETECT_DETECTOR_H_
