#ifndef FTREPAIR_DETECT_VIOLATION_GRAPH_H_
#define FTREPAIR_DETECT_VIOLATION_GRAPH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/budget.h"
#include "common/resource.h"
#include "constraint/fd.h"
#include "detect/pattern.h"
#include "metric/projection.h"

namespace ftrepair {

/// How the graph build generates candidate pattern pairs.
enum class DetectIndexMode {
  /// Pick per build: the blocking index when the table is large enough
  /// and at least one attribute supports a sound filter, the all-pairs
  /// join otherwise.
  kAuto,
  /// Enumerate every i < j pattern pair (the historical join).
  kAllPairs,
  /// Generate candidates through a BlockIndex (detect/block_index.h):
  /// an exact-match bucket join at tau = 0, a length-bucketed inverted
  /// q-gram index at tau > 0. Every filter is sound, so the resulting
  /// graph is bit-identical to the all-pairs build.
  kBlocked,
};

const char* DetectIndexModeName(DetectIndexMode mode);

/// Parameters of the fault-tolerant violation semantics (§2.1).
struct FTOptions {
  /// Weight of the LHS attribute distances in Eq. 2.
  double w_l = 0.5;
  /// Weight of the RHS attribute distances in Eq. 2.
  double w_r = 0.5;
  /// FT-violation threshold tau. Two differing projections with
  /// weighted distance <= tau are an FT-violation.
  double tau = 0.2;
  /// Worker threads for the graph build's pattern-pair join. 1 (the
  /// library default) runs serially; 0 means all hardware threads.
  /// Every setting produces a bit-identical graph — same edge order,
  /// same stats — so this is purely a speed knob.
  int threads = 1;
  /// Candidate-generation strategy for the pair join. The blocked and
  /// all-pairs joins emit bit-identical edges (same order, same
  /// proj/unit values); only the candidate-accounting stats differ, as
  /// documented on the accessors below.
  DetectIndexMode index = DetectIndexMode::kAuto;
  /// Optional memory governance (not owned). Edge buffers, shard
  /// scratch, and block-index postings charge against it
  /// (MemPhase::kGraph / kIndex); on exhaustion the build truncates
  /// exactly like a spent wall-clock budget.
  const MemoryBudget* memory = nullptr;
  /// Use the patterns' dictionary codes (when present) for the
  /// identical-projection check, the tau = 0 exact bucket join, and
  /// per-pair distance memoization. Purely a speed knob: the graph is
  /// bit-identical either way (see PERFORMANCE.md, "Dictionary-join
  /// equivalence"). Patterns without codes fall back to the value path
  /// regardless of this flag.
  bool interned = true;
};

/// Classical FD semantics expressed in FT terms (w_l=1, w_r=0, tau=0):
/// equal LHS + different RHS, see §2.1 "Remark".
inline FTOptions ClassicalFTOptions() { return FTOptions{1.0, 0.0, 0.0}; }

/// \brief The grouped violation graph G'(V', E') of §3.
///
/// Vertices are patterns (distinct projections with multiplicity);
/// an undirected edge joins two patterns in FT-violation. Repairing
/// pattern u to pattern v costs `u.count() * edge.unit_cost`
/// (the grouped directed-graph weights of §3 "Tuple grouping").
class ViolationGraph {
 public:
  struct Edge {
    int to;
    /// Weighted projection distance (Eq. 2); always <= tau.
    double proj_dist;
    /// omega(u, v) for a single tuple: unweighted sum of attribute
    /// distances over X ∪ Y (the repair cost of the projection, Eq. 3).
    double unit_cost;
  };

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// Builds the graph over `patterns`, whose value vectors are laid out
  /// over `fd.attrs()`. Patterns with identical projections never form
  /// an edge (FT-violations require differing projections).
  ///
  /// `budget` (optional) is charged one unit per candidate pair; when
  /// it runs out mid-build the remaining pairs are skipped and the
  /// graph is marked truncated() — a valid graph missing some edges,
  /// i.e. some violations go undetected (the detect-only degradation).
  ///
  /// The pair join runs on `opts.threads` threads (see FTOptions); the
  /// result is bit-identical for every thread count. Under a budget
  /// that exhausts mid-build, *which* pairs were evaluated is only
  /// deterministic at threads == 1, but the graph is always marked
  /// truncated and always well-formed.
  static ViolationGraph Build(std::vector<Pattern> patterns, const FD& fd,
                              const DistanceModel& model,
                              const FTOptions& opts,
                              const Budget* budget = nullptr);

  const std::vector<Pattern>& patterns() const { return patterns_; }
  int num_patterns() const { return static_cast<int>(patterns_.size()); }
  const Pattern& pattern(int i) const {
    return patterns_[static_cast<size_t>(i)];
  }

  const std::vector<Edge>& Neighbors(int i) const {
    return adj_[static_cast<size_t>(i)];
  }
  int degree(int i) const {
    return static_cast<int>(adj_[static_cast<size_t>(i)].size());
  }
  size_t num_edges() const { return num_edges_; }

  /// Minimum unit_cost among `i`'s edges; kInfinity for isolated vertices.
  double MinEdgeCost(int i) const {
    return min_edge_cost_[static_cast<size_t>(i)];
  }

  /// Sum over all patterns of count * MinEdgeCost (isolated vertices
  /// contribute 0) — used by LB computations.
  double TotalMinEdgeCost() const { return total_min_edge_cost_; }

  /// Number of candidate pairs skipped by the cheap length filter
  /// before any edit-distance evaluation (similarity-join stat).
  size_t pairs_length_filtered() const { return pairs_length_filtered_; }
  size_t pairs_evaluated() const { return pairs_evaluated_; }

  /// Candidate accounting, identical in meaning across both join
  /// strategies: `generated` pairs were emitted by the candidate
  /// source (every budget-charged i < j pair for the all-pairs join,
  /// every index hit for the blocked join), of which `filtered` were
  /// skipped by the cheap pre-kernel checks (identical projections or
  /// the length lower bound) and `verified` reached the exact distance
  /// kernel. Invariants: generated = filtered + verified, and
  /// generated <= n * (n - 1) / 2. A blocked build generates fewer
  /// candidates than an all-pairs build of the same input — that
  /// reduction is the index's whole point — while the edge list stays
  /// bit-identical.
  uint64_t candidates_generated() const { return candidates_generated_; }
  uint64_t candidates_verified() const {
    return static_cast<uint64_t>(pairs_evaluated_);
  }
  uint64_t candidates_filtered() const { return candidates_filtered_; }

  /// The join strategy this graph was actually built with (kAuto
  /// resolved to one of the concrete modes).
  DetectIndexMode index_mode() const { return index_mode_; }

  /// True when the build's budget ran out and some candidate pairs
  /// were never evaluated (the graph may be missing edges).
  bool truncated() const { return truncated_; }

  /// Vertex sets of the connected components (singletons included),
  /// ordered by smallest member.
  std::vector<std::vector<int>> ConnectedComponents() const;

  /// The vertex-induced subgraph on `vertices`; vertex i of the result
  /// corresponds to `vertices[i]`. Only edges with both endpoints in
  /// `vertices` survive (for a full component this is lossless). The
  /// build provenance — truncated() and the pair-join stats — carries
  /// over unchanged, so a per-component solver still sees that the
  /// detection pass it is working from was incomplete.
  ViolationGraph InducedSubgraph(const std::vector<int>& vertices) const;

  /// Distance between two pattern value-vectors (Eq. 2 weighting).
  static double ProjDistance(const std::vector<Value>& a,
                             const std::vector<Value>& b, const FD& fd,
                             const DistanceModel& model, double w_l,
                             double w_r);

  /// ProjDistance with a cutoff at `tau`, the graph build's hot path.
  /// Whenever the exact ProjDistance is <= tau the return value is
  /// bit-identical to it; otherwise the return value is merely
  /// guaranteed to be > tau (the attribute loop exits early and each
  /// edit distance runs banded, so most rejected pairs never pay the
  /// full kernel). Callers must therefore only compare the result
  /// against tau, never treat a rejecting value as the true distance.
  static double ProjDistanceCutoff(const std::vector<Value>& a,
                                   const std::vector<Value>& b, const FD& fd,
                                   const DistanceModel& model, double w_l,
                                   double w_r, double tau);

  /// Unweighted repair cost between two pattern value-vectors (Eq. 3
  /// over the FD's attributes).
  static double UnitCost(const std::vector<Value>& a,
                         const std::vector<Value>& b, const FD& fd,
                         const DistanceModel& model);

 private:
  std::vector<Pattern> patterns_;
  std::vector<std::vector<Edge>> adj_;
  std::vector<double> min_edge_cost_;
  double total_min_edge_cost_ = 0;
  size_t num_edges_ = 0;
  size_t pairs_length_filtered_ = 0;
  size_t pairs_evaluated_ = 0;
  uint64_t candidates_generated_ = 0;
  uint64_t candidates_filtered_ = 0;
  DetectIndexMode index_mode_ = DetectIndexMode::kAllPairs;
  bool truncated_ = false;
};

}  // namespace ftrepair

#endif  // FTREPAIR_DETECT_VIOLATION_GRAPH_H_
