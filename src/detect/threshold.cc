#include "detect/threshold.h"

#include <algorithm>
#include <vector>

#include "detect/pattern.h"
#include "detect/violation_graph.h"

namespace ftrepair {

double SuggestThreshold(const Table& table, const FD& fd,
                        const DistanceModel& model,
                        const ThresholdOptions& opts) {
  std::vector<Pattern> patterns = BuildPatterns(table, fd.attrs());
  size_t n = patterns.size();
  std::vector<double> distances;

  // Deterministic stride subsampling keeps the pair count bounded.
  size_t total_pairs = n < 2 ? 0 : n * (n - 1) / 2;
  size_t stride = 1;
  if (total_pairs > opts.max_pairs && opts.max_pairs > 0) {
    stride = (total_pairs + opts.max_pairs - 1) / opts.max_pairs;
  }
  size_t pair_index = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j, ++pair_index) {
      if (pair_index % stride != 0) continue;
      double d = ViolationGraph::ProjDistance(
          patterns[i].values, patterns[j].values, fd, model, opts.w_l,
          opts.w_r);
      if (d > 0 && d <= opts.ceiling) distances.push_back(d);
    }
  }
  std::sort(distances.begin(), distances.end());
  distances.erase(std::unique(distances.begin(), distances.end()),
                  distances.end());
  if (distances.size() < 2) return opts.fallback;

  // Largest jump between adjacent distinct distances; tau is the value
  // *below* the jump.
  size_t best = 0;
  double best_gap = -1;
  for (size_t i = 0; i + 1 < distances.size(); ++i) {
    double gap = distances[i + 1] - distances[i];
    if (gap > best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  return distances[best];
}

}  // namespace ftrepair
