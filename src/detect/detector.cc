#include "detect/detector.h"

#include <algorithm>
#include <unordered_map>

#include "common/metrics.h"
#include "common/trace.h"
#include "detect/pattern.h"

namespace ftrepair {

namespace {

// Groups rows by X projection, then by Y projection within each group.
// Returns, per X-class, the list of Y-classes (each with its rows).
std::vector<std::vector<std::vector<int>>> GroupByLhsThenRhs(
    const Table& table, const FD& fd) {
  std::vector<Pattern> lhs_groups = BuildPatterns(table, fd.lhs());
  std::vector<std::vector<std::vector<int>>> out;
  out.reserve(lhs_groups.size());
  for (const Pattern& g : lhs_groups) {
    std::vector<Pattern> rhs_groups =
        BuildPatternsForRows(table, fd.rhs(), g.rows);
    std::vector<std::vector<int>> classes;
    classes.reserve(rhs_groups.size());
    for (Pattern& rg : rhs_groups) classes.push_back(std::move(rg.rows));
    out.push_back(std::move(classes));
  }
  return out;
}

// Canonical output order: by (row1, row2). Pairs are unique (a row
// belongs to exactly one projection class), so no further tie-break
// is needed. Clipped and unclipped results sort alike — a capped call
// must never return nondeterministically ordered pairs.
void SortViolations(std::vector<Violation>* out) {
  std::sort(out->begin(), out->end(),
            [](const Violation& a, const Violation& b) {
              if (a.row1 != b.row1) return a.row1 < b.row1;
              return a.row2 < b.row2;
            });
}

}  // namespace

namespace {

// The exact and FT finders feed the same process-wide candidate
// counters (the FT path increments them inside ViolationGraph::Build).
void RecordExactAccounting(uint64_t generated) {
  if (generated == 0) return;
  static Counter* cand_generated =
      Metrics().GetCounter("ftrepair.detect.candidates_generated");
  static Counter* cand_verified =
      Metrics().GetCounter("ftrepair.detect.candidates_verified");
  cand_generated->Increment(generated);
  cand_verified->Increment(generated);
}

}  // namespace

std::vector<Violation> FindExactViolations(const Table& table, const FD& fd,
                                           size_t max_pairs, bool* clipped,
                                           PairAccounting* accounting) {
  std::vector<Violation> out;
  bool clip = false;
  uint64_t generated = 0;
  for (const auto& x_class : GroupByLhsThenRhs(table, fd)) {
    if (clip) break;
    if (x_class.size() < 2) continue;
    // Every cross-Y-class row pair inside this X class is a violation.
    for (size_t a = 0; a < x_class.size() && !clip; ++a) {
      for (size_t b = a + 1; b < x_class.size() && !clip; ++b) {
        for (int r1 : x_class[a]) {
          if (clip) break;
          for (int r2 : x_class[b]) {
            // The group-by join proves the pair violating before the
            // cap applies: a clipped run still counts the pair that
            // tripped the cap as generated+verified work performed.
            ++generated;
            if (out.size() >= max_pairs) {
              clip = true;  // this pair exists but is being dropped
              break;
            }
            out.push_back(
                Violation{std::min(r1, r2), std::max(r1, r2), 0.0});
          }
        }
      }
    }
  }
  SortViolations(&out);
  if (clipped != nullptr) *clipped = clip;
  RecordExactAccounting(generated);
  if (accounting != nullptr) {
    accounting->candidates_generated = generated;
    accounting->candidates_verified = generated;
    accounting->candidates_filtered = 0;
  }
  return out;
}

std::vector<Violation> FindFTViolations(const Table& table, const FD& fd,
                                        const DistanceModel& model,
                                        const FTOptions& opts,
                                        size_t max_pairs,
                                        const Budget* budget,
                                        bool* truncated, bool* clipped,
                                        PairAccounting* accounting) {
  ViolationGraph graph = ViolationGraph::Build(
      BuildPatterns(table, fd.attrs()), fd, model, opts, budget);
  if (truncated != nullptr) *truncated = graph.truncated();
  if (accounting != nullptr) {
    accounting->candidates_generated = graph.candidates_generated();
    accounting->candidates_verified = graph.candidates_verified();
    accounting->candidates_filtered = graph.candidates_filtered();
  }
  std::vector<Violation> out;
  bool clip = false;
  for (int i = 0; i < graph.num_patterns() && !clip; ++i) {
    for (const ViolationGraph::Edge& e : graph.Neighbors(i)) {
      if (clip) break;
      if (e.to < i) continue;  // emit each undirected edge once
      for (int r1 : graph.pattern(i).rows) {
        if (clip) break;
        for (int r2 : graph.pattern(e.to).rows) {
          if (out.size() >= max_pairs) {
            clip = true;  // this pair exists but is being dropped
            break;
          }
          out.push_back(
              Violation{std::min(r1, r2), std::max(r1, r2), e.proj_dist});
        }
      }
    }
  }
  SortViolations(&out);
  if (clipped != nullptr) *clipped = clip;
  return out;
}

bool IsConsistent(const Table& table, const FD& fd) {
  for (const auto& x_class : GroupByLhsThenRhs(table, fd)) {
    if (x_class.size() > 1) return false;
  }
  return true;
}

bool IsConsistent(const Table& table, const std::vector<FD>& fds) {
  for (const FD& fd : fds) {
    if (!IsConsistent(table, fd)) return false;
  }
  return true;
}

bool IsFTConsistent(const Table& table, const FD& fd,
                    const DistanceModel& model, const FTOptions& opts) {
  ViolationGraph graph =
      ViolationGraph::Build(BuildPatterns(table, fd.attrs()), fd, model, opts);
  return graph.num_edges() == 0;
}

bool IsFTConsistent(const Table& table, const std::vector<FD>& fds,
                    const DistanceModel& model, const FTOptions& opts) {
  for (const FD& fd : fds) {
    if (!IsFTConsistent(table, fd, model, opts)) return false;
  }
  return true;
}

uint64_t CountExactViolations(const Table& table, const FD& fd) {
  uint64_t total = 0;
  for (const auto& x_class : GroupByLhsThenRhs(table, fd)) {
    uint64_t class_total = 0;
    for (const auto& y_class : x_class) class_total += y_class.size();
    uint64_t same = 0;
    for (const auto& y_class : x_class) {
      same += static_cast<uint64_t>(y_class.size()) * y_class.size();
    }
    // Ordered cross pairs / 2 = unordered violating pairs.
    total += (class_total * class_total - same) / 2;
  }
  return total;
}

uint64_t CountFTViolations(const Table& table, const FD& fd,
                           const DistanceModel& model, const FTOptions& opts,
                           const Budget* budget, bool* truncated) {
  FTR_TRACE_SPAN("detect.count_ft", {{"fd", fd.name()}});
  ViolationGraph graph = ViolationGraph::Build(
      BuildPatterns(table, fd.attrs()), fd, model, opts, budget);
  if (truncated != nullptr) *truncated = graph.truncated();
  uint64_t total = 0;
  for (int i = 0; i < graph.num_patterns(); ++i) {
    for (const ViolationGraph::Edge& e : graph.Neighbors(i)) {
      if (e.to < i) continue;
      total += static_cast<uint64_t>(graph.pattern(i).count()) *
               static_cast<uint64_t>(graph.pattern(e.to).count());
    }
  }
  return total;
}

}  // namespace ftrepair
