#ifndef FTREPAIR_DETECT_BLOCK_INDEX_H_
#define FTREPAIR_DETECT_BLOCK_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "constraint/fd.h"
#include "detect/pattern.h"
#include "detect/violation_graph.h"
#include "metric/projection.h"

namespace ftrepair {

/// \brief Sound candidate generation for the violation-graph pair join
/// (similarity-join blocking).
///
/// The all-pairs join evaluates every i < j pattern pair against tau.
/// This index generates a *superset of the qualifying pairs* — never a
/// miss — from per-attribute filters derived from the normalized
/// distance bound each attribute's weight implies:
///
///   proj(u, v) <= tau  implies  fl(w_p * d_p(u, v)) <= tau  for every
///   attribute p, because IEEE addition of non-negative terms is
///   monotone (each partial sum is >= any single rounded term).
///
/// Two join strategies, picked from (tau, weights, metrics, values):
///
///   * Exact bucket join. At tau = 0 a qualifying pair has d_p = 0 on
///     every positively-weighted attribute, so patterns are bucketed by
///     a key that is constant within distance-0 classes: the raw Value
///     for 0/1-discrete attributes, the ToString rendering for edit
///     attributes (distinct strings have positive edit distance; the
///     null/"" rendering collision only over-generates, which is
///     sound). At tau > 0 the same join applies when some 0/1-discrete
///     attribute has w > tau: any pair differing there is already past
///     tau. Only provably zero-distance-faithful attributes join the
///     key; everything else is left to the verification kernel.
///
///   * Gram join (tau > 0). Patterns are bucketed by the length L of
///     an anchor attribute's string. For a pair with lengths (La, Lb),
///     Lmax = max(La, Lb), the largest edit distance still admissible
///     is k(Lmax) = max { k : fl(w * fl(k / Lmax)) <= tau } — computed
///     with the exact double expressions the kernel uses, then:
///       - length filter: |La - Lb| > k(Lmax) implies ed > k(Lmax),
///       - count filter: ed <= k implies the q-gram *multisets* share
///         at least (Lmax - q + 1) - k*q grams (each edit destroys at
///         most q grams of the longer string), so sharing fewer prunes.
///     Shared-gram counts come from an inverted q-gram index per length
///     bucket. A null anchor only qualifies against other nulls (the
///     null distance is 1 and the anchor weight exceeds tau). The
///     remaining filter-eligible attributes apply the same two checks
///     per surviving pair (secondary filters).
///
/// Candidates are emitted in ascending j > i order, so a sharded build
/// that replays them in i order reproduces the serial all-pairs edge
/// order exactly. When no attribute supports any filter the index is
/// degenerate() and emits every pair — correct, just not faster.
class BlockIndex {
 public:
  /// Per-caller query state, reused across AppendCandidates calls to
  /// avoid re-allocating the shared-gram accumulator (grown to the
  /// largest length bucket seen). `shared` is indexed by rank within
  /// the current bucket and is all-zero between buckets.
  struct Scratch {
    std::vector<uint32_t> shared;
    std::vector<int> touched;
    std::vector<int> ranks;
    std::vector<int> cand;
  };

  /// Builds the index over `patterns` (value vectors laid out over
  /// `fd.attrs()`). The referenced patterns/model must outlive the
  /// index; `opts` is snapshotted.
  BlockIndex(const std::vector<Pattern>& patterns, const FD& fd,
             const DistanceModel& model, const FTOptions& opts);

  /// Appends to `out`, in ascending order, every j > i whose pattern
  /// might be within tau of pattern i (plus possibly pairs beyond tau —
  /// the filters are one-sided). Thread-safe for concurrent callers
  /// with distinct Scratch objects.
  void AppendCandidates(int i, Scratch* scratch, std::vector<int>* out) const;

  /// True when the exact bucket join is in use (otherwise gram join).
  bool exact_join() const { return gram_primary_ < 0; }
  /// attrs() position of the gram join's anchor attribute; -1 when the
  /// exact join is in use.
  int gram_primary() const { return gram_primary_; }
  /// True when no attribute supports any filter: every i < j pair is a
  /// candidate and the index degrades to the all-pairs join.
  bool degenerate() const { return exact_join() && num_key_attrs_ == 0; }

  /// True when `opts.memory` ran out while building the postings /
  /// buckets / filters. The index stays usable (sound, possibly less
  /// selective); the graph build sees the latched budget and truncates.
  bool memory_exhausted() const { return memory_exhausted_; }

  /// Resolves DetectIndexMode::kAuto for this input: kBlocked when the
  /// pattern count reaches kAutoMinPatterns and the analysis finds a
  /// filter expected to prune (an exact-key attribute, or a gram anchor
  /// whose count filter or length spread bites at typical lengths);
  /// kAllPairs otherwise.
  static DetectIndexMode Choose(const std::vector<Pattern>& patterns,
                                const FD& fd, const DistanceModel& model,
                                const FTOptions& opts);

  /// Below this pattern count kAuto always stays on the all-pairs join
  /// (the index's setup cost wouldn't amortize).
  static constexpr int kAutoMinPatterns = 256;

  /// q-gram width of the count filter.
  static constexpr int kQ = 2;

  /// Sorted multiset of a string's q-grams, run-length encoded
  /// (implementation detail, public for the .cc's free helpers).
  struct GramRun {
    uint32_t gram;
    uint32_t count;
  };

 private:
  // One anchor-length bucket of the gram join: member ids (ascending)
  // plus an inverted gram index with per-member multiplicities. A
  // posting is (rank within `ids`, gram count) — rank-based so the
  // count accumulator is dense over the bucket and the threshold
  // screen can run one SIMD lane per member.
  struct LenBucket {
    int len = 0;
    std::vector<int> ids;
    std::unordered_map<uint32_t, std::vector<std::pair<int, uint32_t>>>
        postings;
  };
  // Per-pair filter state of one eligible attribute.
  struct AttrFilter {
    int pos = 0;                // position within fd.attrs()
    std::vector<int> kmax;      // kmax[L] for L in [0, max string length]
    std::vector<int> len;       // per pattern; -1 = null value
    std::vector<std::vector<GramRun>> grams;  // per pattern
  };

  void BuildExactJoin(const std::vector<Pattern>& patterns,
                      const std::vector<int>& key_attrs,
                      const std::vector<bool>& key_by_tostring);
  // Code-keyed variant (used when every pattern carries dictionary
  // codes): buckets by per-attribute equality classes of the codes —
  // the raw code for discrete attributes, the code's ToString
  // rendering class for edit attributes — which partitions patterns
  // exactly like the value keys, in the same first-appearance order.
  void BuildExactJoinCoded(const std::vector<Pattern>& patterns,
                           const std::vector<int>& key_attrs,
                           const std::vector<bool>& key_by_tostring);
  void BuildGramJoin(const std::vector<Pattern>& patterns);
  bool SecondaryPrune(int i, int j) const;
  // Charges `bytes` of index structure against memory_ (when set),
  // recording exhaustion in memory_exhausted_.
  void ChargeIndexBytes(uint64_t bytes);

  int n_ = 0;
  int num_key_attrs_ = 0;
  int gram_primary_ = -1;
  const MemoryBudget* memory_ = nullptr;  // not owned; from FTOptions
  bool memory_exhausted_ = false;

  // Exact join: pattern -> bucket, buckets hold ascending member ids.
  std::vector<int> bucket_of_;
  std::vector<int> rank_in_bucket_;
  std::vector<std::vector<int>> exact_buckets_;

  // Gram join: anchor data per pattern + length buckets + null bucket.
  AttrFilter primary_;
  std::vector<int> null_ids_;
  std::vector<LenBucket> len_buckets_;

  // Per-pair secondary filters (gram join and tau > 0 exact join).
  std::vector<AttrFilter> secondary_;
};

/// Appends to `out`, in ascending order, every index r in [0, n) with
/// counts[r] >= threshold. Dispatches at runtime to the widest vector
/// path the CPU supports (AVX2 / SSE4.2 on x86-64, NEON on AArch64,
/// scalar otherwise). Bit-identical to ScreenSharedCountsScalar on
/// every input: the predicate is the same unsigned 32-bit compare,
/// lane width only changes how many elements one instruction tests.
void ScreenSharedCounts(const uint32_t* counts, int n, uint32_t threshold,
                        std::vector<int>* out);

/// Scalar reference implementation (differential tests and fallback).
void ScreenSharedCountsScalar(const uint32_t* counts, int n,
                              uint32_t threshold, std::vector<int>* out);

/// The path ScreenSharedCounts dispatches to on this machine:
/// "avx2", "sse4.2", "neon", or "scalar".
const char* SimdScreenPathName();

}  // namespace ftrepair

#endif  // FTREPAIR_DETECT_BLOCK_INDEX_H_
