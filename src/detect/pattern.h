#ifndef FTREPAIR_DETECT_PATTERN_H_
#define FTREPAIR_DETECT_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraint/fd.h"
#include "data/table.h"

namespace ftrepair {

/// \brief A distinct projection `t^phi` (or `t^Sigma`) together with the
/// rows carrying it — §3 "Tuple grouping".
///
/// Grouping is an exact transformation: rows with identical projections
/// have identical neighborhoods, so all algorithms operate on patterns
/// and weight edges by multiplicity.
struct Pattern {
  /// Projected values, one per projection column (in projection order).
  std::vector<Value> values;
  /// Dictionary codes of `values` in the source table's per-column
  /// dictionaries (same layout as `values`). Filled by the table-backed
  /// builders below; empty on hand-assembled patterns. Codes from the
  /// same table compare like values: equal code == equal value.
  std::vector<uint32_t> codes;
  /// Ids of the table rows carrying this projection.
  std::vector<int> rows;

  /// Multiplicity m of the grouped vertex.
  int count() const { return static_cast<int>(rows.size()); }

  /// True when `codes` mirrors `values` (the columnar fast paths key
  /// on it; value-based paths stay available either way).
  bool has_codes() const { return codes.size() == values.size(); }

  /// Debug rendering "(v1, v2, ...) x count".
  std::string ToString() const;
};

/// Groups all rows of `table` by their projection onto `cols`.
/// Patterns are ordered by first row occurrence (deterministic).
/// `use_codes` as in BuildPatternsForRows.
std::vector<Pattern> BuildPatterns(const Table& table,
                                   const std::vector<int>& cols,
                                   bool use_codes = true);

/// Same, restricted to `row_ids` (used by CFD scopes).
///
/// `use_codes` selects the grouping key: the table's dictionary codes
/// (default — one radix-style integer compare per row) or the
/// materialized value vectors (the historical path, kept for the
/// columnar<->row differential suites). Interning maps equal values to
/// equal codes and distinct values to distinct codes, so both keys
/// induce the same partition and the same first-occurrence order: the
/// returned patterns are identical, except that the value path leaves
/// `codes` empty.
std::vector<Pattern> BuildPatternsForRows(const Table& table,
                                          const std::vector<int>& cols,
                                          const std::vector<int>& row_ids,
                                          bool use_codes = true);

/// Hash key for a projection value vector (boost-style mix-then-combine
/// of the element hashes; see common/hash.h for why a plain XOR fold is
/// not enough).
struct ProjectionHash {
  size_t operator()(const std::vector<Value>& v) const;
};

/// Hash key for a projection code vector.
struct CodeVectorHash {
  size_t operator()(const std::vector<uint32_t>& v) const;
};

}  // namespace ftrepair

#endif  // FTREPAIR_DETECT_PATTERN_H_
