#ifndef FTREPAIR_DETECT_PATTERN_H_
#define FTREPAIR_DETECT_PATTERN_H_

#include <string>
#include <vector>

#include "constraint/fd.h"
#include "data/table.h"

namespace ftrepair {

/// \brief A distinct projection `t^phi` (or `t^Sigma`) together with the
/// rows carrying it — §3 "Tuple grouping".
///
/// Grouping is an exact transformation: rows with identical projections
/// have identical neighborhoods, so all algorithms operate on patterns
/// and weight edges by multiplicity.
struct Pattern {
  /// Projected values, one per projection column (in projection order).
  std::vector<Value> values;
  /// Ids of the table rows carrying this projection.
  std::vector<int> rows;

  /// Multiplicity m of the grouped vertex.
  int count() const { return static_cast<int>(rows.size()); }

  /// Debug rendering "(v1, v2, ...) x count".
  std::string ToString() const;
};

/// Groups all rows of `table` by their projection onto `cols`.
/// Patterns are ordered by first row occurrence (deterministic).
std::vector<Pattern> BuildPatterns(const Table& table,
                                   const std::vector<int>& cols);

/// Same, restricted to `row_ids` (used by CFD scopes).
std::vector<Pattern> BuildPatternsForRows(const Table& table,
                                          const std::vector<int>& cols,
                                          const std::vector<int>& row_ids);

/// Hash key for a projection value vector.
struct ProjectionHash {
  size_t operator()(const std::vector<Value>& v) const;
};

}  // namespace ftrepair

#endif  // FTREPAIR_DETECT_PATTERN_H_
