#include "detect/pattern.h"

#include <unordered_map>

#include "common/hash.h"

namespace ftrepair {

std::string Pattern::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToString();
  }
  out += ") x" + std::to_string(count());
  return out;
}

size_t ProjectionHash::operator()(const std::vector<Value>& v) const {
  size_t h = 14695981039346656037ULL;
  for (const Value& val : v) h = HashCombine(h, val.Hash());
  return h;
}

size_t CodeVectorHash::operator()(const std::vector<uint32_t>& v) const {
  size_t h = 14695981039346656037ULL;
  for (uint32_t code : v) h = HashCombine(h, code);
  return h;
}

std::vector<Pattern> BuildPatterns(const Table& table,
                                   const std::vector<int>& cols,
                                   bool use_codes) {
  std::vector<int> all_rows(static_cast<size_t>(table.num_rows()));
  for (int i = 0; i < table.num_rows(); ++i) {
    all_rows[static_cast<size_t>(i)] = i;
  }
  return BuildPatternsForRows(table, cols, all_rows, use_codes);
}

namespace {

std::vector<Pattern> BuildByValues(const Table& table,
                                   const std::vector<int>& cols,
                                   const std::vector<int>& row_ids) {
  std::vector<Pattern> patterns;
  std::unordered_map<std::vector<Value>, int, ProjectionHash> index;
  for (int r : row_ids) {
    std::vector<Value> proj;
    proj.reserve(cols.size());
    for (int c : cols) proj.push_back(table.cell(r, c));
    auto it = index.find(proj);
    if (it == index.end()) {
      int id = static_cast<int>(patterns.size());
      index.emplace(proj, id);
      patterns.push_back(Pattern{std::move(proj), {}, {r}});
    } else {
      patterns[static_cast<size_t>(it->second)].rows.push_back(r);
    }
  }
  return patterns;
}

std::vector<Pattern> BuildByCodes(const Table& table,
                                  const std::vector<int>& cols,
                                  const std::vector<int>& row_ids) {
  std::vector<Pattern> patterns;
  std::unordered_map<std::vector<uint32_t>, int, CodeVectorHash> index;
  std::vector<uint32_t> proj;
  for (int r : row_ids) {
    proj.clear();
    proj.reserve(cols.size());
    for (int c : cols) proj.push_back(table.code(r, c));
    auto it = index.find(proj);
    if (it == index.end()) {
      int id = static_cast<int>(patterns.size());
      index.emplace(proj, id);
      Pattern p;
      p.codes = proj;
      p.values.reserve(cols.size());
      for (size_t k = 0; k < cols.size(); ++k) {
        p.values.push_back(table.dictionary(cols[k]).value(proj[k]));
      }
      p.rows.push_back(r);
      patterns.push_back(std::move(p));
    } else {
      patterns[static_cast<size_t>(it->second)].rows.push_back(r);
    }
  }
  return patterns;
}

}  // namespace

std::vector<Pattern> BuildPatternsForRows(const Table& table,
                                          const std::vector<int>& cols,
                                          const std::vector<int>& row_ids,
                                          bool use_codes) {
  // Same partition either way: per column, interning is a bijection
  // between referenced values and codes, so two rows share a code
  // vector iff they share a value vector. First-occurrence order and
  // per-pattern row lists follow from the shared row scan.
  return use_codes ? BuildByCodes(table, cols, row_ids)
                   : BuildByValues(table, cols, row_ids);
}

}  // namespace ftrepair
