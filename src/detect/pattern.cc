#include "detect/pattern.h"

#include <unordered_map>

namespace ftrepair {

std::string Pattern::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToString();
  }
  out += ") x" + std::to_string(count());
  return out;
}

size_t ProjectionHash::operator()(const std::vector<Value>& v) const {
  size_t h = 14695981039346656037ULL;
  for (const Value& val : v) {
    h ^= val.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<Pattern> BuildPatterns(const Table& table,
                                   const std::vector<int>& cols) {
  std::vector<int> all_rows(static_cast<size_t>(table.num_rows()));
  for (int i = 0; i < table.num_rows(); ++i) {
    all_rows[static_cast<size_t>(i)] = i;
  }
  return BuildPatternsForRows(table, cols, all_rows);
}

std::vector<Pattern> BuildPatternsForRows(const Table& table,
                                          const std::vector<int>& cols,
                                          const std::vector<int>& row_ids) {
  std::vector<Pattern> patterns;
  std::unordered_map<std::vector<Value>, int, ProjectionHash> index;
  for (int r : row_ids) {
    std::vector<Value> proj;
    proj.reserve(cols.size());
    for (int c : cols) proj.push_back(table.cell(r, c));
    auto it = index.find(proj);
    if (it == index.end()) {
      int id = static_cast<int>(patterns.size());
      index.emplace(proj, id);
      patterns.push_back(Pattern{std::move(proj), {r}});
    } else {
      patterns[static_cast<size_t>(it->second)].rows.push_back(r);
    }
  }
  return patterns;
}

}  // namespace ftrepair
