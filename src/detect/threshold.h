#ifndef FTREPAIR_DETECT_THRESHOLD_H_
#define FTREPAIR_DETECT_THRESHOLD_H_

#include "constraint/fd.h"
#include "data/table.h"
#include "metric/projection.h"

namespace ftrepair {

/// Controls for the automatic tau selection heuristic.
struct ThresholdOptions {
  double w_l = 0.5;
  double w_r = 0.5;
  /// At most this many pattern pairs are measured (deterministic
  /// stride subsampling beyond that).
  size_t max_pairs = 2'000'000;
  /// Distances above this are ignored when looking for the gap — pairs
  /// that dissimilar are never violation candidates.
  double ceiling = 1.0;
  /// Fallback when fewer than two distinct distances are observed.
  double fallback = 0.2;
};

/// \brief Suggests a fault-tolerance threshold tau for `fd` (§2.1).
///
/// Implements the paper's heuristic: compute the projection distance of
/// tuple (pattern) pairs, sort ascending, and find where the difference
/// between adjacent values "suddenly becomes large"; tau is the smaller
/// value at that largest gap. Callers wanting precision over recall can
/// conservatively decrease the returned value.
double SuggestThreshold(const Table& table, const FD& fd,
                        const DistanceModel& model,
                        const ThresholdOptions& opts = {});

}  // namespace ftrepair

#endif  // FTREPAIR_DETECT_THRESHOLD_H_
