#include "discovery/fd_discovery.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "detect/pattern.h"

namespace ftrepair {

namespace {

// Partition of the rows by their projection onto `cols`.
std::vector<std::vector<int>> PartitionBy(const Table& table,
                                          const std::vector<int>& cols) {
  std::vector<std::vector<int>> classes;
  for (Pattern& p : BuildPatterns(table, cols)) {
    classes.push_back(std::move(p.rows));
  }
  return classes;
}

// g3 error of lhs -> rhs_col given the LHS partition: one minus the
// fraction of rows kept when every LHS class retains only its most
// frequent RHS value.
double G3FromPartition(const Table& table,
                       const std::vector<std::vector<int>>& lhs_classes,
                       int rhs_col) {
  int kept = 0;
  std::unordered_map<Value, int, ValueHash> counts;
  for (const std::vector<int>& cls : lhs_classes) {
    if (cls.size() == 1) {
      ++kept;  // singleton classes are trivially consistent
      continue;
    }
    counts.clear();
    int best = 0;
    for (int row : cls) {
      int c = ++counts[table.cell(row, rhs_col)];
      best = std::max(best, c);
    }
    kept += best;
  }
  if (table.num_rows() == 0) return 0;
  return 1.0 - static_cast<double>(kept) /
                   static_cast<double>(table.num_rows());
}

// True iff some accepted LHS for this RHS is a subset of `candidate`.
bool HasMinimalSubset(const std::vector<std::vector<int>>& accepted,
                      const std::vector<int>& candidate) {
  for (const std::vector<int>& lhs : accepted) {
    bool subset = true;
    for (int c : lhs) {
      if (!std::binary_search(candidate.begin(), candidate.end(), c)) {
        subset = false;
        break;
      }
    }
    if (subset) return true;
  }
  return false;
}

// All sorted column subsets of size `k` from `columns`.
void Subsets(const std::vector<int>& columns, int k,
             std::vector<std::vector<int>>* out) {
  std::vector<int> current;
  std::vector<size_t> stack;
  // Iterative k-combinations.
  std::vector<size_t> idx(static_cast<size_t>(k));
  (void)stack;
  if (k > static_cast<int>(columns.size())) return;
  for (int i = 0; i < k; ++i) idx[static_cast<size_t>(i)] = static_cast<size_t>(i);
  while (true) {
    std::vector<int> subset;
    subset.reserve(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) subset.push_back(columns[idx[static_cast<size_t>(i)]]);
    out->push_back(std::move(subset));
    int i = k - 1;
    while (i >= 0 &&
           idx[static_cast<size_t>(i)] ==
               columns.size() - static_cast<size_t>(k - i)) {
      --i;
    }
    if (i < 0) break;
    ++idx[static_cast<size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      idx[static_cast<size_t>(j)] = idx[static_cast<size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace

double G3Error(const Table& table, const FD& fd) {
  std::vector<std::vector<int>> classes = PartitionBy(table, fd.lhs());
  // Multi-attribute RHS: treat the RHS projection as one value by
  // partitioning each class by the full RHS.
  if (fd.rhs_size() == 1) {
    return G3FromPartition(table, classes, fd.rhs()[0]);
  }
  int kept = 0;
  for (const std::vector<int>& cls : classes) {
    std::vector<Pattern> sub = BuildPatternsForRows(table, fd.rhs(), cls);
    int best = 0;
    for (const Pattern& p : sub) best = std::max(best, p.count());
    kept += best;
  }
  if (table.num_rows() == 0) return 0;
  return 1.0 - static_cast<double>(kept) /
                   static_cast<double>(table.num_rows());
}

Result<std::vector<DiscoveredFD>> DiscoverFDs(const Table& table,
                                              const DiscoveryOptions& options) {
  if (options.max_lhs_size < 1) {
    return Status::InvalidArgument("max_lhs_size must be >= 1");
  }
  if (options.max_g3_error < 0 || options.max_g3_error >= 1) {
    return Status::InvalidArgument("max_g3_error must be in [0, 1)");
  }
  std::unordered_set<int> excluded(options.excluded_columns.begin(),
                                   options.excluded_columns.end());
  for (int c : options.excluded_columns) {
    if (c < 0 || c >= table.num_columns()) {
      return Status::InvalidArgument("excluded column out of range");
    }
  }
  std::vector<int> columns;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (!excluded.count(c)) columns.push_back(c);
  }

  std::vector<DiscoveredFD> discovered;
  // accepted[rhs] = minimal LHS sets already emitted for that RHS.
  std::unordered_map<int, std::vector<std::vector<int>>> accepted;
  int rows = table.num_rows();
  int name_counter = 0;

  for (int level = 1; level <= options.max_lhs_size; ++level) {
    std::vector<std::vector<int>> lhs_sets;
    Subsets(columns, level, &lhs_sets);
    for (const std::vector<int>& lhs : lhs_sets) {
      std::vector<std::vector<int>> classes = PartitionBy(table, lhs);
      double distinct_ratio =
          rows == 0 ? 0
                    : static_cast<double>(classes.size()) /
                          static_cast<double>(rows);
      if (distinct_ratio > options.max_lhs_distinct_ratio) continue;
      for (int rhs : columns) {
        if (std::binary_search(lhs.begin(), lhs.end(), rhs)) continue;
        if (HasMinimalSubset(accepted[rhs], lhs)) continue;  // minimality
        double g3 = G3FromPartition(table, classes, rhs);
        if (g3 > options.max_g3_error) continue;
        auto fd = FD::Make(lhs, {rhs}, "d" + std::to_string(++name_counter));
        if (!fd.ok()) return fd.status();
        accepted[rhs].push_back(lhs);
        discovered.push_back(DiscoveredFD{std::move(fd).value(), g3,
                                          distinct_ratio});
      }
    }
  }
  return discovered;
}

}  // namespace ftrepair
