#ifndef FTREPAIR_DISCOVERY_FD_DISCOVERY_H_
#define FTREPAIR_DISCOVERY_FD_DISCOVERY_H_

#include <vector>

#include "common/status.h"
#include "constraint/fd.h"
#include "data/table.h"

namespace ftrepair {

/// Controls for FD discovery.
struct DiscoveryOptions {
  /// Maximum LHS arity explored (levelwise lattice; cost grows
  /// combinatorially with this).
  int max_lhs_size = 2;
  /// Maximum tolerated g3 error: the fraction of tuples that must be
  /// removed for the FD to hold exactly. 0 discovers exact FDs only;
  /// a small positive value (e.g. 0.05) finds FDs that hold on dirty
  /// data up to noise ("approximate FDs", Kivinen & Mannila g3).
  double max_g3_error = 0.0;
  /// Skip candidate LHS column sets whose distinct-value count exceeds
  /// this fraction of the rows (near-keys determine everything and make
  /// useless repair constraints).
  double max_lhs_distinct_ratio = 0.9;
  /// Columns to exclude entirely (free-text ids, measures, ...).
  std::vector<int> excluded_columns;
};

/// A discovered dependency with its quality measures.
struct DiscoveredFD {
  FD fd;
  /// g3 error on the input: min fraction of rows to delete for exact
  /// satisfaction.
  double g3_error = 0;
  /// Distinct LHS projections / rows — low support means near-key LHS.
  double lhs_distinct_ratio = 0;
};

/// \brief Discovers minimal functional dependencies of `table` with a
/// levelwise (TANE-style) search over stripped partitions.
///
/// A candidate X -> A is emitted when its g3 error is within
/// `options.max_g3_error` and no proper subset of X already determines
/// A within the same tolerance (minimality). Discovered FDs are named
/// "d1", "d2", ... in lattice order. The intended workflow is
/// discovery on (mostly clean or lightly dirty) data followed by
/// fault-tolerant repair with the returned constraints — see
/// examples/discover_and_repair.cpp.
Result<std::vector<DiscoveredFD>> DiscoverFDs(
    const Table& table, const DiscoveryOptions& options = {});

/// g3 error of X -> Y on `table`: 1 - (sum over X-classes of the
/// largest Y-subclass) / rows. 0 iff the FD holds exactly.
double G3Error(const Table& table, const FD& fd);

}  // namespace ftrepair

#endif  // FTREPAIR_DISCOVERY_FD_DISCOVERY_H_
