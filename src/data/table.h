#ifndef FTREPAIR_DATA_TABLE_H_
#define FTREPAIR_DATA_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dictionary.h"
#include "data/schema.h"
#include "data/value.h"

namespace ftrepair {

/// A row is an ordered vector of cells matching the table schema.
using Row = std::vector<Value>;

/// \brief In-memory columnar relation instance.
///
/// Storage is dictionary-encoded: each column holds one
/// ColumnDictionary interning its distinct Values plus a dense
/// uint32_t code per row (null = code 0). The row-oriented accessors
/// (cell / row / AppendRow) are a compatibility facade over that
/// layout, so existing consumers keep working, while the hot detect
/// paths (pattern grouping, bucket joins, distance memoization)
/// operate on the code vectors directly via column_codes() /
/// dictionary().
///
/// `cell()` returns a reference into the column dictionary; it stays
/// valid for the Table's lifetime (dictionaries never shrink and their
/// storage is reference-stable), including across AppendRow/SetCell.
/// The repair algorithms read tables and produce modified copies; a
/// Table never aliases another Table's storage.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {
    dicts_.resize(static_cast<size_t>(schema_.num_columns()));
    codes_.resize(static_cast<size_t>(schema_.num_columns()));
  }

  const Schema& schema() const { return schema_; }
  int num_rows() const { return num_rows_; }
  int num_columns() const { return schema_.num_columns(); }

  /// Appends a row; errors if the arity does not match the schema.
  Status AppendRow(Row row);

  /// Materializes row `i` as a value vector (by value: the cells live
  /// dictionary-encoded, there is no stored Row to reference).
  Row row(int i) const;

  const Value& cell(int row, int col) const {
    return dicts_[static_cast<size_t>(col)].value(
        codes_[static_cast<size_t>(col)][static_cast<size_t>(row)]);
  }

  /// Overwrites one cell (used when applying repairs). Takes the value
  /// by copy on purpose: the argument may alias a dictionary entry of
  /// this very table (e.g. `t.SetCell(r, c, t.cell(r2, c))`).
  void SetCell(int row, int col, Value v) {
    codes_[static_cast<size_t>(col)][static_cast<size_t>(row)] =
        dicts_[static_cast<size_t>(col)].Intern(std::move(v));
  }

  /// Dictionary code of a cell (null = ColumnDictionary::kNullCode).
  uint32_t code(int row, int col) const {
    return codes_[static_cast<size_t>(col)][static_cast<size_t>(row)];
  }
  /// The per-row code vector of `col` (the columnar hot path).
  const std::vector<uint32_t>& column_codes(int col) const {
    return codes_[static_cast<size_t>(col)];
  }
  /// The interning dictionary of `col`.
  const ColumnDictionary& dictionary(int col) const {
    return dicts_[static_cast<size_t>(col)];
  }

  /// Assembles a table directly from columnar parts (the streaming CSV
  /// reader materializes fields straight into dictionary codes and
  /// hands them over here without re-interning). Validates arity,
  /// uniform code-vector length and code range.
  static Result<Table> FromColumns(Schema schema,
                                   std::vector<ColumnDictionary> dicts,
                                   std::vector<std::vector<uint32_t>> codes);

  /// Distinct non-null values of column `col` (the *active domain*,
  /// §2.2 close-world model), in deterministic order.
  std::vector<Value> ActiveDomain(int col) const;

  /// Min/max over numeric cells of `col`; false if the column holds no
  /// numbers. Used to normalize Euclidean distances.
  bool NumericRange(int col, double* min_out, double* max_out) const;

  /// Returns a copy restricted to the first `n` rows (n >= num_rows()
  /// returns a full copy). Used by the experiment harness to sweep N.
  Table Head(int n) const;

 private:
  /// Marks which dictionary codes of `col` are referenced by some row.
  /// SetCell can strand dictionary entries (the old value's code may no
  /// longer appear in the code vector), so domain/range scans must walk
  /// the codes actually in use, never the raw dictionary.
  std::vector<char> UsedCodes(int col) const;

  Schema schema_;
  std::vector<ColumnDictionary> dicts_;
  std::vector<std::vector<uint32_t>> codes_;  // [col][row]
  int num_rows_ = 0;
};

}  // namespace ftrepair

#endif  // FTREPAIR_DATA_TABLE_H_
