#ifndef FTREPAIR_DATA_TABLE_H_
#define FTREPAIR_DATA_TABLE_H_

#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace ftrepair {

/// A row is an ordered vector of cells matching the table schema.
using Row = std::vector<Value>;

/// \brief In-memory row-oriented relation instance.
///
/// The repair algorithms read tables and produce modified copies; a
/// Table never aliases another Table's storage.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_columns() const { return schema_.num_columns(); }

  /// Appends a row; errors if the arity does not match the schema.
  Status AppendRow(Row row);

  const Row& row(int i) const { return rows_[static_cast<size_t>(i)]; }
  const Value& cell(int row, int col) const {
    return rows_[static_cast<size_t>(row)][static_cast<size_t>(col)];
  }
  /// Mutable cell access (used when applying repairs).
  Value* mutable_cell(int row, int col) {
    return &rows_[static_cast<size_t>(row)][static_cast<size_t>(col)];
  }

  const std::vector<Row>& rows() const { return rows_; }

  /// Distinct non-null values of column `col` (the *active domain*,
  /// §2.2 close-world model), in deterministic order.
  std::vector<Value> ActiveDomain(int col) const;

  /// Min/max over numeric cells of `col`; false if the column holds no
  /// numbers. Used to normalize Euclidean distances.
  bool NumericRange(int col, double* min_out, double* max_out) const;

  /// Returns a copy restricted to the first `n` rows (n >= num_rows()
  /// returns a full copy). Used by the experiment harness to sweep N.
  Table Head(int n) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace ftrepair

#endif  // FTREPAIR_DATA_TABLE_H_
