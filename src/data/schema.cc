#include "data/schema.h"

namespace ftrepair {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    index_.emplace(columns_[i].name, static_cast<int>(i));
  }
}

int Schema::IndexOf(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? -1 : it->second;
}

Result<int> Schema::RequireIndex(std::string_view name) const {
  int idx = IndexOf(name);
  if (idx < 0) {
    return Status::NotFound("no column named '" + std::string(name) + "'");
  }
  return idx;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.columns_.size() != b.columns_.size()) return false;
  for (size_t i = 0; i < a.columns_.size(); ++i) {
    if (a.columns_[i].name != b.columns_[i].name ||
        a.columns_[i].type != b.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace ftrepair
