#include "data/value.h"

#include <cstring>
#include <functional>

#include "common/strings.h"

namespace ftrepair {

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "";
    case ValueType::kString:
      return string_;
    case ValueType::kNumber:
      return FormatDouble(number_);
  }
  return "";
}

Value Value::Parse(std::string_view text, ValueType hint) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) return Value();
  if (hint == ValueType::kNumber) {
    double d = 0;
    if (ParseDouble(trimmed, &d)) return Value(d);
    // Typos may corrupt numeric cells into non-numeric text; keep them
    // as strings so distances still treat them as maximally dirty.
    return Value(std::string(trimmed));
  }
  return Value(std::string(trimmed));
}

size_t Value::Hash() const {
  size_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  unsigned char t = static_cast<unsigned char>(type_);
  mix(&t, 1);
  switch (type_) {
    case ValueType::kNull:
      break;
    case ValueType::kString:
      mix(string_.data(), string_.size());
      break;
    case ValueType::kNumber: {
      double d = number_;
      mix(&d, sizeof(d));
      break;
    }
  }
  return h;
}

}  // namespace ftrepair
