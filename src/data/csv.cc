#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/timer.h"
#include "common/trace.h"
#include "data/dictionary.h"

namespace ftrepair {

namespace {

// Fault seam: FTREPAIR_FAULT_CSV_BAD_ROW=N forces 0-based data row N
// to be treated as malformed (tests drive every policy through it).
// Read per call so tests can setenv/unsetenv between cases. Malformed
// values (fractions, signs, overflow) warn once and disarm the seam.
long FaultRowFromEnv() {
  uint64_t value = 0;
  if (!EnvU64("FTREPAIR_FAULT_CSV_BAD_ROW",
              "a non-negative integer row index", &value)) {
    return -1;
  }
  if (value > static_cast<uint64_t>(std::numeric_limits<long>::max())) {
    WarnMalformedEnv("FTREPAIR_FAULT_CSV_BAD_ROW",
                     std::to_string(value).c_str(),
                     "a row index that fits in long");
    return -1;
  }
  return static_cast<long>(value);
}

// Fault seam: FTREPAIR_FAULT_CSV_IO_AFTER_BYTES=N simulates a device
// error after the file read has consumed N bytes (tests cover the
// silent-truncation path without needing a real failing device).
long long FaultIoBytesFromEnv() {
  uint64_t value = 0;
  if (!EnvU64("FTREPAIR_FAULT_CSV_IO_AFTER_BYTES",
              "a non-negative byte count", &value)) {
    return -1;
  }
  if (value >
      static_cast<uint64_t>(std::numeric_limits<long long>::max())) {
    WarnMalformedEnv("FTREPAIR_FAULT_CSV_IO_AFTER_BYTES",
                     std::to_string(value).c_str(),
                     "a byte count that fits in long long");
    return -1;
  }
  return static_cast<long long>(value);
}

void StripNuls(std::vector<std::string>* fields) {
  for (std::string& f : *fields) {
    f.erase(std::remove(f.begin(), f.end(), '\0'), f.end());
  }
}

// Distinct raw field strings of one column, in first-occurrence order.
// Kept rows store raw codes into this interner; the typed dictionary
// is derived once at the end of the stream.
struct RawColumn {
  std::unordered_map<std::string, uint32_t> index;
  std::vector<std::string> entries;
};

// Streaming CSV scanner + policy layer. Feed() consumes input in
// arbitrary chunk splits (quote state, CR-LF lookahead, and the
// pending ""-escape carry across boundaries); Finish() applies the
// end-of-stream error precedence and materializes the table.
//
// Error precedence replicates the historical whole-text reader: a
// memory failure surfaces first (it used to fail on the up-front text
// charge), then missing header, then strict unterminated-quote, then
// header NUL, then header-only unterminated, then the first bad data
// row (strict). After the first fatal condition the scanner keeps
// consuming input structurally (to learn whether the text ends inside
// a quote) but stops buffering and interning ("drain" mode).
class CsvStreamReader {
 public:
  CsvStreamReader(const CsvOptions& options, CsvReadReport* report)
      : options_(options),
        report_(report),
        strict_(options.bad_rows == BadRowPolicy::kStrict),
        fault_row_(FaultRowFromEnv()) {}

  void Feed(std::string_view chunk) {
    for (char c : chunk) Consume(c);
  }

  Result<Table> Finish() {
    if (pending_quote_) {
      // EOF right after a quote inside a quoted field: closing quote.
      pending_quote_ = false;
      in_quotes_ = false;
    }
    bool unterminated = in_quotes_;
    if (in_quotes_ || field_started_ || !field_.empty() ||
        !current_.empty()) {
      EndRecord(unterminated);
    }
    if (!memory_error_.ok()) return memory_error_;
    if (!have_header_) {
      return Status::IOError("CSV input has no header row");
    }
    if (strict_ && unterminated) {
      return Status::IOError("unterminated quoted CSV field");
    }
    if (!header_nul_error_.ok()) return header_nul_error_;
    if (unterminated && data_records_ == 0) {
      return Status::IOError("unterminated quoted CSV field");
    }
    if (!first_row_error_.ok()) return first_row_error_;
    return BuildTable();
  }

 private:
  void Consume(char c) {
    if (pending_quote_) {
      pending_quote_ = false;
      if (c == '"') {
        if (!drain_) field_ += '"';
        return;
      }
      in_quotes_ = false;  // the pending quote closed the field
      // fall through: process c outside quotes
    }
    if (pending_cr_) {
      pending_cr_ = false;
      if (c == '\n') return;  // CRLF: the '\r' already ended the record
    }
    if (c == '\0') record_has_nul_ = true;
    if (in_quotes_) {
      if (c == '"') {
        pending_quote_ = true;  // escape or closing — next char decides
      } else if (!drain_) {
        field_ += c;
      }
      return;
    }
    if (c == '"' && !field_started_ && field_.empty()) {
      in_quotes_ = true;
      field_started_ = true;
    } else if (c == ',') {
      EndField();
    } else if (c == '\r') {
      // Bare '\r' terminates a record (classic Mac line endings); a
      // following '\n' (CRLF) is folded into the same terminator.
      EndRecord(false);
      pending_cr_ = true;
    } else if (c == '\n') {
      EndRecord(false);
    } else {
      if (!drain_) field_ += c;
      field_started_ = true;
    }
  }

  void EndField() {
    current_.push_back(std::move(field_));
    field_.clear();
    field_started_ = false;
  }

  void EndRecord(bool unterminated) {
    if (current_.empty() && field_.empty() && !field_started_) {
      // Fully blank record (empty line): a separator, not a data row.
      // Skipped in every policy; does not consume a data-row index.
      record_has_nul_ = false;
      return;
    }
    EndField();
    std::vector<std::string> record = std::move(current_);
    current_.clear();
    bool has_nul = record_has_nul_;
    record_has_nul_ = false;
    if (drain_) return;  // structure-only: a fatal error is already set
    if (!have_header_) {
      AcceptHeader(std::move(record), has_nul);
    } else {
      AcceptDataRecord(std::move(record), has_nul, unterminated);
    }
  }

  void AcceptHeader(std::vector<std::string> record, bool has_nul) {
    have_header_ = true;
    if (has_nul) {
      // The header must be sound in every policy: without a
      // trustworthy width and column names, per-row salvage has
      // nothing to salvage toward. kPadRagged strips the NULs instead.
      if (options_.bad_rows != BadRowPolicy::kPadRagged) {
        header_nul_error_ = Status::IOError("CSV header contains NUL bytes");
        drain_ = true;
        return;
      }
      StripNuls(&record);
    }
    header_ = std::move(record);
    raw_.resize(header_.size());
    raw_codes_.resize(header_.size());
  }

  void AcceptDataRecord(std::vector<std::string> record, bool has_nul,
                        bool unterminated) {
    size_t data_row = data_records_++;
    size_t width = header_.size();
    std::vector<RowError> row_errors;
    if (record.size() != width) {
      row_errors.push_back(RowError{
          data_row, RowErrorKind::kRagged,
          "CSV row " + std::to_string(data_row + 1) + " has " +
              std::to_string(record.size()) + " fields, expected " +
              std::to_string(width)});
    }
    if (has_nul) {
      row_errors.push_back(RowError{data_row, RowErrorKind::kEmbeddedNul,
                                    "CSV row " +
                                        std::to_string(data_row + 1) +
                                        " contains NUL bytes"});
    }
    if (unterminated) {
      row_errors.push_back(
          RowError{data_row, RowErrorKind::kUnterminatedQuote,
                   "unterminated quoted CSV field"});
    }
    if (fault_row_ >= 0 && data_row == static_cast<size_t>(fault_row_)) {
      row_errors.push_back(
          RowError{data_row, RowErrorKind::kInjectedFault,
                   "row forced bad by FTREPAIR_FAULT_CSV_BAD_ROW"});
    }
    if (row_errors.empty()) {
      ++report_->rows_kept;
      StoreRow(std::move(record));
      return;
    }
    if (strict_) {
      first_row_error_ = Status::IOError(row_errors.front().message);
      drain_ = true;
      return;
    }
    for (RowError& e : row_errors) report_->errors.push_back(std::move(e));
    if (options_.bad_rows == BadRowPolicy::kSkipBadRows) {
      ++report_->rows_dropped;
      return;
    }
    // kPadRagged: salvage in place — strip NULs, pad short rows with
    // empty fields, truncate long ones.
    StripNuls(&record);
    record.resize(width);
    ++report_->rows_padded;
    ++report_->rows_kept;
    StoreRow(std::move(record));
  }

  void StoreRow(std::vector<std::string> record) {
    size_t width = header_.size();
    if (!MemCharge(options_.memory, width * sizeof(uint32_t),
                   MemPhase::kIngest)) {
      OutOfMemory();
      return;
    }
    for (size_t c = 0; c < width; ++c) {
      RawColumn& col = raw_[c];
      auto it = col.index.find(record[c]);
      if (it == col.index.end()) {
        // New distinct value: the only point where cell text survives
        // the scan, so the only point that charges string bytes.
        if (!MemCharge(options_.memory,
                       sizeof(Value) + record[c].size(),
                       MemPhase::kIngest)) {
          OutOfMemory();
          return;
        }
        uint32_t code = static_cast<uint32_t>(col.entries.size());
        col.entries.push_back(record[c]);
        it = col.index.emplace(std::move(record[c]), code).first;
      }
      raw_codes_[c].push_back(it->second);
    }
    ++rows_stored_;
  }

  void OutOfMemory() {
    memory_error_ = options_.memory->Check("csv ingest");
    // Roll back this row's partial code pushes so every column stays
    // rows_stored_ long (the table build never runs, but keep the
    // invariant anyway).
    for (std::vector<uint32_t>& codes : raw_codes_) {
      if (codes.size() > rows_stored_) codes.resize(rows_stored_);
    }
    drain_ = true;
  }

  Result<Table> BuildTable() {
    size_t width = header_.size();
    // Infer per-column types over kept rows only (equivalently: over
    // each column's distinct entries): numeric iff every non-empty
    // cell parses.
    std::vector<Column> columns;
    columns.reserve(width);
    std::vector<std::vector<uint32_t>> remap(width);
    std::vector<ColumnDictionary> dicts(width);
    for (size_t c = 0; c < width; ++c) {
      bool any_value = false;
      bool numeric = true;
      for (const std::string& entry : raw_[c].entries) {
        std::string_view cell = Trim(entry);
        if (cell.empty()) continue;
        any_value = true;
        double d;
        if (!ParseDouble(cell, &d)) numeric = false;
      }
      ValueType type =
          (any_value && numeric) ? ValueType::kNumber : ValueType::kString;
      columns.push_back(Column{std::string(Trim(header_[c])), type});
      // Typed dictionary: raw entries intern in first-occurrence order,
      // which is exactly the order a row-by-row AppendRow scan would
      // have interned them, so the codes match the row path's. Distinct
      // raw spellings of one typed value ("1" / "1.0" / " 1") merge.
      remap[c].reserve(raw_[c].entries.size());
      for (const std::string& entry : raw_[c].entries) {
        remap[c].push_back(dicts[c].Intern(Value::Parse(entry, type)));
      }
    }
    std::vector<std::vector<uint32_t>> codes(width);
    for (size_t c = 0; c < width; ++c) {
      codes[c].reserve(raw_codes_[c].size());
      for (uint32_t raw : raw_codes_[c]) {
        codes[c].push_back(remap[c][raw]);
      }
    }
    return Table::FromColumns(Schema(std::move(columns)), std::move(dicts),
                              std::move(codes));
  }

  const CsvOptions& options_;
  CsvReadReport* report_;
  const bool strict_;
  const long fault_row_;

  // Scanner state (carried across Feed chunks).
  std::string field_;
  std::vector<std::string> current_;
  bool in_quotes_ = false;
  bool field_started_ = false;
  bool pending_cr_ = false;
  bool pending_quote_ = false;
  bool record_has_nul_ = false;

  // Policy state.
  bool have_header_ = false;
  bool drain_ = false;
  std::vector<std::string> header_;
  size_t data_records_ = 0;
  size_t rows_stored_ = 0;
  Status memory_error_ = Status::OK();
  Status header_nul_error_ = Status::OK();
  Status first_row_error_ = Status::OK();

  // Kept-row storage: per-column raw interner + per-column code runs.
  std::vector<RawColumn> raw_;
  std::vector<std::vector<uint32_t>> raw_codes_;
};

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void RecordIngestMetrics(const CsvReadReport& report, double millis) {
  static Counter* rows_read = Metrics().GetCounter("ftrepair.ingest.rows_read");
  static Counter* rows_dropped =
      Metrics().GetCounter("ftrepair.ingest.rows_dropped");
  static Counter* rows_padded =
      Metrics().GetCounter("ftrepair.ingest.rows_padded");
  static Histogram* read_ms =
      Metrics().GetHistogram("ftrepair.ingest.read_ms");
  rows_read->Increment(report.rows_kept);
  rows_dropped->Increment(report.rows_dropped);
  rows_padded->Increment(report.rows_padded);
  read_ms->Observe(millis);
}

}  // namespace

const char* RowErrorKindName(RowErrorKind kind) {
  switch (kind) {
    case RowErrorKind::kRagged:
      return "ragged";
    case RowErrorKind::kUnterminatedQuote:
      return "unterminated-quote";
    case RowErrorKind::kEmbeddedNul:
      return "embedded-nul";
    case RowErrorKind::kInjectedFault:
      return "injected-fault";
  }
  return "?";
}

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options,
                            CsvReadReport* report) {
  FTR_TRACE_SPAN("ingest.read_csv");
  Timer read_timer;
  CsvReadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = CsvReadReport{};

  CsvStreamReader reader(options, report);
  size_t chunk = options.chunk_bytes > 0 ? options.chunk_bytes : 1;
  // Feed zero-copy windows of the caller's text; chunking here only
  // exercises the boundary-carrying state machine.
  for (size_t off = 0; off < text.size(); off += chunk) {
    reader.Feed(
        std::string_view(text).substr(off, std::min(chunk, text.size() - off)));
  }
  Result<Table> result = reader.Finish();
  if (result.ok()) RecordIngestMetrics(*report, read_timer.Millis());
  return result;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options,
                          CsvReadReport* report) {
  FTR_TRACE_SPAN("ingest.read_csv");
  Timer read_timer;
  CsvReadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = CsvReadReport{};

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");

  size_t chunk = options.chunk_bytes > 0 ? options.chunk_bytes : 1;
  // The chunk buffer is the only allocation the file read adds on top
  // of the streaming parser; charge it once, release it when done.
  if (!MemCharge(options.memory, chunk, MemPhase::kIngest)) {
    return options.memory->Check("csv ingest");
  }
  std::vector<char> buf(chunk);
  CsvStreamReader reader(options, report);
  long long fault_after = FaultIoBytesFromEnv();
  long long total_read = 0;
  Status io_error = Status::OK();
  while (in) {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    std::streamsize got = in.gcount();
    if (got <= 0) break;
    total_read += got;
    if (fault_after >= 0 && total_read >= fault_after) {
      io_error = Status::IOError(
          "I/O error reading '" + path + "' (fault injected after " +
          std::to_string(total_read) + " bytes)");
      break;
    }
    reader.Feed(std::string_view(buf.data(), static_cast<size_t>(got)));
  }
  // A stream that stopped for any reason other than clean EOF read a
  // truncated prefix; parsing it as if it were the file would silently
  // drop the tail, so surface the I/O error instead.
  if (io_error.ok() && (in.bad() || (in.fail() && !in.eof()))) {
    io_error = Status::IOError("I/O error while reading '" + path + "'");
  }
  if (options.memory != nullptr) options.memory->Release(chunk);
  if (!io_error.ok()) return io_error;
  Result<Table> result = reader.Finish();
  if (result.ok()) RecordIngestMetrics(*report, read_timer.Millis());
  return result;
}

std::string WriteCsvString(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ',';
    out += QuoteField(schema.column(c).name);
  }
  out += '\n';
  for (int r = 0; r < table.num_rows(); ++r) {
    size_t line_start = out.size();
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out += ',';
      out += QuoteField(table.cell(r, c).ToString());
    }
    if (out.size() == line_start) {
      // A single null cell would serialize as an empty line, which
      // readers (ours included) treat as a blank separator, not a row.
      // Quote it so the record survives the round trip.
      out += "\"\"";
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << WriteCsvString(table);
  if (!out) return Status::IOError("short write to '" + path + "'");
  return Status::OK();
}

}  // namespace ftrepair
