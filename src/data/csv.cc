#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/env.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/timer.h"
#include "common/trace.h"

namespace ftrepair {

namespace {

// Raw record split: never fails; structural problems are reported as
// flags so the policy layer can decide what to do with each record.
struct RawRecords {
  std::vector<std::vector<std::string>> records;
  /// Per record: it contained at least one NUL byte.
  std::vector<bool> has_nul;
  /// The text ended inside a quoted field (affects the last record).
  bool unterminated = false;
};

// Splits CSV text into records of raw fields, honoring quotes.
RawRecords ParseRecords(const std::string& text) {
  RawRecords out;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool record_has_nul = false;
  size_t i = 0;
  auto end_field = [&]() {
    current.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    out.records.push_back(std::move(current));
    out.has_nul.push_back(record_has_nul);
    current.clear();
    record_has_nul = false;
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == '\0') record_has_nul = true;
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else {
      if (c == '"' && !field_started && field.empty()) {
        in_quotes = true;
        field_started = true;
        ++i;
      } else if (c == ',') {
        end_field();
        ++i;
      } else if (c == '\r') {
        ++i;  // tolerate CRLF
      } else if (c == '\n') {
        end_record();
        ++i;
      } else {
        field += c;
        field_started = true;
        ++i;
      }
    }
  }
  out.unterminated = in_quotes;
  if (in_quotes || field_started || !field.empty() || !current.empty()) {
    end_record();
  }
  return out;
}

// Fault seam: FTREPAIR_FAULT_CSV_BAD_ROW=N forces 0-based data row N
// to be treated as malformed (tests drive every policy through it).
// Read per call so tests can setenv/unsetenv between cases. Malformed
// values (fractions, signs, overflow) warn once and disarm the seam.
long FaultRowFromEnv() {
  uint64_t value = 0;
  if (!EnvU64("FTREPAIR_FAULT_CSV_BAD_ROW",
              "a non-negative integer row index", &value)) {
    return -1;
  }
  if (value > static_cast<uint64_t>(std::numeric_limits<long>::max())) {
    WarnMalformedEnv("FTREPAIR_FAULT_CSV_BAD_ROW",
                     std::to_string(value).c_str(),
                     "a row index that fits in long");
    return -1;
  }
  return static_cast<long>(value);
}

// Approximate resident footprint of one parsed data row: per-cell
// Value overhead plus the raw field bytes.
uint64_t ApproxRowBytes(const std::vector<std::string>& fields) {
  uint64_t bytes = 0;
  for (const std::string& f : fields) {
    bytes += sizeof(Value) + f.size();
  }
  return bytes;
}

void StripNuls(std::vector<std::string>* fields) {
  for (std::string& f : *fields) {
    f.erase(std::remove(f.begin(), f.end(), '\0'), f.end());
  }
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

const char* RowErrorKindName(RowErrorKind kind) {
  switch (kind) {
    case RowErrorKind::kRagged:
      return "ragged";
    case RowErrorKind::kUnterminatedQuote:
      return "unterminated-quote";
    case RowErrorKind::kEmbeddedNul:
      return "embedded-nul";
    case RowErrorKind::kInjectedFault:
      return "injected-fault";
  }
  return "?";
}

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options,
                            CsvReadReport* report) {
  FTR_TRACE_SPAN("ingest.read_csv");
  Timer read_timer;
  CsvReadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = CsvReadReport{};

  RawRecords raw = ParseRecords(text);
  if (options.memory != nullptr) {
    // The record split holds roughly one copy of the input text.
    FTR_RETURN_NOT_OK(
        options.memory->Charge(text.size(), "csv ingest", MemPhase::kIngest));
  }
  bool strict = options.bad_rows == BadRowPolicy::kStrict;
  if (raw.records.empty()) {
    return Status::IOError("CSV input has no header row");
  }
  if (strict && raw.unterminated) {
    return Status::IOError("unterminated quoted CSV field");
  }
  // The header must be sound in every policy: without a trustworthy
  // width and column names, per-row salvage has nothing to salvage
  // toward. (Exception: kPadRagged strips NULs from header names.)
  if (raw.has_nul[0]) {
    if (options.bad_rows != BadRowPolicy::kPadRagged) {
      return Status::IOError("CSV header contains NUL bytes");
    }
    StripNuls(&raw.records[0]);
  }
  if (raw.unterminated && raw.records.size() == 1) {
    return Status::IOError("unterminated quoted CSV field");
  }
  const std::vector<std::string>& header = raw.records[0];
  size_t width = header.size();
  long fault_row = FaultRowFromEnv();

  // Policy pass: decide keep / salvage / drop per data record.
  std::vector<bool> keep(raw.records.size(), true);
  for (size_t r = 1; r < raw.records.size(); ++r) {
    size_t data_row = r - 1;
    std::vector<RowError> row_errors;
    if (raw.records[r].size() != width) {
      row_errors.push_back(RowError{
          data_row, RowErrorKind::kRagged,
          "CSV row " + std::to_string(r) + " has " +
              std::to_string(raw.records[r].size()) + " fields, expected " +
              std::to_string(width)});
    }
    if (raw.has_nul[r]) {
      row_errors.push_back(RowError{data_row, RowErrorKind::kEmbeddedNul,
                                    "CSV row " + std::to_string(r) +
                                        " contains NUL bytes"});
    }
    if (raw.unterminated && r == raw.records.size() - 1) {
      row_errors.push_back(
          RowError{data_row, RowErrorKind::kUnterminatedQuote,
                   "unterminated quoted CSV field"});
    }
    if (fault_row >= 0 && data_row == static_cast<size_t>(fault_row)) {
      row_errors.push_back(RowError{
          data_row, RowErrorKind::kInjectedFault,
          "row forced bad by FTREPAIR_FAULT_CSV_BAD_ROW"});
    }
    if (row_errors.empty()) {
      ++report->rows_kept;
      continue;
    }
    if (strict) {
      return Status::IOError(row_errors.front().message);
    }
    for (RowError& e : row_errors) report->errors.push_back(std::move(e));
    if (options.bad_rows == BadRowPolicy::kSkipBadRows) {
      keep[r] = false;
      ++report->rows_dropped;
      continue;
    }
    // kPadRagged: salvage in place — strip NULs, pad short rows with
    // empty fields, truncate long ones.
    StripNuls(&raw.records[r]);
    raw.records[r].resize(width);
    ++report->rows_padded;
    ++report->rows_kept;
  }

  // Infer per-column types over *kept* rows only: numeric iff every
  // non-empty cell parses.
  std::vector<bool> numeric(width, true);
  std::vector<bool> any_value(width, false);
  for (size_t r = 1; r < raw.records.size(); ++r) {
    if (!keep[r]) continue;
    for (size_t c = 0; c < width; ++c) {
      std::string_view cell = Trim(raw.records[r][c]);
      if (cell.empty()) continue;
      any_value[c] = true;
      double d;
      if (!ParseDouble(cell, &d)) numeric[c] = false;
    }
  }

  std::vector<Column> columns;
  columns.reserve(width);
  for (size_t c = 0; c < width; ++c) {
    ValueType type = (any_value[c] && numeric[c]) ? ValueType::kNumber
                                                  : ValueType::kString;
    columns.push_back(Column{std::string(Trim(header[c])), type});
  }
  Table table{Schema(std::move(columns))};
  for (size_t r = 1; r < raw.records.size(); ++r) {
    if (!keep[r]) continue;
    if (!MemCharge(options.memory, ApproxRowBytes(raw.records[r]),
                   MemPhase::kIngest)) {
      return options.memory->Check("csv ingest");
    }
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      row.push_back(Value::Parse(raw.records[r][c], table.schema().column(
                                                    static_cast<int>(c)).type));
    }
    FTR_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  static Counter* rows_read = Metrics().GetCounter("ftrepair.ingest.rows_read");
  static Counter* rows_dropped =
      Metrics().GetCounter("ftrepair.ingest.rows_dropped");
  static Counter* rows_padded =
      Metrics().GetCounter("ftrepair.ingest.rows_padded");
  static Histogram* read_ms =
      Metrics().GetHistogram("ftrepair.ingest.read_ms");
  rows_read->Increment(report->rows_kept);
  rows_dropped->Increment(report->rows_dropped);
  rows_padded->Increment(report->rows_padded);
  read_ms->Observe(read_timer.Millis());
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options,
                          CsvReadReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options, report);
}

std::string WriteCsvString(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ',';
    out += QuoteField(schema.column(c).name);
  }
  out += '\n';
  for (int r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out += ',';
      out += QuoteField(table.cell(r, c).ToString());
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << WriteCsvString(table);
  if (!out) return Status::IOError("short write to '" + path + "'");
  return Status::OK();
}

}  // namespace ftrepair
