#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace ftrepair {

namespace {

// Splits CSV text into records of raw fields, honoring quotes.
Status ParseRecords(const std::string& text,
                    std::vector<std::vector<std::string>>* records) {
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&]() {
    current.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records->push_back(std::move(current));
    current.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else {
      if (c == '"' && !field_started && field.empty()) {
        in_quotes = true;
        field_started = true;
        ++i;
      } else if (c == ',') {
        end_field();
        ++i;
      } else if (c == '\r') {
        ++i;  // tolerate CRLF
      } else if (c == '\n') {
        end_record();
        ++i;
      } else {
        field += c;
        field_started = true;
        ++i;
      }
    }
  }
  if (in_quotes) return Status::IOError("unterminated quoted CSV field");
  if (field_started || !field.empty() || !current.empty()) end_record();
  return Status::OK();
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  FTR_RETURN_NOT_OK(ParseRecords(text, &records));
  if (records.empty()) return Status::IOError("CSV input has no header row");
  const std::vector<std::string>& header = records[0];
  size_t width = header.size();

  // Infer per-column types: numeric iff every non-empty cell parses.
  std::vector<bool> numeric(width, true);
  std::vector<bool> any_value(width, false);
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != width) {
      return Status::IOError("CSV row " + std::to_string(r) + " has " +
                             std::to_string(records[r].size()) +
                             " fields, expected " + std::to_string(width));
    }
    for (size_t c = 0; c < width; ++c) {
      std::string_view cell = Trim(records[r][c]);
      if (cell.empty()) continue;
      any_value[c] = true;
      double d;
      if (!ParseDouble(cell, &d)) numeric[c] = false;
    }
  }

  std::vector<Column> columns;
  columns.reserve(width);
  for (size_t c = 0; c < width; ++c) {
    ValueType type = (any_value[c] && numeric[c]) ? ValueType::kNumber
                                                  : ValueType::kString;
    columns.push_back(Column{std::string(Trim(header[c])), type});
  }
  Table table{Schema(std::move(columns))};
  for (size_t r = 1; r < records.size(); ++r) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      row.push_back(Value::Parse(records[r][c], table.schema().column(
                                                    static_cast<int>(c)).type));
    }
    FTR_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str());
}

std::string WriteCsvString(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ',';
    out += QuoteField(schema.column(c).name);
  }
  out += '\n';
  for (int r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out += ',';
      out += QuoteField(table.cell(r, c).ToString());
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << WriteCsvString(table);
  if (!out) return Status::IOError("short write to '" + path + "'");
  return Status::OK();
}

}  // namespace ftrepair
