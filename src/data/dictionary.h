#ifndef FTREPAIR_DATA_DICTIONARY_H_
#define FTREPAIR_DATA_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "data/value.h"

namespace ftrepair {

/// \brief Per-column dictionary interning distinct Values into dense
/// uint32_t codes.
///
/// Code 0 is reserved for null; distinct non-null values get codes
/// 1, 2, ... in first-intern order, so two tables built from the same
/// cell sequence assign identical codes (deterministic, stable).
/// Interning is a bijection between the interned value set and the
/// code range: equal Values (operator==) always map to the same code,
/// distinct Values to distinct codes — which is exactly why grouping
/// rows by code vectors partitions them identically to grouping by
/// value vectors.
///
/// Value storage is a deque, so `value(code)` references are stable
/// for the dictionary's lifetime even while later interns grow it.
class ColumnDictionary {
 public:
  static constexpr uint32_t kNullCode = 0;

  ColumnDictionary() { values_.emplace_back(); }  // slot 0 = null

  /// Returns the code of `v`, interning it first if unseen. Null maps
  /// to kNullCode without touching the index.
  uint32_t Intern(Value v) {
    if (v.is_null()) return kNullCode;
    auto it = index_.find(v);
    if (it != index_.end()) return it->second;
    uint32_t code = static_cast<uint32_t>(values_.size());
    values_.push_back(std::move(v));
    index_.emplace(values_.back(), code);
    return code;
  }

  /// The value a code decodes to; reference stable across interns.
  const Value& value(uint32_t code) const {
    return values_[static_cast<size_t>(code)];
  }

  /// True (writing `*code`) iff `v` is already interned. Null reports
  /// kNullCode.
  bool Lookup(const Value& v, uint32_t* code) const {
    if (v.is_null()) {
      *code = kNullCode;
      return true;
    }
    auto it = index_.find(v);
    if (it == index_.end()) return false;
    *code = it->second;
    return true;
  }

  /// Number of codes, null slot included (codes are [0, size)).
  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

  /// Approximate resident bytes of the dictionary entries (used by the
  /// ingest path's MemoryBudget charging).
  static uint64_t ApproxEntryBytes(const Value& v) {
    return sizeof(Value) + (v.is_string() ? v.str().size() : 0);
  }

 private:
  std::deque<Value> values_;
  std::unordered_map<Value, uint32_t, ValueHash> index_;
};

}  // namespace ftrepair

#endif  // FTREPAIR_DATA_DICTIONARY_H_
