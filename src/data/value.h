#ifndef FTREPAIR_DATA_VALUE_H_
#define FTREPAIR_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace ftrepair {

/// Dynamic type of a cell value.
enum class ValueType : uint8_t { kNull = 0, kString = 1, kNumber = 2 };

/// \brief A single cell: null, a string, or a numeric (double).
///
/// Values are small, regular (copyable/movable/hashable/comparable) and
/// compare by (type, content). Numbers compare by exact double equality —
/// the generators and parsers only produce round-trippable numerics.
class Value {
 public:
  /// Null value.
  Value() : type_(ValueType::kNull), number_(0) {}
  /// String value.
  explicit Value(std::string s)
      : type_(ValueType::kString), number_(0), string_(std::move(s)) {}
  explicit Value(const char* s) : Value(std::string(s)) {}
  /// Numeric value.
  explicit Value(double v) : type_(ValueType::kNumber), number_(v) {}
  explicit Value(int v) : Value(static_cast<double>(v)) {}

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_string() const { return type_ == ValueType::kString; }
  bool is_number() const { return type_ == ValueType::kNumber; }

  /// String content; only valid when is_string().
  const std::string& str() const { return string_; }
  /// Numeric content; only valid when is_number().
  double num() const { return number_; }

  /// Renders the value for display/CSV. Null renders as "".
  std::string ToString() const;

  /// Parses `text` as a value of the requested type. For kNumber,
  /// non-numeric text falls back to a string value (dirty data is
  /// expected to contain typos inside numeric columns).
  static Value Parse(std::string_view text, ValueType hint);

  friend bool operator==(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return false;
    switch (a.type_) {
      case ValueType::kNull:
        return true;
      case ValueType::kString:
        return a.string_ == b.string_;
      case ValueType::kNumber:
        return a.number_ == b.number_;
    }
    return false;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order used for deterministic tie-breaking: by type, then content.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return a.type_ < b.type_;
    switch (a.type_) {
      case ValueType::kNull:
        return false;
      case ValueType::kString:
        return a.string_ < b.string_;
      case ValueType::kNumber:
        return a.number_ < b.number_;
    }
    return false;
  }

  /// FNV-1a style hash over (type, content).
  size_t Hash() const;

 private:
  ValueType type_;
  double number_;
  std::string string_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ftrepair

#endif  // FTREPAIR_DATA_VALUE_H_
