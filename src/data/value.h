#ifndef FTREPAIR_DATA_VALUE_H_
#define FTREPAIR_DATA_VALUE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

namespace ftrepair {

/// Dynamic type of a cell value.
enum class ValueType : uint8_t { kNull = 0, kString = 1, kNumber = 2 };

/// \brief A single cell: null, a string, or a numeric (double).
///
/// Values are small, regular (copyable/movable/hashable/comparable) and
/// compare by (type, content). Numbers compare by exact double equality —
/// the generators and parsers only produce round-trippable numerics.
///
/// Numeric payloads are canonicalized at construction so that equal
/// Values always carry identical bit patterns (the hash/equality
/// contract any unordered container keyed on ValueHash depends on):
///   * -0.0 is stored as +0.0 — IEEE compares them equal, but their
///     payload bytes differ, which would split one key across buckets.
///   * Every NaN is stored as the one quiet NaN
///     std::numeric_limits<double>::quiet_NaN(), and two NaN Values
///     compare equal to each other (and order after every other
///     number). IEEE NaN self-inequality would otherwise make a NaN
///     key unfindable. NaN cannot enter through parsing — ParseDouble
///     accepts only finite doubles — but the programmatic
///     Value(double) constructor is open to it.
class Value {
 public:
  /// Null value.
  Value() : type_(ValueType::kNull), number_(0) {}
  /// String value.
  explicit Value(std::string s)
      : type_(ValueType::kString), number_(0), string_(std::move(s)) {}
  explicit Value(const char* s) : Value(std::string(s)) {}
  /// Numeric value (canonicalized, see class comment).
  explicit Value(double v)
      : type_(ValueType::kNumber), number_(CanonicalDouble(v)) {}
  explicit Value(int v) : Value(static_cast<double>(v)) {}

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_string() const { return type_ == ValueType::kString; }
  bool is_number() const { return type_ == ValueType::kNumber; }

  /// String content; only valid when is_string().
  const std::string& str() const { return string_; }
  /// Numeric content; only valid when is_number().
  double num() const { return number_; }

  /// Renders the value for display/CSV. Null renders as "".
  std::string ToString() const;

  /// Parses `text` as a value of the requested type. For kNumber,
  /// non-numeric text falls back to a string value (dirty data is
  /// expected to contain typos inside numeric columns).
  static Value Parse(std::string_view text, ValueType hint);

  friend bool operator==(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return false;
    switch (a.type_) {
      case ValueType::kNull:
        return true;
      case ValueType::kString:
        return a.string_ == b.string_;
      case ValueType::kNumber:
        // Canonicalized NaNs compare equal to each other (reflexivity
        // keeps Value usable as a hash/map key).
        return a.number_ == b.number_ ||
               (a.number_ != a.number_ && b.number_ != b.number_);
    }
    return false;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order used for deterministic tie-breaking: by type, then
  /// content. NaN numbers sort after every other number.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return a.type_ < b.type_;
    switch (a.type_) {
      case ValueType::kNull:
        return false;
      case ValueType::kString:
        return a.string_ < b.string_;
      case ValueType::kNumber:
        if (a.number_ != a.number_) return false;  // NaN is greatest
        if (b.number_ != b.number_) return true;
        return a.number_ < b.number_;
    }
    return false;
  }

  /// FNV-1a style hash over (type, content). Consistent with
  /// operator== because numeric payloads are canonicalized: equal
  /// numbers (including -0.0 vs 0.0 and NaN vs NaN) share one bit
  /// pattern by construction.
  size_t Hash() const;

 private:
  /// Collapses every zero to +0.0 and every NaN to the canonical quiet
  /// NaN so equal numbers are bit-identical (see class comment).
  static double CanonicalDouble(double v) {
    if (v != v) return std::numeric_limits<double>::quiet_NaN();
    if (v == 0.0) return 0.0;
    return v;
  }

  ValueType type_;
  double number_;
  std::string string_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ftrepair

#endif  // FTREPAIR_DATA_VALUE_H_
