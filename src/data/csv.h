#ifndef FTREPAIR_DATA_CSV_H_
#define FTREPAIR_DATA_CSV_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "data/table.h"

namespace ftrepair {

/// \brief RFC-4180-style CSV I/O for Table.
///
/// Reading infers schema from a header row: columns whose every
/// non-empty cell parses as a number become kNumber, others kString.
/// Quoted fields with embedded commas/quotes/newlines are supported.

/// Parses CSV text (with header) into a Table.
Result<Table> ReadCsvString(const std::string& text);

/// Reads a CSV file (with header) into a Table.
Result<Table> ReadCsvFile(const std::string& path);

/// Serializes `table` (with header) to CSV text.
std::string WriteCsvString(const Table& table);

/// Writes `table` to `path` as CSV.
Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace ftrepair

#endif  // FTREPAIR_DATA_CSV_H_
