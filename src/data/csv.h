#ifndef FTREPAIR_DATA_CSV_H_
#define FTREPAIR_DATA_CSV_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/resource.h"
#include "common/status.h"
#include "data/table.h"

namespace ftrepair {

/// \brief RFC-4180-style CSV I/O for Table.
///
/// Reading infers schema from a header row: columns whose every
/// non-empty cell parses as a number become kNumber, others kString.
/// Quoted fields with embedded commas/quotes/newlines are supported.
/// Record terminators are "\n", "\r\n", and bare "\r" (classic Mac);
/// a "\r" inside a quoted field is literal content. Fully blank
/// records (empty lines) are skipped silently in every policy — they
/// are separators, not data rows — and do not consume a data-row
/// index.
///
/// The reader is streaming: input is scanned in chunks and fields are
/// interned straight into per-column dictionaries, so peak memory
/// tracks the *distinct* cell values plus one code per cell, never a
/// second copy of the whole text.

/// What to do with a malformed data row (wrong field count, embedded
/// NUL bytes, or a final record with an unterminated quote).
enum class BadRowPolicy {
  /// Fail the whole read with IOError on the first bad row (default;
  /// the historical behavior).
  kStrict,
  /// Drop bad rows, keep the rest, report each drop as a RowError.
  kSkipBadRows,
  /// Salvage bad rows: pad short rows with empty fields, truncate long
  /// ones, strip NUL bytes, keep a partial final record. Each salvaged
  /// row is reported as a RowError.
  kPadRagged,
};

/// Ingestion policy knobs.
struct CsvOptions {
  BadRowPolicy bad_rows = BadRowPolicy::kStrict;
  /// Optional memory governance (not owned). The read charges, as the
  /// input streams in (MemPhase::kIngest): each new distinct cell
  /// value entering a column dictionary, one code per kept cell, and
  /// (file reads) the chunk buffer. It fails with ResourceExhausted
  /// when the budget runs out mid-stream.
  const MemoryBudget* memory = nullptr;
  /// Scan-chunk size in bytes (clamped to >= 1). Purely a memory/
  /// syscall knob — every chunking of the same input parses
  /// identically (the scanner carries quote/CR state across chunk
  /// boundaries). Tests shrink it to force boundary crossings.
  size_t chunk_bytes = 64 * 1024;
};

/// Why a data row was dropped or salvaged.
enum class RowErrorKind {
  kRagged,             // field count != header width
  kUnterminatedQuote,  // the file ended inside a quoted field
  kEmbeddedNul,        // the row contained NUL bytes
  kInjectedFault,      // forced bad via FTREPAIR_FAULT_CSV_BAD_ROW
};

const char* RowErrorKindName(RowErrorKind kind);

/// One malformed data row, as seen by a non-strict read.
struct RowError {
  /// 0-based data-row index in the input (header excluded). Dropped
  /// rows still advance this index, so it names the *input* row.
  size_t row = 0;
  RowErrorKind kind = RowErrorKind::kRagged;
  std::string message;
};

/// Outcome report of a CSV read: per-row errors plus keep/drop/pad
/// tallies. A strict read that succeeds reports no errors.
struct CsvReadReport {
  std::vector<RowError> errors;
  size_t rows_kept = 0;
  size_t rows_dropped = 0;
  size_t rows_padded = 0;

  bool ok() const { return errors.empty(); }
};

/// Parses CSV text (with header) into a Table under `options`,
/// reporting per-row problems into `report` (optional).
Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options = {},
                            CsvReadReport* report = nullptr);

/// Reads a CSV file (with header) into a Table.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {},
                          CsvReadReport* report = nullptr);

/// Serializes `table` (with header) to CSV text.
std::string WriteCsvString(const Table& table);

/// Writes `table` to `path` as CSV.
Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace ftrepair

#endif  // FTREPAIR_DATA_CSV_H_
