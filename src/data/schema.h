#ifndef FTREPAIR_DATA_SCHEMA_H_
#define FTREPAIR_DATA_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/value.h"

namespace ftrepair {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
};

/// \brief Ordered set of columns with by-name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 if absent.
  int IndexOf(std::string_view name) const;

  /// Index of `name` or an error naming the missing column.
  Result<int> RequireIndex(std::string_view name) const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace ftrepair

#endif  // FTREPAIR_DATA_SCHEMA_H_
