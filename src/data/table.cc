#include "data/table.h"

#include <algorithm>
#include <unordered_set>

namespace ftrepair {

Status Table::AppendRow(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::vector<Value> Table::ActiveDomain(int col) const {
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  for (const Row& r : rows_) {
    const Value& v = r[static_cast<size_t>(col)];
    if (v.is_null()) continue;
    if (seen.insert(v).second) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Table::NumericRange(int col, double* min_out, double* max_out) const {
  bool any = false;
  double mn = 0, mx = 0;
  for (const Row& r : rows_) {
    const Value& v = r[static_cast<size_t>(col)];
    if (!v.is_number()) continue;
    if (!any) {
      mn = mx = v.num();
      any = true;
    } else {
      mn = std::min(mn, v.num());
      mx = std::max(mx, v.num());
    }
  }
  if (any) {
    *min_out = mn;
    *max_out = mx;
  }
  return any;
}

Table Table::Head(int n) const {
  Table out(schema_);
  int limit = std::min(n, num_rows());
  for (int i = 0; i < limit; ++i) {
    out.rows_.push_back(rows_[static_cast<size_t>(i)]);
  }
  return out;
}

}  // namespace ftrepair
