#include "data/table.h"

#include <algorithm>
#include <string>
#include <utility>

namespace ftrepair {

Status Table::AppendRow(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  for (size_t c = 0; c < row.size(); ++c) {
    codes_[c].push_back(dicts_[c].Intern(std::move(row[c])));
  }
  ++num_rows_;
  return Status::OK();
}

Row Table::row(int i) const {
  Row out;
  out.reserve(static_cast<size_t>(num_columns()));
  for (int c = 0; c < num_columns(); ++c) out.push_back(cell(i, c));
  return out;
}

Result<Table> Table::FromColumns(Schema schema,
                                 std::vector<ColumnDictionary> dicts,
                                 std::vector<std::vector<uint32_t>> codes) {
  size_t width = static_cast<size_t>(schema.num_columns());
  if (dicts.size() != width || codes.size() != width) {
    return Status::InvalidArgument("columnar parts do not match schema arity");
  }
  size_t rows = width == 0 ? 0 : codes[0].size();
  for (size_t c = 0; c < width; ++c) {
    if (codes[c].size() != rows) {
      return Status::InvalidArgument("ragged columnar code vectors");
    }
    for (uint32_t code : codes[c]) {
      if (code >= dicts[c].size()) {
        return Status::InvalidArgument("code out of dictionary range");
      }
    }
  }
  Table out(std::move(schema));
  out.dicts_ = std::move(dicts);
  out.codes_ = std::move(codes);
  out.num_rows_ = static_cast<int>(rows);
  return out;
}

std::vector<char> Table::UsedCodes(int col) const {
  const ColumnDictionary& dict = dicts_[static_cast<size_t>(col)];
  std::vector<char> used(static_cast<size_t>(dict.size()), 0);
  for (uint32_t code : codes_[static_cast<size_t>(col)]) {
    used[static_cast<size_t>(code)] = 1;
  }
  return used;
}

std::vector<Value> Table::ActiveDomain(int col) const {
  // Distinct-by-code == distinct-by-value (interning is a bijection),
  // and the final sort makes the pre-sort order irrelevant, so this
  // matches the historical row scan exactly — without hashing a single
  // Value.
  const ColumnDictionary& dict = dicts_[static_cast<size_t>(col)];
  std::vector<char> used = UsedCodes(col);
  std::vector<Value> out;
  for (uint32_t code = 1; code < dict.size(); ++code) {
    if (used[static_cast<size_t>(code)]) out.push_back(dict.value(code));
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Table::NumericRange(int col, double* min_out, double* max_out) const {
  // Min/max over the distinct referenced values equals min/max over
  // the row multiset.
  const ColumnDictionary& dict = dicts_[static_cast<size_t>(col)];
  std::vector<char> used = UsedCodes(col);
  bool any = false;
  double mn = 0, mx = 0;
  for (uint32_t code = 1; code < dict.size(); ++code) {
    if (!used[static_cast<size_t>(code)]) continue;
    const Value& v = dict.value(code);
    if (!v.is_number()) continue;
    if (!any) {
      mn = mx = v.num();
      any = true;
    } else {
      mn = std::min(mn, v.num());
      mx = std::max(mx, v.num());
    }
  }
  if (any) {
    *min_out = mn;
    *max_out = mx;
  }
  return any;
}

Table Table::Head(int n) const {
  // Re-interns the surviving prefix so the copy's dictionaries hold
  // codes in the same first-occurrence order a fresh build would
  // assign (and carry no entries referenced only by dropped rows).
  Table out(schema_);
  int limit = std::min(n, num_rows());
  for (int i = 0; i < limit; ++i) {
    Status s = out.AppendRow(row(i));
    (void)s;  // same schema: arity always matches
  }
  return out;
}

}  // namespace ftrepair
