#ifndef FTREPAIR_COMMON_ENV_H_
#define FTREPAIR_COMMON_ENV_H_

#include <cstdint>

namespace ftrepair {

/// \brief Shared environment-variable access for the library's knobs
/// and fault seams.
///
/// Every `FTREPAIR_*` variable goes through these helpers so malformed
/// values are reported uniformly (one warning on stderr, the variable
/// is then treated as unset) instead of each call site inventing its
/// own silent-truncation semantics.

/// Returns the value of `name`, or nullptr when the variable is unset
/// or set to the empty string.
const char* EnvValue(const char* name);

/// Strict base-10 unsigned parse: digits only, no sign, no fraction,
/// no trailing garbage, and the value must fit in uint64_t. Returns
/// false (leaving `*out` untouched) otherwise.
bool ParseU64Strict(const char* s, uint64_t* out);

/// Emits the uniform malformed-environment warning:
///   [WARN env] malformed NAME='value' (expected ...); ignoring
/// Deliberately bypasses FTR_LOG: the log level itself is initialized
/// from the environment, so the logger cannot be used while parsing it.
void WarnMalformedEnv(const char* name, const char* value,
                      const char* expected);

/// Reads `name` as a strict uint64. Unset/empty returns false silently;
/// a malformed value warns via WarnMalformedEnv and returns false (the
/// caller treats the variable as unset, disabling whatever it arms);
/// a valid value stores it in `*out` and returns true.
bool EnvU64(const char* name, const char* expected, uint64_t* out);

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_ENV_H_
