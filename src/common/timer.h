#ifndef FTREPAIR_COMMON_TIMER_H_
#define FTREPAIR_COMMON_TIMER_H_

#include <chrono>

namespace ftrepair {

/// Wall-clock stopwatch used by the experiment harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_TIMER_H_
