#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ftrepair {

namespace {

constexpr int kMaxDepth = 256;

const JsonValue& NullValue() {
  static const JsonValue* null = new JsonValue(JsonValue::Null());
  return *null;
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    JsonValue value;
    FTR_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after the JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.size() - pos_ < literal.size()) return false;
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting deeper than 256 levels");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        out->type_ = JsonValue::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a string object key");
      }
      std::string key;
      FTR_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      FTR_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      FTR_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          FTR_RETURN_NOT_OK(ParseHex4(&code));
          // Surrogate pair -> one code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned low = 0;
              FTR_RETURN_NOT_OK(ParseHex4(&low));
              if (low >= 0xDC00 && low <= 0xDFFF) {
                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
              } else {
                return Error("invalid low surrogate");
              }
            } else {
              return Error("unpaired high surrogate");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(unsigned* out) {
    if (text_.size() - pos_ < 4) return Error("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    // strtod needs NUL termination; copy the (short) number slice.
    std::string slice(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size() || !std::isfinite(value)) {
      pos_ = start;
      return Error("invalid number '" + slice + "'");
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

const JsonValue& JsonValue::Get(std::string_view key) const {
  const JsonValue* found = &NullValue();
  for (const auto& [name, value] : object_) {
    if (name == key) found = &value;  // last occurrence wins
  }
  return *found;
}

bool JsonValue::Has(std::string_view key) const {
  for (const auto& [name, value] : object_) {
    (void)value;
    if (name == key) return true;
  }
  return false;
}

Result<double> JsonValue::GetNumber(std::string_view key) const {
  const JsonValue& v = Get(key);
  if (!v.is_number()) {
    return Status::InvalidArgument("expected number member '" +
                                   std::string(key) + "'");
  }
  return v.number();
}

Result<std::string> JsonValue::GetString(std::string_view key) const {
  const JsonValue& v = Get(key);
  if (!v.is_string()) {
    return Status::InvalidArgument("expected string member '" +
                                   std::string(key) + "'");
  }
  return v.str();
}

Result<bool> JsonValue::GetBool(std::string_view key) const {
  const JsonValue& v = Get(key);
  if (!v.is_bool()) {
    return Status::InvalidArgument("expected bool member '" +
                                   std::string(key) + "'");
  }
  return v.boolean();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumberExact(double v) {
  if (!std::isfinite(v)) return "null";
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace ftrepair
