#ifndef FTREPAIR_COMMON_JSON_H_
#define FTREPAIR_COMMON_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ftrepair {

/// \brief A parsed JSON document (RFC 8259 subset: everything the
/// pipeline's own writers emit).
///
/// The pipeline has always *written* JSON (metrics snapshots, Chrome
/// traces, and now explain reports); the replay verifier is the first
/// consumer that must *read* one back, so parsing lives here rather
/// than behind an external dependency. Numbers are doubles (the
/// writers only emit doubles and counters well inside 2^53), object
/// keys keep insertion order, and duplicate keys resolve to the last
/// occurrence — matching every serializer in this codebase.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document; trailing non-whitespace is an
  /// error. The parser is recursive with an explicit depth cap (256)
  /// so adversarial inputs fail cleanly instead of overflowing the
  /// stack.
  static Result<JsonValue> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object() const {
    return object_;
  }

  /// Member lookup; null when `key` is absent or this is not an object.
  /// (A literal JSON null member and an absent member are
  /// indistinguishable through this accessor — use Has to separate.)
  const JsonValue& Get(std::string_view key) const;
  bool Has(std::string_view key) const;

  /// Typed member lookups for schema-checking consumers: error Statuses
  /// name the key and the type mismatch.
  Result<double> GetNumber(std::string_view key) const;
  Result<std::string> GetString(std::string_view key) const;
  Result<bool> GetBool(std::string_view key) const;

  static JsonValue Null() { return JsonValue(); }

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; non-ASCII bytes pass through
/// untouched). The shared counterpart of the private helpers the
/// metrics and trace writers grew independently.
std::string JsonEscape(std::string_view s);

/// Renders a double as a JSON number that round-trips bit-exactly
/// through JsonValue::Parse (shortest form via %.17g; non-finite
/// values — which JSON cannot carry — render as null).
std::string JsonNumberExact(double v);

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_JSON_H_
