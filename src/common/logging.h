#ifndef FTREPAIR_COMMON_LOGGING_H_
#define FTREPAIR_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ftrepair {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted to stderr (default: kWarning, so the
/// library is silent in normal operation). The default can be
/// overridden at startup via the FTREPAIR_LOG_LEVEL environment
/// variable ("debug" | "info" | "warn" | "error", case-insensitive).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" | "info" | "warn"/"warning" | "error"
/// (case-insensitive) into `out`. Returns false on anything else.
bool ParseLogLevel(const std::string& name, LogLevel* out);

/// Canonical name of `level` ("DEBUG", "INFO", "WARN", "ERROR").
const char* LogLevelName(LogLevel level);

namespace internal {

/// Stream-collecting helper behind the FTR_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Usage: FTR_LOG(kInfo) << "expanded " << n << " nodes";
#define FTR_LOG(severity)                                             \
  ::ftrepair::internal::LogMessage(::ftrepair::LogLevel::severity, \
                                   __FILE__, __LINE__)

/// Internal-invariant check that aborts with a message; used for
/// conditions that indicate library bugs, never for user input.
#define FTR_DCHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      FTR_LOG(kError) << "DCHECK failed: " #cond;                     \
      std::abort();                                                   \
    }                                                                 \
  } while (false)

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_LOGGING_H_
