#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace ftrepair {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(HardwareThreads() - 1);
  return *pool;
}

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ResolveThreads(int threads) {
  if (threads == 0) return HardwareThreads();
  return std::max(1, threads);
}

bool ParallelFor(int num_shards, int parallelism,
                 const std::function<void(int)>& fn, const Budget* budget) {
  if (num_shards <= 0) return true;
  parallelism = ResolveThreads(parallelism);

  if (parallelism <= 1 || num_shards == 1) {
    // Bit-for-bit the serial loop: caller thread, shard order, budget
    // polled before each shard.
    for (int s = 0; s < num_shards; ++s) {
      if (BudgetExhausted(budget)) return false;
      fn(s);
    }
    return true;
  }

  // The caller blocks on *shard completion*, not on every helper task
  // having run. A queued helper that only gets scheduled after all
  // shards are done claims nothing and exits — which is what makes
  // nested ParallelFor safe: a pool task calling ParallelFor can
  // always finish its own shards itself, so its wait terminates even
  // when the queue is saturated with other parents. `state` is
  // heap-shared because such late helpers outlive the call; they touch
  // only the claim cursor, never `fn` or `budget` (both dead once
  // done == num_shards).
  struct State {
    State(const std::function<void(int)>& f, const Budget* b, int n)
        : fn(f), budget(b), num_shards(n) {}
    std::function<void(int)> fn;
    const Budget* budget;
    int num_shards;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::atomic<bool> skipped{false};
    std::mutex mu;
    std::condition_variable all_done;

    void Work() {
      for (;;) {
        int shard = next.fetch_add(1, std::memory_order_relaxed);
        if (shard >= num_shards) return;
        if (skipped.load(std::memory_order_relaxed) ||
            BudgetExhausted(budget)) {
          // Exhausted or cancelled: resolve the remaining claims
          // without running them so the completion count still
          // converges.
          skipped.store(true, std::memory_order_relaxed);
        } else {
          fn(shard);
        }
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_shards) {
          std::lock_guard<std::mutex> lock(mu);
          all_done.notify_one();
        }
      }
    }
  };

  auto state = std::make_shared<State>(fn, budget, num_shards);
  int helpers = std::min(parallelism - 1, num_shards - 1);
  helpers = std::min(helpers, ThreadPool::Shared().size());
  for (int h = 0; h < helpers; ++h) {
    ThreadPool::Shared().Submit([state] { state->Work(); });
  }
  state->Work();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->all_done.wait(lock, [&state] {
      return state->done.load(std::memory_order_acquire) ==
             state->num_shards;
    });
  }
  return !state->skipped.load(std::memory_order_relaxed);
}

}  // namespace ftrepair
