#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace ftrepair {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(HardwareThreads() - 1);
  return *pool;
}

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ResolveThreads(int threads) {
  if (threads == 0) return HardwareThreads();
  return std::max(1, threads);
}

bool ParallelFor(int num_shards, int parallelism,
                 const std::function<void(int)>& fn, const Budget* budget) {
  if (num_shards <= 0) return true;
  parallelism = ResolveThreads(parallelism);

  struct State {
    std::atomic<int> next{0};
    std::atomic<bool> skipped{false};
    std::atomic<int> active{0};
    std::mutex mu;
    std::condition_variable done;
  } state;

  auto work = [&state, &fn, budget, num_shards] {
    for (;;) {
      int shard = state.next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= num_shards) return;
      if (BudgetExhausted(budget)) {
        state.skipped.store(true, std::memory_order_relaxed);
        return;
      }
      fn(shard);
    }
  };

  int helpers = std::min(parallelism - 1, num_shards - 1);
  helpers = std::min(helpers, ThreadPool::Shared().size());
  if (helpers > 0) {
    state.active.store(helpers, std::memory_order_relaxed);
    for (int h = 0; h < helpers; ++h) {
      ThreadPool::Shared().Submit([&state, &work] {
        work();
        // Last helper out wakes the caller; `state` lives on the
        // caller's stack, which blocks below until active hits 0.
        std::lock_guard<std::mutex> lock(state.mu);
        if (state.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          state.done.notify_one();
        }
      });
    }
  }
  work();
  if (helpers > 0) {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done.wait(lock, [&state] {
      return state.active.load(std::memory_order_acquire) == 0;
    });
  }
  return !state.skipped.load(std::memory_order_relaxed);
}

}  // namespace ftrepair
