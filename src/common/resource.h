#ifndef FTREPAIR_COMMON_RESOURCE_H_
#define FTREPAIR_COMMON_RESOURCE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>

#include "common/budget.h"
#include "common/status.h"

namespace ftrepair {

/// Pipeline phases for memory attribution. Every charge names the
/// structure class it grows so the per-phase histograms (and the
/// exhaustion message) can say *where* the bytes went.
enum class MemPhase {
  kIngest = 0,   // CSV text and row buffers
  kGraph = 1,    // violation-graph edge buffers and shard scratch
  kIndex = 2,    // block-index postings, buckets, and filters
  kSolve = 3,    // expansion frontiers and greedy heaps / round state
  kTargets = 4,  // target tries and lazy-search arenas
  kOther = 5,
};
inline constexpr size_t kNumMemPhases = 6;

const char* MemPhaseName(MemPhase phase);

/// \brief Byte-granular memory governance for one repair run (the
/// resident-memory counterpart of the wall-clock Budget).
///
/// The library never measures the allocator; instead every structure
/// that grows with input size *charges* its growth here, so accounting
/// is deterministic and identical across platforms. Two watermarks:
///
///   * soft (default 80% of the hard limit): crossing it latches a
///     flag the pipeline polls to start degrading (tighter valves,
///     stepping down the exact->greedy->appro->detect-only ladder);
///   * hard: crossing it latches exhaustion, after which every charge
///     fails and Check() renders a ResourceExhausted naming the
///     charge site — callers unwind with partial, well-formed output.
///
/// Mirrors the Budget idioms: all accounting is relaxed-atomic and
/// const (a shared budget is charged from worker threads), exhaustion
/// latches (Release lowers resident occupancy but never un-exhausts),
/// and the fault seam FTREPAIR_FAULT_MEM_BYTES=N — read per
/// construction, armed only for limited budgets — forces exhaustion
/// once N bytes have been charged cumulatively, wherever in the
/// pipeline that byte lands.
class MemoryBudget {
 public:
  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();

  /// An unlimited budget: charges always succeed, nothing is armed.
  MemoryBudget() : MemoryBudget(kUnlimited) {}
  /// A budget with a hard limit of `hard_limit_bytes` and a soft
  /// watermark at `soft_fraction` of it (clamped to [0, 1]). A
  /// non-positive hard limit starts exhausted.
  explicit MemoryBudget(uint64_t hard_limit_bytes,
                        double soft_fraction = 0.8);

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  bool limited() const { return hard_limit_ != kUnlimited; }
  uint64_t hard_limit_bytes() const { return hard_limit_; }
  uint64_t soft_limit_bytes() const { return soft_limit_; }

  /// Charges `bytes` against the budget. Returns false when the budget
  /// is (or just became) exhausted — by the hard watermark or the
  /// fault seam. The failed charge is not added to resident occupancy.
  bool TryCharge(uint64_t bytes, MemPhase phase = MemPhase::kOther) const;

  /// TryCharge + Check: the one-call form for sites that propagate a
  /// Status directly.
  Status Charge(uint64_t bytes, const char* where,
                MemPhase phase = MemPhase::kOther) const {
    if (TryCharge(bytes, phase)) return Status::OK();
    return Check(where);
  }

  /// Returns `bytes` of resident occupancy (a freed structure). Never
  /// un-latches exhaustion or the soft watermark.
  void Release(uint64_t bytes) const;

  bool Exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  /// True once resident occupancy has crossed the soft watermark
  /// (latched: stays true even if occupancy later drops).
  bool SoftExceeded() const {
    return soft_latched_.load(std::memory_order_relaxed);
  }

  /// Renders the exhaustion cause, e.g.
  ///   "memory budget exhausted in violation graph edges: hard limit
  ///    of 1048576 bytes exceeded (resident 1048578, peak 1048578)".
  /// Returns OK when not exhausted (see ResourceCheck below for call
  /// sites that must never return OK).
  Status Check(const char* where) const;

  uint64_t resident_bytes() const {
    return resident_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  /// Cumulative charged bytes (never lowered by Release); drives the
  /// fault seam.
  uint64_t charged_total_bytes() const {
    return charged_total_.load(std::memory_order_relaxed);
  }
  uint64_t charged_bytes(MemPhase phase) const {
    return phase_bytes_[static_cast<size_t>(phase)].load(
        std::memory_order_relaxed);
  }

 private:
  void LatchExhausted(bool injected) const;

  uint64_t hard_limit_;
  uint64_t soft_limit_;
  uint64_t fault_bytes_;  // 0 = seam disarmed

  mutable std::atomic<uint64_t> resident_{0};
  mutable std::atomic<uint64_t> peak_{0};
  mutable std::atomic<uint64_t> charged_total_{0};
  mutable std::array<std::atomic<uint64_t>, kNumMemPhases> phase_bytes_{};
  mutable std::atomic<bool> exhausted_{false};
  mutable std::atomic<bool> soft_latched_{false};
  mutable std::atomic<bool> fault_tripped_{false};
};

/// Null-safe charge: a pipeline without a memory budget charges into
/// the void. Mirrors BudgetCharge.
inline bool MemCharge(const MemoryBudget* memory, uint64_t bytes,
                      MemPhase phase = MemPhase::kOther) {
  return memory == nullptr || memory->TryCharge(bytes, phase);
}

inline bool MemExhausted(const MemoryBudget* memory) {
  return memory != nullptr && memory->Exhausted();
}

inline bool MemSoftExceeded(const MemoryBudget* memory) {
  return memory != nullptr && memory->SoftExceeded();
}

/// Renders the resource-exhaustion Status for a site that has already
/// decided to fail (a truncated structure, a failed charge). Unlike
/// Budget::Check / MemoryBudget::Check this NEVER returns OK: when the
/// truncation cause is not attributable to either budget (e.g. a
/// hard-coded cap fired) it still produces a generic ResourceExhausted
/// so callers cannot accidentally turn a truncation into success.
Status ResourceCheck(const Budget* budget, const MemoryBudget* memory,
                     const char* where);

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_RESOURCE_H_
