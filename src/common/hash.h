#ifndef FTREPAIR_COMMON_HASH_H_
#define FTREPAIR_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace ftrepair {

/// 64-bit finalizer (splitmix64): a full-avalanche mix, so every input
/// bit affects every output bit.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Boost-style mix-then-combine of one element hash into a running
/// seed. Unlike the FNV-ish `h ^= e; h *= prime` fold this avalanches
/// each element before combining, so the low bits of the result depend
/// on *all* bits of every element — the plain fold is closed under
/// mod 2^k, which makes unordered_map bucket indices (low bits) collide
/// systematically whenever element hashes agree in their low bits.
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (static_cast<size_t>(HashMix64(value)) +
                 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_HASH_H_
