#include "common/budget.h"

#include <string>

#include "common/env.h"

namespace ftrepair {

namespace {

// Fault seam: FTREPAIR_FAULT_BUDGET_UNITS=N forces any limited budget
// to exhaust after N charged units. Read per construction so tests can
// setenv/unsetenv between cases. Malformed values (fractions, signs,
// overflow) warn once and leave the seam disarmed.
uint64_t FaultUnitsFromEnv() {
  uint64_t value = 0;
  if (!EnvU64("FTREPAIR_FAULT_BUDGET_UNITS",
              "a non-negative integer unit count", &value)) {
    return 0;
  }
  return value;
}

}  // namespace

Budget::Budget(double deadline_ms)
    : start_(Clock::now()),
      deadline_ms_(deadline_ms == kUnlimited ? kUnlimited
                                             : deadline_ms),
      fault_units_(deadline_ms == kUnlimited ? 0 : FaultUnitsFromEnv()) {
  if (limited() && deadline_ms_ <= 0) {
    exhausted_.store(true, std::memory_order_relaxed);
  }
}

double Budget::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - start_)
      .count();
}

double Budget::RemainingMs() const {
  if (!limited()) return kUnlimited;
  if (exhausted_.load(std::memory_order_relaxed)) return 0;
  double remaining = deadline_ms_ - ElapsedMs();
  return remaining > 0 ? remaining : 0;
}

bool Budget::LatchIfExpired() const {
  if (limited() && ElapsedMs() >= deadline_ms_) {
    exhausted_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool Budget::Charge(uint64_t units) const {
  if (exhausted_.load(std::memory_order_relaxed) || cancelled()) {
    return false;
  }
  uint64_t total = units_.fetch_add(units, std::memory_order_relaxed) + units;
  if (fault_units_ != 0 && total >= fault_units_) {
    exhausted_.store(true, std::memory_order_relaxed);
    return false;
  }
  uint64_t check = next_deadline_check_.load(std::memory_order_relaxed);
  if (total >= check) {
    // One of the racing threads advances the checkpoint; the others
    // just skip the clock this round — the interval is amortization,
    // not a contract.
    next_deadline_check_.compare_exchange_strong(
        check, total + kCheckInterval, std::memory_order_relaxed,
        std::memory_order_relaxed);
    if (LatchIfExpired()) return false;
  }
  return true;
}

bool Budget::Exhausted() const {
  if (exhausted_.load(std::memory_order_relaxed) || cancelled()) {
    return true;
  }
  if (fault_units_ != 0 && units_charged() >= fault_units_) {
    exhausted_.store(true, std::memory_order_relaxed);
    return true;
  }
  return LatchIfExpired();
}

Status Budget::Check(const char* where) const {
  if (!Exhausted()) return Status::OK();
  std::string cause;
  if (cancelled()) {
    cause = "cancelled";
  } else if (fault_units_ != 0 && units_charged() >= fault_units_) {
    cause = "injected fault after " + std::to_string(units_charged()) + " units";
  } else {
    cause = "deadline of " + std::to_string(deadline_ms_) +
            "ms passed (elapsed " + std::to_string(ElapsedMs()) + "ms)";
  }
  return Status::ResourceExhausted(std::string("budget exhausted in ") +
                                   where + ": " + cause);
}

}  // namespace ftrepair
