#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/metrics.h"

namespace ftrepair {

namespace {

std::string JsonUs(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

uint32_t ThisThreadId() {
  // Stable small-ish id per thread; Chrome only needs distinct tids.
  return static_cast<uint32_t>(
      std::hash<std::thread::id>()(std::this_thread::get_id()) & 0xffffff);
}

}  // namespace

Tracer::Tracer() : shards_(kNumShards) {}

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all statics
  return *tracer;
}

void Tracer::Enable() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.ring.clear();
    shard.next = 0;
    shard.total = 0;
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

double Tracer::NowUs() const {
  if (!enabled()) return 0;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Shard& Tracer::ShardForThisThread() {
  return shards_[ThisThreadId() % kNumShards];
}

void Tracer::Push(Event event) {
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.ring.size() < kShardCapacity) {
    shard.ring.push_back(std::move(event));
  } else {
    shard.ring[shard.next] = std::move(event);  // wrap: overwrite oldest
  }
  shard.next = (shard.next + 1) % kShardCapacity;
  ++shard.total;
}

void Tracer::RecordComplete(std::string name, double ts_us, double dur_us,
                            Args args) {
  if (!enabled()) return;
  Push(Event{'X', std::move(name), ts_us, dur_us, ThisThreadId(),
             std::move(args)});
}

void Tracer::RecordInstant(std::string name, Args args) {
  if (!enabled()) return;
  Push(Event{'i', std::move(name), NowUs(), 0, ThisThreadId(),
             std::move(args)});
}

uint64_t Tracer::dropped() const {
  uint64_t dropped = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.total > shard.ring.size()) {
      dropped += shard.total - shard.ring.size();
    }
  }
  return dropped;
}

void Tracer::ExportJson(std::ostream& out) const {
  // Snapshot every shard under its lock, then sort by timestamp so the
  // exported file is deterministic and pleasant to diff.
  std::vector<Event> events;
  uint64_t dropped_events = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    events.insert(events.end(), shard.ring.begin(), shard.ring.end());
    if (shard.total > shard.ring.size()) {
      dropped_events += shard.total - shard.ring.size();
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });

  out << "{\"traceEvents\":[";
  bool first = true;
  if (dropped_events > 0) {
    out << "{\"name\":\"ftrepair.trace.dropped\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"dropped\":"
        << dropped_events << "}}";
    first = false;
  }
  for (const Event& event : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\"ftrepair\""
        << ",\"ph\":\"" << event.phase << "\",\"pid\":1,\"tid\":"
        << event.tid << ",\"ts\":" << JsonUs(event.ts_us);
    if (event.phase == 'X') {
      out << ",\"dur\":" << JsonUs(event.dur_us);
    } else if (event.phase == 'i') {
      out << ",\"s\":\"t\"";  // thread-scoped instant
    }
    if (!event.args.empty()) {
      out << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out << ",";
        first_arg = false;
        out << "\"" << JsonEscape(key) << "\":\"" << JsonEscape(value)
            << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "]}";
}

Status Tracer::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  ExportJson(out);
  out << "\n";
  if (!out) return Status::IOError("short write to '" + path + "'");
  return Status::OK();
}

}  // namespace ftrepair
