#ifndef FTREPAIR_COMMON_BUDGET_H_
#define FTREPAIR_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace ftrepair {

/// \brief Wall-clock deadline + cooperative cancellation for one run.
///
/// A Budget is owned by the caller of Repairer::Repair (one per call)
/// and threaded by pointer through every algorithm layer via
/// RepairOptions::budget. Layers call Charge() at loop boundaries; the
/// steady_clock is consulted only every kCheckInterval charged units,
/// so the common path is a counter increment. Once exhausted the state
/// latches and every later poll is a cheap load — a run never
/// "un-exhausts".
///
/// All accounting is relaxed-atomic, so Charge() is safe from any
/// thread: the parallel violation-graph build charges one shared
/// budget from every worker, and Cancel() remains safe from a third
/// thread (the serving-layer use case: a client disconnect cancels its
/// repair). Exhaustion latches exactly once whichever thread trips it.
///
/// Fault seam: when the FTREPAIR_FAULT_BUDGET_UNITS environment
/// variable is set to N, a *limited* budget additionally exhausts after
/// N charged work units — deterministic, wall-clock-free fault
/// injection for the degradation-ladder tests. Unlimited budgets ignore
/// the seam.
class Budget {
 public:
  static constexpr double kUnlimited =
      std::numeric_limits<double>::infinity();

  /// Unlimited budget: never exhausts unless cancelled.
  Budget() : Budget(kUnlimited) {}
  /// Budget that exhausts `deadline_ms` after construction (a
  /// non-positive deadline is exhausted immediately).
  explicit Budget(double deadline_ms);

  bool limited() const { return deadline_ms_ != kUnlimited; }
  double deadline_ms() const { return deadline_ms_; }
  double ElapsedMs() const;
  /// Remaining wall-clock headroom; 0 when exhausted, kUnlimited when
  /// not limited.
  double RemainingMs() const;
  uint64_t units_charged() const {
    return units_.load(std::memory_order_relaxed);
  }

  /// Cooperative cancellation; safe from another thread. Latches.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Records `units` of work. Returns true while the budget holds;
  /// false once it is exhausted. The deadline is only consulted every
  /// kCheckInterval units (amortized); the injected fault trips
  /// exactly at its unit count.
  bool Charge(uint64_t units = 1) const;

  /// True when the deadline passed, Cancel() was called, or the
  /// injected fault tripped. Consults the clock (and latches), so call
  /// at stage boundaries, not in inner loops — inner loops use Charge().
  bool Exhausted() const;

  /// ResourceExhausted naming `where` and the cause, or OK.
  Status Check(const char* where) const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Number of charged units between deadline consultations.
  static constexpr uint64_t kCheckInterval = 1024;

  bool LatchIfExpired() const;

  Clock::time_point start_;
  double deadline_ms_ = kUnlimited;
  uint64_t fault_units_ = 0;  // 0 = fault seam disabled
  mutable std::atomic<uint64_t> units_{0};
  mutable std::atomic<uint64_t> next_deadline_check_{kCheckInterval};
  mutable std::atomic<bool> exhausted_{false};
  std::atomic<bool> cancelled_{false};
};

/// Null-safe polling helpers: every layer accepts `const Budget*` that
/// may be null (no budget — the unlimited legacy behavior).
inline bool BudgetCharge(const Budget* budget, uint64_t units = 1) {
  return budget == nullptr || budget->Charge(units);
}
inline bool BudgetExhausted(const Budget* budget) {
  return budget != nullptr && budget->Exhausted();
}

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_BUDGET_H_
