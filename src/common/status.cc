#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace ftrepair {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {
void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "ValueOrDie on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace ftrepair
