#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cctype>
#include <cstdio>

#include "common/env.h"

namespace ftrepair {

namespace {

// Default level, overridable at startup via FTREPAIR_LOG_LEVEL.
LogLevel InitialLogLevel() {
  const char* env = EnvValue("FTREPAIR_LOG_LEVEL");
  LogLevel level = LogLevel::kWarning;
  if (env != nullptr && !ParseLogLevel(env, &level)) {
    WarnMalformedEnv("FTREPAIR_LOG_LEVEL", env,
                     "debug | info | warn | error");
  }
  return level;
}

std::atomic<LogLevel> g_level{InitialLogLevel()};

// Monotonic ms since the first log line (steady_clock — immune to
// wall-clock jumps). Anchored lazily so the prefix measures process
// activity, not static-init order.
double ElapsedMs() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%10.3fms %-5s ", ElapsedMs(),
                LogLevelName(level));
  stream_ << prefix << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level.load()) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal

}  // namespace ftrepair
