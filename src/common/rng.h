#ifndef FTREPAIR_COMMON_RNG_H_
#define FTREPAIR_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ftrepair {

/// \brief Deterministic pseudo-random generator (splitmix64 + xoshiro256**).
///
/// We own the implementation (rather than std::mt19937) so generated
/// datasets are bit-identical across standard libraries and platforms.
class Rng {
 public:
  /// Seeds the state from `seed` via splitmix64 expansion.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) (bound > 0); unbiased via rejection.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with probability `p`.
  bool Bernoulli(double p);

  /// Uniformly chosen index into a non-empty container of size `n`.
  size_t Index(size_t n) { return static_cast<size_t>(Uniform(n)); }

  /// Zipf-like skewed index in [0, n): rank r chosen with weight 1/(r+1).
  /// Used by the generators to give value pools realistic frequency skew.
  size_t SkewedIndex(size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_RNG_H_
