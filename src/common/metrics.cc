#include "common/metrics.h"

#include <cstdio>
#include <sstream>

namespace ftrepair {

namespace {

// Locale-independent double rendering for JSON (%.17g round-trips,
// but shorter forms are preferred for readability; %g at 15 digits is
// ample for millisecond sums).
std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Histogram::Observe(double ms) {
  size_t i = 0;
  while (i < kBoundsMs.size() && ms > kBoundsMs[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20; relaxed is fine — the sum is
  // only read in snapshots.
  sum_.fetch_add(ms, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked singleton: metric pointers cached in function-local statics
  // across the codebase must outlive every other static destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& label_key,
                                     const std::string& label_value) {
  return GetCounter(name + "{" + label_key + "=" + label_value + "}");
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram()))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << counter->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << JsonNumber(gauge->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << hist->count()
        << ",\"sum_ms\":" << JsonNumber(hist->sum()) << ",\"buckets\":[";
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (i > 0) out << ",";
      out << "{\"le\":";
      if (i < Histogram::kBoundsMs.size()) {
        out << JsonNumber(Histogram::kBoundsMs[i]);
      } else {
        out << "\"+inf\"";
      }
      out << ",\"count\":" << hist->bucket_count(i) << "}";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, hist] : histograms_) {
    for (auto& bucket : hist->buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    hist->count_.store(0, std::memory_order_relaxed);
    hist->sum_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ftrepair
