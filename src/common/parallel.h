#ifndef FTREPAIR_COMMON_PARALLEL_H_
#define FTREPAIR_COMMON_PARALLEL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/budget.h"

namespace ftrepair {

/// \brief A fixed-size pool of worker threads draining a FIFO task
/// queue.
///
/// The pool exists so that hot loops (the violation-graph similarity
/// join, primarily) can fan out without paying thread creation per
/// call. Tasks must not throw; an escaped exception terminates the
/// process (workers run tasks bare). Submission is cheap: one mutex
/// acquisition plus a condition-variable signal.
///
/// Most callers never construct a pool: ParallelFor() below draws
/// helpers from the process-wide Shared() pool and runs the caller's
/// thread as one more worker.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  /// Drains nothing: pending tasks are still executed, then workers
  /// join. Prefer the never-destroyed Shared() pool in library code.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// The process-wide shared pool, sized to HardwareThreads() - 1
  /// (ParallelFor callers contribute their own thread), created on
  /// first use and intentionally never destroyed — like the metrics
  /// registry, so cached references stay valid for the process
  /// lifetime and no static-destruction-order races exist.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// std::thread::hardware_concurrency() clamped to >= 1 (the standard
/// allows it to return 0 when unknown).
int HardwareThreads();

/// Resolves a `--threads`-style setting: 0 means "all hardware
/// threads", anything else is clamped to >= 1.
int ResolveThreads(int threads);

/// \brief Runs fn(shard) for every shard in [0, num_shards) across up
/// to `parallelism` threads, blocking until all claimed shards finish.
///
/// Shards are claimed dynamically (an atomic cursor), so uneven shard
/// costs balance across threads. The calling thread participates;
/// helpers come from ThreadPool::Shared(), so `parallelism = 1` (or a
/// single shard) runs everything inline on the caller with no
/// synchronization — bit-for-bit the serial execution.
///
/// `budget` (optional, not owned) is polled between shards: once it is
/// exhausted or cancelled, shards not yet claimed are skipped and fn is
/// never called for them. Returns true when every shard ran, false when
/// any was skipped.
///
/// fn must be safe to call concurrently for distinct shards and must
/// not throw.
///
/// Nesting is safe: the caller blocks on shard *completion*, not on
/// its helper tasks having run, and always participates — so a pool
/// task calling ParallelFor can finish its own shards even when every
/// other worker is busy and its helpers never get scheduled (they
/// claim nothing and exit once they do run). Under saturation a
/// nested call therefore degrades toward the caller running alone,
/// never toward deadlock; idle workers join in and share the load.
bool ParallelFor(int num_shards, int parallelism,
                 const std::function<void(int)>& fn,
                 const Budget* budget = nullptr);

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_PARALLEL_H_
