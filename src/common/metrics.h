#ifndef FTREPAIR_COMMON_METRICS_H_
#define FTREPAIR_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ftrepair {

/// \brief Process-wide registry of named counters, gauges, and
/// fixed-bucket latency histograms.
///
/// Designed for hot-path cheapness: instruments fetch their metric once
/// (typically into a function-local static pointer, paying the registry
/// mutex a single time) and afterwards every update is one relaxed
/// atomic operation. Registered metrics are never deallocated while the
/// process lives, so cached pointers stay valid forever.
///
/// Naming convention (see docs/OBSERVABILITY.md for the full catalog):
/// dot-separated `ftrepair.<subsystem>.<what>[_<unit>]`, e.g.
/// `ftrepair.detect.pairs_evaluated`, `ftrepair.repair.total_ms`.
/// Labeled counters mangle the label into the name Prometheus-style:
/// `ftrepair.degradations{stage=exact->greedy}`.

/// Monotonic event count. Relaxed increments: safe from any thread,
/// no ordering guarantees with surrounding code.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0};
};

/// Fixed-bucket latency histogram (bounds in milliseconds, exponential
/// 10us..30s plus +inf overflow). Observe() is lock-free: a linear scan
/// over 14 bounds plus two relaxed atomic adds.
class Histogram {
 public:
  /// Upper bucket bounds in ms; an implicit +inf bucket follows.
  static constexpr std::array<double, 14> kBoundsMs = {
      0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000,
      30000};
  static constexpr size_t kNumBuckets = kBoundsMs.size() + 1;

  void Observe(double ms);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Count of bucket `i` (i == kBoundsMs.size() is the +inf bucket).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry (never destroyed).
  static MetricsRegistry& Instance();

  /// Finds or creates the named metric. The returned pointer is stable
  /// for the process lifetime — cache it in a static at the call site.
  /// A name registered as one kind must not be re-requested as another
  /// (returns the existing metric of the requested kind or aborts a
  /// debug build via logging; release builds get a fresh suffix).
  Counter* GetCounter(const std::string& name);
  /// Labeled counter: registered as `name{key=value}`.
  Counter* GetCounter(const std::string& name, const std::string& label_key,
                      const std::string& label_value);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// JSON snapshot of every registered metric:
  /// {"counters":{...},"gauges":{...},"histograms":{"name":
  ///   {"count":N,"sum":S,"buckets":[{"le":0.01,"count":n},...,
  ///    {"le":"+inf","count":n}]}}}
  /// Names are emitted in sorted order, so output is deterministic.
  std::string SnapshotJson() const;

  /// Zeroes every registered metric (registrations survive, cached
  /// pointers stay valid). For tests and the CLI's per-run snapshots.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::Instance().
inline MetricsRegistry& Metrics() { return MetricsRegistry::Instance(); }

/// Escapes `s` for embedding in a JSON string literal (shared by the
/// metrics snapshot and the trace exporter).
std::string JsonEscape(const std::string& s);

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_METRICS_H_
