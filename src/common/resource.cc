#include "common/resource.h"

#include <string>

#include "common/env.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace ftrepair {

namespace {

// Fault seam: FTREPAIR_FAULT_MEM_BYTES=N forces any limited memory
// budget to exhaust once N bytes have been charged cumulatively. Read
// per construction so tests can setenv/unsetenv between cases.
uint64_t FaultBytesFromEnv() {
  uint64_t value = 0;
  if (!EnvU64("FTREPAIR_FAULT_MEM_BYTES", "a non-negative integer byte count",
              &value)) {
    return 0;
  }
  return value;
}

}  // namespace

const char* MemPhaseName(MemPhase phase) {
  switch (phase) {
    case MemPhase::kIngest:
      return "ingest";
    case MemPhase::kGraph:
      return "graph";
    case MemPhase::kIndex:
      return "index";
    case MemPhase::kSolve:
      return "solve";
    case MemPhase::kTargets:
      return "targets";
    case MemPhase::kOther:
      return "other";
  }
  return "?";
}

MemoryBudget::MemoryBudget(uint64_t hard_limit_bytes, double soft_fraction)
    : hard_limit_(hard_limit_bytes),
      soft_limit_(kUnlimited),
      fault_bytes_(hard_limit_bytes == kUnlimited ? 0 : FaultBytesFromEnv()) {
  if (limited()) {
    if (soft_fraction < 0) soft_fraction = 0;
    if (soft_fraction > 1) soft_fraction = 1;
    soft_limit_ =
        static_cast<uint64_t>(static_cast<double>(hard_limit_) * soft_fraction);
    if (hard_limit_ == 0) {
      exhausted_.store(true, std::memory_order_relaxed);
      soft_latched_.store(true, std::memory_order_relaxed);
    }
  }
}

void MemoryBudget::LatchExhausted(bool injected) const {
  if (injected) fault_tripped_.store(true, std::memory_order_relaxed);
  if (!exhausted_.exchange(true, std::memory_order_relaxed)) {
    static Counter* crossings =
        Metrics().GetCounter("ftrepair.memory.hard_crossings");
    crossings->Increment();
    Tracer::Instance().RecordInstant(
        "memory.hard_watermark",
        {{"cause", injected ? "injected" : "hard-limit"},
         {"resident_bytes", std::to_string(resident_bytes())}});
  }
}

bool MemoryBudget::TryCharge(uint64_t bytes, MemPhase phase) const {
  if (exhausted_.load(std::memory_order_relaxed)) return false;
  uint64_t total =
      charged_total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  phase_bytes_[static_cast<size_t>(phase)].fetch_add(
      bytes, std::memory_order_relaxed);
  if (fault_bytes_ != 0 && total >= fault_bytes_) {
    LatchExhausted(/*injected=*/true);
    return false;
  }
  uint64_t resident =
      resident_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (resident > peak &&
         !peak_.compare_exchange_weak(peak, resident,
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
  static Gauge* resident_gauge =
      Metrics().GetGauge("ftrepair.memory.resident_bytes");
  static Gauge* peak_gauge = Metrics().GetGauge("ftrepair.memory.peak_bytes");
  resident_gauge->Set(static_cast<double>(resident));
  peak_gauge->Set(static_cast<double>(peak_bytes()));
  if (resident > hard_limit_) {
    // The instant inside LatchExhausted records the crossing occupancy;
    // the failed charge is then rolled back (the caller truncates
    // instead of growing), while peak keeps the attempted high-water.
    LatchExhausted(/*injected=*/false);
    resident_.fetch_sub(bytes, std::memory_order_relaxed);
    resident_gauge->Set(static_cast<double>(resident - bytes));
    return false;
  }
  if (resident > soft_limit_ &&
      !soft_latched_.exchange(true, std::memory_order_relaxed)) {
    static Counter* crossings =
        Metrics().GetCounter("ftrepair.memory.soft_crossings");
    crossings->Increment();
    Tracer::Instance().RecordInstant(
        "memory.soft_watermark",
        {{"resident_bytes", std::to_string(resident)},
         {"soft_limit_bytes", std::to_string(soft_limit_)}});
  }
  return true;
}

void MemoryBudget::Release(uint64_t bytes) const {
  uint64_t previous = resident_.load(std::memory_order_relaxed);
  uint64_t lowered;
  do {
    lowered = previous > bytes ? previous - bytes : 0;
  } while (!resident_.compare_exchange_weak(previous, lowered,
                                            std::memory_order_relaxed,
                                            std::memory_order_relaxed));
  static Gauge* resident_gauge =
      Metrics().GetGauge("ftrepair.memory.resident_bytes");
  resident_gauge->Set(static_cast<double>(lowered));
}

Status MemoryBudget::Check(const char* where) const {
  if (!Exhausted()) return Status::OK();
  std::string cause;
  if (fault_tripped_.load(std::memory_order_relaxed)) {
    cause = "injected fault after " + std::to_string(charged_total_bytes()) +
            " charged bytes";
  } else {
    cause = "hard limit of " + std::to_string(hard_limit_) +
            " bytes exceeded (resident " + std::to_string(resident_bytes()) +
            ", peak " + std::to_string(peak_bytes()) + ")";
  }
  return Status::ResourceExhausted(
      std::string("memory budget exhausted in ") + where + ": " + cause);
}

Status ResourceCheck(const Budget* budget, const MemoryBudget* memory,
                     const char* where) {
  if (budget != nullptr && budget->Exhausted()) return budget->Check(where);
  if (memory != nullptr && memory->Exhausted()) return memory->Check(where);
  return Status::ResourceExhausted(std::string("resources exhausted in ") +
                                   where);
}

}  // namespace ftrepair
