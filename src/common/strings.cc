#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ftrepair {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  double value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

std::string FormatDouble(double v) {
  if (v == static_cast<long long>(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string s(buf);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace ftrepair
