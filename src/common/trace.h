#ifndef FTREPAIR_COMMON_TRACE_H_
#define FTREPAIR_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ftrepair {

/// \brief Scoped-span tracing with Chrome trace_event JSON export.
///
/// Usage at an instrumentation point:
///
///   FTR_TRACE_SPAN("expansion.solve_single");
///   FTR_TRACE_SPAN("expansion.solve", {{"fd", fd.name()}});
///
/// The span records a complete ("ph":"X") event from construction to
/// scope exit. Tracing is *disabled by default*: a disabled span costs
/// one relaxed atomic load and touches no clock, so instrumented code
/// runs at full speed in production. Enable with
/// `Tracer::Instance().Enable()` (the CLI does this for --trace-json)
/// and export with ExportJson(); the output loads directly in
/// chrome://tracing and https://ui.perfetto.dev.
///
/// Events land in a lock-sharded ring buffer: writers pick a shard from
/// their thread id, so concurrent repairs on different threads contend
/// only rarely. When a shard ring wraps, its oldest events are
/// overwritten and the drop is counted (surfaced in the export as a
/// `ftrepair.trace.dropped` metadata event).
class Tracer {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  static Tracer& Instance();

  /// Clears the buffer and starts recording. Timestamps are relative
  /// to the Enable() call.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since Enable() (0 when disabled).
  double NowUs() const;

  /// Records a complete event ("ph":"X"): a span [ts_us, ts_us+dur_us].
  void RecordComplete(std::string name, double ts_us, double dur_us,
                      Args args = {});
  /// Records an instant event ("ph":"i") at now — e.g. a degradation.
  void RecordInstant(std::string name, Args args = {});

  /// Writes {"traceEvents":[...]} with every buffered event.
  void ExportJson(std::ostream& out) const;
  /// ExportJson to `path`.
  Status WriteFile(const std::string& path) const;

  /// Number of events dropped to ring-buffer wrap since Enable().
  uint64_t dropped() const;

 private:
  struct Event {
    char phase;  // 'X' complete, 'i' instant
    std::string name;
    double ts_us;
    double dur_us;
    uint32_t tid;
    Args args;
  };

  // Shard count and per-shard capacity bound worst-case memory at
  // ~kNumShards * kShardCapacity events. 64k events outlast any
  // single CLI run; long-running servers wrap and keep the newest.
  static constexpr size_t kNumShards = 8;
  static constexpr size_t kShardCapacity = 8192;

  struct Shard {
    mutable std::mutex mu;
    std::vector<Event> ring;
    size_t next = 0;       // next write position
    uint64_t total = 0;    // events ever written since Enable()
  };

  Tracer();
  Shard& ShardForThisThread();
  void Push(Event event);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Shard> shards_;
};

/// RAII span: records name + wall time into the Tracer on scope exit.
/// Cheap no-op while tracing is disabled (no clock read, no args copy).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(name) {
    active_ = Tracer::Instance().enabled();
    if (active_) start_us_ = Tracer::Instance().NowUs();
  }
  TraceSpan(const char* name, Tracer::Args args) : name_(name) {
    active_ = Tracer::Instance().enabled();
    if (active_) {
      args_ = std::move(args);
      start_us_ = Tracer::Instance().NowUs();
    }
  }
  ~TraceSpan() {
    if (active_) {
      Tracer& tracer = Tracer::Instance();
      tracer.RecordComplete(name_, start_us_, tracer.NowUs() - start_us_,
                            std::move(args_));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  bool active_;
  double start_us_ = 0;
  Tracer::Args args_;
};

#define FTR_TRACE_CONCAT_IMPL(a, b) a##b
#define FTR_TRACE_CONCAT(a, b) FTR_TRACE_CONCAT_IMPL(a, b)

/// FTR_TRACE_SPAN("name") or FTR_TRACE_SPAN("name", {{"k", v}}):
/// scoped span covering the rest of the enclosing block.
#define FTR_TRACE_SPAN(...) \
  ::ftrepair::TraceSpan FTR_TRACE_CONCAT(ftr_trace_span_, __LINE__)(__VA_ARGS__)

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_TRACE_H_
