#include "common/rng.h"

#include <cmath>

namespace ftrepair {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Lemire-style rejection to remove modulo bias.
  uint64_t threshold = (-bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

size_t Rng::SkewedIndex(size_t n) {
  if (n <= 1) return 0;
  // Inverse-CDF sample of weights 1/(r+1) ~ harmonic; approximate via
  // exp of uniform over log range, which is cheap and deterministic.
  double u = UniformDouble();
  double hn = std::log(static_cast<double>(n) + 1.0);
  size_t idx = static_cast<size_t>(std::exp(u * hn)) - 1;
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace ftrepair
