#ifndef FTREPAIR_COMMON_STRINGS_H_
#define FTREPAIR_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ftrepair {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// True iff `s` parses fully as a finite double.
bool ParseDouble(std::string_view s, double* out);

/// Formats a double compactly: integers without trailing ".0",
/// otherwise up to 6 significant decimals with trailing zeros removed.
std::string FormatDouble(double v);

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_STRINGS_H_
