#include "common/env.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

namespace ftrepair {

const char* EnvValue(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return nullptr;
  return value;
}

bool ParseU64Strict(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  uint64_t value = 0;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;  // overflow
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

void WarnMalformedEnv(const char* name, const char* value,
                      const char* expected) {
  std::fprintf(stderr, "[WARN env] malformed %s='%s' (expected %s); ignoring\n",
               name, value, expected);
}

bool EnvU64(const char* name, const char* expected, uint64_t* out) {
  const char* value = EnvValue(name);
  if (value == nullptr) return false;
  if (!ParseU64Strict(value, out)) {
    WarnMalformedEnv(name, value, expected);
    return false;
  }
  return true;
}

}  // namespace ftrepair
