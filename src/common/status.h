#ifndef FTREPAIR_COMMON_STATUS_H_
#define FTREPAIR_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace ftrepair {

/// Error categories used across the library. The library never throws;
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIOError,
  kResourceExhausted,
  kInternal,
};

/// \brief Outcome of a fallible operation (Arrow/RocksDB idiom).
///
/// A Status is cheap to copy in the OK case. Construct error states via
/// the named factory functions, e.g. `Status::InvalidArgument("bad tau")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad tau".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief A value-or-error union: holds either a T or a non-OK Status.
///
/// Access the value only after checking `ok()`. `ValueOrDie()` aborts on
/// error states, which is appropriate in tests and examples.
template <typename T>
class Result {
 public:
  /// Implicit from value — enables `return some_t;`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status — enables `return Status::...(...)`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value, aborting the process if this Result holds an error.
  T ValueOrDie() &&;

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) internal::DieOnBadResult(status_);
  return std::move(*value_);
}

/// Propagates a non-OK Status out of the current function.
#define FTR_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::ftrepair::Status _ftr_st = (expr);       \
    if (!_ftr_st.ok()) return _ftr_st;         \
  } while (false)

#define FTR_CONCAT_IMPL(a, b) a##b
#define FTR_CONCAT(a, b) FTR_CONCAT_IMPL(a, b)

/// Evaluates a Result-returning expression, propagating errors and
/// binding the unwrapped value otherwise:
///   FTR_ASSIGN_OR_RETURN(auto table, ReadCsv(path));
#define FTR_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto FTR_CONCAT(_ftr_result_, __LINE__) = (rexpr);                \
  if (!FTR_CONCAT(_ftr_result_, __LINE__).ok())                     \
    return FTR_CONCAT(_ftr_result_, __LINE__).status();             \
  lhs = std::move(FTR_CONCAT(_ftr_result_, __LINE__)).value()

}  // namespace ftrepair

#endif  // FTREPAIR_COMMON_STATUS_H_
