#include "constraint/fd.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"

namespace ftrepair {

Result<FD> FD::Make(std::vector<int> lhs, std::vector<int> rhs,
                    std::string name, double confidence) {
  if (lhs.empty()) return Status::InvalidArgument("FD has empty LHS");
  if (rhs.empty()) return Status::InvalidArgument("FD has empty RHS");
  if (!(confidence > 0.0 && confidence <= 1.0)) {
    return Status::InvalidArgument(
        "FD confidence " + std::to_string(confidence) +
        " outside (0, 1]");
  }
  std::unordered_set<int> seen;
  for (int c : lhs) {
    if (c < 0) return Status::InvalidArgument("negative column index in FD");
    if (!seen.insert(c).second) {
      return Status::InvalidArgument("duplicate column in FD LHS");
    }
  }
  for (int c : rhs) {
    if (c < 0) return Status::InvalidArgument("negative column index in FD");
    if (!seen.insert(c).second) {
      return Status::InvalidArgument(
          "column appears twice in FD (LHS/RHS must be disjoint)");
    }
  }
  FD fd;
  fd.lhs_ = std::move(lhs);
  fd.rhs_ = std::move(rhs);
  fd.attrs_ = fd.lhs_;
  fd.attrs_.insert(fd.attrs_.end(), fd.rhs_.begin(), fd.rhs_.end());
  fd.name_ = std::move(name);
  fd.confidence_ = confidence;
  return fd;
}

int FD::AttrPosition(int col) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == col) return static_cast<int>(i);
  }
  return -1;
}

bool FD::IsLhsColumn(int col) const {
  return std::find(lhs_.begin(), lhs_.end(), col) != lhs_.end();
}

std::vector<int> FD::SharedColumns(const FD& other) const {
  std::vector<int> shared;
  for (int c : attrs_) {
    if (other.UsesColumn(c)) shared.push_back(c);
  }
  return shared;
}

std::string FD::ToString(const Schema& schema) const {
  std::string out;
  if (!name_.empty()) out += name_ + ": ";
  out += "[";
  for (size_t i = 0; i < lhs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.column(lhs_[i]).name;
  }
  out += "] -> [";
  for (size_t i = 0; i < rhs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.column(rhs_[i]).name;
  }
  out += "]";
  return out;
}

std::string FD::ToSpec(const Schema& schema) const {
  std::string out;
  if (!name_.empty()) out += name_ + ": ";
  for (size_t i = 0; i < lhs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.column(lhs_[i]).name;
  }
  out += " -> ";
  for (size_t i = 0; i < rhs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.column(rhs_[i]).name;
  }
  if (confidence_ < 1.0) out += " @ " + FormatDouble(confidence_);
  return out;
}

}  // namespace ftrepair
