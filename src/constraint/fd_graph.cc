#include "constraint/fd_graph.h"

#include <algorithm>

namespace ftrepair {

FDGraph::FDGraph(const std::vector<FD>& fds) {
  int n = static_cast<int>(fds.size());
  adjacency_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (fds[static_cast<size_t>(i)].Overlaps(fds[static_cast<size_t>(j)])) {
        adjacency_[static_cast<size_t>(i)].push_back(j);
        adjacency_[static_cast<size_t>(j)].push_back(i);
      }
    }
  }
  // Union via DFS in index order => components sorted by smallest member.
  std::vector<bool> visited(static_cast<size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    if (visited[static_cast<size_t>(i)]) continue;
    std::vector<int> comp;
    std::vector<int> stack = {i};
    visited[static_cast<size_t>(i)] = true;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      comp.push_back(u);
      for (int v : adjacency_[static_cast<size_t>(u)]) {
        if (!visited[static_cast<size_t>(v)]) {
          visited[static_cast<size_t>(v)] = true;
          stack.push_back(v);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components_.push_back(std::move(comp));
  }
}

bool FDGraph::Connected(int a, int b) const {
  const auto& adj = adjacency_[static_cast<size_t>(a)];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

}  // namespace ftrepair
