#ifndef FTREPAIR_CONSTRAINT_CFD_H_
#define FTREPAIR_CONSTRAINT_CFD_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "constraint/fd.h"
#include "data/table.h"

namespace ftrepair {

/// One tableau row: an entry per attribute of the embedded FD (attrs()
/// order); std::nullopt is the wildcard '_'.
using PatternRow = std::vector<std::optional<Value>>;

/// \brief Conditional functional dependency: an embedded FD plus a
/// pattern tableau (Fan et al., TODS'08), the extension the paper's
/// §2 notes all results carry over to.
///
/// A tuple *matches* a tableau row when it agrees with every LHS
/// constant. Matching tuples are subject to the embedded FD semantics
/// among themselves; RHS constants additionally pin the permitted RHS
/// value (a "constant CFD" violation is a single non-conforming tuple).
class CFD {
 public:
  CFD() = default;
  /// Validated constructor; every tableau row must have fd.num_attrs()
  /// entries.
  static Result<CFD> Make(FD fd, std::vector<PatternRow> tableau,
                          std::string name = "");

  const FD& fd() const { return fd_; }
  const std::vector<PatternRow>& tableau() const { return tableau_; }
  const std::string& name() const { return name_; }

  /// True iff `row` agrees with every LHS constant of tableau row `p`.
  bool MatchesLhs(const Row& row, int p) const;

  /// True iff `row` agrees with every RHS constant of tableau row `p`.
  bool MatchesRhs(const Row& row, int p) const;

  /// Row ids of `table` matching the LHS of tableau row `p`.
  std::vector<int> ApplicableRows(const Table& table, int p) const;

  /// Row ids violating an RHS constant of tableau row `p` (i.e. they
  /// match its LHS but disagree with some RHS constant).
  std::vector<int> ConstantViolations(const Table& table, int p) const;

 private:
  FD fd_;
  std::vector<PatternRow> tableau_;
  std::string name_;
};

}  // namespace ftrepair

#endif  // FTREPAIR_CONSTRAINT_CFD_H_
