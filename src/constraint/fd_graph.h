#ifndef FTREPAIR_CONSTRAINT_FD_GRAPH_H_
#define FTREPAIR_CONSTRAINT_FD_GRAPH_H_

#include <vector>

#include "constraint/fd.h"

namespace ftrepair {

/// \brief The FD graph of §4.1: vertices are FDs, edges join FDs that
/// share at least one attribute.
///
/// Connected components can be repaired independently (Theorem 5);
/// the Repairer facade uses this decomposition to choose between
/// single-FD and joint multi-FD algorithms.
class FDGraph {
 public:
  explicit FDGraph(const std::vector<FD>& fds);

  int num_fds() const { return static_cast<int>(adjacency_.size()); }

  /// FDs adjacent to `fd_index` (sharing >= 1 attribute).
  const std::vector<int>& Neighbors(int fd_index) const {
    return adjacency_[static_cast<size_t>(fd_index)];
  }

  /// Connected components, each a sorted list of FD indices; components
  /// are ordered by their smallest member.
  const std::vector<std::vector<int>>& Components() const {
    return components_;
  }

  /// True iff FDs `a` and `b` are directly connected.
  bool Connected(int a, int b) const;

 private:
  std::vector<std::vector<int>> adjacency_;
  std::vector<std::vector<int>> components_;
};

}  // namespace ftrepair

#endif  // FTREPAIR_CONSTRAINT_FD_GRAPH_H_
