#ifndef FTREPAIR_CONSTRAINT_FD_PARSER_H_
#define FTREPAIR_CONSTRAINT_FD_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "constraint/fd.h"
#include "data/schema.h"

namespace ftrepair {

/// Parses a textual FD against `schema`.
///
/// Grammar: `[name ':'] attr (',' attr)* '->' attr (',' attr)*`
/// e.g. "phi2: City -> State" or "City, Street -> District".
Result<FD> ParseFD(std::string_view text, const Schema& schema);

/// Parses one FD per non-empty line; everything from '#' to the end of
/// a line is a comment.
Result<std::vector<FD>> ParseFDList(std::string_view text,
                                    const Schema& schema);

}  // namespace ftrepair

#endif  // FTREPAIR_CONSTRAINT_FD_PARSER_H_
