#ifndef FTREPAIR_CONSTRAINT_FD_PARSER_H_
#define FTREPAIR_CONSTRAINT_FD_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "constraint/cfd.h"
#include "constraint/fd.h"
#include "data/schema.h"

namespace ftrepair {

/// Parses a textual FD against `schema`.
///
/// Grammar: `[name ':'] attr (',' attr)* '->' attr (',' attr)*
///           ['@' confidence]`
/// e.g. "phi2: City -> State", "City, Street -> District" or the soft
/// form "zip2city: Zip -> City @ 0.9" (confidence in (0, 1], default 1).
Result<FD> ParseFD(std::string_view text, const Schema& schema);

/// Parses one FD per non-empty line; everything from '#' to the end of
/// a line is a comment.
Result<std::vector<FD>> ParseFDList(std::string_view text,
                                    const Schema& schema);

/// Parses a textual CFD: an embedded FD followed by one or more
/// '|'-separated tableau rows, each `lhsvals '->' rhsvals` with '_' as
/// the wildcard, e.g.
///   `cphi: City, Street -> District | NYC, _ -> _ | Boston, Main -> Fin`
/// Values are typed by the schema column (numbers must parse as
/// numbers).
Result<CFD> ParseCFD(std::string_view text, const Schema& schema);

/// Parses one CFD per non-empty line ('#' comments as in ParseFDList).
Result<std::vector<CFD>> ParseCFDList(std::string_view text,
                                      const Schema& schema);

}  // namespace ftrepair

#endif  // FTREPAIR_CONSTRAINT_FD_PARSER_H_
