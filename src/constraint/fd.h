#ifndef FTREPAIR_CONSTRAINT_FD_H_
#define FTREPAIR_CONSTRAINT_FD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"

namespace ftrepair {

/// \brief A functional dependency X -> Y over column indices of a Schema.
///
/// `attrs()` is the concatenation X then Y — the projection order used
/// everywhere (patterns, distances, targets): `t^phi = t[X ∪ Y]`.
class FD {
 public:
  FD() = default;
  /// Validated constructor: lhs/rhs must be non-empty, disjoint and
  /// duplicate-free; `confidence` must lie in (0, 1].
  static Result<FD> Make(std::vector<int> lhs, std::vector<int> rhs,
                         std::string name = "", double confidence = 1.0);

  const std::vector<int>& lhs() const { return lhs_; }
  const std::vector<int>& rhs() const { return rhs_; }
  /// X ∪ Y in projection order (X first).
  const std::vector<int>& attrs() const { return attrs_; }
  const std::string& name() const { return name_; }
  /// Soft-FD confidence in (0, 1]: the probability the dependency
  /// actually holds (Carmeli et al., "Database Repairing with Soft
  /// Functional Dependencies"). 1.0 (the default) is a hard FD; the
  /// soft-fd repair semantics turns lower confidences into finite
  /// violation penalties. Ignored by the ft-cost and cardinality
  /// semantics.
  double confidence() const { return confidence_; }

  int lhs_size() const { return static_cast<int>(lhs_.size()); }
  int rhs_size() const { return static_cast<int>(rhs_.size()); }
  int num_attrs() const { return static_cast<int>(attrs_.size()); }

  /// Position of column `col` within attrs(), or -1.
  int AttrPosition(int col) const;
  bool UsesColumn(int col) const { return AttrPosition(col) >= 0; }
  /// True iff `col` is in X.
  bool IsLhsColumn(int col) const;

  /// Columns shared with `other` (in this->attrs() order); two FDs with
  /// a non-empty overlap must be repaired jointly (§4.1).
  std::vector<int> SharedColumns(const FD& other) const;
  bool Overlaps(const FD& other) const { return !SharedColumns(other).empty(); }

  /// Renders as "Name: [A, B] -> [C]" using `schema` for column names.
  std::string ToString(const Schema& schema) const;

  /// Renders in the parser's grammar ("name: A, B -> C"), so
  /// ParseFD(ToSpec(schema), schema) round-trips.
  std::string ToSpec(const Schema& schema) const;

 private:
  std::vector<int> lhs_;
  std::vector<int> rhs_;
  std::vector<int> attrs_;
  std::string name_;
  double confidence_ = 1.0;
};

}  // namespace ftrepair

#endif  // FTREPAIR_CONSTRAINT_FD_H_
