#include "constraint/cfd.h"

namespace ftrepair {

Result<CFD> CFD::Make(FD fd, std::vector<PatternRow> tableau,
                      std::string name) {
  for (const PatternRow& row : tableau) {
    if (static_cast<int>(row.size()) != fd.num_attrs()) {
      return Status::InvalidArgument(
          "CFD tableau row arity " + std::to_string(row.size()) +
          " != FD attr count " + std::to_string(fd.num_attrs()));
    }
  }
  if (tableau.empty()) {
    return Status::InvalidArgument("CFD tableau must have >= 1 row");
  }
  CFD cfd;
  cfd.fd_ = std::move(fd);
  cfd.tableau_ = std::move(tableau);
  cfd.name_ = std::move(name);
  return cfd;
}

bool CFD::MatchesLhs(const Row& row, int p) const {
  const PatternRow& pat = tableau_[static_cast<size_t>(p)];
  for (int i = 0; i < fd_.lhs_size(); ++i) {
    const auto& cell = pat[static_cast<size_t>(i)];
    if (!cell.has_value()) continue;
    if (row[static_cast<size_t>(fd_.attrs()[static_cast<size_t>(i)])] !=
        *cell) {
      return false;
    }
  }
  return true;
}

bool CFD::MatchesRhs(const Row& row, int p) const {
  const PatternRow& pat = tableau_[static_cast<size_t>(p)];
  for (int i = fd_.lhs_size(); i < fd_.num_attrs(); ++i) {
    const auto& cell = pat[static_cast<size_t>(i)];
    if (!cell.has_value()) continue;
    if (row[static_cast<size_t>(fd_.attrs()[static_cast<size_t>(i)])] !=
        *cell) {
      return false;
    }
  }
  return true;
}

std::vector<int> CFD::ApplicableRows(const Table& table, int p) const {
  std::vector<int> out;
  for (int r = 0; r < table.num_rows(); ++r) {
    if (MatchesLhs(table.row(r), p)) out.push_back(r);
  }
  return out;
}

std::vector<int> CFD::ConstantViolations(const Table& table, int p) const {
  std::vector<int> out;
  for (int r = 0; r < table.num_rows(); ++r) {
    const Row& row = table.row(r);
    if (MatchesLhs(row, p) && !MatchesRhs(row, p)) out.push_back(r);
  }
  return out;
}

}  // namespace ftrepair
