#include "constraint/fd_parser.h"

#include "common/strings.h"

namespace ftrepair {

namespace {

Result<std::vector<int>> ParseAttrList(std::string_view text,
                                       const Schema& schema) {
  std::vector<int> cols;
  for (const std::string& part : Split(text, ',')) {
    std::string_view name = Trim(part);
    if (name.empty()) {
      return Status::InvalidArgument("empty attribute name in FD: '" +
                                     std::string(text) + "'");
    }
    FTR_ASSIGN_OR_RETURN(int idx, schema.RequireIndex(name));
    cols.push_back(idx);
  }
  return cols;
}

}  // namespace

Result<FD> ParseFD(std::string_view text, const Schema& schema) {
  std::string_view body = Trim(text);
  std::string name;
  // Optional leading "name:"; careful not to confuse with "A->B" parts.
  size_t colon = body.find(':');
  size_t arrow_probe = body.find("->");
  if (colon != std::string_view::npos &&
      (arrow_probe == std::string_view::npos || colon < arrow_probe)) {
    name = std::string(Trim(body.substr(0, colon)));
    body = Trim(body.substr(colon + 1));
  }
  size_t arrow = body.find("->");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument("FD '" + std::string(text) +
                                   "' has no '->'");
  }
  FTR_ASSIGN_OR_RETURN(std::vector<int> lhs,
                       ParseAttrList(body.substr(0, arrow), schema));
  FTR_ASSIGN_OR_RETURN(std::vector<int> rhs,
                       ParseAttrList(body.substr(arrow + 2), schema));
  return FD::Make(std::move(lhs), std::move(rhs), std::move(name));
}

Result<std::vector<FD>> ParseFDList(std::string_view text,
                                    const Schema& schema) {
  std::vector<FD> fds;
  for (const std::string& line : Split(text, '\n')) {
    // Strip trailing comments ("Zip -> City   # g3=0.01").
    std::string_view body = line;
    size_t hash = body.find('#');
    if (hash != std::string_view::npos) body = body.substr(0, hash);
    body = Trim(body);
    if (body.empty()) continue;
    FTR_ASSIGN_OR_RETURN(FD fd, ParseFD(body, schema));
    fds.push_back(std::move(fd));
  }
  return fds;
}

}  // namespace ftrepair
