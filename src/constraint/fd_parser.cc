#include "constraint/fd_parser.h"

#include "common/strings.h"

namespace ftrepair {

namespace {

Result<std::vector<int>> ParseAttrList(std::string_view text,
                                       const Schema& schema) {
  std::vector<int> cols;
  for (const std::string& part : Split(text, ',')) {
    std::string_view name = Trim(part);
    if (name.empty()) {
      return Status::InvalidArgument("empty attribute name in FD: '" +
                                     std::string(text) + "'");
    }
    FTR_ASSIGN_OR_RETURN(int idx, schema.RequireIndex(name));
    cols.push_back(idx);
  }
  return cols;
}

}  // namespace

Result<FD> ParseFD(std::string_view text, const Schema& schema) {
  std::string_view body = Trim(text);
  std::string name;
  // Optional leading "name:"; careful not to confuse with "A->B" parts.
  size_t colon = body.find(':');
  size_t arrow_probe = body.find("->");
  if (colon != std::string_view::npos &&
      (arrow_probe == std::string_view::npos || colon < arrow_probe)) {
    name = std::string(Trim(body.substr(0, colon)));
    body = Trim(body.substr(colon + 1));
  }
  size_t arrow = body.find("->");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument("FD '" + std::string(text) +
                                   "' has no '->'");
  }
  // Optional trailing "@ confidence" (soft FD): "City -> State @ 0.9".
  double confidence = 1.0;
  std::string_view rhs_text = body.substr(arrow + 2);
  size_t at = rhs_text.rfind('@');
  if (at != std::string_view::npos) {
    std::string_view conf_text = Trim(rhs_text.substr(at + 1));
    if (!ParseDouble(conf_text, &confidence)) {
      return Status::InvalidArgument(
          "FD '" + std::string(text) + "' has a malformed confidence '" +
          std::string(conf_text) + "' (want a number in (0, 1])");
    }
    if (!(confidence > 0.0 && confidence <= 1.0)) {
      return Status::InvalidArgument(
          "FD '" + std::string(text) + "' has confidence " +
          std::string(conf_text) + " outside (0, 1]");
    }
    rhs_text = rhs_text.substr(0, at);
  }
  FTR_ASSIGN_OR_RETURN(std::vector<int> lhs,
                       ParseAttrList(body.substr(0, arrow), schema));
  FTR_ASSIGN_OR_RETURN(std::vector<int> rhs,
                       ParseAttrList(rhs_text, schema));
  return FD::Make(std::move(lhs), std::move(rhs), std::move(name),
                  confidence);
}

Result<std::vector<FD>> ParseFDList(std::string_view text,
                                    const Schema& schema) {
  std::vector<FD> fds;
  for (const std::string& line : Split(text, '\n')) {
    // Strip trailing comments ("Zip -> City   # g3=0.01").
    std::string_view body = line;
    size_t hash = body.find('#');
    if (hash != std::string_view::npos) body = body.substr(0, hash);
    body = Trim(body);
    if (body.empty()) continue;
    FTR_ASSIGN_OR_RETURN(FD fd, ParseFD(body, schema));
    fds.push_back(std::move(fd));
  }
  return fds;
}

namespace {

// One tableau cell: '_' is the wildcard, anything else a constant
// typed by the schema column.
Result<std::optional<Value>> ParseTableauCell(std::string_view text, int col,
                                              const Schema& schema) {
  std::string_view cell = Trim(text);
  if (cell.empty()) {
    return Status::InvalidArgument("empty tableau cell (use '_' for the "
                                   "wildcard)");
  }
  if (cell == "_") return std::optional<Value>();
  if (schema.column(col).type == ValueType::kNumber) {
    double number = 0;
    if (!ParseDouble(cell, &number)) {
      return Status::InvalidArgument(
          "tableau constant '" + std::string(cell) + "' is not a number "
          "(column '" + schema.column(col).name + "' is numeric)");
    }
    return std::optional<Value>(Value(number));
  }
  return std::optional<Value>(Value(std::string(cell)));
}

// One "lhsvals -> rhsvals" tableau row over `fd.attrs()`.
Result<PatternRow> ParseTableauRow(std::string_view text, const FD& fd,
                                   const Schema& schema) {
  size_t arrow = text.find("->");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument("tableau row '" + std::string(text) +
                                   "' has no '->'");
  }
  std::vector<std::string> lhs = Split(Trim(text.substr(0, arrow)), ',');
  std::vector<std::string> rhs = Split(Trim(text.substr(arrow + 2)), ',');
  if (static_cast<int>(lhs.size()) != fd.lhs_size() ||
      static_cast<int>(rhs.size()) != fd.rhs_size()) {
    return Status::InvalidArgument(
        "tableau row '" + std::string(text) + "' has " +
        std::to_string(lhs.size()) + "->" + std::to_string(rhs.size()) +
        " cells; the embedded FD needs " + std::to_string(fd.lhs_size()) +
        "->" + std::to_string(fd.rhs_size()));
  }
  PatternRow row;
  row.reserve(static_cast<size_t>(fd.num_attrs()));
  for (size_t i = 0; i < lhs.size(); ++i) {
    FTR_ASSIGN_OR_RETURN(
        std::optional<Value> cell,
        ParseTableauCell(lhs[i], fd.lhs()[i], schema));
    row.push_back(std::move(cell));
  }
  for (size_t i = 0; i < rhs.size(); ++i) {
    FTR_ASSIGN_OR_RETURN(
        std::optional<Value> cell,
        ParseTableauCell(rhs[i], fd.rhs()[i], schema));
    row.push_back(std::move(cell));
  }
  return row;
}

}  // namespace

Result<CFD> ParseCFD(std::string_view text, const Schema& schema) {
  std::vector<std::string> segments = Split(Trim(text), '|');
  if (segments.size() < 2) {
    return Status::InvalidArgument(
        "CFD '" + std::string(text) +
        "' has no tableau (want 'FD | lhsvals -> rhsvals | ...')");
  }
  FTR_ASSIGN_OR_RETURN(FD fd, ParseFD(segments[0], schema));
  std::vector<PatternRow> tableau;
  for (size_t s = 1; s < segments.size(); ++s) {
    FTR_ASSIGN_OR_RETURN(PatternRow row,
                         ParseTableauRow(segments[s], fd, schema));
    tableau.push_back(std::move(row));
  }
  std::string name = fd.name();
  return CFD::Make(std::move(fd), std::move(tableau), std::move(name));
}

Result<std::vector<CFD>> ParseCFDList(std::string_view text,
                                      const Schema& schema) {
  std::vector<CFD> cfds;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view body = line;
    size_t hash = body.find('#');
    if (hash != std::string_view::npos) body = body.substr(0, hash);
    body = Trim(body);
    if (body.empty()) continue;
    FTR_ASSIGN_OR_RETURN(CFD cfd, ParseCFD(body, schema));
    cfds.push_back(std::move(cfd));
  }
  return cfds;
}

}  // namespace ftrepair
