#ifndef FTREPAIR_CLI_CLI_H_
#define FTREPAIR_CLI_CLI_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "core/repair_types.h"
#include "data/csv.h"
#include "discovery/fd_discovery.h"
#include "metric/distance.h"

namespace ftrepair {

/// Parsed command-line configuration of the `ftrepair` tool.
struct CliOptions {
  std::string input_path;       // --input (required)
  std::string fds_path;         // --fds (required unless --discover/--profile)
  std::string cfds_path;        // --cfds (CFD repair instead of --fds)
  bool help = false;            // --help: print usage, do nothing else
  bool discover = false;        // --discover: print vetted FDs, no repair
  bool profile = false;         // --profile: print column profiles, no repair
  bool summary = false;         // --summary: aggregate the cell changes
  DiscoveryOptions discovery;   // --max-lhs / --g3
  std::string output_path;      // --output (optional: stdout summary only)
  std::string changes_path;     // --changes (optional CSV of cell changes)
  std::string truth_path;       // --truth (optional: score P/R)
  RepairOptions repair;
  CsvOptions csv;               // --on-bad-row
  double deadline_ms = 0;       // --deadline-ms (0 = unlimited)
  double memory_budget_mb = 0;  // --memory-budget-mb (0 = unlimited)
  bool verbose = false;         // --verbose
  std::string explain_json_path;  // --explain-json (machine-readable report)
  std::string audit_log_path;     // --audit-log (NDJSON decision stream)
  int explain_row = -1;           // --explain ROW,COL (-1 = not requested)
  int explain_col = -1;
  // --distance-kernel: edit-distance kernel A/B knob (process-wide).
  DistanceKernel distance_kernel = DistanceKernel::kAuto;
  std::string metrics_json_path;  // --metrics-json (JSON metrics snapshot)
  std::string trace_json_path;    // --trace-json (Chrome trace_event JSON)
  bool log_level_set = false;     // --log-level given explicitly
  LogLevel log_level = LogLevel::kWarning;  // --log-level
};

/// Usage text for --help / errors.
std::string CliUsage();

/// Parses argv (excluding argv[0]). Errors carry a user-facing message.
Result<CliOptions> ParseCliArgs(const std::vector<std::string>& args);

/// Loads input + FDs, repairs, writes outputs and a human summary to
/// `out`. Returns the first error encountered.
Status RunCli(const CliOptions& options, std::ostream& out);

}  // namespace ftrepair

#endif  // FTREPAIR_CLI_CLI_H_
