#include "cli/cli.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/timer.h"
#include "common/trace.h"
#include "constraint/fd_parser.h"
#include "core/provenance.h"
#include "core/repairer.h"
#include "core/semantics.h"
#include "data/csv.h"
#include "detect/detector.h"
#include "detect/threshold.h"
#include "eval/profile.h"
#include "eval/quality.h"
#include "eval/report.h"

namespace ftrepair {

std::string CliUsage() {
  return R"(ftrepair — cost-based data repairing with fault-tolerant FD violations

Usage:
  ftrepair --input DIRTY.csv --fds FDS.txt [options]

Required:
  --input PATH        dirty relation (CSV with header)
  --fds PATH          FD list, one per line: "name: A, B -> C"

Options:
  --output PATH       write the repaired relation as CSV
  --changes PATH      write the cell changes as CSV (row, column, old, new)
  --truth PATH        ground-truth CSV; prints precision/recall
  --algorithm NAME    exact | greedy | appro        (default: greedy)
  --semantics NAME    ft-cost | soft-fd | cardinality: what counts as a
                      violation and what a repair minimizes (the Eq. 4
                      cost, the confidence-weighted cost, or the number
                      of changed cells)             (default: ft-cost)
  --confidence NAME=C soft-fd: override one FD's confidence, C in
                      (0, 1]; 1 = hard (repeatable). FDs can also carry
                      "@ C" in the --fds file
  --cfds PATH         repair against CFDs instead of --fds; one per
                      line: "name: FD | lhsvals -> rhsvals | ..." with
                      '_' as the tableau wildcard (ft-cost only)
  --tau VALUE         fault-tolerance threshold     (default: 0.4)
  --tau-fd NAME=V     per-FD threshold override (repeatable)
  --wl VALUE          Eq. 2 LHS weight              (default: 0.7)
  --wr VALUE          Eq. 2 RHS weight              (default: 0.3)
  --threads N         worker threads for violation detection and the
                      per-component solve phase; 0 = all hardware
                      threads, 1 = serial; any setting yields
                      identical results             (default: 0)
  --detect-index MODE auto | allpairs | blocked: candidate generation
                      for violation detection; auto picks the blocking
                      index by tau and table size; any setting yields
                      identical results             (default: auto)
  --trusted-rows LIST comma-separated 0-based row indices known correct
                      (master data): never modified, anchor the repair
  --auto-threshold    pick tau per FD from the distance-gap heuristic
  --deadline-ms MS    wall-clock budget; past it the repair degrades
                      gracefully (exact -> greedy -> partial) instead of
                      running long                  (default: unlimited)
  --memory-budget-mb MB
                      charged-byte budget for every input-sized
                      structure (see docs/ROBUSTNESS.md); past the soft
                      watermark the repair degrades, past the hard
                      limit it stops cleanly        (default: unlimited)
  --on-bad-row MODE   strict | skip | pad: fail on, drop, or salvage
                      malformed input rows          (default: strict)
  --columnar MODE     on | off: dictionary-code fast paths (code-keyed
                      pattern grouping, code-bucketed exact joins,
                      per-pair distance memoization); purely a speed
                      knob — either setting yields bit-identical
                      repairs                       (default: on)
  --distance-kernel K auto | scalar | bitparallel: edit-distance
                      implementation (scalar banded DP vs Myers'
                      bit-parallel); auto = bitparallel. A/B knob —
                      every kernel yields bit-identical repairs
                                                    (default: auto)
  --verbose           print every cell change
  --summary           print changes aggregated by (column, old, new)
  --help              this text

Observability:
  --explain-json PATH write a versioned machine-readable explain report:
                      every repair decision with its implicating
                      FT-violation edges, every cell change with its
                      cost contribution, and the reconciling ledger
  --audit-log PATH    write an NDJSON audit stream: one record per
                      decision, degradation and watermark crossing, in
                      repair order
  --explain ROW,COL   print a human-readable "why" for one cell (which
                      FD implicated it, which solver rung repaired it,
                      what it cost)
  --metrics-json PATH write a JSON snapshot of every pipeline metric
                      (counters, gauges, latency histograms)
  --trace-json PATH   record scoped spans and write Chrome trace_event
                      JSON; load in chrome://tracing or ui.perfetto.dev
  --log-level LEVEL   debug | info | warn | error   (default: warn, or
                      the FTREPAIR_LOG_LEVEL environment variable)

Every value-taking flag also accepts the --flag=VALUE spelling.

Modes (no repair performed):
  --profile           print per-column profiles of --input
  --discover          discover FDs on --input, vet their thresholds and
                      print a spec usable as a --fds file
  --max-lhs N         discovery: max LHS arity            (default: 1)
  --g3 VALUE          discovery: max g3 error             (default: 0.05)
)";
}

namespace {

Result<double> ParsePositiveDouble(const std::string& flag,
                                   const std::string& text) {
  double value = 0;
  if (!ParseDouble(text, &value) || value < 0) {
    return Status::InvalidArgument(flag + " expects a non-negative number, got '" +
                                   text + "'");
  }
  return value;
}

}  // namespace

Result<CliOptions> ParseCliArgs(const std::vector<std::string>& args) {
  CliOptions options;
  options.repair.w_l = 0.7;
  options.repair.w_r = 0.3;
  options.repair.default_tau = 0.4;
  // The CLI defaults to all hardware threads (the library default is
  // serial); results are identical either way, so this is safe.
  options.repair.threads = 0;
  for (size_t i = 0; i < args.size(); ++i) {
    // Split "--flag=value" so every value-taking flag accepts both
    // spellings (the split is on the *first* '=', so --tau-fd=NAME=V
    // still carries NAME=V as its value).
    std::string arg = args[i];
    std::string inline_value;
    bool has_inline_value = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline_value = true;
      }
    }
    auto next = [&]() -> Result<std::string> {
      if (has_inline_value) {
        has_inline_value = false;
        return inline_value;
      }
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument(arg + " expects a value");
      }
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      options.help = true;
      return options;  // usage is not an error; skip required-flag checks
    } else if (arg == "--input") {
      FTR_ASSIGN_OR_RETURN(options.input_path, next());
    } else if (arg == "--fds") {
      FTR_ASSIGN_OR_RETURN(options.fds_path, next());
    } else if (arg == "--output") {
      FTR_ASSIGN_OR_RETURN(options.output_path, next());
    } else if (arg == "--changes") {
      FTR_ASSIGN_OR_RETURN(options.changes_path, next());
    } else if (arg == "--truth") {
      FTR_ASSIGN_OR_RETURN(options.truth_path, next());
    } else if (arg == "--algorithm") {
      FTR_ASSIGN_OR_RETURN(std::string name, next());
      if (name == "exact") {
        options.repair.algorithm = RepairAlgorithm::kExact;
      } else if (name == "greedy") {
        options.repair.algorithm = RepairAlgorithm::kGreedy;
      } else if (name == "appro") {
        options.repair.algorithm = RepairAlgorithm::kApproJoin;
      } else {
        return Status::InvalidArgument("unknown --algorithm '" + name +
                                       "' (exact | greedy | appro)");
      }
    } else if (arg == "--semantics") {
      FTR_ASSIGN_OR_RETURN(std::string name, next());
      // Resolve eagerly so a typo fails here with the mode list instead
      // of deep inside the repair run.
      FTR_RETURN_NOT_OK(SemanticsRegistry::Instance().Resolve(name).status());
      options.repair.semantics = name;
    } else if (arg == "--confidence") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      size_t eq = text.find('=');
      double confidence = 0;
      if (eq == std::string::npos || eq == 0 ||
          !ParseDouble(std::string_view(text).substr(eq + 1), &confidence) ||
          !(confidence > 0.0 && confidence <= 1.0)) {
        return Status::InvalidArgument(
            "--confidence expects NAME=VALUE with VALUE in (0, 1], got '" +
            text + "'");
      }
      options.repair.confidence_by_fd[text.substr(0, eq)] = confidence;
    } else if (arg == "--cfds") {
      FTR_ASSIGN_OR_RETURN(options.cfds_path, next());
    } else if (arg == "--tau") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      FTR_ASSIGN_OR_RETURN(options.repair.default_tau,
                           ParsePositiveDouble(arg, text));
    } else if (arg == "--tau-fd") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      size_t eq = text.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument("--tau-fd expects NAME=VALUE");
      }
      FTR_ASSIGN_OR_RETURN(double tau,
                           ParsePositiveDouble(arg, text.substr(eq + 1)));
      options.repair.tau_by_fd[text.substr(0, eq)] = tau;
    } else if (arg == "--wl") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      FTR_ASSIGN_OR_RETURN(options.repair.w_l,
                           ParsePositiveDouble(arg, text));
    } else if (arg == "--wr") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      FTR_ASSIGN_OR_RETURN(options.repair.w_r,
                           ParsePositiveDouble(arg, text));
    } else if (arg == "--threads") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      double v = 0;
      if (!ParseDouble(text, &v) || v < 0 || v != static_cast<int>(v)) {
        return Status::InvalidArgument(
            "--threads expects a non-negative integer (0 = all hardware "
            "threads)");
      }
      options.repair.threads = static_cast<int>(v);
    } else if (arg == "--detect-index") {
      FTR_ASSIGN_OR_RETURN(std::string name, next());
      if (name == "auto") {
        options.repair.detect_index = DetectIndexMode::kAuto;
      } else if (name == "allpairs") {
        options.repair.detect_index = DetectIndexMode::kAllPairs;
      } else if (name == "blocked") {
        options.repair.detect_index = DetectIndexMode::kBlocked;
      } else {
        return Status::InvalidArgument("unknown --detect-index '" + name +
                                       "' (auto | allpairs | blocked)");
      }
    } else if (arg == "--distance-kernel") {
      FTR_ASSIGN_OR_RETURN(std::string name, next());
      if (!ParseDistanceKernel(name, &options.distance_kernel)) {
        return Status::InvalidArgument("unknown --distance-kernel '" + name +
                                       "' (want auto | scalar | bitparallel)");
      }
    } else if (arg == "--columnar") {
      FTR_ASSIGN_OR_RETURN(std::string mode, next());
      if (mode == "on") {
        options.repair.columnar = true;
      } else if (mode == "off") {
        options.repair.columnar = false;
      } else {
        return Status::InvalidArgument("unknown --columnar '" + mode +
                                       "' (on | off)");
      }
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg == "--discover") {
      options.discover = true;
    } else if (arg == "--summary") {
      options.summary = true;
    } else if (arg == "--max-lhs") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      double v = 0;
      if (!ParseDouble(text, &v) || v < 1 || v != static_cast<int>(v)) {
        return Status::InvalidArgument("--max-lhs expects a positive integer");
      }
      options.discovery.max_lhs_size = static_cast<int>(v);
    } else if (arg == "--g3") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      FTR_ASSIGN_OR_RETURN(options.discovery.max_g3_error,
                           ParsePositiveDouble(arg, text));
    } else if (arg == "--trusted-rows") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      for (const std::string& part : Split(text, ',')) {
        double row = 0;
        if (!ParseDouble(part, &row) || row < 0 ||
            row != static_cast<int>(row)) {
          return Status::InvalidArgument(
              "--trusted-rows expects comma-separated row indices, got '" +
              part + "'");
        }
        options.repair.trusted_rows.insert(static_cast<int>(row));
      }
    } else if (arg == "--auto-threshold") {
      options.repair.auto_threshold = true;
    } else if (arg == "--deadline-ms") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      FTR_ASSIGN_OR_RETURN(options.deadline_ms,
                           ParsePositiveDouble(arg, text));
      if (options.deadline_ms <= 0) {
        return Status::InvalidArgument(
            "--deadline-ms expects a positive number of milliseconds");
      }
    } else if (arg == "--memory-budget-mb") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      FTR_ASSIGN_OR_RETURN(options.memory_budget_mb,
                           ParsePositiveDouble(arg, text));
      if (options.memory_budget_mb <= 0) {
        return Status::InvalidArgument(
            "--memory-budget-mb expects a positive number of megabytes");
      }
    } else if (arg == "--on-bad-row") {
      FTR_ASSIGN_OR_RETURN(std::string mode, next());
      if (mode == "strict") {
        options.csv.bad_rows = BadRowPolicy::kStrict;
      } else if (mode == "skip") {
        options.csv.bad_rows = BadRowPolicy::kSkipBadRows;
      } else if (mode == "pad") {
        options.csv.bad_rows = BadRowPolicy::kPadRagged;
      } else {
        return Status::InvalidArgument("unknown --on-bad-row '" + mode +
                                       "' (strict | skip | pad)");
      }
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--explain-json") {
      FTR_ASSIGN_OR_RETURN(options.explain_json_path, next());
    } else if (arg == "--audit-log") {
      FTR_ASSIGN_OR_RETURN(options.audit_log_path, next());
    } else if (arg == "--explain") {
      FTR_ASSIGN_OR_RETURN(std::string text, next());
      std::vector<std::string> parts = Split(text, ',');
      double row = 0;
      double col = 0;
      if (parts.size() != 2 || !ParseDouble(parts[0], &row) ||
          !ParseDouble(parts[1], &col) || row < 0 || col < 0 ||
          row != static_cast<int>(row) || col != static_cast<int>(col)) {
        return Status::InvalidArgument(
            "--explain expects ROW,COL (0-based indices), got '" + text +
            "'");
      }
      options.explain_row = static_cast<int>(row);
      options.explain_col = static_cast<int>(col);
    } else if (arg == "--metrics-json") {
      FTR_ASSIGN_OR_RETURN(options.metrics_json_path, next());
    } else if (arg == "--trace-json") {
      FTR_ASSIGN_OR_RETURN(options.trace_json_path, next());
    } else if (arg == "--log-level") {
      FTR_ASSIGN_OR_RETURN(std::string name, next());
      if (!ParseLogLevel(name, &options.log_level)) {
        return Status::InvalidArgument("unknown --log-level '" + name +
                                       "' (debug | info | warn | error)");
      }
      options.log_level_set = true;
    } else {
      return Status::InvalidArgument("unknown flag '" + args[i] + "'\n" +
                                     CliUsage());
    }
    if (has_inline_value) {
      return Status::InvalidArgument(arg + " does not take a value");
    }
  }
  if (options.input_path.empty()) {
    return Status::InvalidArgument("--input is required\n" + CliUsage());
  }
  if (options.fds_path.empty() && options.cfds_path.empty() &&
      !options.discover && !options.profile) {
    return Status::InvalidArgument("--fds (or --cfds) is required\n" +
                                   CliUsage());
  }
  if (!options.fds_path.empty() && !options.cfds_path.empty()) {
    return Status::InvalidArgument("--fds and --cfds are mutually exclusive");
  }
  return options;
}

namespace {

Status RunProfile(const Table& table, std::ostream& out) {
  Report report("column profiles");
  report.SetHeader({"column", "type", "non-null", "distinct", "ratio",
                    "top values", "range"});
  for (const ColumnProfile& p : ProfileTable(table)) {
    std::string tops;
    for (const auto& [value, count] : p.top_values) {
      if (!tops.empty()) tops += ", ";
      tops += value.ToString() + " x" + std::to_string(count);
    }
    // Built with += (not chained operator+): GCC 12 emits a spurious
    // -Wrestrict warning on `const char* + std::string&&` chains here.
    std::string range = "-";
    if (p.has_numeric_range) {
      range = "[";
      range += FormatDouble(p.min);
      range += ", ";
      range += FormatDouble(p.max);
      range += "]";
    }
    report.AddRow({p.name, p.type == ValueType::kNumber ? "number" : "string",
                   std::to_string(p.non_null), std::to_string(p.distinct),
                   Report::Num(p.distinct_ratio, 3), tops, range});
  }
  report.Print(out);
  return Status::OK();
}

Status RunDiscover(const Table& table, const CliOptions& options,
                   std::ostream& out) {
  DiscoveryOptions discovery = options.discovery;
  if (discovery.max_g3_error == 0) discovery.max_g3_error = 0.05;
  FTR_ASSIGN_OR_RETURN(std::vector<DiscoveredFD> discovered,
                       DiscoverFDs(table, discovery));
  DistanceModel model(table);
  ThresholdOptions threshold_options;
  threshold_options.w_l = options.repair.w_l;
  threshold_options.w_r = options.repair.w_r;
  uint64_t budget = static_cast<uint64_t>(table.num_rows()) * 2;
  out << "# FDs discovered on " << options.input_path << " (g3 <= "
      << discovery.max_g3_error << "); rejected candidates commented out\n";
  for (const DiscoveredFD& d : discovered) {
    double tau = SuggestThreshold(table, d.fd, model, threshold_options);
    uint64_t violations =
        CountFTViolations(table, d.fd, model,
                          FTOptions{options.repair.w_l, options.repair.w_r,
                                    tau, options.repair.threads});
    bool keep = violations <= budget;
    if (!keep) out << "# rejected (too many FT-violations at tau):  ";
    out << d.fd.ToSpec(table.schema()) << "    # g3="
        << Report::Num(d.g3_error) << " tau=" << Report::Num(tau) << "\n";
  }
  return Status::OK();
}

// Writes the metrics snapshot and trace JSON if requested. Runs even
// when the repair itself failed, so a partial run is still observable.
Status WriteObservabilityOutputs(const CliOptions& options,
                                 std::ostream& out) {
  if (!options.metrics_json_path.empty()) {
    std::ofstream file(options.metrics_json_path, std::ios::binary);
    if (!file) {
      return Status::IOError("cannot open '" + options.metrics_json_path +
                             "' for writing");
    }
    file << Metrics().SnapshotJson() << "\n";
    if (!file) {
      return Status::IOError("short write to '" +
                             options.metrics_json_path + "'");
    }
    out << "wrote " << options.metrics_json_path << "\n";
  }
  if (!options.trace_json_path.empty()) {
    FTR_RETURN_NOT_OK(Tracer::Instance().WriteFile(options.trace_json_path));
    out << "wrote " << options.trace_json_path << "\n";
  }
  return Status::OK();
}

Status RunCliInner(const CliOptions& options, std::ostream& out) {
  // The memory budget governs the whole run, ingest included, so it is
  // installed before the CSV read (ingest buffers are the first
  // input-sized structures to grow).
  MemoryBudget memory(
      options.memory_budget_mb > 0
          ? static_cast<uint64_t>(options.memory_budget_mb * 1024.0 * 1024.0)
          : MemoryBudget::kUnlimited);
  CsvOptions csv_options = options.csv;
  if (options.memory_budget_mb > 0) csv_options.memory = &memory;
  CsvReadReport csv_report;
  FTR_ASSIGN_OR_RETURN(
      Table dirty, ReadCsvFile(options.input_path, csv_options, &csv_report));
  if (!csv_report.ok()) {
    out << "warning: " << csv_report.errors.size() << " malformed row(s) in "
        << options.input_path << ": " << csv_report.rows_dropped
        << " dropped, " << csv_report.rows_padded << " salvaged\n";
    if (options.verbose) {
      for (const RowError& error : csv_report.errors) {
        out << "  row " << error.row << " ["
            << RowErrorKindName(error.kind) << "] " << error.message
            << "\n";
      }
    }
  }

  if (options.profile) return RunProfile(dirty, out);
  if (options.discover) return RunDiscover(dirty, options, out);

  const bool cfd_mode = !options.cfds_path.empty();
  const std::string& rules_path =
      cfd_mode ? options.cfds_path : options.fds_path;
  std::ifstream fd_stream(rules_path);
  if (!fd_stream) {
    return Status::IOError("cannot open '" + rules_path + "'");
  }
  std::ostringstream fd_text;
  fd_text << fd_stream.rdbuf();
  std::vector<FD> fds;
  std::vector<CFD> cfds;
  if (cfd_mode) {
    FTR_ASSIGN_OR_RETURN(cfds, ParseCFDList(fd_text.str(), dirty.schema()));
    if (cfds.empty()) {
      return Status::InvalidArgument("'" + rules_path +
                                     "' contains no CFDs");
    }
    // The embedded FDs drive the by-name override checks below.
    for (const CFD& cfd : cfds) fds.push_back(cfd.fd());
  } else {
    FTR_ASSIGN_OR_RETURN(fds, ParseFDList(fd_text.str(), dirty.schema()));
    if (fds.empty()) {
      return Status::InvalidArgument("'" + rules_path + "' contains no FDs");
    }
  }
  // Every by-name override must name a parsed FD; a silent typo would
  // quietly repair with the default instead.
  auto check_fd_name = [&](const char* flag,
                           const std::string& name) -> Status {
    bool known = false;
    for (const FD& fd : fds) known = known || fd.name() == name;
    if (known) return Status::OK();
    std::string known_names;
    for (const FD& fd : fds) {
      if (!known_names.empty()) known_names += ", ";
      known_names += fd.name();
    }
    return Status::NotFound(std::string(flag) + " references unknown FD '" +
                            name + "'; FDs in '" + rules_path +
                            "': " + known_names);
  };
  for (const auto& [name, tau] : options.repair.tau_by_fd) {
    (void)tau;
    FTR_RETURN_NOT_OK(check_fd_name("--tau-fd", name));
  }
  for (const auto& [name, confidence] : options.repair.confidence_by_fd) {
    (void)confidence;
    FTR_RETURN_NOT_OK(check_fd_name("--confidence", name));
  }

  out << "ftrepair: " << dirty.num_rows() << " rows, "
      << dirty.num_columns() << " columns, " << fds.size()
      << (cfd_mode ? " CFDs (" : " FDs (")
      << RepairAlgorithmName(options.repair.algorithm) << ")\n";
  if (options.repair.semantics != "ft-cost") {
    out << "semantics: " << options.repair.semantics << "\n";
  }

  if (options.explain_row >= 0 &&
      options.explain_col >= static_cast<int>(dirty.num_columns())) {
    return Status::InvalidArgument(
        "--explain column " + std::to_string(options.explain_col) +
        " out of range; input has " +
        std::to_string(dirty.num_columns()) + " columns");
  }

  Timer timer;
  RepairOptions repair_options = options.repair;
  // Any explain surface needs the provenance layer recording during the
  // repair itself; it cannot be reconstructed after the fact.
  if (!options.explain_json_path.empty() ||
      !options.audit_log_path.empty() || options.explain_row >= 0) {
    repair_options.provenance = true;
  }
  Budget budget(options.deadline_ms > 0 ? options.deadline_ms
                                        : Budget::kUnlimited);
  if (options.deadline_ms > 0) {
    repair_options.budget = &budget;
    out << "deadline: " << options.deadline_ms << "ms\n";
  }
  if (options.memory_budget_mb > 0) {
    repair_options.memory = &memory;
    out << "memory budget: " << options.memory_budget_mb << " MB\n";
  }
  Repairer repairer(repair_options);
  Result<RepairResult> repaired_or = cfd_mode
                                         ? repairer.RepairCFDs(dirty, cfds)
                                         : repairer.Repair(dirty, fds);
  FTR_ASSIGN_OR_RETURN(RepairResult result, std::move(repaired_or));
  out << "repaired " << result.stats.cells_changed << " cells in "
      << result.stats.tuples_changed << " tuples (" << timer.Seconds()
      << "s)\n";
  out << "FT-violations: " << result.stats.ft_violations_before << " -> "
      << result.stats.ft_violations_after << "\n";
  out << "repair cost (Eq. 4): " << result.stats.repair_cost << "\n";

  const PhaseTimings& phases = result.stats.phases;
  Report phase_report("phase timings");
  phase_report.SetHeader({"phase", "ms", "%"});
  const std::pair<const char*, double> phase_rows[] = {
      {"detect", phases.detect_ms}, {"graph", phases.graph_ms},
      {"solve", phases.solve_ms},   {"targets", phases.targets_ms},
      {"apply", phases.apply_ms},   {"stats", phases.stats_ms},
  };
  for (const auto& [phase_name, phase_ms] : phase_rows) {
    double pct =
        phases.total_ms > 0 ? 100.0 * phase_ms / phases.total_ms : 0.0;
    phase_report.AddRow(
        {phase_name, Report::Num(phase_ms, 3), Report::Num(pct, 1)});
  }
  phase_report.AddRow({"total", Report::Num(phases.total_ms, 3), ""});
  phase_report.Print(out);

  if (result.stats.degraded()) {
    out << "note: repair degraded " << result.stats.degradations.size()
        << " step(s) along the ladder; the result is a valid partial "
           "repair\n";
    for (const DegradationEvent& event : result.stats.degradations) {
      out << "  [" << event.component << "] " << event.stage << " @"
          << FormatDouble(event.elapsed_ms) << "ms: " << event.reason
          << "\n";
    }
  }
  if (result.stats.join_empty) {
    out << "warning: a target join was empty; some tuples were left "
           "unrepaired\n";
  }
  if (result.stats.trusted_conflicts > 0) {
    out << "warning: " << result.stats.trusted_conflicts
        << " trusted pattern(s) conflict with each other; check the "
           "thresholds or the trusted rows\n";
  }

  if (options.summary) {
    Report report("changes by (column, old, new)");
    report.SetHeader({"column", "old", "new", "count"});
    for (const ChangeSummaryLine& line :
         SummarizeChanges(result.changes, dirty.schema())) {
      report.AddRow({line.column, line.old_value.ToString(),
                     line.new_value.ToString(),
                     std::to_string(line.count)});
    }
    report.Print(out);
  }
  if (options.verbose) {
    // Long values (free-text columns, URLs) would blow the table out of
    // any terminal; show enough to recognise the value.
    auto clip = [](std::string text) {
      constexpr size_t kMax = 40;
      if (text.size() > kMax) {
        text.resize(kMax);
        text += "...";
      }
      return text;
    };
    Report change_report("cell changes");
    change_report.SetHeader({"row", "column", "old", "new"});
    for (const CellChange& change : result.changes) {
      change_report.AddRow({std::to_string(change.row),
                            dirty.schema().column(change.col).name,
                            clip(change.old_value.ToString()),
                            clip(change.new_value.ToString())});
    }
    change_report.Print(out);
  }

  if (options.explain_row >= 0) {
    out << ExplainCellText(dirty.schema(), result, options.explain_row,
                           options.explain_col);
  }
  if (!options.explain_json_path.empty()) {
    std::ofstream file(options.explain_json_path, std::ios::binary);
    if (!file) {
      return Status::IOError("cannot open '" + options.explain_json_path +
                             "' for writing");
    }
    file << ExplainReportJson(dirty, result);
    if (!file.good()) {
      return Status::IOError("failed writing '" +
                             options.explain_json_path + "'");
    }
    out << "wrote " << options.explain_json_path << "\n";
  }
  if (!options.audit_log_path.empty()) {
    std::ofstream file(options.audit_log_path, std::ios::binary);
    if (!file) {
      return Status::IOError("cannot open '" + options.audit_log_path +
                             "' for writing");
    }
    file << AuditLogNdjson(result);
    if (!file.good()) {
      return Status::IOError("failed writing '" + options.audit_log_path +
                             "'");
    }
    out << "wrote " << options.audit_log_path << "\n";
  }

  if (!options.output_path.empty()) {
    FTR_RETURN_NOT_OK(WriteCsvFile(result.repaired, options.output_path));
    out << "wrote " << options.output_path << "\n";
  }
  if (!options.changes_path.empty()) {
    Table changes(Schema({{"row", ValueType::kNumber},
                          {"column", ValueType::kString},
                          {"old", ValueType::kString},
                          {"new", ValueType::kString}}));
    for (const CellChange& change : result.changes) {
      FTR_RETURN_NOT_OK(changes.AppendRow(
          {Value(static_cast<double>(change.row)),
           Value(dirty.schema().column(change.col).name),
           Value(change.old_value.ToString()),
           Value(change.new_value.ToString())}));
    }
    FTR_RETURN_NOT_OK(WriteCsvFile(changes, options.changes_path));
    out << "wrote " << options.changes_path << "\n";
  }
  if (!options.truth_path.empty()) {
    FTR_ASSIGN_OR_RETURN(Table truth, ReadCsvFile(options.truth_path));
    if (truth.num_rows() != dirty.num_rows() ||
        !(truth.schema() == dirty.schema())) {
      return Status::InvalidArgument(
          "--truth must have the same schema and row count as --input");
    }
    Quality quality = EvaluateRepair(dirty, result.repaired, truth);
    out << "precision: " << quality.precision
        << "  recall: " << quality.recall << "  f1: " << quality.f1
        << "\n";
  }
  return Status::OK();
}

}  // namespace

Status RunCli(const CliOptions& options, std::ostream& out) {
  if (options.help) {
    out << CliUsage();
    return Status::OK();
  }
  if (options.log_level_set) SetLogLevel(options.log_level);
  SetDistanceKernel(options.distance_kernel);
  const bool tracing = !options.trace_json_path.empty();
  if (tracing) Tracer::Instance().Enable();
  Status status = RunCliInner(options, out);
  Status observability = WriteObservabilityOutputs(options, out);
  if (tracing) Tracer::Instance().Disable();
  FTR_RETURN_NOT_OK(status);
  return observability;
}

}  // namespace ftrepair
