#ifndef FTREPAIR_GEN_TAX_GEN_H_
#define FTREPAIR_GEN_TAX_GEN_H_

#include "common/status.h"
#include "gen/dataset.h"

namespace ftrepair {

/// Parameters for the synthetic Tax workload.
struct TaxOptions {
  int num_rows = 10000;
  uint64_t seed = 11;
};

/// \brief Synthesizes the Tax workload (§6.1): the classic synthetic
/// personal address/tax relation — 15 attributes, 9 FDs.
///
///   x1: Zip -> City                  x6: State -> SingleExemp
///   x2: Zip -> State                 x7: State, MaritalStatus -> MarriedExemp
///   x3: AreaCode -> State            x8: State, HasChild -> ChildExemp
///   x4: Phone -> AreaCode            x9: FName -> Gender
///   x5: City -> State
///
/// {x1..x8} form one 8-FD connected component (zip/city/state/area-code/
/// exemption chain); {x9} is a singleton component.
Result<Dataset> GenerateTax(const TaxOptions& options = {});

}  // namespace ftrepair

#endif  // FTREPAIR_GEN_TAX_GEN_H_
