#include "gen/error_injector.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

namespace ftrepair {

namespace {

// Distinct (row, col) sample without replacement.
struct CellKey {
  int row;
  int col;
  bool operator<(const CellKey& other) const {
    if (row != other.row) return row < other.row;
    return col < other.col;
  }
};

std::string RandomCharEdit(const std::string& s, Rng* rng) {
  static const char kLetters[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out = s;
  int op = static_cast<int>(rng->Index(out.empty() ? 1 : 4));
  if (out.empty()) op = 2;  // only insertion is possible
  switch (op) {
    case 0: {  // substitute
      size_t pos = rng->Index(out.size());
      char c = kLetters[rng->Index(sizeof(kLetters) - 1)];
      out[pos] = c;
      break;
    }
    case 1: {  // delete
      out.erase(rng->Index(out.size()), 1);
      break;
    }
    case 2: {  // insert
      size_t pos = rng->Index(out.size() + 1);
      char c = kLetters[rng->Index(sizeof(kLetters) - 1)];
      out.insert(out.begin() + static_cast<long>(pos), c);
      break;
    }
    default: {  // transpose
      if (out.size() >= 2) {
        size_t pos = rng->Index(out.size() - 1);
        std::swap(out[pos], out[pos + 1]);
      } else {
        out += kLetters[rng->Index(sizeof(kLetters) - 1)];
      }
      break;
    }
  }
  return out;
}

}  // namespace

Value MakeTypo(const Value& value, Rng* rng) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    if (value.is_number()) {
      double v = value.num();
      double magnitude = std::max(1.0, std::fabs(v) * 0.1);
      double delta = static_cast<double>(rng->UniformInt(1, 9)) / 9.0 *
                     magnitude * (rng->Bernoulli(0.5) ? 1.0 : -1.0);
      Value out(std::round(v + delta));
      if (out != value) return out;
    } else {
      Value out(RandomCharEdit(value.ToString(), rng));
      if (out != value) return out;
    }
  }
  // Degenerate inputs: force a change.
  return Value(value.ToString() + "x");
}

Result<Table> InjectErrors(const Table& clean, const std::vector<FD>& fds,
                           const NoiseOptions& options,
                           NoiseReport* report) {
  if (options.error_rate < 0 || options.error_rate > 1) {
    return Status::InvalidArgument("error_rate must be in [0, 1]");
  }
  double mix = options.lhs_fraction + options.rhs_fraction +
               options.typo_fraction;
  if (mix <= 0) {
    return Status::InvalidArgument("error-type fractions must sum > 0");
  }

  std::set<int> lhs_cols_set;
  std::set<int> rhs_cols_set;
  for (const FD& fd : fds) {
    lhs_cols_set.insert(fd.lhs().begin(), fd.lhs().end());
    rhs_cols_set.insert(fd.rhs().begin(), fd.rhs().end());
  }
  std::vector<int> lhs_cols(lhs_cols_set.begin(), lhs_cols_set.end());
  std::vector<int> rhs_cols(rhs_cols_set.begin(), rhs_cols_set.end());
  std::set<int> all_cols_set = lhs_cols_set;
  all_cols_set.insert(rhs_cols_set.begin(), rhs_cols_set.end());
  std::vector<int> all_cols(all_cols_set.begin(), all_cols_set.end());
  if (all_cols.empty()) return Status::InvalidArgument("no FD columns");

  int total_cells = clean.num_rows() * static_cast<int>(all_cols.size());
  int budget = static_cast<int>(
      std::llround(options.error_rate * total_cells));
  int lhs_budget = static_cast<int>(
      std::llround(budget * options.lhs_fraction / mix));
  int rhs_budget = static_cast<int>(
      std::llround(budget * options.rhs_fraction / mix));
  int typo_budget = budget - lhs_budget - rhs_budget;

  // Active domains of the clean data (close-world error model).
  std::vector<std::vector<Value>> domains(
      static_cast<size_t>(clean.num_columns()));
  for (int c : all_cols) {
    domains[static_cast<size_t>(c)] = clean.ActiveDomain(c);
  }

  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 1);
  Table dirty = clean;
  std::set<CellKey> used;
  NoiseReport local;

  auto pick_cell = [&](const std::vector<int>& cols, CellKey* out) {
    for (int attempt = 0; attempt < 1000; ++attempt) {
      CellKey key{static_cast<int>(rng.Index(
                      static_cast<size_t>(clean.num_rows()))),
                  cols[rng.Index(cols.size())]};
      if (used.insert(key).second) {
        *out = key;
        return true;
      }
    }
    return false;
  };

  auto domain_swap = [&](const CellKey& key) {
    const std::vector<Value>& domain =
        domains[static_cast<size_t>(key.col)];
    const Value& current = dirty.cell(key.row, key.col);
    if (domain.size() < 2) {
      dirty.SetCell(key.row, key.col, MakeTypo(current, &rng));
      return;
    }
    for (int attempt = 0; attempt < 64; ++attempt) {
      const Value& candidate = domain[rng.Index(domain.size())];
      if (candidate != current) {
        dirty.SetCell(key.row, key.col, candidate);
        return;
      }
    }
  };

  for (int i = 0; i < lhs_budget && !lhs_cols.empty(); ++i) {
    CellKey key;
    if (!pick_cell(lhs_cols, &key)) break;
    domain_swap(key);
    ++local.lhs_errors;
  }
  for (int i = 0; i < rhs_budget && !rhs_cols.empty(); ++i) {
    CellKey key;
    if (!pick_cell(rhs_cols, &key)) break;
    domain_swap(key);
    ++local.rhs_errors;
  }
  for (int i = 0; i < typo_budget; ++i) {
    CellKey key;
    if (!pick_cell(all_cols, &key)) break;
    const Value& current = dirty.cell(key.row, key.col);
    dirty.SetCell(key.row, key.col, MakeTypo(current, &rng));
    ++local.typos;
  }
  local.cells_dirtied = local.lhs_errors + local.rhs_errors + local.typos;
  if (report != nullptr) *report = local;
  return dirty;
}

}  // namespace ftrepair
