#include "gen/pools.h"

#include "metric/distance.h"

namespace ftrepair {

std::vector<std::string> MakeDistinctCodes(Rng* rng, size_t count,
                                           size_t length,
                                           const std::string& alphabet,
                                           size_t min_distance) {
  std::vector<std::string> out;
  out.reserve(count);
  size_t attempts = 0;
  const size_t kMaxAttempts = count * 4000 + 10000;
  while (out.size() < count && attempts < kMaxAttempts) {
    ++attempts;
    std::string code(length, '0');
    for (char& c : code) c = alphabet[rng->Index(alphabet.size())];
    bool ok = true;
    for (const std::string& existing : out) {
      if (BoundedEditDistance(existing, code, min_distance - 1) <
          min_distance) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(std::move(code));
  }
  // If rejection sampling stalls (distance demanded too high for the
  // code space), pad with unconstrained codes; generators choose
  // parameters so this never triggers in practice.
  while (out.size() < count) {
    std::string code(length, '0');
    for (char& c : code) c = alphabet[rng->Index(alphabet.size())];
    out.push_back(std::move(code));
  }
  return out;
}

std::vector<std::string> MakeDistinctDigitCodes(Rng* rng, size_t count,
                                                size_t length,
                                                size_t min_distance) {
  return MakeDistinctCodes(rng, count, length, "0123456789", min_distance);
}

// Pool curation: every pool that serves as an FD's LHS key space is
// selected so its pairwise normalized edit distance stays above the
// floor that the recommended per-FD taus assume (see gen/hosp_gen.h,
// gen/tax_gen.h). tests/gen_test.cc asserts the floors.

const std::vector<std::string>& StateNamePool() {
  // Pairwise normalized edit distance >= 0.61.
  static const auto* kPool = new std::vector<std::string>{
      "California", "Texas",       "Pennsylvania", "Ohio",
      "Michigan",   "Kentucky",    "Oklahoma",     "Nebraska",
      "Vermont",    "Minnesota",   "Wisconsin",    "Maryland",
      "Oregon",     "Connecticut", "Delaware",     "Louisiana",
      "Mississippi", "Arkansas",   "Wyoming",      "Idaho"};
  return *kPool;
}

const std::vector<std::string>& CityNamePool() {
  // Pairwise normalized edit distance >= 0.62.
  static const auto* kPool = new std::vector<std::string>{
      "Sacramento", "Houston",    "Jacksonville", "Pittsburgh",
      "Chicago",    "Detroit",    "Denver",       "Seattle",
      "Richmond",   "Phoenix",    "Memphis",      "Milwaukee",
      "Baltimore",  "Portland",   "Tulsa",        "Omaha",
      "Bakersfield", "Pensacola", "Flagstaff",    "Chattanooga",
      "Frederick",  "Owensboro",  "Fresno",       "Lubbock",
      "Allentown",  "Lansing",    "Boulder",      "Spokane",
      "Norfolk",    "Columbia",   "Madison",      "Annapolis",
      "Lexington",  "Eugene",     "Bridgeport",   "Pueblo",
      "Roanoke",    "Joplin",     "Oshkosh",      "Muskogee",
      "Cheyenne",   "Billings",   "Fargo",        "Wichita",
      "Topeka",     "Mobile",     "Biloxi",       "Duluth",
      "Provo",      "Amarillo",   "Elpaso",       "Syracuse",
      "Albany",     "Rochester",  "Camden",       "Newark",
      "Stamford",   "Concord",    "Nashua",       "Auburn"};
  return *kPool;
}

const std::vector<std::string>& CountyNamePool() {
  static const auto* kPool = new std::vector<std::string>{
      "Yolo",       "Merced",     "Harris",      "Travis",     "Hockley",
      "Duval",      "Hillsboro",  "Orange",      "Allegheny",  "Lehigh",
      "Cook",       "Tazewell",   "Chatham",     "Burke",      "Wayne",
      "Ingham",     "Arapahoe",   "Gilpin",      "Kitsap",     "Stevens",
      "Henrico",    "Accomack",   "Maricopa",    "Pima",       "Shelby",
      "Blount",     "Greene",     "Boone",       "Ozaukee",    "Dane",
      "Howard",     "Calvert",    "Jefferson",   "Fayette",    "Clackamas",
      "Lane",       "Rogers",     "Cleveland",   "Tolland",    "Fairfield",
      "Douglas",    "Lancaster",  "Kern",        "Brazoria",   "Escambia",
      "Lackawanna", "Winnebago",  "Bibb",        "Kalkaska",   "Crowley",
      "Pierce",     "Botetourt",  "Coconino",    "Hamilton",   "Jasper",
      "Outagamie",  "Carroll",    "Daviess",     "Marion",     "Muskogee"};
  return *kPool;
}

const std::vector<std::string>& FirstNamePoolMale() {
  // Jointly with FirstNamePoolFemale: pairwise distance >= 0.70.
  static const auto* kPool = new std::vector<std::string>{
      "Alexander", "Benjamin",   "Christopher", "Dominic",
      "Ethan",     "Frederick",  "Harrison",    "Kenneth",
      "Lawrence",  "Matthew",    "Nicholas",    "Raymond",
      "Theodore",  "Isaac",      "Zachary",     "Montgomery",
      "Percival",  "Sylvester",  "Vladimir"};
  return *kPool;
}

const std::vector<std::string>& FirstNamePoolFemale() {
  static const auto* kPool = new std::vector<std::string>{
      "Abigail",  "Daniela",  "Josephine", "Lillian",
      "Natalie",  "Penelope", "Samantha",  "Winifred",
      "Imogen",   "Kimberly", "Lucinda",   "Ophelia",
      "Ursula"};
  return *kPool;
}

const std::vector<std::string>& LastNamePool() {
  static const auto* kPool = new std::vector<std::string>{
      "Anderson",  "Blackwood", "Castellano", "Dunningham", "Eastwick",
      "Fitzgerald", "Goldstein", "Harrington", "Ivanovich",  "Jankowski",
      "Kowalczyk", "Lindqvist", "Montgomery", "Nakamura",   "Ostrowski",
      "Pemberton", "Quarterman", "Rutherford", "Sorensen",   "Thornberry",
      "Underwood", "Vasquez",   "Wexler",     "Yamaguchi",  "Zielinski"};
  return *kPool;
}

const std::vector<std::string>& HospitalWordPool() {
  static const auto* kPool = new std::vector<std::string>{
      "SHELBY",    "BAPTIST",  "MERCY",    "LUTHERAN", "RIVERSIDE",
      "HIGHLAND",  "PARKVIEW", "WESTGATE", "EASTLAKE", "NORTHSIDE",
      "PIEDMONT",  "REGIONAL", "MEMORIAL", "PROVIDENCE", "SUMMIT",
      "LAKELAND",  "CRESTVIEW", "FAIRFIELD", "GRANDVIEW", "OAKWOOD"};
  return *kPool;
}

const std::vector<std::string>& MeasureNamePool() {
  static const auto* kPool = new std::vector<std::string>{
      "Aspirin prescribed at discharge",
      "Fibrinolytic therapy within thirty minutes",
      "Primary PCI received within ninety minutes",
      "Statin prescribed at discharge",
      "Evaluation of LVS function",
      "ACEI or ARB for LVSD",
      "Discharge instructions provided",
      "Blood cultures before first antibiotic",
      "Initial antibiotic selection for CAP",
      "Influenza vaccination offered",
      "Pneumococcal vaccination assessed",
      "Prophylactic antibiotic within one hour",
      "Prophylactic antibiotics discontinued",
      "Cardiac surgery glucose control",
      "Urinary catheter removed promptly",
      "Venous thromboembolism prophylaxis",
      "Surgery patients on beta blockers",
      "Median time to ECG recorded",
      "Aspirin given on arrival",
      "Smoking cessation advice delivered",
      "Heart failure education provided",
      "Timely transfer for acute coronary",
      "Appropriate hair removal performed",
      "Median time to fibrinolysis"};
  return *kPool;
}

const std::vector<std::string>& ConditionPool() {
  static const auto* kPool = new std::vector<std::string>{
      "Heart Attack",        "Heart Failure",       "Pneumonia",
      "Surgical Infection",  "Emergency Medicine",  "Stroke Care",
      "Blood Clot",          "Childbirth Safety"};
  return *kPool;
}

const std::vector<std::string>& StreetNamePool() {
  static const auto* kPool = new std::vector<std::string>{
      "Maple Avenue",    "Oak Boulevard",   "Cedar Lane",
      "Willow Drive",    "Magnolia Court",  "Juniper Street",
      "Sycamore Road",   "Chestnut Circle", "Dogwood Terrace",
      "Hawthorn Place",  "Cypress Parkway", "Redwood Crossing"};
  return *kPool;
}

}  // namespace ftrepair
