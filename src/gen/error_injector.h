#ifndef FTREPAIR_GEN_ERROR_INJECTOR_H_
#define FTREPAIR_GEN_ERROR_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "constraint/fd.h"
#include "data/table.h"

namespace ftrepair {

/// Error-injection parameters (§6.1 "Noise").
struct NoiseOptions {
  /// Fraction of FD-relevant cells to dirty (e% in the paper).
  double error_rate = 0.04;
  /// Error-type mix; the paper uses equal thirds. Normalized if the
  /// fractions do not sum to 1.
  double lhs_fraction = 1.0 / 3;
  double rhs_fraction = 1.0 / 3;
  double typo_fraction = 1.0 / 3;
  uint64_t seed = 42;
};

/// Injection accounting.
struct NoiseReport {
  int cells_dirtied = 0;
  int lhs_errors = 0;
  int rhs_errors = 0;
  int typos = 0;
};

/// \brief Dirties a copy of `clean` (§6.1): e% of the cells in
/// FD-relevant columns, split among
///   * LHS errors  — an LHS-column cell swapped to another active-domain
///     value of that column,
///   * RHS errors  — the same on an RHS column,
///   * typos       — a random character edit (strings) or small numeric
///     perturbation, on any FD column.
/// Each cell is dirtied at most once and always ends up different from
/// its clean value.
Result<Table> InjectErrors(const Table& clean, const std::vector<FD>& fds,
                           const NoiseOptions& options,
                           NoiseReport* report = nullptr);

/// Applies one random typo to `value` (shared with tests): substitute,
/// delete, insert, or transpose a character; numbers get a +/- bounded
/// perturbation. Guaranteed to differ from the input.
Value MakeTypo(const Value& value, Rng* rng);

}  // namespace ftrepair

#endif  // FTREPAIR_GEN_ERROR_INJECTOR_H_
