#ifndef FTREPAIR_GEN_POOLS_H_
#define FTREPAIR_GEN_POOLS_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace ftrepair {

/// Generates `count` distinct random codes of `length` characters drawn
/// from `alphabet`, rejection-sampled so every pair has edit distance
/// >= `min_distance`. Generators use this to keep distinct key values
/// (zips, provider numbers, area codes) well separated, so legitimate
/// pattern pairs stay above the fault-tolerance thresholds.
std::vector<std::string> MakeDistinctCodes(Rng* rng, size_t count,
                                           size_t length,
                                           const std::string& alphabet,
                                           size_t min_distance);

/// Digit-only convenience wrapper.
std::vector<std::string> MakeDistinctDigitCodes(Rng* rng, size_t count,
                                                size_t length,
                                                size_t min_distance);

/// Curated pools of realistic, mutually well-separated names.
const std::vector<std::string>& StateNamePool();   // 20 US states
const std::vector<std::string>& CityNamePool();    // 60 US cities
const std::vector<std::string>& CountyNamePool();  // 60 counties
const std::vector<std::string>& FirstNamePoolMale();
const std::vector<std::string>& FirstNamePoolFemale();
const std::vector<std::string>& LastNamePool();
const std::vector<std::string>& HospitalWordPool();  // name fragments
const std::vector<std::string>& MeasureNamePool();
const std::vector<std::string>& ConditionPool();
const std::vector<std::string>& StreetNamePool();

}  // namespace ftrepair

#endif  // FTREPAIR_GEN_POOLS_H_
