#include "gen/tax_gen.h"

#include <algorithm>
#include <string>

#include "constraint/fd_parser.h"
#include "gen/pools.h"

namespace ftrepair {

namespace {

struct TaxCity {
  std::string city;
  std::string state;
  std::string zip;
  std::string area_code;
  int state_index;
};

// Formats a 7-digit local number as "XXX-XXXX".
std::string FormatLocal(const std::string& digits) {
  return digits.substr(0, 3) + "-" + digits.substr(3);
}

}  // namespace

Result<Dataset> GenerateTax(const TaxOptions& options) {
  if (options.num_rows < 1) {
    return Status::InvalidArgument("num_rows must be >= 1");
  }
  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 0x13198a2e03707344ULL);

  const auto& states = StateNamePool();
  const auto& cities = CityNamePool();
  size_t num_states = states.size();
  size_t num_cities = cities.size();

  // One area code per state; one zip per city; cities 1:1 with zips and
  // unique per state (keeps City -> State a real FD). Key separation
  // floors (see recommended taus below): area codes >= 3/4, zips >= 4/6.
  std::vector<std::string> area_codes =
      MakeDistinctDigitCodes(&rng, num_states, 4, 3);
  std::vector<std::string> zips =
      MakeDistinctDigitCodes(&rng, num_cities, 6, 4);
  std::vector<TaxCity> city_pool(num_cities);
  for (size_t i = 0; i < num_cities; ++i) {
    size_t s = i % num_states;
    city_pool[i].city = cities[i];
    city_pool[i].state = states[s];
    city_pool[i].zip = zips[i];
    city_pool[i].area_code = area_codes[s];
    city_pool[i].state_index = static_cast<int>(s);
  }

  // Household phone pool, per area code: local parts pairwise >= 5 edits
  // so same-area phones stay >= 5/12 = 0.417 apart (tau(x4) = 0.18).
  size_t phones_per_area =
      std::max<size_t>(4, static_cast<size_t>(options.num_rows) /
                              (num_states * 8));
  std::vector<std::vector<std::string>> area_phones(num_states);
  for (size_t s = 0; s < num_states; ++s) {
    for (const std::string& local :
         MakeDistinctDigitCodes(&rng, phones_per_area, 7, 5)) {
      area_phones[s].push_back(area_codes[s] + "-" + FormatLocal(local));
    }
  }

  // Per-state exemption schedules (distinct, coarsely separated).
  std::vector<double> single_exemp(num_states);
  std::vector<double> married_exemp(num_states);
  std::vector<double> child_exemp(num_states);
  for (size_t s = 0; s < num_states; ++s) {
    single_exemp[s] = 1000.0 + 700.0 * static_cast<double>(s);
    married_exemp[s] = 2000.0 + 900.0 * static_cast<double>(s);
    child_exemp[s] = 300.0 + 350.0 * static_cast<double>(s);
  }

  Schema schema({{"FName", ValueType::kString},
                 {"LName", ValueType::kString},
                 {"Gender", ValueType::kString},
                 {"AreaCode", ValueType::kString},
                 {"Phone", ValueType::kString},
                 {"City", ValueType::kString},
                 {"State", ValueType::kString},
                 {"Zip", ValueType::kString},
                 {"MaritalStatus", ValueType::kString},
                 {"HasChild", ValueType::kString},
                 {"Salary", ValueType::kNumber},
                 {"Rate", ValueType::kNumber},
                 {"SingleExemp", ValueType::kNumber},
                 {"MarriedExemp", ValueType::kNumber},
                 {"ChildExemp", ValueType::kNumber}});

  const auto& male = FirstNamePoolMale();
  const auto& female = FirstNamePoolFemale();
  const auto& last_names = LastNamePool();

  Table table(schema);
  for (int r = 0; r < options.num_rows; ++r) {
    const TaxCity& location = city_pool[rng.SkewedIndex(num_cities)];
    size_t s = static_cast<size_t>(location.state_index);
    bool is_male = rng.Bernoulli(0.5);
    const std::string& fname =
        is_male ? male[rng.Index(male.size())] : female[rng.Index(female.size())];
    bool married = rng.Bernoulli(0.5);
    bool has_child = rng.Bernoulli(0.4);
    double salary = 100.0 * static_cast<double>(rng.UniformInt(50, 2000));
    // Progressive state rate (no FD declared on it; realism only).
    double rate = 2.0 + static_cast<double>(s % 5) +
                  (salary > 100000 ? 3.0 : salary > 50000 ? 1.5 : 0.0);
    const std::string& phone = area_phones[s][rng.Index(area_phones[s].size())];
    Row row;
    row.reserve(15);
    row.emplace_back(fname);
    row.emplace_back(last_names[rng.Index(last_names.size())]);
    row.emplace_back(is_male ? "Male" : "Female");
    row.emplace_back(location.area_code);
    row.emplace_back(phone);
    row.emplace_back(location.city);
    row.emplace_back(location.state);
    row.emplace_back(location.zip);
    row.emplace_back(married ? "Married" : "Single");
    row.emplace_back(has_child ? "Yes" : "No");
    row.emplace_back(salary);
    row.emplace_back(rate);
    row.emplace_back(single_exemp[s]);
    row.emplace_back(married ? married_exemp[s] : 0.0);
    row.emplace_back(has_child ? child_exemp[s] : 0.0);
    FTR_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }

  static const char* kFdSpec =
      "x1: Zip -> City\n"
      "x2: Zip -> State\n"
      "x3: AreaCode -> State\n"
      "x4: Phone -> AreaCode\n"
      "x5: City -> State\n"
      "x6: State -> SingleExemp\n"
      "x7: State, MaritalStatus -> MarriedExemp\n"
      "x8: State, HasChild -> ChildExemp\n"
      "x9: FName -> Gender\n";
  FTR_ASSIGN_OR_RETURN(std::vector<FD> fds, ParseFDList(kFdSpec, schema));

  Dataset dataset;
  dataset.name = "Tax";
  dataset.clean = std::move(table);
  dataset.fds = std::move(fds);
  // Taus sit just below each LHS key space's separation floor
  // (w_l * min pairwise distance): zips 0.467, area codes 0.525,
  // cities 0.434, states 0.427, first names 0.49, same-area
  // phones 0.269.
  dataset.recommended_tau = {{"x1", 0.40}, {"x2", 0.40}, {"x3", 0.40},
                             {"x4", 0.25}, {"x5", 0.40}, {"x6", 0.40},
                             {"x7", 0.40}, {"x8", 0.40}, {"x9", 0.40}};
  return dataset;
}

}  // namespace ftrepair
