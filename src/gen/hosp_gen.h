#ifndef FTREPAIR_GEN_HOSP_GEN_H_
#define FTREPAIR_GEN_HOSP_GEN_H_

#include "common/status.h"
#include "gen/dataset.h"

namespace ftrepair {

/// Parameters for the synthetic HOSP workload.
struct HospOptions {
  int num_rows = 10000;
  uint64_t seed = 7;
  /// 0 = auto (about one provider per 64 rows, minimum 24).
  int num_providers = 0;
  int num_measures = 24;
};

/// \brief Synthesizes the HOSP workload (US hospital quality data;
/// §6.1): 19 attributes and 9 FDs in two connected components.
///
/// The real dataset (US Dept. of Health) is not redistributable; this
/// generator reproduces its FD topology with realistic value pools:
///
///   h1: ProviderNumber -> HospitalName    h6: PhoneNumber -> ZipCode
///   h2: ProviderNumber -> PhoneNumber     h7: MeasureCode -> MeasureName
///   h3: ZipCode -> City                   h8: MeasureCode -> Condition
///   h4: ZipCode -> State                  h9: MeasureCode -> StateAvg
///   h5: City -> CountyName
///
/// {h1,h2,h3,h4,h5,h6} form one connected component (provider/location
/// chain), {h7,h8,h9} another (measure chain). Distinct key values are
/// kept mutually well separated (edit distance floors) so legitimate
/// pattern pairs stay above the recommended per-FD taus.
Result<Dataset> GenerateHosp(const HospOptions& options = {});

}  // namespace ftrepair

#endif  // FTREPAIR_GEN_HOSP_GEN_H_
