#ifndef FTREPAIR_GEN_DATASET_H_
#define FTREPAIR_GEN_DATASET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "constraint/fd.h"
#include "data/table.h"

namespace ftrepair {

/// \brief A generated benchmark workload: a clean relation instance,
/// its FDs and per-FD fault-tolerance thresholds tuned to the value
/// pools' separation structure (the paper "set[s] different distance
/// thresholds tau for different constraints", §6.1).
struct Dataset {
  std::string name;
  Table clean;
  std::vector<FD> fds;
  /// Recommended tau per FD name.
  std::unordered_map<std::string, double> recommended_tau;
  /// Recommended Eq. 2 weights. The generators weight the LHS heavier
  /// (the paper: "we can control the percentage of right hand distance
  /// through weight w_r"): active-domain swaps keep the LHS intact and
  /// land at w_r * d(Y) <= w_r, while legitimate pattern pairs always
  /// differ on the LHS key and stay above w_l * d_min(X) > tau.
  double recommended_w_l = 0.7;
  double recommended_w_r = 0.3;
};

}  // namespace ftrepair

#endif  // FTREPAIR_GEN_DATASET_H_
