#include "gen/hosp_gen.h"

#include <algorithm>
#include <string>

#include "constraint/fd_parser.h"
#include "gen/pools.h"

namespace ftrepair {

namespace {

struct CityInfo {
  std::string city;
  std::string state;
  std::string county;
  std::string zip;
};

struct ProviderInfo {
  std::string number;
  std::string name;
  std::string phone;
  std::string address1;
  std::string address2;
  std::string address3;
  int city_index;
};

struct MeasureInfo {
  std::string code;
  std::string name;
  std::string condition;
  double state_avg;
};

}  // namespace

Result<Dataset> GenerateHosp(const HospOptions& options) {
  if (options.num_rows < 1) {
    return Status::InvalidArgument("num_rows must be >= 1");
  }
  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL);

  int num_providers = options.num_providers > 0
                          ? options.num_providers
                          : std::max(24, options.num_rows / 64);
  int num_measures = std::max(
      4, std::min<int>(options.num_measures,
                       static_cast<int>(MeasureNamePool().size())));

  // --- Location pool: city -> (state, county, zip), all 1:1. ---
  const auto& cities = CityNamePool();
  const auto& counties = CountyNamePool();
  const auto& states = StateNamePool();
  size_t num_cities = cities.size();
  // 6-digit zips with pairwise edit distance >= 4: legitimate
  // same-state zip pairs then sit at >= w_l * 4/6 = 0.467, above
  // tau(h3, h4) = 0.40 under the recommended Eq. 2 weights.
  std::vector<std::string> zips =
      MakeDistinctDigitCodes(&rng, num_cities, 6, 4);
  std::vector<CityInfo> city_pool(num_cities);
  for (size_t i = 0; i < num_cities; ++i) {
    city_pool[i].city = cities[i];
    city_pool[i].state = states[i % states.size()];
    city_pool[i].county = counties[i];
    city_pool[i].zip = zips[i];
  }

  // --- Provider pool. ---
  // Provider numbers separated by >= 5/8 = 0.625 (floor 0.4375 >
  // tau(h1, h2) = 0.40); phone digit strings by >= 6/10, i.e.
  // >= 6/12 = 0.5 once formatted (floor 0.35 > tau(h6) = 0.33).
  std::vector<std::string> provider_numbers = MakeDistinctDigitCodes(
      &rng, static_cast<size_t>(num_providers), 8, 5);
  std::vector<std::string> phones = MakeDistinctDigitCodes(
      &rng, static_cast<size_t>(num_providers), 10, 6);
  const auto& words = HospitalWordPool();
  const auto& streets = StreetNamePool();
  std::vector<ProviderInfo> providers(static_cast<size_t>(num_providers));
  for (int p = 0; p < num_providers; ++p) {
    ProviderInfo& info = providers[static_cast<size_t>(p)];
    info.number = provider_numbers[static_cast<size_t>(p)];
    info.city_index = static_cast<int>(rng.Index(num_cities));
    const std::string& w1 = words[rng.Index(words.size())];
    const std::string& w2 = words[rng.Index(words.size())];
    info.name = w1 + " " + w2 + " MEDICAL CENTER " +
                std::to_string(100 + p);
    const std::string& phone = phones[static_cast<size_t>(p)];
    info.phone = phone.substr(0, 3) + "-" + phone.substr(3, 3) + "-" +
                 phone.substr(6, 4);
    info.address1 = std::to_string(100 + rng.UniformInt(0, 899)) + " " +
                    streets[rng.Index(streets.size())];
    info.address2 = "Suite " + std::to_string(rng.UniformInt(1, 40));
    info.address3 = "Building " + std::string(1, static_cast<char>(
                                                     'A' + rng.Index(6)));
  }

  // --- Measure pool. ---
  std::vector<std::string> measure_codes = MakeDistinctCodes(
      &rng, static_cast<size_t>(num_measures), 6,
      "ABCDEFGHJKLMNPQRSTUVWXYZ23456789", 4);
  const auto& measure_names = MeasureNamePool();
  const auto& conditions = ConditionPool();
  std::vector<MeasureInfo> measures(static_cast<size_t>(num_measures));
  for (int m = 0; m < num_measures; ++m) {
    MeasureInfo& info = measures[static_cast<size_t>(m)];
    info.code = measure_codes[static_cast<size_t>(m)];
    info.name = measure_names[static_cast<size_t>(m)];
    info.condition = conditions[static_cast<size_t>(m) % conditions.size()];
    info.state_avg = 40.0 + 2.5 * m;
  }

  // --- Schema (19 attributes, as in the real HOSP extract). ---
  Schema schema({{"ProviderNumber", ValueType::kString},
                 {"HospitalName", ValueType::kString},
                 {"Address1", ValueType::kString},
                 {"Address2", ValueType::kString},
                 {"Address3", ValueType::kString},
                 {"City", ValueType::kString},
                 {"State", ValueType::kString},
                 {"ZipCode", ValueType::kString},
                 {"CountyName", ValueType::kString},
                 {"PhoneNumber", ValueType::kString},
                 {"HospitalType", ValueType::kString},
                 {"HospitalOwner", ValueType::kString},
                 {"EmergencyService", ValueType::kString},
                 {"Condition", ValueType::kString},
                 {"MeasureCode", ValueType::kString},
                 {"MeasureName", ValueType::kString},
                 {"Score", ValueType::kNumber},
                 {"Sample", ValueType::kNumber},
                 {"StateAvg", ValueType::kNumber}});

  static const char* kTypes[] = {"Acute Care Hospital",
                                 "Critical Access Hospital",
                                 "Childrens Hospital"};
  static const char* kOwners[] = {"Government Federal", "Voluntary Nonprofit",
                                  "Proprietary", "Government State"};

  Table table(schema);
  for (int r = 0; r < options.num_rows; ++r) {
    const ProviderInfo& provider =
        providers[rng.SkewedIndex(providers.size())];
    const CityInfo& location =
        city_pool[static_cast<size_t>(provider.city_index)];
    const MeasureInfo& measure = measures[rng.Index(measures.size())];
    Row row;
    row.reserve(19);
    row.emplace_back(provider.number);
    row.emplace_back(provider.name);
    row.emplace_back(provider.address1);
    row.emplace_back(provider.address2);
    row.emplace_back(provider.address3);
    row.emplace_back(location.city);
    row.emplace_back(location.state);
    row.emplace_back(location.zip);
    row.emplace_back(location.county);
    row.emplace_back(provider.phone);
    row.emplace_back(kTypes[rng.Index(3)]);
    row.emplace_back(kOwners[rng.Index(4)]);
    row.emplace_back(rng.Bernoulli(0.7) ? "Yes" : "No");
    row.emplace_back(measure.condition);
    row.emplace_back(measure.code);
    row.emplace_back(measure.name);
    row.emplace_back(static_cast<double>(rng.UniformInt(0, 100)));
    row.emplace_back(static_cast<double>(rng.UniformInt(10, 1000)));
    row.emplace_back(measure.state_avg);
    FTR_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }

  static const char* kFdSpec =
      "h1: ProviderNumber -> HospitalName\n"
      "h2: ProviderNumber -> PhoneNumber\n"
      "h3: ZipCode -> City\n"
      "h4: ZipCode -> State\n"
      "h5: City -> CountyName\n"
      "h6: PhoneNumber -> ZipCode\n"
      "h7: MeasureCode -> MeasureName\n"
      "h8: MeasureCode -> Condition\n"
      "h9: MeasureCode -> StateAvg\n";
  FTR_ASSIGN_OR_RETURN(std::vector<FD> fds, ParseFDList(kFdSpec, schema));

  Dataset dataset;
  dataset.name = "HOSP";
  dataset.clean = std::move(table);
  dataset.fds = std::move(fds);
  // Per-FD taus sit just below each LHS key space's separation floor
  // (w_l * min pairwise distance), so clean data has zero FT-violations
  // while typos and active-domain swaps (<= w_r) stay detectable.
  dataset.recommended_tau = {{"h1", 0.40}, {"h2", 0.40}, {"h3", 0.40},
                             {"h4", 0.40}, {"h5", 0.40}, {"h6", 0.33},
                             {"h7", 0.40}, {"h8", 0.40}, {"h9", 0.40}};
  return dataset;
}

}  // namespace ftrepair
