#include "core/target_tree.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/trace.h"
#include "detect/pattern.h"
#include "detect/violation_graph.h"

namespace ftrepair {

Result<TargetTree> TargetTree::Build(std::vector<LevelInput> inputs,
                                     std::vector<int> component_cols,
                                     size_t max_nodes,
                                     const MemoryBudget* memory) {
  FTR_TRACE_SPAN("targets.tree_build");
  if (inputs.empty()) {
    return Status::InvalidArgument("target tree needs >= 1 independent set");
  }
  // Smaller sets near the root (§5.1); stable for determinism.
  std::stable_sort(inputs.begin(), inputs.end(),
                   [](const LevelInput& a, const LevelInput& b) {
                     return a.elements.size() < b.elements.size();
                   });

  TargetTree tree;
  tree.component_cols_ = std::move(component_cols);
  tree.num_levels_ = static_cast<int>(inputs.size());
  int width = static_cast<int>(tree.component_cols_.size());

  std::unordered_map<int, int> col_to_pos;
  for (int p = 0; p < width; ++p) {
    col_to_pos.emplace(tree.component_cols_[static_cast<size_t>(p)], p);
  }

  // Positions fixed at each level = attrs of that FD not fixed earlier.
  // attr_pos[l][k] = component position of the k-th attr of level l's FD.
  std::vector<std::vector<int>> attr_pos(
      static_cast<size_t>(tree.num_levels_));
  std::vector<bool> fixed(static_cast<size_t>(width), false);
  tree.fixed_positions_.resize(static_cast<size_t>(tree.num_levels_));
  for (int l = 0; l < tree.num_levels_; ++l) {
    const FD* fd = inputs[static_cast<size_t>(l)].fd;
    for (int c : fd->attrs()) {
      auto it = col_to_pos.find(c);
      if (it == col_to_pos.end()) {
        return Status::InvalidArgument(
            "FD attribute not in component columns");
      }
      attr_pos[static_cast<size_t>(l)].push_back(it->second);
      if (!fixed[static_cast<size_t>(it->second)]) {
        fixed[static_cast<size_t>(it->second)] = true;
        tree.fixed_positions_[static_cast<size_t>(l)].push_back(it->second);
      }
    }
  }
  for (int p = 0; p < width; ++p) {
    if (!fixed[static_cast<size_t>(p)]) {
      return Status::InvalidArgument(
          "component column covered by no FD in the target tree");
    }
  }
  // future_positions_[l] = positions fixed at level >= l.
  tree.future_positions_.assign(static_cast<size_t>(tree.num_levels_ + 1),
                                {});
  for (int l = tree.num_levels_ - 1; l >= 0; --l) {
    tree.future_positions_[static_cast<size_t>(l)] =
        tree.future_positions_[static_cast<size_t>(l + 1)];
    for (int p : tree.fixed_positions_[static_cast<size_t>(l)]) {
      tree.future_positions_[static_cast<size_t>(l)].push_back(p);
    }
    std::sort(tree.future_positions_[static_cast<size_t>(l)].begin(),
              tree.future_positions_[static_cast<size_t>(l)].end());
  }

  // Level-by-level construction.
  tree.nodes_.clear();
  Node root;
  root.level = -1;
  root.assign.assign(static_cast<size_t>(width), Value());
  tree.nodes_.push_back(std::move(root));
  std::vector<int> current_leaves = {0};

  for (int l = 0; l < tree.num_levels_; ++l) {
    const LevelInput& input = inputs[static_cast<size_t>(l)];
    std::vector<int> next_leaves;
    for (int node_id : current_leaves) {
      for (size_t e = 0; e < input.elements.size(); ++e) {
        const std::vector<Value>& elem = input.elements[e];
        // Agreement on already-fixed shared positions.
        bool agrees = true;
        const Node& parent = tree.nodes_[static_cast<size_t>(node_id)];
        for (size_t k = 0; k < attr_pos[static_cast<size_t>(l)].size(); ++k) {
          int pos = attr_pos[static_cast<size_t>(l)][k];
          bool fixed_earlier = true;
          // pos is fixed at this level iff it appears in
          // fixed_positions_[l]; linear scan is fine (few attrs).
          for (int fp : tree.fixed_positions_[static_cast<size_t>(l)]) {
            if (fp == pos) {
              fixed_earlier = false;
              break;
            }
          }
          if (fixed_earlier &&
              parent.assign[static_cast<size_t>(pos)] != elem[k]) {
            agrees = false;
            break;
          }
        }
        if (!agrees) continue;
        if (tree.nodes_.size() >= max_nodes) {
          return Status::ResourceExhausted(
              "target tree exceeded " + std::to_string(max_nodes) +
              " nodes");
        }
        if (!MemCharge(memory,
                       sizeof(Node) + static_cast<uint64_t>(width) *
                                          sizeof(Value),
                       MemPhase::kTargets)) {
          return memory->Check("target tree build");
        }
        Node child;
        child.level = l;
        child.parent = node_id;
        child.assign = parent.assign;
        for (size_t k = 0; k < attr_pos[static_cast<size_t>(l)].size(); ++k) {
          child.assign[static_cast<size_t>(
              attr_pos[static_cast<size_t>(l)][k])] = elem[k];
        }
        int child_id = static_cast<int>(tree.nodes_.size());
        tree.nodes_.push_back(std::move(child));
        tree.nodes_[static_cast<size_t>(node_id)].children.push_back(
            child_id);
        next_leaves.push_back(child_id);
      }
    }
    if (next_leaves.empty()) {
      return Status::NotFound("target join is empty");
    }
    current_leaves = std::move(next_leaves);
  }

  // Mark alive = on a complete path; leaves of the last level are alive.
  for (int leaf : current_leaves) {
    int cur = leaf;
    while (cur >= 0 && !tree.nodes_[static_cast<size_t>(cur)].alive) {
      tree.nodes_[static_cast<size_t>(cur)].alive = true;
      cur = tree.nodes_[static_cast<size_t>(cur)].parent;
    }
  }
  tree.num_targets_ = current_leaves.size();

  // `below` value sets, bottom-up (node ids are topological: parent < child).
  for (int id = static_cast<int>(tree.nodes_.size()) - 1; id >= 0; --id) {
    Node& node = tree.nodes_[static_cast<size_t>(id)];
    if (!node.alive) continue;
    const std::vector<int>& future =
        tree.future_positions_[static_cast<size_t>(node.level + 1)];
    std::vector<std::set<Value>> sets(future.size());
    for (int child_id : node.children) {
      const Node& child = tree.nodes_[static_cast<size_t>(child_id)];
      if (!child.alive) continue;
      const std::vector<int>& child_future =
          tree.future_positions_[static_cast<size_t>(child.level + 1)];
      for (size_t fi = 0; fi < future.size(); ++fi) {
        int pos = future[fi];
        bool in_child_future =
            std::binary_search(child_future.begin(), child_future.end(), pos);
        if (in_child_future) {
          // Deeper levels fix it: merge the child's below-set.
          size_t ci = static_cast<size_t>(
              std::lower_bound(child_future.begin(), child_future.end(),
                               pos) -
              child_future.begin());
          for (const Value& v : child.below[ci]) sets[fi].insert(v);
        } else {
          // The child itself fixed it.
          sets[fi].insert(child.assign[static_cast<size_t>(pos)]);
        }
      }
    }
    node.below.resize(future.size());
    for (size_t fi = 0; fi < future.size(); ++fi) {
      node.below[fi].assign(sets[fi].begin(), sets[fi].end());
    }
  }
  return tree;
}

double TargetTree::Edist(const Node& node,
                         const std::vector<Value>& tuple_proj,
                         const DistanceModel& model) const {
  const std::vector<int>& future =
      future_positions_[static_cast<size_t>(node.level + 1)];
  double sum = 0;
  for (size_t fi = 0; fi < future.size(); ++fi) {
    int pos = future[fi];
    int col = component_cols_[static_cast<size_t>(pos)];
    double best = 1.0;
    for (const Value& v : node.below[fi]) {
      best = std::min(
          best,
          model.CellDistance(col, tuple_proj[static_cast<size_t>(pos)], v));
      if (best == 0) break;
    }
    sum += best;
  }
  return sum;
}

std::vector<Value> TargetTree::FindBest(const std::vector<Value>& tuple_proj,
                                        const DistanceModel& model,
                                        double* cost, SearchStats* stats,
                                        const Budget* budget,
                                        const MemoryBudget* memory) const {
  struct QueueEntry {
    double f;
    int node;
    double rdist;
    bool operator>(const QueueEntry& other) const { return f > other.f; }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  queue.push(QueueEntry{Edist(nodes_[0], tuple_proj, model), 0, 0.0});

  double c_min = ViolationGraph::kInfinity;
  int best_leaf = -1;
  while (!queue.empty()) {
    if (!BudgetCharge(budget) ||
        !MemCharge(memory, sizeof(QueueEntry), MemPhase::kTargets)) {
      break;  // out of budget: settle for the best leaf so far, if any
    }
    QueueEntry top = queue.top();
    queue.pop();
    if (top.f >= c_min) {
      if (stats != nullptr) ++stats->nodes_pruned;
      continue;
    }
    const Node& node = nodes_[static_cast<size_t>(top.node)];
    if (stats != nullptr) ++stats->nodes_visited;
    if (node.level == num_levels_ - 1) {
      // Leaf: f is the exact cost (EDIST is empty at the last level).
      c_min = top.f;
      best_leaf = top.node;
      continue;
    }
    for (int child_id : node.children) {
      const Node& child = nodes_[static_cast<size_t>(child_id)];
      if (!child.alive) continue;
      double rdist = top.rdist;
      for (int pos :
           fixed_positions_[static_cast<size_t>(child.level)]) {
        rdist += model.CellDistance(
            component_cols_[static_cast<size_t>(pos)],
            tuple_proj[static_cast<size_t>(pos)],
            child.assign[static_cast<size_t>(pos)]);
      }
      double f = rdist + Edist(child, tuple_proj, model);
      if (f < c_min) {
        queue.push(QueueEntry{f, child_id, rdist});
      } else if (stats != nullptr) {
        ++stats->nodes_pruned;
      }
    }
  }
  if (best_leaf < 0) {
    // Only reachable when a budget ran out before the first leaf;
    // an unbudgeted search always reaches one (the tree is nonempty).
    FTR_DCHECK(BudgetExhausted(budget) || MemExhausted(memory));
    *cost = ViolationGraph::kInfinity;
    return {};
  }
  *cost = c_min;
  return nodes_[static_cast<size_t>(best_leaf)].assign;
}

std::vector<std::vector<Value>> TargetTree::EnumerateTargets() const {
  std::vector<std::vector<Value>> out;
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(id)];
    if (!node.alive) continue;
    if (node.level == num_levels_ - 1) {
      out.push_back(node.assign);
      continue;
    }
    for (int child : node.children) stack.push_back(child);
  }
  return out;
}

}  // namespace ftrepair
