#ifndef FTREPAIR_CORE_TARGET_TREE_H_
#define FTREPAIR_CORE_TARGET_TREE_H_

#include <cstdint>
#include <vector>

#include "common/budget.h"
#include "common/resource.h"
#include "common/status.h"
#include "constraint/fd.h"
#include "data/table.h"
#include "metric/projection.h"

namespace ftrepair {

/// \brief The target tree of §5: a trie over one independent set per FD
/// whose root-to-leaf paths are the joinable *targets* of a multi-FD
/// component.
///
/// Levels are ordered by independent-set size ascending (§5.1, smaller
/// fan-out near the root). A node at level l fixes the values of FD_l's
/// attributes; a child is attached only when it agrees with every value
/// already fixed on the path. Paths that cannot reach the last level
/// are discarded ("if a path has less than |Sigma|+1 nodes, this path
/// is not a target"). Each node stores the distinct attribute values
/// appearing in its subtree for the not-yet-fixed columns, enabling the
/// EDIST lower bound of the best-first search (§5.2, Algorithm 5).
class TargetTree {
 public:
  /// One per-FD independent set: `elements[i]` is laid out over
  /// `fd->attrs()`.
  struct LevelInput {
    const FD* fd;
    std::vector<std::vector<Value>> elements;
  };

  struct SearchStats {
    uint64_t nodes_visited = 0;
    uint64_t nodes_pruned = 0;
  };

  /// Builds the tree over `component_cols` (sorted union of the FDs'
  /// attributes). Fails with NotFound when the join is empty and with
  /// ResourceExhausted when more than `max_nodes` trie nodes would be
  /// created — or when `memory` (optional, not owned; charged per trie
  /// node, MemPhase::kTargets) runs out first.
  static Result<TargetTree> Build(std::vector<LevelInput> inputs,
                                  std::vector<int> component_cols,
                                  size_t max_nodes,
                                  const MemoryBudget* memory = nullptr);

  /// Number of targets (root-to-leaf paths).
  size_t num_targets() const { return num_targets_; }

  const std::vector<int>& component_cols() const { return component_cols_; }

  /// Best-first search (Algorithm 5) for the target minimizing the
  /// repair cost of `tuple_proj` (values over component_cols order).
  /// Returns the winning assignment; `cost` receives its exact cost.
  ///
  /// `budget` (optional, not owned) is charged one unit per node
  /// popped; on exhaustion the best leaf reached so far is returned
  /// (possibly suboptimal), or an empty vector with `cost` = infinity
  /// when no leaf was reached yet. `memory` (optional, not owned) is
  /// charged per queue entry and truncates the search the same way.
  std::vector<Value> FindBest(const std::vector<Value>& tuple_proj,
                              const DistanceModel& model, double* cost,
                              SearchStats* stats,
                              const Budget* budget = nullptr,
                              const MemoryBudget* memory = nullptr) const;

  /// Materializes every target (the no-tree ablation uses this plus a
  /// linear scan).
  std::vector<std::vector<Value>> EnumerateTargets() const;

 private:
  struct Node {
    int level = -1;  // -1 for the virtual root
    int parent = -1;
    std::vector<int> children;
    /// Partial assignment over component positions; positions fixed at
    /// levels <= `level` are meaningful.
    std::vector<Value> assign;
    /// For each future position (see future_positions_[level + 1]):
    /// distinct values in this node's subtree.
    std::vector<std::vector<Value>> below;
    bool alive = false;
  };

  double Edist(const Node& node, const std::vector<Value>& tuple_proj,
               const DistanceModel& model) const;

  std::vector<int> component_cols_;
  /// fixed_positions_[l]: component positions first fixed at level l.
  std::vector<std::vector<int>> fixed_positions_;
  /// future_positions_[l]: positions fixed at level >= l (so a node at
  /// level l-1 stores `below` for future_positions_[l]).
  std::vector<std::vector<int>> future_positions_;
  std::vector<Node> nodes_;
  int num_levels_ = 0;
  size_t num_targets_ = 0;
};

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_TARGET_TREE_H_
