#ifndef FTREPAIR_CORE_EXPANSION_MULTI_H_
#define FTREPAIR_CORE_EXPANSION_MULTI_H_

#include "core/multi_common.h"

namespace ftrepair {

/// \brief Expansion-M (§4.2, Algorithm 3): the optimal multi-FD repair.
///
/// Enumerates *every* maximal independent set of each FD's violation
/// graph (per-FD cost pruning is disabled: the joint optimum may use a
/// per-FD-suboptimal set), then searches the Cartesian product of
/// per-FD sets. Each combination is lower-bounded by (a) the largest
/// per-FD exclusion bound and (b) the exclusion-bound sum over a
/// pairwise attribute-disjoint FD subset — both sound because repair
/// costs over disjoint attribute sets add, and any excluded phi-pattern
/// must move to another existing phi-value at cost >= min(cheapest
/// incident edge, tau / max(w_l, w_r)). Surviving combinations are
/// joined with a target tree and evaluated exactly with early abort.
///
/// Returns ResourceExhausted when a safety valve (`max_frontier`,
/// `max_sets_per_fd`, `max_combinations`, `max_tree_nodes`) trips; the
/// Repairer facade then falls back to the greedy family.
Result<MultiFDSolution> SolveExpansionMulti(const ComponentContext& context,
                                            const DistanceModel& model,
                                            const RepairOptions& options,
                                            RepairStats* stats);

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_EXPANSION_MULTI_H_
