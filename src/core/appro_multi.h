#ifndef FTREPAIR_CORE_APPRO_MULTI_H_
#define FTREPAIR_CORE_APPRO_MULTI_H_

#include "core/multi_common.h"

namespace ftrepair {

/// \brief Appro-M (§4.3): runs Greedy-S independently on each FD of the
/// component, then joins the chosen sets into targets and repairs every
/// inconsistent tuple to its cheapest target.
///
/// Fast — O(V^2 * |Sigma|) — but blind to cross-constraint interaction,
/// which is exactly the weakness Greedy-M addresses (§4.4, evaluated in
/// Fig. 6).
Result<MultiFDSolution> SolveApproMulti(const ComponentContext& context,
                                        const DistanceModel& model,
                                        const RepairOptions& options,
                                        RepairStats* stats);

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_APPRO_MULTI_H_
