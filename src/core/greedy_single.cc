#include "core/greedy_single.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "common/trace.h"

namespace ftrepair {

SingleFDSolution SolveGreedySingle(const ViolationGraph& graph,
                                   const std::vector<bool>* forced,
                                   uint64_t* trusted_conflicts,
                                   const Budget* budget,
                                   const MemoryBudget* memory) {
  FTR_TRACE_SPAN("greedy.solve_single");
  SingleFDSolution solution;
  solution.rung = SolverRung::kGreedy;
  int n = graph.num_patterns();
  solution.repair_target.assign(static_cast<size_t>(n), -1);
  if (n == 0) return solution;

  constexpr double kInf = ViolationGraph::kInfinity;
  std::vector<bool> in_set(static_cast<size_t>(n), false);
  // blocked[v] = number of chosen members v conflicts with.
  std::vector<int> blocked(static_cast<size_t>(n), 0);
  // best[v] / best_to[v]: cheapest repair of v into the current set
  // (unit cost; the grouped cost is count(v) * best[v]).
  std::vector<double> best(static_cast<size_t>(n), kInf);
  std::vector<int> best_to(static_cast<size_t>(n), -1);

  // Isolated patterns join the set unconditionally (they are members of
  // every maximal independent set).
  int pending = 0;
  for (int v = 0; v < n; ++v) {
    if (graph.degree(v) == 0) {
      in_set[static_cast<size_t>(v)] = true;
      solution.chosen_set.push_back(v);
    } else {
      ++pending;
    }
  }

  // Vertices whose `best` decreased during the latest add_member call;
  // only candidates adjacent to one of them can have a changed
  // incremental cost, which is what the grow loop's re-scoring keys on.
  std::vector<int> best_lowered;
  auto add_member = [&](int t) {
    in_set[static_cast<size_t>(t)] = true;
    solution.chosen_set.push_back(t);
    --pending;
    best_lowered.clear();
    for (const ViolationGraph::Edge& e : graph.Neighbors(t)) {
      ++blocked[static_cast<size_t>(e.to)];
      if (e.unit_cost < best[static_cast<size_t>(e.to)]) {
        best[static_cast<size_t>(e.to)] = e.unit_cost;
        best_to[static_cast<size_t>(e.to)] = t;
        best_lowered.push_back(e.to);
      }
    }
  };

  // Trusted patterns are pinned first: other tuples repair toward
  // them. A forced pattern conflicting with an earlier forced member is
  // kept regardless (trusted rows are never modified) and the conflict
  // is surfaced to the caller.
  if (forced != nullptr) {
    for (int t = 0; t < n; ++t) {
      if (!(*forced)[static_cast<size_t>(t)] ||
          in_set[static_cast<size_t>(t)]) {
        continue;
      }
      if (blocked[static_cast<size_t>(t)] > 0 &&
          trusted_conflicts != nullptr) {
        ++*trusted_conflicts;
      }
      add_member(t);
    }
  }

  // The exclusion regret of a pattern: the grouped cost it pays if it
  // ends up outside the set (repaired to its cheapest neighbor). The
  // Eq. 7/8 costs alone charge a candidate the full repair bill of its
  // neighbors — which a low-frequency near-duplicate of a frequent
  // pattern wins by a landslide, anchoring the set on the typo. Netting
  // out the candidate's own exclusion cost restores the MIS objective's
  // frequency preference (cf. §3.1 "the maximal independent set with
  // the highest frequent tuples is likely to have small repair cost").
  auto regret = [&graph](int t) {
    double mec = graph.MinEdgeCost(t);
    return mec == kInf ? 0.0 : graph.pattern(t).count() * mec;
  };

  // Initial member: smallest net initial cost, S(t) of Eq. 7 minus the
  // exclusion regret.
  if (pending > 0) {
    int first = -1;
    double first_cost = kInf;
    for (int t = 0; t < n; ++t) {
      if (in_set[static_cast<size_t>(t)] ||
          blocked[static_cast<size_t>(t)] != 0) {
        continue;  // forced members may already block candidates
      }
      double s = 0;
      for (const ViolationGraph::Edge& e : graph.Neighbors(t)) {
        s += graph.pattern(e.to).count() * e.unit_cost;
      }
      s -= regret(t);
      if (s < first_cost) {
        first_cost = s;
        first = t;
      }
    }
    if (first >= 0) add_member(first);
  }

  // The net incremental cost of candidate t (Eq. 8 minus the exclusion
  // regret), summed in adjacency order — the exact FP operation
  // sequence of the historical full rescan, so the priority-queue grow
  // loop below selects bit-identical members.
  auto score_of = [&](int t) {
    double s = 0;
    for (const ViolationGraph::Edge& e : graph.Neighbors(t)) {
      int v = e.to;
      double m = graph.pattern(v).count();
      if (best[static_cast<size_t>(v)] == kInf) {
        s += m * e.unit_cost;  // newly covered neighbor
      } else if (e.unit_cost < best[static_cast<size_t>(v)]) {
        s += m * (e.unit_cost - best[static_cast<size_t>(v)]);  // <= 0
      }
    }
    return s - regret(t);
  };

  // Grow: repeatedly add the FT-consistent pattern with the smallest
  // net incremental cost. Instead of rescanning all n candidates per
  // accepted member (O(n^2 * deg) over a run), candidates sit in a
  // lazy-deletion min-heap keyed on (score, id). A candidate's score
  // only changes when `best` drops for one of its neighbors, so after
  // each accepted member only the 2-hop neighborhood (candidates
  // adjacent to a best-lowered vertex) is re-scored and re-pushed;
  // superseded heap entries are discarded on pop by comparing against
  // score[t]. Scores are monotonically non-increasing as the set grows
  // (IEEE addition/multiplication are monotone and each term can only
  // shrink), so the freshest entry for a candidate is also its
  // smallest — popping the heap minimum always yields the candidate
  // the full rescan would have picked, with the same
  // smallest-id-wins tie-break.
  if (pending > 0) {
    using HeapEntry = std::pair<double, int>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap;
    std::vector<double> score(static_cast<size_t>(n), kInf);
    auto push_fresh = [&](int t) {
      double s = score_of(t);
      score[static_cast<size_t>(t)] = s;
      heap.emplace(s, t);
    };
    for (int t = 0; t < n; ++t) {
      if (!in_set[static_cast<size_t>(t)] &&
          blocked[static_cast<size_t>(t)] == 0) {
        push_fresh(t);
      }
    }
    while (pending > 0) {
      if (!BudgetCharge(budget) ||
          !MemCharge(memory, sizeof(HeapEntry), MemPhase::kSolve)) {
        // Out of budget (time or memory): stop growing. Patterns
        // without a chosen neighbor stay unrepaired (detect-only
        // remainder).
        solution.truncated = true;
        break;
      }
      int pick = -1;
      while (!heap.empty()) {
        const auto [s, t] = heap.top();
        if (in_set[static_cast<size_t>(t)] ||
            blocked[static_cast<size_t>(t)] != 0 ||
            s != score[static_cast<size_t>(t)]) {
          heap.pop();  // member, blocked, or superseded entry
          continue;
        }
        heap.pop();
        pick = t;
        break;
      }
      if (pick < 0) break;  // every remaining pattern is blocked
      add_member(pick);
      for (int v : best_lowered) {
        for (const ViolationGraph::Edge& e : graph.Neighbors(v)) {
          int t = e.to;
          if (!in_set[static_cast<size_t>(t)] &&
              blocked[static_cast<size_t>(t)] == 0) {
            push_fresh(t);
          }
        }
      }
    }
  }

  // Repair: every excluded pattern goes to its cheapest chosen neighbor.
  // After a truncated run some patterns have no chosen neighbor yet
  // (best == kInf); they keep their values and stay unrepaired.
  solution.cost = 0;
  for (int v = 0; v < n; ++v) {
    if (in_set[static_cast<size_t>(v)]) continue;
    if (best[static_cast<size_t>(v)] == kInf) continue;
    solution.repair_target[static_cast<size_t>(v)] =
        best_to[static_cast<size_t>(v)];
    solution.cost += graph.pattern(v).count() * best[static_cast<size_t>(v)];
  }
  std::sort(solution.chosen_set.begin(), solution.chosen_set.end());
  return solution;
}

}  // namespace ftrepair
