#ifndef FTREPAIR_CORE_CARDINALITY_H_
#define FTREPAIR_CORE_CARDINALITY_H_

#include <cstdint>
#include <vector>

#include "core/repair_types.h"
#include "detect/violation_graph.h"

namespace ftrepair {

/// \brief The cardinality semantics' poly-time exact solver: per-block
/// majority vote.
///
/// Preconditions (established by the pipeline's cardinality overrides
/// and the caller's dispatch): `graph` was built with classical
/// detection (tau = 0, w_l = 1, w_r = 0) over an indicator-metric
/// DistanceModel, and the FD has exactly one RHS attribute. Under those
/// settings every connected component is a clique of patterns sharing
/// one LHS value block, and each repaired row changes exactly one cell
/// — so keeping the pattern with the most rows (the majority) and
/// repairing every other pattern toward it changes
/// `block_rows - majority_rows` cells, which meets the lower bound
/// (any consistent repair of the block must touch at least that many
/// rows, one cell minimum each). Components with more than one RHS
/// attribute or spanning multiple FDs are NOT majority-optimal (moving
/// a row's LHS can be cheaper than rewriting its RHS vector); the
/// pipeline routes those to the regular search solvers instead.
///
/// `forced` (nullable) marks patterns carrying trusted rows: forced
/// patterns are never repaired, non-forced patterns repair toward the
/// lowest-id forced pattern, and f > 1 forced patterns in one block
/// contribute f*(f-1)/2 pairwise conflicts to `trusted_conflicts`
/// (master data contradicting itself — surfaced, not "repaired").
///
/// Deterministic: majority ties break toward the lowest pattern id.
/// Never truncates — the scan is linear in patterns + edges.
SingleFDSolution SolveCardinalityMajority(const ViolationGraph& graph,
                                          const std::vector<bool>* forced,
                                          uint64_t* trusted_conflicts);

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_CARDINALITY_H_
