#ifndef FTREPAIR_CORE_GREEDY_MULTI_H_
#define FTREPAIR_CORE_GREEDY_MULTI_H_

#include "core/multi_common.h"

namespace ftrepair {

/// \brief Greedy-M (§4.4, Algorithm 4): joint greedy over all FDs of a
/// connected component.
///
/// Repeatedly adds the (FD, phi-pattern) candidate with the smallest
/// *tuple cost* (Eq. 12) to that FD's independent set. The tuple cost
/// prices every conflicting neighbor at its best modification, where
/// "best" is synchronization-aware: a candidate modification is scored
/// by its repair cost plus `options.cross_weight` per violation it
/// triggers (minus per violation it eliminates) against the chosen sets
/// of connected FDs. Substituted projections that do not exist as
/// patterns score neutrally (a documented approximation — exact
/// re-detection would need a fresh similarity join per candidate).
/// Terminates when every phi-pattern is chosen or blocked, then joins
/// the sets into targets and repairs (lines 7-9).
Result<MultiFDSolution> SolveGreedyMulti(const ComponentContext& context,
                                         const DistanceModel& model,
                                         const RepairOptions& options,
                                         RepairStats* stats);

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_GREEDY_MULTI_H_
