#ifndef FTREPAIR_CORE_GREEDY_SINGLE_H_
#define FTREPAIR_CORE_GREEDY_SINGLE_H_

#include "core/repair_types.h"
#include "detect/violation_graph.h"

namespace ftrepair {

/// \brief Greedy-S (§3.2, Algorithm 2): grows an expected-best
/// independent set.
///
/// The first member is the pattern with the smallest *initial cost*
/// (Eq. 7: the grouped cost of repairing all its neighbors to it); each
/// following member is the FT-consistent pattern with the smallest
/// *incremental cost* (Eq. 8: improvement for already-covered neighbors
/// plus fresh cost for newly covered ones). Excluded patterns are then
/// repaired to their cheapest neighbor in the set. Ties break toward
/// the smaller pattern id.
///
/// The grow loop keeps candidates in a lazy-deletion priority queue
/// keyed on the net incremental cost and re-scores only the 2-hop
/// neighborhood of each accepted member, so a run costs
/// O((V + sum of re-scored degrees) log V) instead of the historical
/// O(|I| * V * deg) full rescan per member — while selecting
/// bit-identical chosen sets (scores are recomputed with the same
/// operation order the rescan used).
///
/// `forced` (optional, one flag per pattern) pins trusted patterns into
/// the set before anything else; a forced pattern conflicting with an
/// earlier forced member is still kept (trust beats independence) and
/// counted into `trusted_conflicts` when non-null.
///
/// `budget` (optional, not owned) is charged one unit per candidate
/// scanned while growing the set. On exhaustion growth stops early:
/// the solution is still well-formed, but patterns that never gained a
/// chosen neighbor stay unrepaired (repair_target -1, excluded from
/// cost) and `truncated` is set. `memory` (optional, not owned) is
/// charged per queue entry the grow loop pushes and truncates growth
/// the same way.
SingleFDSolution SolveGreedySingle(const ViolationGraph& graph,
                                   const std::vector<bool>* forced = nullptr,
                                   uint64_t* trusted_conflicts = nullptr,
                                   const Budget* budget = nullptr,
                                   const MemoryBudget* memory = nullptr);

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_GREEDY_SINGLE_H_
