#ifndef FTREPAIR_CORE_LAZY_TARGETS_H_
#define FTREPAIR_CORE_LAZY_TARGETS_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/target_tree.h"

namespace ftrepair {

/// \brief Lazy-materialization variant of the §5 target tree.
///
/// The eager TargetTree materializes every joinable root-to-leaf path;
/// when per-FD independent sets contain many low-frequency (dirty)
/// elements, path counts multiply across levels and the build explodes
/// — the worst case §5 acknowledges ("may be exponential to the number
/// of tuples"). This class keeps the same level order and the same
/// best-first search, but expands nodes on demand:
///
///   * children come from a per-level hash index keyed by the values of
///     the level's attributes already fixed higher up the path;
///   * elements that cannot pairwise-agree with any element of some
///     other level are pruned up front (a sound fixpoint relaxation,
///     which also detects most empty joins at build time);
///   * EDIST uses per-position *global* value sets instead of per-node
///     subtree sets — a weaker but still admissible lower bound that
///     needs no materialized tree.
///
/// A per-query visit budget bounds pathological searches; when it is
/// exhausted the best leaf found so far (if any) is returned and the
/// truncation is surfaced through SearchStats.
class LazyTargetSearch {
 public:
  struct QueryResult {
    /// Empty when no target was found (empty join or budget exhausted
    /// before the first leaf).
    std::vector<Value> target;
    double cost = 0;
    bool truncated = false;
  };

  /// Validates the inputs and builds the per-level indices. Fails with
  /// NotFound when the pairwise-consistency relaxation proves the join
  /// empty.
  static Result<LazyTargetSearch> Build(
      std::vector<TargetTree::LevelInput> inputs,
      std::vector<int> component_cols);

  /// Best-first search for the cheapest target for `tuple_proj`
  /// (values over component_cols order). `budget` (optional, not
  /// owned) is charged one unit per visit and truncates the search
  /// exactly like the visit cap when it runs out; `memory` (optional,
  /// not owned) is charged per arena node pushed and truncates the
  /// same way.
  QueryResult FindBest(const std::vector<Value>& tuple_proj,
                       const DistanceModel& model, uint64_t max_visits,
                       TargetTree::SearchStats* stats,
                       const Budget* budget = nullptr,
                       const MemoryBudget* memory = nullptr) const;

  const std::vector<int>& component_cols() const { return component_cols_; }

 private:
  struct Level {
    const FD* fd = nullptr;
    /// Elements surviving the pairwise-consistency prefilter; laid out
    /// over the FD's attrs().
    std::vector<std::vector<Value>> elements;
    /// Component position of each of the FD's attrs.
    std::vector<int> attr_pos;
    /// Positions first fixed at this level (subset of attr_pos).
    std::vector<int> fixed_pos;
    /// attr indices (into attr_pos) already fixed by earlier levels.
    std::vector<int> back_attr;
    /// Index: projection of an element onto back_attr -> element ids.
    std::unordered_map<size_t, std::vector<int>> index;
  };

  size_t BackKey(const Level& level,
                 const std::vector<Value>& assignment) const;

  std::vector<int> component_cols_;
  std::vector<Level> levels_;
  /// Distinct values per component position (from the first-fixing
  /// level's elements), for the global EDIST bound.
  std::vector<std::vector<Value>> position_values_;
  /// position_of_level_suffix_[l]: positions first fixed at level >= l.
  std::vector<std::vector<int>> suffix_positions_;
};

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_LAZY_TARGETS_H_
