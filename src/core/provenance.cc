#include "core/provenance.h"

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "common/json.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "core/repair_types.h"
#include "data/table.h"
#include "metric/projection.h"

namespace ftrepair {

const char* SolverRungName(SolverRung rung) {
  switch (rung) {
    case SolverRung::kNone:
      return "none";
    case SolverRung::kExact:
      return "exact";
    case SolverRung::kGreedy:
      return "greedy";
    case SolverRung::kAppro:
      return "appro";
    case SolverRung::kConstant:
      return "constant";
    case SolverRung::kCardinality:
      return "cardinality";
  }
  return "?";
}

namespace {

// One JSON value per cell Value: the JSON type carries the Value type
// (null / string / number), and numbers render round-trip exact.
std::string ValueJson(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kString:
      return "\"" + JsonEscape(v.str()) + "\"";
    case ValueType::kNumber:
      return JsonNumberExact(v.num());
  }
  return "null";
}

std::string ValuesJson(const std::vector<Value>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += ValueJson(values[i]);
  }
  return out + "]";
}

std::string IntsJson(const std::vector<int>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

void AppendDegradationJson(const DegradationEvent& event, std::string* out) {
  *out += "{\"component\":\"" + JsonEscape(event.component) +
          "\",\"stage\":\"" + JsonEscape(event.stage) + "\",\"cause\":\"" +
          DegradationCauseName(event.cause) + "\",\"reason\":\"" +
          JsonEscape(event.reason) +
          "\",\"elapsed_ms\":" + JsonNumberExact(event.elapsed_ms) + "}";
}

void AppendDecisionJson(const RepairProvenance& prov,
                        const RepairDecision& d, size_t index,
                        std::string* out) {
  *out += "{\"index\":" + std::to_string(index) +
          ",\"component\":" + std::to_string(d.component) +
          ",\"fd\":" + std::to_string(d.fd) + ",\"rung\":\"" +
          SolverRungName(d.rung) + "\"";
  *out += ",\"source_pattern\":" + std::to_string(d.source_pattern) +
          ",\"target_pattern\":" + std::to_string(d.target_pattern);
  *out += ",\"cols\":" + IntsJson(d.cols);
  *out += ",\"source_values\":" + ValuesJson(d.source_values);
  *out += ",\"target_values\":" + ValuesJson(d.target_values);
  *out += ",\"rows\":" + IntsJson(d.rows);
  *out += ",\"unit_cost\":" + JsonNumberExact(d.unit_cost);
  *out += ",\"degradations_before\":" + std::to_string(d.degradations_before);
  *out += ",\"edges\":[";
  for (size_t e = 0; e < d.edges.size(); ++e) {
    const ProvenanceEdge& edge = d.edges[e];
    if (e > 0) *out += ",";
    *out += "{\"fd\":" + std::to_string(edge.fd) +
            ",\"peer\":" + std::to_string(edge.peer) +
            ",\"peer_values\":" + ValuesJson(edge.peer_values) +
            ",\"proj_dist\":" + JsonNumberExact(edge.proj_dist) +
            ",\"unit_cost\":" + JsonNumberExact(edge.unit_cost) + "}";
  }
  *out += "]}";
  (void)prov;
}

std::string TruncateForDisplay(const std::string& s, size_t max_len = 40) {
  if (s.size() <= max_len) return s;
  return s.substr(0, max_len - 1) + "…";
}

}  // namespace

void FinalizeLedger(const Table& input, const DistanceModel& model,
                    RepairResult* result) {
  RepairProvenance& prov = result->provenance;
  if (!prov.enabled) return;
  const std::vector<CellChange>& changes = result->changes;
  // Every change appended by an apply path under provenance carries a
  // decision annotation; defensively pad (never truncate) so the
  // parallel arrays stay aligned even if a future writer forgets.
  prov.change_decision.resize(changes.size(), -1);
  prov.change_cost.assign(changes.size(), 0.0);
  prov.ledger_total = 0;
  // Per-cell running distance-to-input, so chained re-repairs (CFD
  // constant pinning then variable repair) telescope exactly.
  std::unordered_map<int64_t, double> running;
  running.reserve(changes.size());
  const int64_t ncols = input.num_columns();
  static Histogram* change_cost_hist =
      Metrics().GetHistogram("ftrepair.provenance.change_cost");
  for (size_t i = 0; i < changes.size(); ++i) {
    const CellChange& change = changes[i];
    const Value& original = input.cell(change.row, change.col);
    int64_t key = static_cast<int64_t>(change.row) * ncols + change.col;
    auto it = running.find(key);
    double before = it != running.end()
                        ? it->second
                        : model.CellDistance(change.col, original,
                                             change.old_value);
    double after = model.CellDistance(change.col, original, change.new_value);
    prov.change_cost[i] = after - before;
    prov.ledger_total += prov.change_cost[i];
    running[key] = after;
    change_cost_hist->Observe(prov.change_cost[i]);
  }
  static Counter* decisions =
      Metrics().GetCounter("ftrepair.provenance.decisions");
  static Counter* annotated =
      Metrics().GetCounter("ftrepair.provenance.changes_annotated");
  decisions->Increment(prov.decisions.size());
  annotated->Increment(changes.size());
}

std::string ExplainReportJson(const Table& input,
                              const RepairResult& result) {
  const RepairProvenance& prov = result.provenance;
  const RepairStats& stats = result.stats;
  std::string out;
  out.reserve(4096 + result.changes.size() * 96);
  out += "{\"schema_version\":" + std::to_string(kExplainSchemaVersion);
  out += ",\"generator\":\"ftrepair\"";
  out += ",\"algorithm\":\"" + JsonEscape(prov.algorithm) + "\"";
  out += ",\"semantics\":\"" + JsonEscape(prov.semantics) + "\"";
  out += ",\"input\":{\"rows\":" + std::to_string(input.num_rows()) +
         ",\"columns\":[";
  for (int c = 0; c < input.num_columns(); ++c) {
    if (c > 0) out += ",";
    out += "\"" + JsonEscape(input.schema().column(c).name) + "\"";
  }
  out += "]}";
  out += ",\"fds\":[";
  for (size_t f = 0; f < prov.fds.size(); ++f) {
    const ProvenanceFD& fd = prov.fds[f];
    if (f > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(fd.name) + "\",\"lhs\":" +
           IntsJson(fd.lhs) + ",\"rhs\":" + IntsJson(fd.rhs) +
           ",\"tau\":" + JsonNumberExact(fd.tau) +
           ",\"w_l\":" + JsonNumberExact(fd.w_l) +
           ",\"w_r\":" + JsonNumberExact(fd.w_r) +
           ",\"confidence\":" + JsonNumberExact(fd.confidence) + "}";
  }
  out += "]";
  out += ",\"components\":[";
  for (size_t c = 0; c < prov.components.size(); ++c) {
    if (c > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(prov.components[c].name) +
           "\",\"fds\":" + IntsJson(prov.components[c].fds) + "}";
  }
  out += "]";
  out += ",\"stats\":{";
  out += "\"repair_cost\":" + JsonNumberExact(stats.repair_cost);
  out += ",\"cells_changed\":" + std::to_string(stats.cells_changed);
  out += ",\"tuples_changed\":" + std::to_string(stats.tuples_changed);
  out += ",\"ft_violations_before\":" +
         std::to_string(stats.ft_violations_before);
  out += ",\"ft_violations_after\":" +
         std::to_string(stats.ft_violations_after);
  out += ",\"violation_stats_computed\":";
  out += prov.violation_stats_computed ? "true" : "false";
  out += ",\"violation_stats_exact\":";
  out += prov.violation_stats_exact ? "true" : "false";
  out += ",\"degraded\":";
  out += stats.degraded() ? "true" : "false";
  out += ",\"trusted_conflicts\":" + std::to_string(stats.trusted_conflicts);
  out += ",\"join_empty\":";
  out += stats.join_empty ? "true" : "false";
  out += "}";
  out += ",\"ledger\":{\"total\":" + JsonNumberExact(prov.ledger_total) +
         ",\"repair_cost\":" + JsonNumberExact(stats.repair_cost) +
         ",\"reconciled\":";
  out += std::fabs(prov.ledger_total - stats.repair_cost) <= 1e-9 ? "true"
                                                                  : "false";
  out += "}";
  out += ",\"memory\":{\"limited\":";
  out += prov.memory_limited ? "true" : "false";
  out += ",\"soft_latched\":";
  out += prov.memory_soft_latched ? "true" : "false";
  out += ",\"exhausted\":";
  out += prov.memory_exhausted ? "true" : "false";
  out += ",\"peak_bytes\":" + std::to_string(prov.memory_peak_bytes) + "}";
  out += ",\"degradations\":[";
  for (size_t i = 0; i < stats.degradations.size(); ++i) {
    if (i > 0) out += ",";
    AppendDegradationJson(stats.degradations[i], &out);
  }
  out += "]";
  out += ",\"decisions\":[";
  for (size_t i = 0; i < prov.decisions.size(); ++i) {
    if (i > 0) out += ",";
    AppendDecisionJson(prov, prov.decisions[i], i, &out);
  }
  out += "]";
  out += ",\"changes\":[";
  for (size_t i = 0; i < result.changes.size(); ++i) {
    const CellChange& change = result.changes[i];
    if (i > 0) out += ",";
    out += "{\"row\":" + std::to_string(change.row) +
           ",\"col\":" + std::to_string(change.col) + ",\"column\":\"" +
           JsonEscape(input.schema().column(change.col).name) + "\"";
    out += ",\"old\":" + ValueJson(change.old_value);
    out += ",\"new\":" + ValueJson(change.new_value);
    int decision = i < prov.change_decision.size()
                       ? prov.change_decision[i]
                       : -1;
    double cost =
        i < prov.change_cost.size() ? prov.change_cost[i] : 0.0;
    out += ",\"decision\":" + std::to_string(decision);
    out += ",\"cost_delta\":" + JsonNumberExact(cost) + "}";
  }
  out += "]}";
  return out;
}

std::string AuditLogNdjson(const RepairResult& result) {
  const RepairProvenance& prov = result.provenance;
  const RepairStats& stats = result.stats;
  std::string out;
  out += "{\"event\":\"run_start\",\"schema_version\":" +
         std::to_string(kExplainSchemaVersion) + ",\"algorithm\":\"" +
         JsonEscape(prov.algorithm) + "\",\"semantics\":\"" +
         JsonEscape(prov.semantics) +
         "\",\"fds\":" + std::to_string(prov.fds.size()) +
         ",\"components\":" + std::to_string(prov.components.size()) +
         "}\n";
  bool soft_emitted = false;
  size_t next_degradation = 0;
  auto emit_degradations_until = [&](size_t bound) {
    for (; next_degradation < bound &&
           next_degradation < stats.degradations.size();
         ++next_degradation) {
      const DegradationEvent& event = stats.degradations[next_degradation];
      if (!soft_emitted && event.cause == DegradationCause::kMemorySoft) {
        // The soft watermark crossing is observed through the first
        // degradation it provokes; record the crossing itself as a
        // first-class event ahead of its response.
        out += "{\"event\":\"watermark\",\"kind\":\"soft\",\"elapsed_ms\":" +
               JsonNumberExact(event.elapsed_ms) + "}\n";
        soft_emitted = true;
      }
      out += "{\"event\":\"degradation\",";
      std::string body;
      AppendDegradationJson(event, &body);
      out += body.substr(1);  // merge into the event object
      out += "\n";
    }
  };
  for (size_t i = 0; i < prov.decisions.size(); ++i) {
    const RepairDecision& d = prov.decisions[i];
    emit_degradations_until(
        static_cast<size_t>(d.degradations_before > 0 ? d.degradations_before
                                                      : 0));
    const std::string component =
        d.component >= 0 &&
                static_cast<size_t>(d.component) < prov.components.size()
            ? prov.components[static_cast<size_t>(d.component)].name
            : "";
    const std::string fd_name =
        d.fd >= 0 && static_cast<size_t>(d.fd) < prov.fds.size()
            ? prov.fds[static_cast<size_t>(d.fd)].name
            : "";
    out += "{\"event\":\"decision\",\"index\":" + std::to_string(i) +
           ",\"component\":\"" + JsonEscape(component) + "\",\"fd\":\"" +
           JsonEscape(fd_name) + "\",\"rung\":\"" + SolverRungName(d.rung) +
           "\",\"source_pattern\":" + std::to_string(d.source_pattern) +
           ",\"target_pattern\":" + std::to_string(d.target_pattern) +
           ",\"rows\":" + std::to_string(d.rows.size()) +
           ",\"edges\":" + std::to_string(d.edges.size()) +
           ",\"unit_cost\":" + JsonNumberExact(d.unit_cost) +
           ",\"grouped_cost\":" +
           JsonNumberExact(static_cast<double>(d.rows.size()) * d.unit_cost) +
           "}\n";
  }
  emit_degradations_until(stats.degradations.size());
  if (prov.memory_exhausted) {
    out += "{\"event\":\"watermark\",\"kind\":\"hard\",\"peak_bytes\":" +
           std::to_string(prov.memory_peak_bytes) + "}\n";
  }
  out += "{\"event\":\"run_end\",\"cells_changed\":" +
         std::to_string(stats.cells_changed) +
         ",\"repair_cost\":" + JsonNumberExact(stats.repair_cost) +
         ",\"ledger_total\":" + JsonNumberExact(prov.ledger_total) +
         ",\"reconciled\":";
  out += std::fabs(prov.ledger_total - stats.repair_cost) <= 1e-9 ? "true"
                                                                  : "false";
  out += "}\n";
  return out;
}

std::string ExplainCellText(const Schema& schema, const RepairResult& result,
                            int row, int col) {
  const RepairProvenance& prov = result.provenance;
  std::ostringstream out;
  if (col < 0 || col >= schema.num_columns()) {
    return "explain: column " + std::to_string(col) +
           " is outside the schema\n";
  }
  const std::string& col_name = schema.column(col).name;
  // The *last* change to the cell is the final word; earlier links of a
  // chain (CFD re-repairs) are listed as history.
  std::vector<size_t> chain;
  for (size_t i = 0; i < result.changes.size(); ++i) {
    if (result.changes[i].row == row && result.changes[i].col == col) {
      chain.push_back(i);
    }
  }
  if (chain.empty()) {
    out << "cell (" << row << ", " << col_name
        << "): not changed by this repair";
    // Was the cell part of a kept (chosen) pattern or simply clean?
    for (const RepairDecision& d : prov.decisions) {
      for (int r : d.rows) {
        if (r != row) continue;
        for (int c : d.cols) {
          if (c != col) continue;
          out << "\n  note: row " << row
              << " carried a repaired pattern, but this cell already "
                 "matched the target value";
        }
      }
    }
    out << "\n";
    return out.str();
  }
  for (size_t link = 0; link < chain.size(); ++link) {
    size_t i = chain[link];
    const CellChange& change = result.changes[i];
    out << "cell (" << row << ", " << col_name << "): '"
        << TruncateForDisplay(change.old_value.ToString()) << "' -> '"
        << TruncateForDisplay(change.new_value.ToString()) << "'";
    if (chain.size() > 1) {
      out << "  [change " << (link + 1) << " of " << chain.size() << "]";
    }
    out << "\n";
    double cost =
        i < prov.change_cost.size() ? prov.change_cost[i] : 0.0;
    out << "  cost contribution (Eq. 4): " << FormatDouble(cost) << "\n";
    int di = i < prov.change_decision.size() ? prov.change_decision[i] : -1;
    if (di < 0 || static_cast<size_t>(di) >= prov.decisions.size()) {
      out << "  (no decision lineage recorded)\n";
      continue;
    }
    const RepairDecision& d = prov.decisions[static_cast<size_t>(di)];
    const std::string component =
        d.component >= 0 &&
                static_cast<size_t>(d.component) < prov.components.size()
            ? prov.components[static_cast<size_t>(d.component)].name
            : "?";
    out << "  decision #" << di << " in component [" << component
        << "], solved by the " << SolverRungName(d.rung) << " rung\n";
    out << "  pattern #" << d.source_pattern << " (";
    for (size_t v = 0; v < d.source_values.size(); ++v) {
      if (v > 0) out << ", ";
      out << "'" << TruncateForDisplay(d.source_values[v].ToString()) << "'";
    }
    out << ") x" << d.rows.size() << " repaired to ";
    if (d.target_pattern >= 0) {
      out << "pattern #" << d.target_pattern << " ";
    } else {
      out << "joined target ";
    }
    out << "(";
    for (size_t v = 0; v < d.target_values.size(); ++v) {
      if (v > 0) out << ", ";
      out << "'" << TruncateForDisplay(d.target_values[v].ToString()) << "'";
    }
    out << "), unit cost " << FormatDouble(d.unit_cost) << "\n";
    if (d.edges.empty()) {
      if (d.rung == SolverRung::kConstant) {
        out << "  implicated by a CFD tableau constant (no violation "
               "edges)\n";
      } else {
        out << "  no implicating violation edges recorded\n";
      }
    } else {
      out << "  implicated by " << d.edges.size()
          << " FT-violation edge(s):\n";
      for (const ProvenanceEdge& edge : d.edges) {
        const ProvenanceFD* fd =
            edge.fd >= 0 && static_cast<size_t>(edge.fd) < prov.fds.size()
                ? &prov.fds[static_cast<size_t>(edge.fd)]
                : nullptr;
        out << "    [" << (fd != nullptr ? fd->name : "?") << "] vs (";
        for (size_t v = 0; v < edge.peer_values.size(); ++v) {
          if (v > 0) out << ", ";
          out << "'" << TruncateForDisplay(edge.peer_values[v].ToString())
              << "'";
        }
        out << "): proj distance " << FormatDouble(edge.proj_dist);
        if (fd != nullptr) out << " <= tau " << FormatDouble(fd->tau);
        out << ", unit cost " << FormatDouble(edge.unit_cost) << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace ftrepair
