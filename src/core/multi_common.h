#ifndef FTREPAIR_CORE_MULTI_COMMON_H_
#define FTREPAIR_CORE_MULTI_COMMON_H_

#include <vector>

#include "common/status.h"
#include "constraint/fd.h"
#include "core/repair_types.h"
#include "core/target_tree.h"
#include "data/table.h"
#include "detect/pattern.h"
#include "detect/violation_graph.h"
#include "metric/projection.h"

namespace ftrepair {

/// \brief Shared state for one connected FD component (§4).
///
/// Tuples are grouped into *Sigma-patterns* (distinct projections over
/// the component's column union); per FD, Sigma-patterns are further
/// grouped into phi-patterns (distinct FD projections) over which the
/// per-FD violation graphs are built. This double grouping is exact:
/// tuples with identical Sigma-projections are interchangeable in every
/// multi-FD algorithm.
struct ComponentContext {
  std::vector<const FD*> fds;
  std::vector<int> component_cols;
  std::vector<Pattern> sigma_patterns;

  /// Per FD: the violation graph over its phi-patterns.
  std::vector<ViolationGraph> graphs;
  /// phi_of_sigma[k][i] = phi-pattern id (in graphs[k]) of Sigma-pattern i.
  std::vector<std::vector<int>> phi_of_sigma;
  /// sigma_of_phi[k][j] = Sigma-pattern ids projecting to phi-pattern j.
  std::vector<std::vector<std::vector<int>>> sigma_of_phi;
  /// Effective FTOptions per FD.
  std::vector<FTOptions> ft;
};

/// Builds the context for `fds` over `table`.
ComponentContext BuildComponentContext(const Table& table,
                                       const std::vector<const FD*>& fds,
                                       const DistanceModel& model,
                                       const RepairOptions& options);

/// \brief Joins one chosen independent set per FD into targets and
/// assigns every Sigma-pattern its cheapest repair (§4.2/§4.3 final
/// phase; Algorithm 3 lines 13-21, Algorithm 4 lines 7-9).
///
/// `chosen[k]` holds phi-pattern ids of graphs[k]. Sigma-patterns whose
/// every phi-projection is chosen keep their values. Uses the target
/// tree (§5) or, when `options.use_target_tree` is false, materializes
/// targets and scans them linearly. A NotFound join sets
/// `stats->join_empty` and leaves all tuples unrepaired.
Result<MultiFDSolution> AssignTargets(const ComponentContext& context,
                                      const std::vector<std::vector<int>>& chosen,
                                      const DistanceModel& model,
                                      const RepairOptions& options,
                                      RepairStats* stats);

/// Linear-scan counterpart of TargetTree::FindBest over materialized
/// targets; returns the index of the cheapest target.
size_t FindBestTargetLinear(const std::vector<std::vector<Value>>& targets,
                            const std::vector<Value>& tuple_proj,
                            const std::vector<int>& cols,
                            const DistanceModel& model, double* cost);

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_MULTI_COMMON_H_
