#include "core/cardinality.h"

#include <algorithm>

namespace ftrepair {

SingleFDSolution SolveCardinalityMajority(const ViolationGraph& graph,
                                          const std::vector<bool>* forced,
                                          uint64_t* trusted_conflicts) {
  SingleFDSolution solution;
  solution.rung = SolverRung::kCardinality;
  const int n = graph.num_patterns();
  solution.repair_target.assign(static_cast<size_t>(n), -1);
  for (const std::vector<int>& component : graph.ConnectedComponents()) {
    if (component.size() <= 1) {
      // Isolated pattern: its block is already consistent.
      for (int p : component) solution.chosen_set.push_back(p);
      continue;
    }
    // Target selection: the lowest-id forced pattern when trusted rows
    // pin the block, else the row-count majority (ties to lowest id).
    int target = -1;
    uint64_t forced_count = 0;
    if (forced != nullptr) {
      for (int p : component) {
        if (!(*forced)[static_cast<size_t>(p)]) continue;
        ++forced_count;
        if (target < 0 || p < target) target = p;
      }
    }
    if (forced_count > 1) {
      // Distinct patterns over one LHS block disagree pairwise on the
      // RHS, so every forced pair is a conflict.
      if (trusted_conflicts != nullptr) {
        *trusted_conflicts += forced_count * (forced_count - 1) / 2;
      }
    }
    if (target < 0) {
      size_t best_rows = 0;
      for (int p : component) {
        size_t rows = graph.pattern(p).rows.size();
        if (target < 0 || rows > best_rows ||
            (rows == best_rows && p < target)) {
          best_rows = rows;
          target = p;
        }
      }
    }
    for (int p : component) {
      if (p == target ||
          (forced != nullptr && (*forced)[static_cast<size_t>(p)])) {
        solution.chosen_set.push_back(p);
        continue;
      }
      // Price the move over the clique edge to the target. A truncated
      // graph may lack the edge; such patterns stay unrepaired (the
      // pipeline already staged a partial-graph degradation).
      bool priced = false;
      for (const ViolationGraph::Edge& e : graph.Neighbors(p)) {
        if (e.to != target) continue;
        solution.repair_target[static_cast<size_t>(p)] = target;
        solution.cost +=
            static_cast<double>(graph.pattern(p).rows.size()) * e.unit_cost;
        priced = true;
        break;
      }
      if (!priced) solution.chosen_set.push_back(p);
    }
  }
  std::sort(solution.chosen_set.begin(), solution.chosen_set.end());
  return solution;
}

}  // namespace ftrepair
