#include "core/greedy_multi.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace ftrepair {

namespace {

constexpr double kInf = ViolationGraph::kInfinity;

struct GreedyMultiState {
  const ComponentContext* ctx;
  const RepairOptions* options;

  size_t num_fds;
  // Per FD: chosen membership, conflict counts against the chosen set.
  std::vector<std::vector<bool>> chosen;
  std::vector<std::vector<int>> blocked;
  std::vector<std::vector<int>> chosen_list;
  // Per FD: cheapest unit cost from each pattern to the chosen set.
  std::vector<std::vector<double>> best_unit;
  size_t remaining = 0;  // candidates not yet chosen nor blocked

  // Per FD: lookup from phi projection values to phi-pattern id.
  std::vector<std::unordered_map<std::vector<Value>, int, ProjectionHash>>
      phi_index;
  // Per FD: component position of each of its attrs.
  std::vector<std::vector<int>> attr_pos;
  // Per FD pair (k, j): shared component positions, empty if disjoint.
  std::vector<std::vector<std::vector<int>>> shared_pos;

  void Init(const ComponentContext& context, const RepairOptions& opts) {
    ctx = &context;
    options = &opts;
    num_fds = context.fds.size();
    chosen.resize(num_fds);
    blocked.resize(num_fds);
    chosen_list.resize(num_fds);
    best_unit.resize(num_fds);
    phi_index.resize(num_fds);
    attr_pos.resize(num_fds);
    shared_pos.assign(num_fds, std::vector<std::vector<int>>(num_fds));

    std::unordered_map<int, int> col_to_pos;
    for (size_t p = 0; p < context.component_cols.size(); ++p) {
      col_to_pos.emplace(context.component_cols[p], static_cast<int>(p));
    }
    for (size_t k = 0; k < num_fds; ++k) {
      int n = context.graphs[k].num_patterns();
      chosen[k].assign(static_cast<size_t>(n), false);
      blocked[k].assign(static_cast<size_t>(n), 0);
      best_unit[k].assign(static_cast<size_t>(n), kInf);
      remaining += static_cast<size_t>(n);
      for (int j = 0; j < n; ++j) {
        phi_index[k].emplace(context.graphs[k].pattern(j).values, j);
      }
      for (int c : context.fds[k]->attrs()) {
        attr_pos[k].push_back(col_to_pos.at(c));
      }
    }
    for (size_t k = 0; k < num_fds; ++k) {
      for (size_t j = 0; j < num_fds; ++j) {
        if (j == k) continue;
        for (int pk : attr_pos[k]) {
          if (std::find(attr_pos[j].begin(), attr_pos[j].end(), pk) !=
              attr_pos[j].end()) {
            shared_pos[k][j].push_back(pk);
          }
        }
      }
    }
  }

  bool IsCandidate(size_t k, int v) const {
    return !chosen[k][static_cast<size_t>(v)] &&
           blocked[k][static_cast<size_t>(v)] == 0;
  }

  // At most this many underlying Sigma-patterns (resp. candidate
  // targets) are cross-scored per neighbor — a bounded approximation
  // that keeps Eq. 12 evaluation within the paper's O(Sigma * V^2).
  static constexpr size_t kMaxCrossSigmas = 8;
  static constexpr size_t kMaxCrossTargets = 3;

  // Conflict indicator of sigma-pattern s against FD j's chosen set,
  // after hypothetically rewriting the shared positions with the values
  // of phi-pattern `u` of FD k (u < 0 means "no rewrite").
  int ConflictAfter(size_t k, int u, size_t j, int sigma) const {
    int cur_phi = ctx->phi_of_sigma[j][static_cast<size_t>(sigma)];
    if (u < 0 || shared_pos[k][j].empty()) {
      return blocked[j][static_cast<size_t>(cur_phi)] > 0 ? 1 : 0;
    }
    const std::vector<Value>& cur_values =
        ctx->graphs[j].pattern(cur_phi).values;
    const std::vector<Value>& u_values =
        ctx->graphs[k].pattern(u).values;
    // Check for a change before paying for a projection copy.
    bool changed = false;
    for (size_t a = 0; a < attr_pos[k].size() && !changed; ++a) {
      int pos = attr_pos[k][a];
      auto it = std::find(attr_pos[j].begin(), attr_pos[j].end(), pos);
      if (it == attr_pos[j].end()) continue;
      size_t jp = static_cast<size_t>(it - attr_pos[j].begin());
      changed = cur_values[jp] != u_values[a];
    }
    if (!changed) {
      return blocked[j][static_cast<size_t>(cur_phi)] > 0 ? 1 : 0;
    }
    std::vector<Value> proj = cur_values;
    for (size_t a = 0; a < attr_pos[k].size(); ++a) {
      int pos = attr_pos[k][a];
      auto it = std::find(attr_pos[j].begin(), attr_pos[j].end(), pos);
      if (it == attr_pos[j].end()) continue;
      proj[static_cast<size_t>(it - attr_pos[j].begin())] = u_values[a];
    }
    auto found = phi_index[j].find(proj);
    // A projection that exists nowhere in the data would be *created*
    // by this modification — count it as a triggered violation ("trigger
    // less violations for phi_j", §4.4): the close-world model would
    // have to invent the combination.
    if (found == phi_index[j].end()) return 1;
    return blocked[j][static_cast<size_t>(found->second)] > 0 ? 1 : 0;
  }

  // Synchronization-aware score of repairing neighbor v (of FD k) to
  // target u, per underlying tuple (Eq. 12's inner choice).
  double TargetScore(size_t k, int v, int u, double edge_cost) const {
    double score = edge_cost;
    double w = options->cross_weight;
    if (w <= 0) return score;
    const std::vector<int>& sigmas =
        ctx->sigma_of_phi[k][static_cast<size_t>(v)];
    size_t limit = std::min(sigmas.size(), kMaxCrossSigmas);
    for (size_t j = 0; j < num_fds; ++j) {
      if (j == k || shared_pos[k][j].empty()) continue;
      double delta = 0;
      int total = 0;
      for (size_t si = 0; si < limit; ++si) {
        int sigma = sigmas[si];
        int cnt = ctx->sigma_patterns[static_cast<size_t>(sigma)].count();
        delta += cnt * (ConflictAfter(k, u, j, sigma) -
                        ConflictAfter(k, -1, j, sigma));
        total += cnt;
      }
      if (total > 0) score += w * delta / total;
    }
    return score;
  }

  // Eq. 12 with marginal accounting and exclusion regret: grouped tuple
  // cost of adding candidate phi-pattern c to FD k's chosen set. Every
  // conflicting neighbor is priced at its best eligible modification
  // (only the cheapest few targets by edge cost are cross-scored);
  // neighbors already covered by the chosen set contribute only their
  // improvement, and the candidate's own exclusion cost is netted out
  // (see greedy_single.cc for the rationale).
  double CandidateCost(size_t k, int c) const {
    const ViolationGraph& graph = ctx->graphs[k];
    double cost = 0;
    std::vector<std::pair<double, int>> eligible;
    for (const ViolationGraph::Edge& e : graph.Neighbors(c)) {
      int v = e.to;
      if (chosen[k][static_cast<size_t>(v)]) continue;  // cannot happen
      // Eligible targets for v: the candidate itself plus realized
      // members of the chosen set among v's neighbors.
      eligible.clear();
      for (const ViolationGraph::Edge& t : graph.Neighbors(v)) {
        if (t.to == c || chosen[k][static_cast<size_t>(t.to)]) {
          eligible.emplace_back(t.unit_cost, t.to);
        }
      }
      double best;
      if (eligible.empty()) {
        best = e.unit_cost;  // v's only anchor is c itself
      } else {
        std::sort(eligible.begin(), eligible.end());
        size_t limit = std::min(eligible.size(), kMaxCrossTargets);
        best = kInf;
        for (size_t t = 0; t < limit; ++t) {
          best = std::min(best, TargetScore(k, v, eligible[t].second,
                                            eligible[t].first));
        }
      }
      double covered = best_unit[k][static_cast<size_t>(v)];
      double contribution =
          covered == kInf ? best : std::min(best, covered) - covered;
      cost += graph.pattern(v).count() * contribution;
    }
    double mec = graph.MinEdgeCost(c);
    if (mec != kInf) cost -= graph.pattern(c).count() * mec;
    return cost;
  }

  void Add(size_t k, int c) {
    bool was_candidate = IsCandidate(k, c);
    chosen[k][static_cast<size_t>(c)] = true;
    chosen_list[k].push_back(c);
    if (was_candidate) --remaining;
    for (const ViolationGraph::Edge& e : ctx->graphs[k].Neighbors(c)) {
      best_unit[k][static_cast<size_t>(e.to)] = std::min(
          best_unit[k][static_cast<size_t>(e.to)], e.unit_cost);
      if (blocked[k][static_cast<size_t>(e.to)]++ == 0 &&
          !chosen[k][static_cast<size_t>(e.to)]) {
        --remaining;  // freshly blocked
      }
    }
  }
};

}  // namespace

Result<MultiFDSolution> SolveGreedyMulti(const ComponentContext& context,
                                         const DistanceModel& model,
                                         const RepairOptions& options,
                                         RepairStats* stats) {
  FTR_TRACE_SPAN("greedy.solve_multi");
  GreedyMultiState state;
  state.Init(context, options);

  // Trusted phi-patterns are pinned first (other tuples repair toward
  // them), then isolated phi-patterns join unconditionally.
  for (size_t k = 0; k < state.num_fds; ++k) {
    if (options.trusted_rows.empty()) break;
    std::vector<bool> forced = TrustedPatternMask(
        context.graphs[k].patterns(), options.trusted_rows);
    for (int v = 0; v < context.graphs[k].num_patterns(); ++v) {
      if (!forced[static_cast<size_t>(v)]) continue;
      if (state.blocked[k][static_cast<size_t>(v)] > 0 && stats != nullptr) {
        ++stats->trusted_conflicts;
      }
      state.Add(k, v);
    }
  }
  for (size_t k = 0; k < state.num_fds; ++k) {
    for (int v = 0; v < context.graphs[k].num_patterns(); ++v) {
      if (context.graphs[k].degree(v) == 0 &&
          !state.chosen[k][static_cast<size_t>(v)]) {
        state.Add(k, v);
      }
    }
  }

  // Flattened (fd, pattern) slot space for the round scan: slot order
  // is exactly the serial loop's (k, v) lexicographic order, so a
  // per-shard first-strict-minimum folded in ascending shard order
  // reproduces the serial argmin bit for bit (CandidateCost is a pure
  // function of the frozen round state, so every thread computes the
  // identical double for a given slot).
  std::vector<size_t> slot_base(state.num_fds + 1, 0);
  for (size_t k = 0; k < state.num_fds; ++k) {
    slot_base[k + 1] =
        slot_base[k] + static_cast<size_t>(context.graphs[k].num_patterns());
  }
  const size_t total_slots = slot_base[state.num_fds];
  constexpr size_t kSlotsPerShard = 256;
  const int scan_threads = ResolveThreads(options.threads);

  bool truncated = false;
  bool made_progress = false;
  while (state.remaining > 0) {
    // Each round appends one (fd, pattern) choice and refreshes the
    // per-pattern best-unit costs it invalidates.
    if (!BudgetCharge(options.budget) ||
        !MemCharge(options.memory, sizeof(int) + sizeof(double),
                   MemPhase::kSolve)) {
      // Out of budget: stop growing. AssignTargets still runs (and
      // itself polls), so already-chosen sets yield a valid partial
      // repair; unreached patterns stay dirty.
      truncated = true;
      break;
    }
    size_t best_fd = 0;
    int best_pattern = -1;
    double best_cost = kInf;
    if (scan_threads > 1 && total_slots > kSlotsPerShard) {
      const int num_shards = static_cast<int>(
          (total_slots + kSlotsPerShard - 1) / kSlotsPerShard);
      std::vector<std::pair<double, size_t>> shard_best(
          static_cast<size_t>(num_shards), {kInf, 0});
      ParallelFor(num_shards, scan_threads, [&](int s) {
        size_t lo = static_cast<size_t>(s) * kSlotsPerShard;
        size_t hi = std::min(lo + kSlotsPerShard, total_slots);
        size_t k = static_cast<size_t>(
                       std::upper_bound(slot_base.begin(), slot_base.end(),
                                        lo) -
                       slot_base.begin()) -
                   1;
        double best = kInf;
        size_t best_slot = 0;
        for (size_t slot = lo; slot < hi; ++slot) {
          while (slot >= slot_base[k + 1]) ++k;
          int v = static_cast<int>(slot - slot_base[k]);
          if (!state.IsCandidate(k, v)) continue;
          double cost = state.CandidateCost(k, v);
          if (cost < best) {
            best = cost;
            best_slot = slot;
          }
        }
        shard_best[static_cast<size_t>(s)] = {best, best_slot};
      });
      size_t best_slot = 0;
      for (const auto& [cost, slot] : shard_best) {
        if (cost < best_cost) {
          best_cost = cost;
          best_slot = slot;
        }
      }
      if (best_cost != kInf) {
        best_fd = static_cast<size_t>(
                      std::upper_bound(slot_base.begin(), slot_base.end(),
                                       best_slot) -
                      slot_base.begin()) -
                  1;
        best_pattern = static_cast<int>(best_slot - slot_base[best_fd]);
      }
    } else {
      for (size_t k = 0; k < state.num_fds; ++k) {
        for (int v = 0; v < context.graphs[k].num_patterns(); ++v) {
          if (!state.IsCandidate(k, v)) continue;
          double cost = state.CandidateCost(k, v);
          if (cost < best_cost) {
            best_cost = cost;
            best_fd = k;
            best_pattern = v;
          }
        }
      }
    }
    if (best_pattern < 0) break;  // everything chosen or blocked
    state.Add(best_fd, best_pattern);
    made_progress = true;
  }

  if (truncated && !made_progress) {
    // Exhausted before the first candidate was chosen: there is no
    // partial cover for AssignTargets to complete, so hand the
    // component down the ladder instead of reporting an empty
    // "partial" success.
    return ResourceCheck(options.budget, options.memory, "greedy cover");
  }
  auto result = AssignTargets(context, state.chosen_list, model, options,
                              stats);
  if (result.ok()) {
    result.value().rung = SolverRung::kGreedy;
    if (truncated) result.value().truncated = true;
  }
  return result;
}

}  // namespace ftrepair
