#ifndef FTREPAIR_CORE_PROVENANCE_H_
#define FTREPAIR_CORE_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraint/fd.h"
#include "data/value.h"

namespace ftrepair {

/// The explain-report JSON schema version (`"schema_version"` in every
/// report and audit-log record). Bump on any incompatible change; the
/// replay verifier rejects versions it does not know.
inline constexpr int kExplainSchemaVersion = 1;

/// Which solver rung actually produced a repair decision — the
/// *effective* rung after any degradation-ladder steps, not the rung
/// the caller requested. kConstant is the CFD constant-pinning path
/// (no solver involved: the tableau constant dictates the target).
enum class SolverRung : uint8_t {
  kNone = 0,
  kExact,
  kGreedy,
  kAppro,
  kConstant,
  /// The cardinality semantics' poly-time exact majority solver
  /// (core/cardinality.h) — engaged on single-FD single-RHS-attribute
  /// components where per-block majority is provably cell-minimal.
  kCardinality,
};

const char* SolverRungName(SolverRung rung);

/// \brief One FT-violation edge that implicated a repaired pattern —
/// the "why was this cell suspect" half of a decision.
///
/// `fd` indexes RepairProvenance::fds; `peer_values` is the peer
/// pattern's projection over that FD's attrs, self-contained so the
/// replay verifier can recompute `proj_dist` (Eq. 2) and `unit_cost`
/// (Eq. 3) without re-deriving pattern ids.
struct ProvenanceEdge {
  int fd = -1;
  /// Peer pattern id within the decision's violation graph (component-
  /// local; informational — verification runs on the values).
  int peer = -1;
  std::vector<Value> peer_values;
  double proj_dist = 0;
  double unit_cost = 0;
};

/// \brief One solver decision: "repair pattern u to target v" — the
/// unit of the audit trail (§3's grouped repair step). Every annotated
/// CellChange points at exactly one of these.
struct RepairDecision {
  /// Index into RepairProvenance::components.
  int component = -1;
  /// Index into RepairProvenance::fds for single-FD decisions and CFD
  /// units; -1 for multi-FD decisions (whose targets span the
  /// component's column union — the implicating FDs are on the edges).
  int fd = -1;
  SolverRung rung = SolverRung::kNone;
  /// Pattern ids within the decision's graph (component-local;
  /// source_pattern is the repaired pattern, target_pattern the chosen
  /// member it repairs toward, -1 when the target is a joined value
  /// vector rather than an existing pattern).
  int source_pattern = -1;
  int target_pattern = -1;
  /// Table columns this decision writes (fd.attrs() for single-FD,
  /// the component column union for multi-FD, the constant columns for
  /// CFD pinning) and the source/target projections over them.
  std::vector<int> cols;
  std::vector<Value> source_values;
  std::vector<Value> target_values;
  /// Rows carrying the source pattern (trusted rows among them are
  /// never written; the per-change records are authoritative for what
  /// actually changed).
  std::vector<int> rows;
  /// Per-tuple repair cost of this decision as priced by the solver
  /// (Eq. 3 between source and target over `cols`); the grouped cost
  /// of §3 is rows.size() * unit_cost.
  double unit_cost = 0;
  /// Number of DegradationEvents recorded before this decision, i.e.
  /// its position in the interleaved audit stream.
  int degradations_before = 0;
  /// The violation edges that implicated the source pattern.
  std::vector<ProvenanceEdge> edges;
};

/// An FD as the provenance layer saw it: resolved threshold and
/// weights included, so the report is self-contained for replay.
struct ProvenanceFD {
  std::string name;
  std::vector<int> lhs;
  std::vector<int> rhs;
  double tau = 0;
  double w_l = 0;
  double w_r = 0;
  /// Effective soft-FD confidence (1.0 outside the soft-fd semantics).
  double confidence = 1.0;
};

/// One solve unit in merge order: a connected FD component of
/// Repairer::Repair, or one (CFD, tableau-row) unit of RepairCFDs.
struct ProvenanceComponent {
  std::string name;
  /// Indexes into RepairProvenance::fds.
  std::vector<int> fds;
};

/// \brief Pipeline-wide repair provenance: every decision, every
/// annotated cell change, and the cost ledger that reconciles
/// RepairStats::repair_cost as the exact sum of per-change
/// contributions.
///
/// Collected only when RepairOptions::provenance is set (near-zero
/// cost otherwise: one branch per apply call). Collection preserves
/// the deterministic replay merge: decisions are recorded during the
/// serial component-order merge (FD path) or in per-unit buffers
/// remapped in unit order (CFD path), so the provenance — like the
/// repair itself — is bit-identical at every thread count.
struct RepairProvenance {
  bool enabled = false;
  /// The algorithm that was *requested* ("Expansion", "Greedy", ...);
  /// per-decision rungs record what actually ran.
  std::string algorithm;
  /// The repair semantics that produced this run ("ft-cost",
  /// "soft-fd", "cardinality"). The replay verifier uses it to
  /// reconstruct the run's distance model: the cardinality semantics
  /// prices every change with indicator (discrete) distances, so
  /// replaying its unit costs with the default metrics would fail.
  std::string semantics = "ft-cost";
  std::vector<ProvenanceFD> fds;
  std::vector<ProvenanceComponent> components;
  /// In repair (merge) order.
  std::vector<RepairDecision> decisions;
  /// Parallel to RepairResult::changes: index into `decisions`.
  std::vector<int> change_decision;
  /// Parallel to RepairResult::changes: this change's contribution to
  /// the Eq. 4 repair cost, telescoped against the *input* table —
  /// dist(input, new) - dist(input, old) — so re-repaired cells (CFD
  /// chains) sum to exactly dist(input, final).
  std::vector<double> change_cost;
  /// Sum of change_cost — reconciles against RepairStats::repair_cost.
  double ledger_total = 0;
  /// Memory-governance surface of the run (for watermark audit
  /// records); all zero when no MemoryBudget was installed.
  bool memory_limited = false;
  bool memory_soft_latched = false;
  bool memory_exhausted = false;
  uint64_t memory_peak_bytes = 0;

  /// Whether FT-violation counts were computed, and whether they are
  /// exact (no "violation-stats" truncation degradations) — the replay
  /// verifier only cross-checks exact counts.
  bool violation_stats_computed = false;
  bool violation_stats_exact = false;
};

/// \brief Recording destination threaded through the apply layer.
///
/// `prov == nullptr` disables collection (the fast path). `component`
/// and `fd` locate the decision being applied inside the provenance
/// tables; `degradations_before` is the number of DegradationEvents
/// already merged, stamping each decision's audit-stream position.
struct ProvenanceScope {
  RepairProvenance* prov = nullptr;
  int component = -1;
  int fd = -1;
  int degradations_before = 0;
};

struct RepairResult;  // core/repair_types.h (which includes this header)
class Table;          // data/table.h
class DistanceModel;  // metric/projection.h
class Schema;         // data/schema.h

/// Computes the per-change cost contributions and the ledger total for
/// `result` (no-op when provenance is disabled). Each contribution is
/// telescoped against `input` — dist(input, new) - dist(input, old) —
/// so the ledger total equals TableRepairCost(input, repaired) up to
/// floating-point reassociation. `model` must be the DistanceModel of
/// the input table (the one the repair priced changes with).
void FinalizeLedger(const Table& input, const DistanceModel& model,
                    RepairResult* result);

/// Renders the full machine-readable explain report (versioned schema,
/// see docs/OBSERVABILITY.md "Provenance & explain"). Requires
/// provenance to have been collected.
std::string ExplainReportJson(const Table& input, const RepairResult& result);

/// Renders the audit-log NDJSON event stream: one record per decision,
/// degradation, and watermark crossing, interleaved in repair order.
std::string AuditLogNdjson(const RepairResult& result);

/// Human-readable single-cell "why": which FD implicated (row, col),
/// which violation edges drove it, which solver rung chose the target,
/// and what the change contributed to the repair cost. Also renders a
/// useful answer for cells that were *not* changed.
std::string ExplainCellText(const Schema& schema, const RepairResult& result,
                            int row, int col);

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_PROVENANCE_H_
