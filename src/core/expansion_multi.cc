#include "core/expansion_multi.h"

#include <algorithm>

#include "common/trace.h"
#include "core/appro_multi.h"
#include "core/expansion_single.h"

namespace ftrepair {

namespace {

// Lower bound on the per-tuple cost of changing phi-pattern `v` of
// `graph` to any other existing phi-value (Eq. 9 adapted): a neighbor
// costs at least MinEdgeCost(v); a non-neighbor has weighted projection
// distance > tau, hence unweighted cost > tau / max(w_l, w_r).
double ExclusionFloor(const ViolationGraph& graph, int v,
                      const FTOptions& ft) {
  double non_neighbor_floor =
      ft.tau / std::max(std::max(ft.w_l, ft.w_r), 1e-9);
  return std::min(graph.MinEdgeCost(v), non_neighbor_floor);
}

// Sum of exclusion floors over phi-patterns outside `set`, weighted by
// multiplicity — a sound lower bound on any repair that realizes `set`.
double LocalLowerBound(const ViolationGraph& graph,
                       const std::vector<int>& set, const FTOptions& ft) {
  std::vector<bool> member(static_cast<size_t>(graph.num_patterns()), false);
  for (int v : set) member[static_cast<size_t>(v)] = true;
  double lb = 0;
  for (int v = 0; v < graph.num_patterns(); ++v) {
    if (member[static_cast<size_t>(v)]) continue;
    lb += graph.pattern(v).count() * ExclusionFloor(graph, v, ft);
  }
  return lb;
}

struct CombinationSearch {
  const ComponentContext* context;
  const DistanceModel* model;
  const RepairOptions* options;
  RepairStats* stats;

  // Per FD: enumerated sets, sorted by local lower bound ascending.
  std::vector<std::vector<std::vector<int>>> sets;
  std::vector<std::vector<double>> lbs;
  std::vector<bool> in_disjoint;  // FD participates in the disjoint sum

  double best_cost = ViolationGraph::kInfinity;
  std::vector<std::vector<int>> best_chosen;
  std::vector<int> current;  // set index per FD
  uint64_t examined = 0;

  Status Evaluate() {
    ++examined;
    if (stats != nullptr) ++stats->combinations_examined;
    if (examined > options->max_combinations) {
      return Status::ResourceExhausted(
          "combination count exceeded " +
          std::to_string(options->max_combinations));
    }
    // Per-combination scratch (level inputs + membership bitmaps) is
    // rebuilt each call; the tree build below charges its own nodes.
    if (!BudgetCharge(options->budget) ||
        !MemCharge(options->memory, sizeof(TargetTree::LevelInput),
                   MemPhase::kSolve)) {
      return ResourceCheck(options->budget, options->memory,
                           "combination search");
    }
    size_t num_fds = context->fds.size();
    std::vector<TargetTree::LevelInput> inputs(num_fds);
    std::vector<std::vector<bool>> member(num_fds);
    for (size_t k = 0; k < num_fds; ++k) {
      const std::vector<int>& set = sets[k][static_cast<size_t>(current[k])];
      inputs[k].fd = context->fds[k];
      member[k].assign(
          static_cast<size_t>(context->graphs[k].num_patterns()), false);
      for (int j : set) {
        member[k][static_cast<size_t>(j)] = true;
        inputs[k].elements.push_back(context->graphs[k].pattern(j).values);
      }
    }
    auto tree_result = TargetTree::Build(std::move(inputs),
                                         context->component_cols,
                                         options->max_tree_nodes,
                                         options->memory);
    if (!tree_result.ok()) {
      if (tree_result.status().IsNotFound()) return Status::OK();  // no join
      return tree_result.status();
    }
    TargetTree tree = std::move(tree_result).value();

    double cost = 0;
    for (size_t i = 0; i < context->sigma_patterns.size(); ++i) {
      bool all_member = true;
      for (size_t k = 0; k < num_fds && all_member; ++k) {
        all_member =
            member[k][static_cast<size_t>(context->phi_of_sigma[k][i])];
      }
      if (all_member) continue;
      double c = 0;
      TargetTree::SearchStats search_stats;
      tree.FindBest(context->sigma_patterns[i].values, *model, &c,
                    &search_stats);
      if (stats != nullptr) {
        stats->target_nodes_visited += search_stats.nodes_visited;
        stats->target_nodes_pruned += search_stats.nodes_pruned;
      }
      cost += context->sigma_patterns[i].count() * c;
      if (cost >= best_cost) return Status::OK();  // early abort
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_chosen.clear();
      for (size_t k = 0; k < num_fds; ++k) {
        best_chosen.push_back(sets[k][static_cast<size_t>(current[k])]);
      }
    }
    return Status::OK();
  }

  Status Recurse(size_t k, double disjoint_lb, double max_lb) {
    if (k == sets.size()) return Evaluate();
    for (size_t s = 0; s < sets[k].size(); ++s) {
      double lb_k = lbs[k][s];
      double new_disjoint = disjoint_lb + (in_disjoint[k] ? lb_k : 0.0);
      double new_max = std::max(max_lb, lb_k);
      // Both bounds are monotone in lb_k and sets are sorted by lb
      // ascending, so once pruned every later set is pruned too.
      if (std::max(new_disjoint, new_max) >= best_cost) {
        if (stats != nullptr) ++stats->combinations_pruned;
        break;
      }
      current[k] = static_cast<int>(s);
      FTR_RETURN_NOT_OK(Recurse(k + 1, new_disjoint, new_max));
    }
    return Status::OK();
  }
};

}  // namespace

Result<MultiFDSolution> SolveExpansionMulti(const ComponentContext& context,
                                            const DistanceModel& model,
                                            const RepairOptions& options,
                                            RepairStats* stats) {
  FTR_TRACE_SPAN("expansion.solve_multi");
  size_t num_fds = context.fds.size();
  CombinationSearch search;
  search.context = &context;
  search.model = &model;
  search.options = &options;
  search.stats = stats;
  search.sets.resize(num_fds);
  search.lbs.resize(num_fds);
  search.current.assign(num_fds, 0);

  // Trusted rows: enumerated per-FD sets must contain every forced
  // phi-pattern; others are dropped up front.
  std::vector<std::vector<bool>> forced(num_fds);
  if (!options.trusted_rows.empty()) {
    for (size_t k = 0; k < num_fds; ++k) {
      forced[k] = TrustedPatternMask(context.graphs[k].patterns(),
                                     options.trusted_rows);
    }
  }

  // Joint upper bound from Appro-M (an achievable repair, Eq. 11 role)
  // and per-FD unavoidable-cost lower bounds from a greedy matching:
  // every independent set excludes at least one endpoint of each
  // matching edge, and matched edges share no vertex, so the per-edge
  // minima add soundly.
  double ub_joint = ViolationGraph::kInfinity;
  {
    // A truncated Appro-M cost understates the achievable joint cost
    // and would prune valid combinations, so a seed the budget cut
    // short is unusable — and an exhausted budget means the exact
    // search could not finish anyway: hand the component down the
    // ladder right here instead of burning the remaining deadline.
    RepairStats seed_stats;
    auto seed = SolveApproMulti(context, model, options, &seed_stats);
    if (seed.ok() && seed.value().truncated) {
      return ResourceCheck(options.budget, options.memory,
                           "upper-bound seed");
    }
    if (seed.ok() && !seed_stats.join_empty) {
      ub_joint = seed.value().cost;
    }
  }
  std::vector<double> matching_lb(num_fds, 0);
  for (size_t k = 0; k < num_fds; ++k) {
    const ViolationGraph& graph = context.graphs[k];
    std::vector<bool> used(static_cast<size_t>(graph.num_patterns()), false);
    for (int v = 0; v < graph.num_patterns(); ++v) {
      if (used[static_cast<size_t>(v)]) continue;
      for (const ViolationGraph::Edge& e : graph.Neighbors(v)) {
        if (e.to < v || used[static_cast<size_t>(e.to)]) continue;
        used[static_cast<size_t>(v)] = true;
        used[static_cast<size_t>(e.to)] = true;
        matching_lb[k] += std::min(
            graph.pattern(v).count() * ExclusionFloor(graph, v, context.ft[k]),
            graph.pattern(e.to).count() *
                ExclusionFloor(graph, e.to, context.ft[k]));
        break;
      }
    }
  }
  for (size_t k = 0; k < num_fds; ++k) {
    ExpansionConfig config;
    config.max_frontier = options.max_frontier;
    config.budget = options.budget;
    config.memory = options.memory;
    if (ub_joint == ViolationGraph::kInfinity) {
      config.enumerate_all = true;
    } else {
      // A combination containing set I of FD k costs at least
      // local_lb_k(I) plus the matching bounds of a family of FDs that
      // is pairwise attribute-disjoint and disjoint from k (disjoint
      // attribute sets make the costs additive, so no double counting).
      // Prune I when that exceeds the achievable joint cost.
      double others = 0;
      std::vector<size_t> family;
      for (size_t j = 0; j < num_fds; ++j) {
        if (j == k || context.fds[k]->Overlaps(*context.fds[j])) continue;
        bool disjoint = true;
        for (size_t f : family) {
          if (context.fds[j]->Overlaps(*context.fds[f])) {
            disjoint = false;
            break;
          }
        }
        if (disjoint) {
          family.push_back(j);
          others += matching_lb[j];
        }
      }
      config.enumerate_all = false;
      config.upper_bound = ub_joint - others;
      config.lb_floor =
          context.ft[k].tau /
          std::max(std::max(context.ft[k].w_l, context.ft[k].w_r), 1e-9);
    }
    uint64_t expanded = 0;
    uint64_t pruned = 0;
    auto sets_result = EnumerateMaximalIndependentSets(
        context.graphs[k], config, &expanded, &pruned);
    if (stats != nullptr) {
      stats->expansion_nodes += expanded;
      stats->expansion_pruned += pruned;
    }
    if (!sets_result.ok()) return sets_result.status();
    std::vector<std::vector<int>> sets = std::move(sets_result).value();
    if (sets.size() > options.max_sets_per_fd) {
      return Status::ResourceExhausted(
          "FD has " + std::to_string(sets.size()) +
          " maximal independent sets (cap " +
          std::to_string(options.max_sets_per_fd) + ")");
    }
    // Sort by local lower bound ascending.
    std::vector<double> lbs(sets.size());
    for (size_t s = 0; s < sets.size(); ++s) {
      lbs[s] = LocalLowerBound(context.graphs[k], sets[s], context.ft[k]);
    }
    if (!options.trusted_rows.empty()) {
      std::vector<std::vector<int>> kept;
      std::vector<bool> member(
          static_cast<size_t>(context.graphs[k].num_patterns()));
      for (std::vector<int>& set : sets) {
        std::fill(member.begin(), member.end(), false);
        for (int v : set) member[static_cast<size_t>(v)] = true;
        bool valid = true;
        for (int v = 0; v < context.graphs[k].num_patterns() && valid;
             ++v) {
          valid = !forced[k][static_cast<size_t>(v)] ||
                  member[static_cast<size_t>(v)];
        }
        if (valid) kept.push_back(std::move(set));
      }
      sets = std::move(kept);
      if (sets.empty()) {
        // Trusted patterns conflict with every maximal set of this FD;
        // defer to the forced-aware heuristics.
        return Status::ResourceExhausted(
            "no maximal independent set honors the trusted rows for " +
            context.fds[k]->name());
      }
    }
    std::vector<size_t> order(sets.size());
    for (size_t s = 0; s < sets.size(); ++s) order[s] = s;
    std::stable_sort(order.begin(), order.end(),
                     [&lbs](size_t a, size_t b) { return lbs[a] < lbs[b]; });
    for (size_t s : order) {
      search.sets[k].push_back(std::move(sets[s]));
      search.lbs[k].push_back(lbs[s]);
    }
  }

  // Greedy pairwise attribute-disjoint FD subset for the additive bound.
  search.in_disjoint.assign(num_fds, false);
  for (size_t k = 0; k < num_fds; ++k) {
    bool disjoint = true;
    for (size_t j = 0; j < k && disjoint; ++j) {
      if (search.in_disjoint[j] && context.fds[k]->Overlaps(*context.fds[j])) {
        disjoint = false;
      }
    }
    search.in_disjoint[k] = disjoint;
  }

  // The Appro-M cost seeds the combination search bound too.
  search.best_cost = ub_joint;

  FTR_RETURN_NOT_OK(search.Recurse(0, 0.0, 0.0));
  if (search.best_chosen.empty()) {
    // Either the Appro-M seed is optimal or every join was empty;
    // re-derive the solution through Appro-M for consistency.
    return SolveApproMulti(context, model, options, stats);
  }
  auto result = AssignTargets(context, search.best_chosen, model, options,
                              stats);
  if (result.ok()) result.value().rung = SolverRung::kExact;
  return result;
}

}  // namespace ftrepair
