#include "core/repair_types.h"

#include <algorithm>
#include <set>

#include "common/budget.h"
#include "common/resource.h"
#include "common/trace.h"

namespace ftrepair {

const char* RepairAlgorithmName(RepairAlgorithm algorithm) {
  switch (algorithm) {
    case RepairAlgorithm::kExact:
      return "Exact";
    case RepairAlgorithm::kGreedy:
      return "Greedy";
    case RepairAlgorithm::kApproJoin:
      return "ApproJoin";
  }
  return "?";
}

const char* DegradationCauseName(DegradationCause cause) {
  switch (cause) {
    case DegradationCause::kUnknown:
      return "unknown";
    case DegradationCause::kDeadline:
      return "deadline";
    case DegradationCause::kMemorySoft:
      return "memory_soft";
    case DegradationCause::kMemoryHard:
      return "memory_hard";
    case DegradationCause::kSearchValve:
      return "search_valve";
  }
  return "?";
}

DegradationCause ClassifyDegradationCause(const Budget* budget,
                                          const MemoryBudget* memory) {
  // Hard-memory latching dominates: once charges fail, everything
  // downstream trips regardless of the clock.
  if (MemExhausted(memory)) return DegradationCause::kMemoryHard;
  if (budget != nullptr &&
      (budget->cancelled() || (budget->limited() && budget->RemainingMs() <= 0))) {
    return DegradationCause::kDeadline;
  }
  if (MemSoftExceeded(memory)) return DegradationCause::kMemorySoft;
  return DegradationCause::kSearchValve;
}

double RepairOptions::TauFor(const FD& fd) const {
  if (!fd.name().empty()) {
    auto it = tau_by_fd.find(fd.name());
    if (it != tau_by_fd.end()) return it->second;
  }
  return default_tau;
}

FTOptions RepairOptions::FTFor(const FD& fd) const {
  // Named assignment, not positional aggregate init: FTOptions keeps
  // growing and a positional list silently reshuffles on insertion.
  FTOptions ft;
  ft.w_l = w_l;
  ft.w_r = w_r;
  ft.tau = TauFor(fd);
  ft.threads = threads;
  ft.index = detect_index;
  ft.memory = memory;
  ft.interned = columnar;
  return ft;
}

double RepairOptions::ConfidenceFor(const FD& fd) const {
  if (!fd.name().empty()) {
    auto it = confidence_by_fd.find(fd.name());
    if (it != confidence_by_fd.end()) return it->second;
  }
  return fd.confidence();
}

void PhaseTimings::Merge(const PhaseTimings& other) {
  detect_ms += other.detect_ms;
  graph_ms += other.graph_ms;
  solve_ms += other.solve_ms;
  targets_ms += other.targets_ms;
  apply_ms += other.apply_ms;
  stats_ms += other.stats_ms;
  total_ms += other.total_ms;
}

void RepairStats::Merge(const RepairStats& other) {
  ft_violations_before += other.ft_violations_before;
  ft_violations_after += other.ft_violations_after;
  repair_cost += other.repair_cost;
  cells_changed += other.cells_changed;
  tuples_changed += other.tuples_changed;
  expansion_nodes += other.expansion_nodes;
  expansion_pruned += other.expansion_pruned;
  combinations_examined += other.combinations_examined;
  combinations_pruned += other.combinations_pruned;
  target_nodes_visited += other.target_nodes_visited;
  target_nodes_pruned += other.target_nodes_pruned;
  targets_materialized += other.targets_materialized;
  degradations.insert(degradations.end(), other.degradations.begin(),
                      other.degradations.end());
  phases.Merge(other.phases);
  join_empty = join_empty || other.join_empty;
  trusted_conflicts += other.trusted_conflicts;
}

void ApplySingleFDSolution(const ViolationGraph& graph, const FD& fd,
                           const SingleFDSolution& solution, Table* table,
                           std::vector<CellChange>* changes,
                           const std::unordered_set<int>* trusted,
                           const ProvenanceScope& scope) {
  FTR_TRACE_SPAN("repair.apply_single", {{"fd", fd.name()}});
  RepairProvenance* prov = scope.prov;
  for (int i = 0; i < graph.num_patterns(); ++i) {
    int target = solution.repair_target[static_cast<size_t>(i)];
    if (target < 0) continue;
    const Pattern& src = graph.pattern(i);
    const Pattern& dst = graph.pattern(target);
    int decision_index = -1;
    if (prov != nullptr) {
      decision_index = static_cast<int>(prov->decisions.size());
      RepairDecision d;
      d.component = scope.component;
      d.fd = scope.fd;
      d.rung = solution.rung;
      d.source_pattern = i;
      d.target_pattern = target;
      d.cols.assign(fd.attrs().begin(), fd.attrs().end());
      d.source_values = src.values;
      d.target_values = dst.values;
      d.rows = src.rows;
      d.degradations_before = scope.degradations_before;
      for (const ViolationGraph::Edge& e : graph.Neighbors(i)) {
        // Both single-FD solvers pick repair targets from the neighbor
        // scan, so the edge to `target` is always present.
        if (e.to == target) d.unit_cost = e.unit_cost;
        ProvenanceEdge edge;
        edge.fd = scope.fd;
        edge.peer = e.to;
        edge.peer_values = graph.pattern(e.to).values;
        edge.proj_dist = e.proj_dist;
        edge.unit_cost = e.unit_cost;
        d.edges.push_back(std::move(edge));
      }
      prov->decisions.push_back(std::move(d));
    }
    for (int row : src.rows) {
      if (trusted != nullptr && trusted->count(row)) continue;
      for (int p = 0; p < fd.num_attrs(); ++p) {
        int col = fd.attrs()[static_cast<size_t>(p)];
        const Value& cell = table->cell(row, col);
        const Value& new_value = dst.values[static_cast<size_t>(p)];
        if (cell != new_value) {
          if (changes != nullptr) {
            changes->push_back(CellChange{row, col, cell, new_value});
            if (prov != nullptr) {
              prov->change_decision.push_back(decision_index);
            }
          }
          table->SetCell(row, col, new_value);
        }
      }
    }
  }
}

void ApplyMultiFDSolution(const MultiFDSolution& solution, Table* table,
                          std::vector<CellChange>* changes,
                          const std::unordered_set<int>* trusted,
                          const ProvenanceScope& scope) {
  FTR_TRACE_SPAN("repair.apply_multi");
  RepairProvenance* prov = scope.prov;
  for (size_t i = 0; i < solution.sigma_patterns.size(); ++i) {
    const std::vector<Value>& target = solution.targets[i];
    if (target.empty()) continue;
    const Pattern& src = solution.sigma_patterns[i];
    int decision_index = -1;
    if (prov != nullptr) {
      decision_index = static_cast<int>(prov->decisions.size());
      RepairDecision d;
      d.component = scope.component;
      d.fd = -1;  // multi-FD target: the implicating FDs live on edges
      d.rung = solution.rung;
      d.source_pattern = static_cast<int>(i);
      d.target_pattern = -1;  // joined value vector, not a pattern id
      d.cols = solution.component_cols;
      d.source_values = src.values;
      d.target_values = target;
      d.rows = src.rows;
      d.unit_cost =
          i < solution.target_costs.size() ? solution.target_costs[i] : 0.0;
      d.degradations_before = scope.degradations_before;
      if (i < solution.prov_edges.size()) {
        d.edges = solution.prov_edges[i];
        // AssignTargets records edge.fd as the component-local FD
        // index; remap to the global FD table.
        const std::vector<int>* fd_map = nullptr;
        if (scope.component >= 0 &&
            static_cast<size_t>(scope.component) < prov->components.size()) {
          fd_map = &prov->components[static_cast<size_t>(scope.component)].fds;
        }
        for (ProvenanceEdge& edge : d.edges) {
          if (fd_map != nullptr && edge.fd >= 0 &&
              static_cast<size_t>(edge.fd) < fd_map->size()) {
            edge.fd = (*fd_map)[static_cast<size_t>(edge.fd)];
          }
        }
      }
      prov->decisions.push_back(std::move(d));
    }
    for (int row : src.rows) {
      if (trusted != nullptr && trusted->count(row)) continue;
      for (size_t p = 0; p < solution.component_cols.size(); ++p) {
        int col = solution.component_cols[p];
        const Value& cell = table->cell(row, col);
        if (cell != target[p]) {
          if (changes != nullptr) {
            changes->push_back(CellChange{row, col, cell, target[p]});
            if (prov != nullptr) {
              prov->change_decision.push_back(decision_index);
            }
          }
          table->SetCell(row, col, target[p]);
        }
      }
    }
  }
}

std::vector<bool> TrustedPatternMask(
    const std::vector<Pattern>& patterns,
    const std::unordered_set<int>& trusted_rows) {
  std::vector<bool> mask(patterns.size(), false);
  if (trusted_rows.empty()) return mask;
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (int row : patterns[i].rows) {
      if (trusted_rows.count(row)) {
        mask[i] = true;
        break;
      }
    }
  }
  return mask;
}

std::vector<int> ComponentColumns(const std::vector<const FD*>& fds) {
  std::set<int> cols;
  for (const FD* fd : fds) {
    cols.insert(fd->attrs().begin(), fd->attrs().end());
  }
  return std::vector<int>(cols.begin(), cols.end());
}

double TableRepairCost(const Table& original, const Table& repaired,
                       const DistanceModel& model) {
  double cost = 0;
  for (int r = 0; r < original.num_rows(); ++r) {
    for (int c = 0; c < original.num_columns(); ++c) {
      cost += model.CellDistance(c, original.cell(r, c), repaired.cell(r, c));
    }
  }
  return cost;
}

}  // namespace ftrepair
