#include "core/lazy_targets.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/trace.h"
#include "detect/pattern.h"
#include "detect/violation_graph.h"

namespace ftrepair {

namespace {

// Hash of a value sequence (order-dependent, mix-then-combine — the
// keys below are only hashes, verified by actual value agreement, so
// collision quality is purely a performance matter; see common/hash.h).
size_t HashValues(const std::vector<Value>& values,
                  const std::vector<int>& indices) {
  size_t h = 14695981039346656037ULL;
  for (int i : indices) {
    h = HashCombine(h, values[static_cast<size_t>(i)].Hash());
  }
  return h;
}

}  // namespace

size_t LazyTargetSearch::BackKey(const Level& level,
                                 const std::vector<Value>& assignment) const {
  size_t h = 14695981039346656037ULL;
  for (int a : level.back_attr) {
    int pos = level.attr_pos[static_cast<size_t>(a)];
    h = HashCombine(h, assignment[static_cast<size_t>(pos)].Hash());
  }
  return h;
}

Result<LazyTargetSearch> LazyTargetSearch::Build(
    std::vector<TargetTree::LevelInput> inputs,
    std::vector<int> component_cols) {
  FTR_TRACE_SPAN("targets.lazy_build");
  if (inputs.empty()) {
    return Status::InvalidArgument("lazy target search needs >= 1 set");
  }
  std::stable_sort(inputs.begin(), inputs.end(),
                   [](const TargetTree::LevelInput& a,
                      const TargetTree::LevelInput& b) {
                     return a.elements.size() < b.elements.size();
                   });

  LazyTargetSearch search;
  search.component_cols_ = std::move(component_cols);
  int width = static_cast<int>(search.component_cols_.size());
  std::unordered_map<int, int> col_to_pos;
  for (int p = 0; p < width; ++p) {
    col_to_pos.emplace(search.component_cols_[static_cast<size_t>(p)], p);
  }

  // --- Pairwise-consistency prefilter (fixpoint). ---
  // viable[l][e] = element e of level l agrees, on every attribute
  // shared with any other level m, with at least one viable element of m.
  size_t num_levels = inputs.size();
  std::vector<std::vector<bool>> viable(num_levels);
  for (size_t l = 0; l < num_levels; ++l) {
    viable[l].assign(inputs[l].elements.size(), true);
  }
  // Shared attribute positions between level pairs, expressed as
  // (attr index in l, attr index in m).
  struct SharedAttrs {
    std::vector<int> in_l;
    std::vector<int> in_m;
  };
  std::vector<std::vector<SharedAttrs>> shared(
      num_levels, std::vector<SharedAttrs>(num_levels));
  for (size_t l = 0; l < num_levels; ++l) {
    for (size_t m = 0; m < num_levels; ++m) {
      if (l == m) continue;
      const auto& la = inputs[l].fd->attrs();
      const auto& ma = inputs[m].fd->attrs();
      for (size_t i = 0; i < la.size(); ++i) {
        for (size_t j = 0; j < ma.size(); ++j) {
          if (la[i] == ma[j]) {
            shared[l][m].in_l.push_back(static_cast<int>(i));
            shared[l][m].in_m.push_back(static_cast<int>(j));
          }
        }
      }
    }
  }
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 16) {
    changed = false;
    for (size_t l = 0; l < num_levels; ++l) {
      for (size_t m = 0; m < num_levels; ++m) {
        if (l == m || shared[l][m].in_l.empty()) continue;
        // Hash the viable projections of level m.
        std::unordered_set<size_t> keys;
        for (size_t e = 0; e < inputs[m].elements.size(); ++e) {
          if (!viable[m][e]) continue;
          keys.insert(HashValues(inputs[m].elements[e], shared[l][m].in_m));
        }
        for (size_t e = 0; e < inputs[l].elements.size(); ++e) {
          if (!viable[l][e]) continue;
          size_t key =
              HashValues(inputs[l].elements[e], shared[l][m].in_l);
          if (keys.count(key) == 0) {
            viable[l][e] = false;
            changed = true;
          }
        }
      }
    }
  }

  // --- Level construction. ---
  std::vector<bool> fixed(static_cast<size_t>(width), false);
  search.levels_.resize(num_levels);
  search.position_values_.assign(static_cast<size_t>(width), {});
  for (size_t l = 0; l < num_levels; ++l) {
    Level& level = search.levels_[l];
    level.fd = inputs[l].fd;
    for (size_t e = 0; e < inputs[l].elements.size(); ++e) {
      if (viable[l][e]) level.elements.push_back(inputs[l].elements[e]);
    }
    if (level.elements.empty()) {
      return Status::NotFound("target join is empty");
    }
    for (size_t a = 0; a < level.fd->attrs().size(); ++a) {
      int col = level.fd->attrs()[a];
      auto it = col_to_pos.find(col);
      if (it == col_to_pos.end()) {
        return Status::InvalidArgument(
            "FD attribute not in component columns");
      }
      level.attr_pos.push_back(it->second);
      if (fixed[static_cast<size_t>(it->second)]) {
        level.back_attr.push_back(static_cast<int>(a));
      } else {
        fixed[static_cast<size_t>(it->second)] = true;
        level.fixed_pos.push_back(it->second);
        // Collect distinct values for the global EDIST bound.
        std::set<Value> distinct;
        for (const auto& elem : level.elements) distinct.insert(elem[a]);
        search.position_values_[static_cast<size_t>(it->second)]
            .assign(distinct.begin(), distinct.end());
      }
    }
    // Index elements by their back-shared projection (same combine as
    // BackKey — the lookups must land in the same buckets).
    for (size_t e = 0; e < level.elements.size(); ++e) {
      size_t h = 14695981039346656037ULL;
      for (int a : level.back_attr) {
        h = HashCombine(h, level.elements[e][static_cast<size_t>(a)].Hash());
      }
      level.index[h].push_back(static_cast<int>(e));
    }
  }
  for (int p = 0; p < width; ++p) {
    if (!fixed[static_cast<size_t>(p)]) {
      return Status::InvalidArgument(
          "component column covered by no FD in the target search");
    }
  }
  // Suffix position lists for EDIST.
  search.suffix_positions_.assign(num_levels + 1, {});
  for (size_t l = num_levels; l-- > 0;) {
    search.suffix_positions_[l] = search.suffix_positions_[l + 1];
    for (int p : search.levels_[l].fixed_pos) {
      search.suffix_positions_[l].push_back(p);
    }
  }
  return search;
}

LazyTargetSearch::QueryResult LazyTargetSearch::FindBest(
    const std::vector<Value>& tuple_proj, const DistanceModel& model,
    uint64_t max_visits, TargetTree::SearchStats* stats,
    const Budget* budget, const MemoryBudget* memory) const {
  QueryResult result;
  size_t num_levels = levels_.size();
  int width = static_cast<int>(component_cols_.size());

  // Per-position global lower bounds for this tuple.
  std::vector<double> pos_lb(static_cast<size_t>(width), 0);
  for (int p = 0; p < width; ++p) {
    double best = 1.0;
    for (const Value& v : position_values_[static_cast<size_t>(p)]) {
      best = std::min(best, model.CellDistance(component_cols_[
                                static_cast<size_t>(p)],
                                tuple_proj[static_cast<size_t>(p)], v));
      if (best == 0) break;
    }
    pos_lb[static_cast<size_t>(p)] = best;
  }
  // edist_suffix[l] = sum of pos_lb over positions fixed at level >= l.
  std::vector<double> edist_suffix(num_levels + 1, 0);
  for (size_t l = num_levels; l-- > 0;) {
    edist_suffix[l] = edist_suffix[l + 1];
    for (int p : levels_[l].fixed_pos) {
      edist_suffix[l] += pos_lb[static_cast<size_t>(p)];
    }
  }

  // Search arena: expanded nodes with parent pointers.
  struct Node {
    int level;  // level of the element this node chose (-1 = root)
    int elem;
    int parent;
  };
  std::vector<Node> arena;
  arena.push_back(Node{-1, -1, -1});

  struct Entry {
    double f;
    double rdist;
    int node;
    uint64_t order;
    bool operator>(const Entry& other) const {
      if (f != other.f) return f > other.f;
      return order > other.order;  // deterministic FIFO tie-break
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  uint64_t order_counter = 0;
  queue.push(Entry{edist_suffix[0], 0.0, 0, order_counter++});

  double c_min = ViolationGraph::kInfinity;
  int best_leaf = -1;
  uint64_t visits = 0;

  // Reconstructs the partial assignment of a node's path.
  std::vector<Value> assignment(static_cast<size_t>(width));
  auto fill_assignment = [&](int node_id) {
    int cur = node_id;
    while (cur > 0) {
      const Node& n = arena[static_cast<size_t>(cur)];
      const Level& level = levels_[static_cast<size_t>(n.level)];
      const std::vector<Value>& elem =
          level.elements[static_cast<size_t>(n.elem)];
      for (size_t a = 0; a < level.attr_pos.size(); ++a) {
        assignment[static_cast<size_t>(level.attr_pos[a])] = elem[a];
      }
      cur = arena[static_cast<size_t>(cur)].parent;
    }
  };

  while (!queue.empty()) {
    Entry top = queue.top();
    queue.pop();
    if (top.f >= c_min) {
      if (stats != nullptr) ++stats->nodes_pruned;
      continue;
    }
    if (++visits > max_visits || !BudgetCharge(budget) ||
        !MemCharge(memory, sizeof(Node) + sizeof(Entry),
                   MemPhase::kTargets)) {
      result.truncated = true;
      break;
    }
    if (stats != nullptr) ++stats->nodes_visited;
    const Node& node = arena[static_cast<size_t>(top.node)];
    int next_level = node.level + 1;
    if (next_level == static_cast<int>(num_levels)) {
      c_min = top.f;  // leaf: EDIST suffix is empty, f == rdist == cost
      best_leaf = top.node;
      continue;
    }
    const Level& level = levels_[static_cast<size_t>(next_level)];
    fill_assignment(top.node);
    size_t key = BackKey(level, assignment);
    auto it = level.index.find(key);
    if (it == level.index.end()) continue;  // dead end
    for (int e : it->second) {
      const std::vector<Value>& elem =
          level.elements[static_cast<size_t>(e)];
      // Verify actual agreement (the key is only a hash).
      bool agrees = true;
      for (int a : level.back_attr) {
        int pos = level.attr_pos[static_cast<size_t>(a)];
        if (assignment[static_cast<size_t>(pos)] !=
            elem[static_cast<size_t>(a)]) {
          agrees = false;
          break;
        }
      }
      if (!agrees) continue;
      double rdist = top.rdist;
      for (size_t a = 0; a < level.attr_pos.size(); ++a) {
        int pos = level.attr_pos[a];
        // Only positions first fixed here contribute (back-shared ones
        // were already priced by the fixing level).
        bool first_fixed = std::find(level.fixed_pos.begin(),
                                     level.fixed_pos.end(),
                                     pos) != level.fixed_pos.end();
        if (!first_fixed) continue;
        rdist += model.CellDistance(
            component_cols_[static_cast<size_t>(pos)],
            tuple_proj[static_cast<size_t>(pos)], elem[a]);
      }
      double f = rdist +
                 edist_suffix[static_cast<size_t>(next_level) + 1];
      if (f < c_min) {
        arena.push_back(Node{next_level, e, top.node});
        queue.push(Entry{f, rdist, static_cast<int>(arena.size()) - 1,
                         order_counter++});
      } else if (stats != nullptr) {
        ++stats->nodes_pruned;
      }
    }
  }

  if (best_leaf < 0) return result;  // no target found
  fill_assignment(best_leaf);
  result.target = assignment;
  result.cost = c_min;
  return result;
}

}  // namespace ftrepair
