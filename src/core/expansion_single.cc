#include "core/expansion_single.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/greedy_single.h"

namespace ftrepair {

namespace {

using Bits = std::vector<uint64_t>;

size_t WordCount(int n) { return static_cast<size_t>((n + 63) / 64); }

bool TestBit(const Bits& bits, int i) {
  return (bits[static_cast<size_t>(i) / 64] >>
          (static_cast<size_t>(i) % 64)) &
         1u;
}

void SetBit(Bits* bits, int i) {
  (*bits)[static_cast<size_t>(i) / 64] |= uint64_t{1}
                                          << (static_cast<size_t>(i) % 64);
}

bool Intersects(const Bits& a, const Bits& b) {
  for (size_t w = 0; w < a.size(); ++w) {
    if (a[w] & b[w]) return true;
  }
  return false;
}

struct BitsHash {
  size_t operator()(const Bits& b) const {
    size_t h = 1469598103934665603ULL;
    for (uint64_t w : b) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct Node {
  Bits bits;
  /// Eq. 5 lower bound over the processed prefix: sum over excluded
  /// prefix patterns of count * MinEdgeCost.
  double lb = 0;
};

std::vector<int> MembersOf(const Bits& bits, int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) {
    if (TestBit(bits, i)) out.push_back(i);
  }
  return out;
}

}  // namespace

double EvaluateIndependentSet(const ViolationGraph& graph,
                              const std::vector<int>& set,
                              std::vector<int>* repair_target) {
  int n = graph.num_patterns();
  std::vector<bool> member(static_cast<size_t>(n), false);
  for (int v : set) member[static_cast<size_t>(v)] = true;
  repair_target->assign(static_cast<size_t>(n), -1);
  double cost = 0;
  for (int v = 0; v < n; ++v) {
    if (member[static_cast<size_t>(v)]) continue;
    double best = ViolationGraph::kInfinity;
    int best_to = -1;
    for (const ViolationGraph::Edge& e : graph.Neighbors(v)) {
      if (!member[static_cast<size_t>(e.to)]) continue;
      if (e.unit_cost < best ||
          (e.unit_cost == best && e.to < best_to)) {
        best = e.unit_cost;
        best_to = e.to;
      }
    }
    if (best_to < 0) {
      // `set` is not maximal: v is consistent with it but excluded.
      repair_target->assign(static_cast<size_t>(n), -1);
      return ViolationGraph::kInfinity;
    }
    (*repair_target)[static_cast<size_t>(v)] = best_to;
    cost += graph.pattern(v).count() * best;
  }
  return cost;
}

Result<std::vector<std::vector<int>>> EnumerateMaximalIndependentSets(
    const ViolationGraph& graph, const ExpansionConfig& config,
    uint64_t* nodes_expanded, uint64_t* nodes_pruned) {
  *nodes_expanded = 0;
  *nodes_pruned = 0;
  int n = graph.num_patterns();
  if (n == 0) return std::vector<std::vector<int>>{};
  size_t words = WordCount(n);

  // Frequency-descending access order (§3.1), ties by pattern id.
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&graph](int a, int b) {
    int ca = graph.pattern(a).count();
    int cb = graph.pattern(b).count();
    if (ca != cb) return ca > cb;
    return a < b;
  });

  // Adjacency bitsets for O(n/64) consistency tests.
  std::vector<Bits> adj_bits(static_cast<size_t>(n), Bits(words, 0));
  for (int i = 0; i < n; ++i) {
    for (const ViolationGraph::Edge& e : graph.Neighbors(i)) {
      SetBit(&adj_bits[static_cast<size_t>(i)], e.to);
    }
  }

  const double kEps = 1e-12;
  // Per-tuple exclusion cost of each pattern, capped by config.lb_floor.
  auto exclusion_lb = [&graph, &config](int v) {
    double mec = graph.MinEdgeCost(v);
    if (mec == ViolationGraph::kInfinity) return 0.0;
    return std::min(mec, config.lb_floor);
  };
  Bits prefix_bits(words, 0);
  SetBit(&prefix_bits, order[0]);

  std::vector<Node> frontier;
  {
    Node root;
    root.bits.assign(words, 0);
    SetBit(&root.bits, order[0]);
    frontier.push_back(std::move(root));
  }

  for (int level = 1; level < n; ++level) {
    int p = order[static_cast<size_t>(level)];
    const Bits& p_adj = adj_bits[static_cast<size_t>(p)];
    double p_excluded_lb = graph.pattern(p).count() * exclusion_lb(p);

    std::vector<Node> next;
    next.reserve(frontier.size() + frontier.size() / 2);
    std::unordered_set<Bits, BitsHash> seen;

    for (Node& node : frontier) {
      if (!config.enumerate_all &&
          node.lb > config.upper_bound + kEps) {
        ++*nodes_pruned;
        continue;
      }
      if (!BudgetCharge(config.budget) ||
          !MemCharge(config.memory, sizeof(Node) + words * sizeof(uint64_t),
                     MemPhase::kSolve)) {
        return ResourceCheck(config.budget, config.memory,
                             "expansion enumeration");
      }
      ++*nodes_expanded;
      if (!Intersects(p_adj, node.bits)) {
        // p is FT-consistent with every member: single child I ∪ {p}.
        SetBit(&node.bits, p);
        if (seen.insert(node.bits).second) next.push_back(std::move(node));
        continue;
      }
      // Left child: I itself stays maximal w.r.t. the longer prefix.
      Node left = node;
      left.lb += p_excluded_lb;
      // Right child: FTC(p, I) ∪ {p}.
      Bits cand(words, 0);
      double removed_lb = 0;
      for (size_t w = 0; w < words; ++w) {
        cand[w] = node.bits[w] & ~p_adj[w];
      }
      for (int v : MembersOf(node.bits, n)) {
        if (!TestBit(cand, v)) {
          removed_lb += graph.pattern(v).count() * exclusion_lb(v);
        }
      }
      SetBit(&cand, p);
      if (seen.insert(left.bits).second) next.push_back(std::move(left));

      // Maximality w.r.t. the prefix: no prefix pattern outside cand may
      // be consistent with all of cand.
      bool maximal = true;
      for (int q = 0; q <= level && maximal; ++q) {
        int qp = order[static_cast<size_t>(q)];
        if (TestBit(cand, qp)) continue;
        if (!Intersects(adj_bits[static_cast<size_t>(qp)], cand)) {
          maximal = false;
        }
      }
      if (maximal && seen.count(cand) == 0) {
        Node right;
        right.lb = node.lb + removed_lb;
        right.bits = cand;
        seen.insert(right.bits);
        next.push_back(std::move(right));
      }
    }
    SetBit(&prefix_bits, p);
    if (next.size() > config.max_frontier) {
      return Status::ResourceExhausted(
          "expansion frontier exceeded " +
          std::to_string(config.max_frontier) + " at level " +
          std::to_string(level));
    }
    if (next.empty()) {
      // Every branch was pruned: no maximal independent set can beat
      // the seeded upper bound, so the seed itself is optimal.
      return std::vector<std::vector<int>>{};
    }
    frontier = std::move(next);
  }

  std::vector<std::vector<int>> sets;
  sets.reserve(frontier.size());
  for (const Node& node : frontier) {
    sets.push_back(MembersOf(node.bits, n));
  }
  return sets;
}

namespace {

// Optimal repair of one connected component of the violation graph.
Result<SingleFDSolution> SolveConnectedComponent(
    const ViolationGraph& graph, const ExpansionConfig& config) {
  SingleFDSolution best;
  int n = graph.num_patterns();
  best.repair_target.assign(static_cast<size_t>(n), -1);
  if (n == 0) return best;

  // Seed the upper bound with the Greedy-S repair (an achievable cost
  // honoring forced patterns), the role UB(T) plays in Algorithm 1. A
  // seed the budget cut short understates the achievable cost (unsound
  // as UB(T)) and means the budget is spent — step down the ladder now.
  ExpansionConfig cfg = config;
  uint64_t forced_conflicts = 0;
  if (!cfg.enumerate_all &&
      cfg.upper_bound == ViolationGraph::kInfinity) {
    SingleFDSolution greedy = SolveGreedySingle(
        graph, cfg.forced, &forced_conflicts, cfg.budget, cfg.memory);
    if (greedy.truncated) {
      return ResourceCheck(cfg.budget, cfg.memory, "upper-bound seed");
    }
    cfg.upper_bound = greedy.cost;
    best = std::move(greedy);
  }

  uint64_t expanded = 0;
  uint64_t pruned = 0;
  auto sets_result =
      EnumerateMaximalIndependentSets(graph, cfg, &expanded, &pruned);
  if (!sets_result.ok()) return sets_result.status();
  std::vector<std::vector<int>> sets = std::move(sets_result).value();

  double best_cost =
      best.chosen_set.empty() ? ViolationGraph::kInfinity : best.cost;
  bool found = !best.chosen_set.empty();
  for (std::vector<int>& set : sets) {
    if (config.forced != nullptr) {
      // Discard sets missing a trusted pattern.
      std::vector<bool> member(static_cast<size_t>(n), false);
      for (int v : set) member[static_cast<size_t>(v)] = true;
      bool valid = true;
      for (int v = 0; v < n && valid; ++v) {
        valid = !(*config.forced)[static_cast<size_t>(v)] ||
                member[static_cast<size_t>(v)];
      }
      if (!valid) continue;
    }
    std::vector<int> target;
    double cost = EvaluateIndependentSet(graph, set, &target);
    if (cost < best_cost) {
      best_cost = cost;
      best.chosen_set = std::move(set);
      best.repair_target = std::move(target);
      found = true;
    }
  }
  if (!found) {
    return Status::Internal("no maximal independent set evaluated");
  }
  best.cost = best_cost;
  best.nodes_expanded = expanded;
  best.nodes_pruned = pruned;
  return best;
}

}  // namespace

Result<SingleFDSolution> SolveExpansionSingle(const ViolationGraph& graph,
                                              const ExpansionConfig& config) {
  FTR_TRACE_SPAN("expansion.solve_single");
  // Maximal independent sets, repair targets, and costs all decompose
  // over connected components of the violation graph, so the optimum
  // is the union of per-component optima. This keeps the expansion
  // frontier proportional to the largest conflict cluster instead of
  // the whole instance.
  SingleFDSolution solution;
  solution.rung = SolverRung::kExact;
  int n = graph.num_patterns();
  solution.repair_target.assign(static_cast<size_t>(n), -1);
  for (const std::vector<int>& component : graph.ConnectedComponents()) {
    if (component.size() == 1) {
      solution.chosen_set.push_back(component[0]);  // isolated vertex
      continue;
    }
    ViolationGraph sub = graph.InducedSubgraph(component);
    ExpansionConfig local_config = config;
    std::vector<bool> local_forced;
    if (config.forced != nullptr) {
      local_forced.resize(component.size());
      for (size_t i = 0; i < component.size(); ++i) {
        local_forced[i] =
            (*config.forced)[static_cast<size_t>(component[i])];
      }
      local_config.forced = &local_forced;
    }
    FTR_ASSIGN_OR_RETURN(SingleFDSolution local,
                         SolveConnectedComponent(sub, local_config));
    for (int v : local.chosen_set) {
      solution.chosen_set.push_back(component[static_cast<size_t>(v)]);
    }
    for (size_t v = 0; v < component.size(); ++v) {
      int target = local.repair_target[v];
      if (target >= 0) {
        solution.repair_target[static_cast<size_t>(component[v])] =
            component[static_cast<size_t>(target)];
      }
    }
    solution.cost += local.cost;
    solution.nodes_expanded += local.nodes_expanded;
    solution.nodes_pruned += local.nodes_pruned;
  }
  std::sort(solution.chosen_set.begin(), solution.chosen_set.end());
  static Counter* nodes =
      Metrics().GetCounter("ftrepair.solve.expansion_nodes");
  static Counter* pruned =
      Metrics().GetCounter("ftrepair.solve.expansion_pruned");
  nodes->Increment(solution.nodes_expanded);
  pruned->Increment(solution.nodes_pruned);
  return solution;
}

}  // namespace ftrepair
