#include "core/appro_multi.h"

#include "common/trace.h"
#include "core/greedy_single.h"

namespace ftrepair {

Result<MultiFDSolution> SolveApproMulti(const ComponentContext& context,
                                        const DistanceModel& model,
                                        const RepairOptions& options,
                                        RepairStats* stats) {
  FTR_TRACE_SPAN("appro.solve_multi");
  std::vector<std::vector<int>> chosen;
  chosen.reserve(context.fds.size());
  bool truncated = false;
  for (const ViolationGraph& graph : context.graphs) {
    SingleFDSolution greedy;
    if (options.trusted_rows.empty()) {
      greedy = SolveGreedySingle(graph, nullptr, nullptr, options.budget,
                                 options.memory);
    } else {
      std::vector<bool> forced =
          TrustedPatternMask(graph.patterns(), options.trusted_rows);
      uint64_t conflicts = 0;
      greedy = SolveGreedySingle(graph, &forced, &conflicts, options.budget,
                                 options.memory);
      if (stats != nullptr) stats->trusted_conflicts += conflicts;
    }
    truncated = truncated || greedy.truncated;
    chosen.push_back(std::move(greedy.chosen_set));
  }
  if (truncated) {
    // Exhausted before any per-FD cover grew: nothing to assign
    // targets for — let the caller take the ladder's bottom rung.
    bool all_empty = true;
    for (const std::vector<int>& set : chosen) {
      all_empty = all_empty && set.empty();
    }
    if (all_empty) {
      return ResourceCheck(options.budget, options.memory,
                           "appro per-FD cover");
    }
  }
  auto result = AssignTargets(context, chosen, model, options, stats);
  if (result.ok()) {
    result.value().rung = SolverRung::kAppro;
    if (truncated) result.value().truncated = true;
  }
  return result;
}

}  // namespace ftrepair
