#include "core/appro_multi.h"

#include "core/greedy_single.h"

namespace ftrepair {

Result<MultiFDSolution> SolveApproMulti(const ComponentContext& context,
                                        const DistanceModel& model,
                                        const RepairOptions& options,
                                        RepairStats* stats) {
  std::vector<std::vector<int>> chosen;
  chosen.reserve(context.fds.size());
  for (const ViolationGraph& graph : context.graphs) {
    if (options.trusted_rows.empty()) {
      chosen.push_back(SolveGreedySingle(graph).chosen_set);
    } else {
      std::vector<bool> forced =
          TrustedPatternMask(graph.patterns(), options.trusted_rows);
      uint64_t conflicts = 0;
      chosen.push_back(
          SolveGreedySingle(graph, &forced, &conflicts).chosen_set);
      if (stats != nullptr) stats->trusted_conflicts += conflicts;
    }
  }
  return AssignTargets(context, chosen, model, options, stats);
}

}  // namespace ftrepair
