#include "core/appro_multi.h"

#include "common/trace.h"
#include "core/greedy_single.h"

namespace ftrepair {

Result<MultiFDSolution> SolveApproMulti(const ComponentContext& context,
                                        const DistanceModel& model,
                                        const RepairOptions& options,
                                        RepairStats* stats) {
  FTR_TRACE_SPAN("appro.solve_multi");
  std::vector<std::vector<int>> chosen;
  chosen.reserve(context.fds.size());
  bool truncated = false;
  for (const ViolationGraph& graph : context.graphs) {
    SingleFDSolution greedy;
    if (options.trusted_rows.empty()) {
      greedy = SolveGreedySingle(graph, nullptr, nullptr, options.budget);
    } else {
      std::vector<bool> forced =
          TrustedPatternMask(graph.patterns(), options.trusted_rows);
      uint64_t conflicts = 0;
      greedy = SolveGreedySingle(graph, &forced, &conflicts, options.budget);
      if (stats != nullptr) stats->trusted_conflicts += conflicts;
    }
    truncated = truncated || greedy.truncated;
    chosen.push_back(std::move(greedy.chosen_set));
  }
  auto result = AssignTargets(context, chosen, model, options, stats);
  if (result.ok() && truncated) result.value().truncated = true;
  return result;
}

}  // namespace ftrepair
