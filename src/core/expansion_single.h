#ifndef FTREPAIR_CORE_EXPANSION_SINGLE_H_
#define FTREPAIR_CORE_EXPANSION_SINGLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/repair_types.h"
#include "detect/violation_graph.h"

namespace ftrepair {

/// Controls for the expansion-based MIS enumeration (§3.1).
struct ExpansionConfig {
  /// Stop with ResourceExhausted when the level frontier grows past this.
  size_t max_frontier = 20000;
  /// When true, cost-based pruning is disabled and *every* maximal
  /// independent set survives (needed by Expansion-M, §4.2, whose joint
  /// optimum may use a per-FD-suboptimal set).
  bool enumerate_all = false;
  /// Initial upper bound on the achievable repair cost; sets whose
  /// lower bound exceeds it are pruned (ignored when enumerate_all).
  double upper_bound = ViolationGraph::kInfinity;
  /// Cap applied to each pattern's per-tuple exclusion cost when
  /// computing lower bounds. Single-FD repair always moves an excluded
  /// pattern to a *neighbor*, so MinEdgeCost is sound and the cap stays
  /// infinite; multi-FD repair may move it to any element of the chosen
  /// set, where only min(MinEdgeCost, tau / max(w_l, w_r)) is sound
  /// (§4.2 pruning) — Expansion-M passes that floor here.
  double lb_floor = ViolationGraph::kInfinity;
  /// Optional per-pattern trusted flags (see SolveGreedySingle): forced
  /// patterns must appear in the chosen set; enumerated sets lacking
  /// them are discarded, and if none survive the forced greedy solution
  /// is returned.
  const std::vector<bool>* forced = nullptr;
  /// Optional deadline/cancellation budget (not owned). Charged one
  /// unit per expanded frontier node; on exhaustion the enumeration
  /// stops with ResourceExhausted so the caller can step down the
  /// degradation ladder. The greedy upper-bound seed shares the
  /// budget; a truncated seed cost would be an unsound bound, so a
  /// seed the budget cut short aborts with ResourceExhausted instead.
  const Budget* budget = nullptr;
  /// Optional memory governance (not owned). Frontier nodes charge
  /// their footprint (MemPhase::kSolve); exhaustion stops the
  /// enumeration with ResourceExhausted exactly like a spent budget.
  const MemoryBudget* memory = nullptr;
};

/// \brief Enumerates the maximal independent sets of `graph` with the
/// level-per-pattern expansion tree of Algorithm 1.
///
/// Patterns are accessed in frequency-descending order (§3.1 "Accessing
/// order") so cheap sets appear early; each frontier node carries the
/// Eq. 5 lower bound (sum over excluded patterns of count * cheapest
/// incident edge) and is pruned when it exceeds `config.upper_bound`.
/// Returned sets are sorted pattern-id lists.
Result<std::vector<std::vector<int>>> EnumerateMaximalIndependentSets(
    const ViolationGraph& graph, const ExpansionConfig& config,
    uint64_t* nodes_expanded, uint64_t* nodes_pruned);

/// \brief Expansion-S: the optimal single-FD repair (Theorem 2).
///
/// Seeds the upper bound with the Greedy-S solution, enumerates maximal
/// independent sets with pruning, evaluates each survivor exactly and
/// repairs every excluded pattern to its cheapest neighbor inside the
/// best set. Returns ResourceExhausted when the frontier cap is hit.
Result<SingleFDSolution> SolveExpansionSingle(const ViolationGraph& graph,
                                              const ExpansionConfig& config);

/// Exact grouped repair cost of using independent set `set` (sorted
/// pattern ids) to repair the graph, filling `repair_target` (resized to
/// num_patterns; -1 for members/isolated patterns). Infinity when some
/// excluded pattern has no neighbor inside `set` (i.e. `set` is not
/// maximal).
double EvaluateIndependentSet(const ViolationGraph& graph,
                              const std::vector<int>& set,
                              std::vector<int>* repair_target);

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_EXPANSION_SINGLE_H_
