#ifndef FTREPAIR_CORE_REPAIR_TYPES_H_
#define FTREPAIR_CORE_REPAIR_TYPES_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/budget.h"
#include "common/resource.h"
#include "common/status.h"
#include "constraint/fd.h"
#include "core/provenance.h"
#include "data/table.h"
#include "detect/pattern.h"
#include "detect/violation_graph.h"
#include "metric/projection.h"

namespace ftrepair {

/// Which repair algorithm family the Repairer facade dispatches to.
/// Single-FD components always use the single-FD variant of the family
/// (Expansion-S / Greedy-S); connected components of >= 2 FDs use the
/// multi-FD variant (Expansion-M / Greedy-M / Appro-M).
enum class RepairAlgorithm {
  /// Optimal: Expansion-S (§3.1) / Expansion-M (§4.2).
  kExact,
  /// Joint greedy: Greedy-S (§3.2) / Greedy-M (§4.4).
  kGreedy,
  /// Per-FD greedy + join: Greedy-S / Appro-M (§4.3).
  kApproJoin,
};

const char* RepairAlgorithmName(RepairAlgorithm algorithm);

/// Tunables of the cost-based repair model.
struct RepairOptions {
  /// Which repair semantics the Repairer dispatches to, resolved
  /// against the SemanticsRegistry (core/semantics.h):
  ///   "ft-cost"     -- the paper's min-cost FT-consistent repair (the
  ///                    default; exactly the historical pipeline).
  ///   "soft-fd"     -- confidence-weighted soft FDs: repairs whose
  ///                    cost exceeds the confidence-weighted violation
  ///                    penalty are not worth making and are skipped.
  ///   "cardinality" -- minimum number of changed cells (classical FD
  ///                    semantics, indicator distances; poly-time
  ///                    exact majority solver where it is provably
  ///                    optimal, the regular search elsewhere).
  /// Unknown names fail with InvalidArgument listing the registry.
  std::string semantics = "ft-cost";

  /// Per-FD confidence overrides for the soft-fd semantics, keyed by
  /// FD name; FDs not listed keep FD::confidence(). Values must lie in
  /// (0, 1]. Ignored by the other semantics.
  std::unordered_map<std::string, double> confidence_by_fd;

  /// Eq. 2 weights; the paper's default is w_l = w_r = 0.5.
  double w_l = 0.5;
  double w_r = 0.5;
  /// FT threshold tau used for every FD without an override.
  double default_tau = 0.2;
  /// Per-FD tau overrides, keyed by FD name.
  std::unordered_map<std::string, double> tau_by_fd;
  /// When true, tau is chosen per FD by SuggestThreshold (§2.1 heuristic)
  /// and default_tau/tau_by_fd are ignored.
  bool auto_threshold = false;

  RepairAlgorithm algorithm = RepairAlgorithm::kGreedy;

  /// Use the target tree (§5) to search multi-FD targets. When false,
  /// targets are materialized and scanned linearly (ablation baseline).
  bool use_target_tree = true;

  /// §3 "Tuple grouping". Disable only for ablation measurements.
  bool group_tuples = true;

  /// Expansion safety valves: the exact algorithms stop with
  /// ResourceExhausted when the MIS frontier or the number of per-FD
  /// set combinations exceeds these.
  size_t max_frontier = 20000;
  size_t max_sets_per_fd = 4000;
  size_t max_combinations = 200000;
  /// Eager target-tree size cap; past it, AssignTargets switches to the
  /// lazy-materialization search (core/lazy_targets.h).
  size_t max_tree_nodes = 100'000;
  /// Per-tuple visit budget of the lazy target search.
  uint64_t max_target_visits = 200'000;

  /// Degradation valve. Open (the default): when the exact algorithm
  /// exhausts a safety valve or any layer exhausts the budget, step
  /// down the degradation ladder (exact -> greedy -> appro ->
  /// detect-only) and record each step in RepairStats::degradations.
  /// Closed: any exhaustion is a hard ResourceExhausted error —
  /// best-or-nothing.
  bool fall_back_to_greedy = true;

  /// Greedy-M cross-constraint synchronization weight: cost added per
  /// violation triggered (and subtracted per violation eliminated) in a
  /// connected FD when scoring candidate modifications (§4.4).
  double cross_weight = 0.5;

  /// Count FT-violations before/after into RepairStats. Disable for
  /// pure repair-time measurements (it re-runs detection).
  bool compute_violation_stats = true;

  /// Rows known to be correct (verified against master data, say).
  /// Their cells are never modified, and the patterns they carry are
  /// forced into every chosen independent set, so other tuples repair
  /// *toward* them. Two conflicting trusted patterns are both kept
  /// (trust beats independence) and surfaced via
  /// RepairStats::trusted_conflicts.
  std::unordered_set<int> trusted_rows;

  /// Worker threads for the violation-graph builds (see
  /// FTOptions::threads): 1 = serial (the library default, exactly the
  /// historical behavior), 0 = all hardware threads. The repair result
  /// is bit-identical for every setting.
  int threads = 1;

  /// Candidate generation for the violation-graph builds (see
  /// FTOptions::index / --detect-index): kAuto picks the blocking
  /// index on large inputs when a sound filter applies, kAllPairs
  /// forces the quadratic join, kBlocked forces the index. The repair
  /// result is bit-identical for every setting.
  DetectIndexMode detect_index = DetectIndexMode::kAuto;

  /// Optional wall-clock/cancellation budget (not owned; must outlive
  /// the repair call). Every algorithm layer polls it at loop
  /// boundaries; on exhaustion the run degrades along the ladder
  /// exact -> greedy -> per-FD appro -> detect-only instead of running
  /// past the deadline, and each step taken is recorded as a
  /// DegradationEvent in RepairStats. Null means unlimited.
  const Budget* budget = nullptr;

  /// Collect full repair provenance into RepairResult::provenance:
  /// per-decision lineage (implicating violation edges, solver rung,
  /// chosen target), per-change cost contributions, and the cost
  /// ledger. Off by default; when off the only overhead is one null
  /// check per apply call, and the repair output (table, changes,
  /// stats) is bit-identical either way.
  bool provenance = false;

  /// Optional memory governance (not owned), shared across every
  /// phase and thread of the run. Structures that grow with input
  /// size charge their growth here; crossing the soft watermark
  /// tightens the caps above and steps down the same degradation
  /// ladder as the wall-clock budget, and the hard watermark yields a
  /// clean ResourceExhausted with partial output. Null means
  /// unlimited.
  const MemoryBudget* memory = nullptr;

  /// Run detection on the table's dictionary codes (columnar path):
  /// code-keyed pattern grouping, code-bucketed tau = 0 joins, and
  /// per-pair distance memoization. Purely a speed knob — the repair
  /// output is bit-identical with it on or off (--columnar on the CLI;
  /// see PERFORMANCE.md). Off forces the historical value-path joins.
  bool columnar = true;

  /// Effective tau for `fd`.
  double TauFor(const FD& fd) const;
  /// FTOptions (weights + effective tau) for `fd`.
  FTOptions FTFor(const FD& fd) const;
  /// Effective soft-FD confidence for `fd`: the confidence_by_fd
  /// override when present, FD::confidence() otherwise.
  double ConfidenceFor(const FD& fd) const;
};

/// \brief One step down the degradation ladder.
///
/// Recorded whenever a layer sacrificed optimality or completeness to
/// stay inside the budget or a safety valve: an exact search handed a
/// component to the greedy family, a greedy run stopped early, a
/// target search returned partial assignments, or a component/stat was
/// skipped outright. Callers inspect RepairStats::degradations to see
/// exactly what was sacrificed and why.
/// \brief Stable machine-readable cause of a degradation step.
///
/// `DegradationEvent::reason` carries the raw triggering status
/// message, which embeds run-specific numbers (byte counts, elapsed
/// times) — useless as a log-dedup or alerting key. The cause code
/// names the resource that tripped, is stable across runs, and is
/// what the audit log and the `ftrepair.degradations` metric labels
/// should be grouped by.
enum class DegradationCause : uint8_t {
  kUnknown = 0,
  /// The wall-clock Budget (deadline or cancellation) ran out.
  kDeadline,
  /// Resident memory crossed the soft watermark (valves halved,
  /// exact pre-stepped to greedy).
  kMemorySoft,
  /// The hard memory limit latched; charges fail.
  kMemoryHard,
  /// A search safety valve fired (max_frontier / max_sets_per_fd /
  /// max_combinations / max_target_visits) with both budgets healthy.
  kSearchValve,
};

const char* DegradationCauseName(DegradationCause cause);

/// Classifies the cause of a just-observed exhaustion from the budget
/// states: deadline and hard-memory trips are attributed to their
/// budget, anything else (a valve, a hard cap) to kSearchValve.
DegradationCause ClassifyDegradationCause(const Budget* budget,
                                          const MemoryBudget* memory);

struct DegradationEvent {
  /// FD name (single-FD component), "+"-joined FD names (multi-FD
  /// component), or a pipeline stage like "violation-stats".
  std::string component;
  /// The rung transition, e.g. "exact->greedy", "greedy->appro",
  /// "greedy->partial", "partial-targets", "skip" (detect-only),
  /// "partial-graph".
  std::string stage;
  /// Stable cause code (see DegradationCause) — the dedup/alerting key.
  DegradationCause cause = DegradationCause::kUnknown;
  /// Human-readable cause (usually the triggering status message).
  std::string reason;
  /// Wall-clock ms since the repair call started when this was recorded.
  double elapsed_ms = 0;
};

/// \brief Wall-clock breakdown of one repair call by pipeline phase.
///
/// Populated by the Repairer facade from the same scoped spans that
/// feed the tracer (src/common/trace.h), so the numbers here and in a
/// --trace-json export agree. All values are milliseconds. `solve_ms`
/// excludes the target-assignment time nested inside the multi-FD
/// solvers — the six phases are disjoint, and total_ms additionally
/// covers the small glue between them.
struct PhaseTimings {
  /// FT-violation counting before the repair (compute_violation_stats).
  double detect_ms = 0;
  /// Violation-graph / component-context construction.
  double graph_ms = 0;
  /// Expansion/greedy/appro solving (minus nested target assignment).
  double solve_ms = 0;
  /// Target-tree build + best-target searches (AssignTargets).
  double targets_ms = 0;
  /// Writing solutions into the output table.
  double apply_ms = 0;
  /// Post-repair FT-violation recount + repair-cost computation.
  double stats_ms = 0;
  /// End-to-end wall clock of the Repair call.
  double total_ms = 0;

  void Merge(const PhaseTimings& other);
};

/// One repaired cell.
struct CellChange {
  int row = 0;
  int col = 0;
  Value old_value;
  Value new_value;
};

/// Counters reported alongside a repair.
struct RepairStats {
  uint64_t ft_violations_before = 0;
  uint64_t ft_violations_after = 0;
  /// Total repair cost, Eq. 4 (sum of normalized cell distances between
  /// the input and the repaired table, over all columns).
  double repair_cost = 0;
  int cells_changed = 0;
  int tuples_changed = 0;
  /// Exact-algorithm accounting.
  uint64_t expansion_nodes = 0;
  uint64_t expansion_pruned = 0;
  uint64_t combinations_examined = 0;
  uint64_t combinations_pruned = 0;
  /// Target search accounting.
  uint64_t target_nodes_visited = 0;
  uint64_t target_nodes_pruned = 0;
  uint64_t targets_materialized = 0;
  /// Every degradation-ladder step taken, in the order they happened.
  /// Empty iff the requested algorithm ran to completion everywhere.
  /// elapsed_ms values are all measured from the same repair-scoped
  /// clock (started at the Repair call), so they are monotonically
  /// non-decreasing in vector order.
  std::vector<DegradationEvent> degradations;
  /// Per-phase wall-clock breakdown of this repair.
  PhaseTimings phases;
  /// True when some multi-FD component produced an empty target join
  /// and its tuples were left unrepaired.
  bool join_empty = false;
  /// Pairs of trusted patterns that FT-conflict with each other (the
  /// thresholds disagree with the master data).
  uint64_t trusted_conflicts = 0;

  /// True when any degradation-ladder step was taken.
  bool degraded() const { return !degradations.empty(); }

  void Merge(const RepairStats& other);
};

/// Output of Repairer::Repair.
struct RepairResult {
  Table repaired;
  std::vector<CellChange> changes;
  RepairStats stats;
  /// Full decision lineage and cost ledger; collected only when
  /// RepairOptions::provenance is set (enabled == false otherwise).
  RepairProvenance provenance;
};

/// \brief Solution of a single-FD instance over a ViolationGraph.
///
/// `repair_target[i]` is the pattern id pattern `i` is modified to, or
/// -1 when pattern `i` keeps its values (member of the chosen set or
/// isolated). `cost` is the grouped repair cost over the FD's
/// attributes (sum over repaired patterns of count * unit_cost).
struct SingleFDSolution {
  std::vector<int> chosen_set;
  std::vector<int> repair_target;
  double cost = 0;
  uint64_t nodes_expanded = 0;
  uint64_t nodes_pruned = 0;
  /// The solver that produced this solution (stamped by the solver
  /// itself, so post-degradation solutions carry the rung that
  /// actually ran, not the one requested).
  SolverRung rung = SolverRung::kNone;
  /// True when the budget ran out mid-solve: patterns with
  /// repair_target -1 outside the chosen set are left unrepaired
  /// (detect-only remainder) and excluded from `cost`.
  bool truncated = false;
};

/// Writes `solution` into `table`: every row of a repaired pattern gets
/// the target pattern's values on `fd.attrs()`. Appends the individual
/// cell changes to `changes` when non-null. Rows in `trusted` (may be
/// null) are never written. When `scope.prov` is non-null, records one
/// RepairDecision per repaired pattern (with its implicating edge set
/// from `graph`) and annotates every appended change with its decision
/// index — recording never alters the writes themselves.
void ApplySingleFDSolution(const ViolationGraph& graph, const FD& fd,
                           const SingleFDSolution& solution, Table* table,
                           std::vector<CellChange>* changes,
                           const std::unordered_set<int>* trusted = nullptr,
                           const ProvenanceScope& scope = {});

/// Marks the patterns that carry at least one row from `trusted_rows`.
std::vector<bool> TrustedPatternMask(
    const std::vector<Pattern>& patterns,
    const std::unordered_set<int>& trusted_rows);

/// \brief Solution of a multi-FD component over Sigma-patterns.
///
/// `targets[i]` is empty when Sigma-pattern `i` keeps its values,
/// otherwise it holds the assignment over `component_cols`.
struct MultiFDSolution {
  std::vector<int> component_cols;
  std::vector<Pattern> sigma_patterns;
  std::vector<std::vector<Value>> targets;
  /// The independent set realized per FD (phi-pattern ids of the
  /// component context's graphs), for inspection and tests.
  std::vector<std::vector<int>> chosen;
  double cost = 0;
  /// Per-Sigma-pattern unit cost of the assigned target (0 for
  /// patterns that keep their values): targets[i] costs
  /// sigma_patterns[i].count() * target_costs[i], and `cost` is their
  /// sum. Always filled by AssignTargets.
  std::vector<double> target_costs;
  /// The solver that produced this solution (see SingleFDSolution).
  SolverRung rung = SolverRung::kNone;
  /// Per-Sigma-pattern implicating violation edges (edge.fd is the
  /// component-local FD index). Filled by AssignTargets only under
  /// RepairOptions::provenance — the component context's graphs are
  /// gone by apply time, so the lineage must ride the solution.
  std::vector<std::vector<ProvenanceEdge>> prov_edges;
  /// True when the budget ran out while assigning targets: Sigma-
  /// patterns with an empty target that are not fully chosen were left
  /// unrepaired (detect-only remainder).
  bool truncated = false;
};

/// Writes `solution` into `table`, appending cell changes. Rows in
/// `trusted` (may be null) are never written. `scope` as in
/// ApplySingleFDSolution; multi-FD decisions take their edge lineage
/// from MultiFDSolution::prov_edges.
void ApplyMultiFDSolution(const MultiFDSolution& solution, Table* table,
                          std::vector<CellChange>* changes,
                          const std::unordered_set<int>* trusted = nullptr,
                          const ProvenanceScope& scope = {});

/// Sorted union of the attrs() of the given FDs.
std::vector<int> ComponentColumns(const std::vector<const FD*>& fds);

/// Eq. 4: total repair cost between two same-schema tables.
double TableRepairCost(const Table& original, const Table& repaired,
                       const DistanceModel& model);

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_REPAIR_TYPES_H_
