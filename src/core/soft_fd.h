#ifndef FTREPAIR_CORE_SOFT_FD_H_
#define FTREPAIR_CORE_SOFT_FD_H_

#include <vector>

#include "core/multi_common.h"
#include "core/repair_types.h"
#include "detect/violation_graph.h"

namespace ftrepair {

/// Penalty rate of a soft FD with confidence `c`: lambda = c / (1 - c),
/// the price (in Eq. 4 cost units) of leaving one violating pair
/// unrepaired. Monotone in c; infinite at c = 1, where every repair is
/// worth keeping and soft-fd is decision-identical to ft-cost.
double SoftFdPenaltyRate(double confidence);

/// \brief Soft-fd revert filter for a single-FD solution: drops every
/// repair whose cost exceeds the violation penalty it discharges.
///
/// For each repaired pattern i, the discharged penalty is priced
/// statically against the input violation graph — `rate * count(i) *
/// sum of count(peer)` over i's violation edges (every pair i
/// participates in) — and the repair's cost is `count(i) * unit_cost`
/// of the edge to its target. Reverted patterns rejoin the chosen set
/// and their cost leaves `solution->cost`. Patterns are visited in
/// ascending id, and the static pricing makes the filter independent of
/// visit order — the result is deterministic at any thread count.
///
/// Only call for FDs with confidence < 1 (the pipeline's gate): a hard
/// FD must keep every repair or lose its consistency guarantee.
void FilterSingleFDSolutionSoft(const ViolationGraph& graph, double rate,
                                SingleFDSolution* solution);

/// \brief Multi-FD counterpart: `rates[k]` is the penalty rate of
/// `context.fds[k]`. A Sigma-pattern's discharged penalty sums, per FD,
/// the rate-weighted violating pairs of its phi-projection; its cost is
/// `count(i) * target_costs[i]`. Reverting clears the target (the
/// pattern keeps its values), its target cost, and its provenance
/// edges.
///
/// Only call when EVERY FD of the component is soft (confidence < 1) —
/// a mixed component's reverts could strand hard-FD violations.
void FilterMultiFDSolutionSoft(const ComponentContext& context,
                               const std::vector<double>& rates,
                               MultiFDSolution* solution);

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_SOFT_FD_H_
