#ifndef FTREPAIR_CORE_PIPELINE_H_
#define FTREPAIR_CORE_PIPELINE_H_

#include <vector>

#include "common/status.h"
#include "constraint/fd.h"
#include "core/repair_types.h"
#include "core/semantics.h"
#include "data/table.h"

namespace ftrepair {
namespace internal {

/// The shared FD-repair pipeline behind every RepairSemantics: detect,
/// decompose into FD-graph components, solve concurrently, replay-merge
/// in component order. `semantics` selects the strategy hooks — the
/// cardinality overrides (classical detection, indicator metric, the
/// majority solver on tractable components) and the soft-fd revert
/// filter; SemanticsId::kFtCost runs the paper's pipeline unchanged.
///
/// Implemented in core/repairer.cc; called by the built-in semantics in
/// core/semantics.cc. Not part of the public API surface — embedders go
/// through Repairer, which dispatches via the registry.
Result<RepairResult> RunRepairPipeline(const Table& table,
                                       const std::vector<FD>& fds,
                                       const RepairOptions& options,
                                       SemanticsId semantics);

}  // namespace internal
}  // namespace ftrepair

#endif  // FTREPAIR_CORE_PIPELINE_H_
