#ifndef FTREPAIR_CORE_REPAIRER_H_
#define FTREPAIR_CORE_REPAIRER_H_

#include <vector>

#include "common/status.h"
#include "constraint/cfd.h"
#include "constraint/fd.h"
#include "core/repair_types.h"
#include "data/table.h"

namespace ftrepair {

/// \brief The library facade: cost-based fault-tolerant data repairing.
///
/// Decomposes the FD set into connected components of the FD graph
/// (repaired independently and w.l.o.g. optimally per Theorem 5) and
/// dispatches each component to the configured algorithm family:
///
///   component size 1:  Expansion-S (kExact) or Greedy-S
///   component size >1: Expansion-M (kExact), Greedy-M (kGreedy) or
///                      Appro-M (kApproJoin)
///
/// All repairs are close-world valid: every repaired projection already
/// occurs in the input table. The output is FT-consistent w.r.t. the
/// given FDs except when a multi-FD target join is empty (flagged in
/// RepairStats::join_empty).
///
/// Example:
/// \code
///   RepairOptions options;
///   options.algorithm = RepairAlgorithm::kGreedy;
///   options.default_tau = 0.3;
///   Repairer repairer(options);
///   FTR_ASSIGN_OR_RETURN(RepairResult result, repairer.Repair(table, fds));
/// \endcode
class Repairer {
 public:
  explicit Repairer(RepairOptions options = {}) : options_(options) {}

  const RepairOptions& options() const { return options_; }

  /// Repairs `table` to FT-consistency w.r.t. `fds`.
  Result<RepairResult> Repair(const Table& table,
                              const std::vector<FD>& fds) const;

  /// Incremental repair: rows [0, first_new_row) are an already-clean
  /// (previously repaired) prefix and are never modified; appended rows
  /// [first_new_row, num_rows) are repaired *toward* the prefix's
  /// patterns. Equivalent to Repair() with the prefix as trusted rows.
  Result<RepairResult> RepairAppended(const Table& table, int first_new_row,
                                      const std::vector<FD>& fds) const;

  /// CFD extension: constant tableau violations are fixed directly;
  /// the variable part of each tableau row is repaired with the
  /// single-FD algorithms restricted to the matching tuples.
  Result<RepairResult> RepairCFDs(const Table& table,
                                  const std::vector<CFD>& cfds) const;

 private:
  RepairOptions options_;
};

/// Validates that every FD references only columns of `schema`.
Status ValidateFDs(const Schema& schema, const std::vector<FD>& fds);

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_REPAIRER_H_
