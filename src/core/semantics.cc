#include "core/semantics.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "core/pipeline.h"
#include "detect/detector.h"
#include "metric/projection.h"

namespace ftrepair {

const char* SemanticsName(SemanticsId id) {
  switch (id) {
    case SemanticsId::kFtCost:
      return "ft-cost";
    case SemanticsId::kSoftFd:
      return "soft-fd";
    case SemanticsId::kCardinality:
      return "cardinality";
    case SemanticsId::kCustom:
      return "custom";
  }
  return "?";
}

namespace {

// Range + reference checks for confidence overrides, shared by soft-fd
// Validate and the parser-independent API path.
Status ValidateConfidences(const RepairOptions& options,
                           const std::vector<FD>& fds) {
  for (const auto& entry : options.confidence_by_fd) {
    if (!(entry.second > 0.0 && entry.second <= 1.0)) {
      return Status::InvalidArgument(
          "confidence for FD '" + entry.first + "' is " +
          FormatDouble(entry.second) + ", want a value in (0, 1]");
    }
    bool known = false;
    for (const FD& fd : fds) {
      known = known || (!fd.name().empty() && fd.name() == entry.first);
    }
    if (!known) {
      return Status::InvalidArgument("confidence references unknown FD '" +
                                     entry.first +
                                     "' (no FD with that name)");
    }
  }
  return Status::OK();
}

class FtCostSemantics : public RepairSemantics {
 public:
  const char* name() const override { return "ft-cost"; }
  SemanticsId id() const override { return SemanticsId::kFtCost; }
  bool supports_cfds() const override { return true; }

  Status Validate(const RepairOptions& options,
                  const std::vector<FD>& fds) const override {
    (void)options;
    (void)fds;
    return Status::OK();
  }

  Result<RepairResult> Repair(const Table& table, const std::vector<FD>& fds,
                              const RepairOptions& options) const override {
    return internal::RunRepairPipeline(table, fds, options,
                                       SemanticsId::kFtCost);
  }

  uint64_t CountResidualViolations(
      const Table& table, const std::vector<FD>& fds,
      const RepairOptions& options) const override {
    DistanceModel model(table);
    uint64_t count = 0;
    for (const FD& fd : fds) {
      count += CountFTViolations(table, fd, model, options.FTFor(fd));
    }
    return count;
  }
};

class SoftFdSemantics : public RepairSemantics {
 public:
  const char* name() const override { return "soft-fd"; }
  SemanticsId id() const override { return SemanticsId::kSoftFd; }
  bool supports_cfds() const override { return false; }

  Status Validate(const RepairOptions& options,
                  const std::vector<FD>& fds) const override {
    return ValidateConfidences(options, fds);
  }

  Result<RepairResult> Repair(const Table& table, const std::vector<FD>& fds,
                              const RepairOptions& options) const override {
    return internal::RunRepairPipeline(table, fds, options,
                                       SemanticsId::kSoftFd);
  }

  // Soft-fd consistency: the *hard* FDs (confidence 1) must hold; soft
  // FDs are allowed to keep violations the penalty rate did not justify
  // repairing.
  uint64_t CountResidualViolations(
      const Table& table, const std::vector<FD>& fds,
      const RepairOptions& options) const override {
    DistanceModel model(table);
    uint64_t count = 0;
    for (const FD& fd : fds) {
      if (options.ConfidenceFor(fd) < 1.0) continue;
      count += CountFTViolations(table, fd, model, options.FTFor(fd));
    }
    return count;
  }
};

class CardinalitySemantics : public RepairSemantics {
 public:
  const char* name() const override { return "cardinality"; }
  SemanticsId id() const override { return SemanticsId::kCardinality; }
  bool supports_cfds() const override { return false; }

  Status Validate(const RepairOptions& options,
                  const std::vector<FD>& fds) const override {
    (void)options;
    (void)fds;
    return Status::OK();
  }

  Result<RepairResult> Repair(const Table& table, const std::vector<FD>& fds,
                              const RepairOptions& options) const override {
    return internal::RunRepairPipeline(table, fds, options,
                                       SemanticsId::kCardinality);
  }

  // Cardinality consistency is classical FD consistency: exact
  // equality violations, no fault tolerance.
  uint64_t CountResidualViolations(
      const Table& table, const std::vector<FD>& fds,
      const RepairOptions& options) const override {
    (void)options;
    uint64_t count = 0;
    for (const FD& fd : fds) {
      count += CountExactViolations(table, fd);
    }
    return count;
  }
};

}  // namespace

SemanticsRegistry& SemanticsRegistry::Instance() {
  static SemanticsRegistry* registry = new SemanticsRegistry();
  return *registry;
}

SemanticsRegistry::SemanticsRegistry() {
  semantics_.push_back(std::make_unique<FtCostSemantics>());
  semantics_.push_back(std::make_unique<SoftFdSemantics>());
  semantics_.push_back(std::make_unique<CardinalitySemantics>());
}

Status SemanticsRegistry::Register(
    std::unique_ptr<RepairSemantics> semantics) {
  if (semantics == nullptr) {
    return Status::InvalidArgument("cannot register a null semantics");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& existing : semantics_) {
    if (std::string_view(existing->name()) == semantics->name()) {
      return Status::InvalidArgument("semantics '" +
                                     std::string(semantics->name()) +
                                     "' is already registered");
    }
  }
  semantics_.push_back(std::move(semantics));
  return Status::OK();
}

const RepairSemantics* SemanticsRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& semantics : semantics_) {
    if (std::string_view(semantics->name()) == name) return semantics.get();
  }
  return nullptr;
}

Result<const RepairSemantics*> SemanticsRegistry::Resolve(
    std::string_view name) const {
  const RepairSemantics* semantics = Find(name);
  if (semantics != nullptr) return semantics;
  std::vector<std::string> names = Names();
  std::string known;
  for (const std::string& n : names) {
    if (!known.empty()) known += " | ";
    known += n;
  }
  return Status::InvalidArgument("unknown semantics '" + std::string(name) +
                                 "' (" + known + ")");
}

std::vector<std::string> SemanticsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(semantics_.size());
  for (const auto& semantics : semantics_) {
    names.push_back(semantics->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace ftrepair
