#include "core/repairer.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "common/trace.h"
#include "constraint/fd_graph.h"
#include "core/appro_multi.h"
#include "core/cardinality.h"
#include "core/expansion_multi.h"
#include "core/expansion_single.h"
#include "core/greedy_multi.h"
#include "core/greedy_single.h"
#include "core/multi_common.h"
#include "core/pipeline.h"
#include "core/semantics.h"
#include "core/soft_fd.h"
#include "detect/detector.h"
#include "detect/threshold.h"

namespace ftrepair {

namespace {

// Appends one degradation-ladder event to `stats` WITHOUT the global
// log/metrics/trace side effects. Component solves run concurrently on
// pool threads and write into per-component scratch stats; the global
// emission is deferred to EmitDegradation at merge time so it happens
// in deterministic component order, not scheduling order. elapsed_ms is
// stamped from the shared repair-scoped clock (a plain steady_clock
// read, safe from any thread).
void StageDegradation(RepairStats* stats, const Timer& clock,
                      std::string component, std::string stage,
                      DegradationCause cause, std::string reason) {
  DegradationEvent event;
  event.component = std::move(component);
  event.stage = std::move(stage);
  event.cause = cause;
  event.reason = std::move(reason);
  event.elapsed_ms = clock.Millis();
  stats->degradations.push_back(std::move(event));
}

// The global half of RecordDegradation: one log line, one labeled
// counter bump, one trace instant. Call on the coordinating thread.
void EmitDegradation(const DegradationEvent& event) {
  FTR_LOG(kInfo) << "degradation [" << event.component << "] "
                 << event.stage << " (" << DegradationCauseName(event.cause)
                 << "): " << event.reason;
  Metrics().GetCounter("ftrepair.degradations", "stage", event.stage)
      ->Increment();
  Metrics()
      .GetCounter("ftrepair.degradations_by_cause", "cause",
                  DegradationCauseName(event.cause))
      ->Increment();
  Tracer::Instance().RecordInstant("repair.degradation",
                                   {{"component", event.component},
                                    {"stage", event.stage},
                                    {"reason", event.reason}});
}

// Stage + emit in one step — for events recorded on the coordinating
// thread outside the parallel solve phase (violation-stats counting).
// Every event of a run shares `clock`, so elapsed_ms is monotonically
// non-decreasing in record order.
void RecordDegradation(RepairStats* stats, const Timer& clock,
                       std::string component, std::string stage,
                       DegradationCause cause, std::string reason) {
  StageDegradation(stats, clock, std::move(component), std::move(stage),
                   cause, std::move(reason));
  EmitDegradation(stats->degradations.back());
}

// Overload response at the soft memory watermark: the component (or
// CFD tableau unit) named `component` runs with halved search/state
// valves, and an exact solve pre-steps to greedy — trading result
// quality for allocation headroom before the hard limit latches. Each
// measure is staged as a DegradationEvent and emitted at merge time
// like every other ladder step. Callers gate on fall_back_to_greedy:
// with the valve closed the caller asked for exact-or-nothing, and the
// hard watermark is the only memory response.
RepairOptions SoftDegradedOptions(const RepairOptions& opts,
                                  const Timer& repair_clock,
                                  const std::string& component,
                                  RepairStats* stats) {
  RepairOptions tightened = opts;
  tightened.max_frontier = std::max<size_t>(1, opts.max_frontier / 2);
  tightened.max_sets_per_fd = std::max<size_t>(1, opts.max_sets_per_fd / 2);
  tightened.max_combinations =
      std::max<size_t>(1, opts.max_combinations / 2);
  tightened.max_tree_nodes = std::max<size_t>(1, opts.max_tree_nodes / 2);
  tightened.max_target_visits =
      std::max<uint64_t>(1, opts.max_target_visits / 2);
  StageDegradation(stats, repair_clock, component, "soft-valves",
                   DegradationCause::kMemorySoft,
                   "resident memory crossed the soft watermark; search "
                   "and state caps halved");
  if (opts.algorithm == RepairAlgorithm::kExact) {
    tightened.algorithm = RepairAlgorithm::kGreedy;
    StageDegradation(stats, repair_clock, component, "exact->greedy",
                     DegradationCause::kMemorySoft,
                     "resident memory crossed the soft watermark; "
                     "skipping the exact solve");
  }
  return tightened;
}

// Scope guard accumulating its lifetime into one PhaseTimings field.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* acc) : acc_(acc) {}
  ~PhaseTimer() { *acc_ += timer_.Millis(); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* acc_;
  Timer timer_;
};

// Publishes one finished repair's phase breakdown to the process-wide
// metrics registry: a per-phase elapsed-time counter family (in
// microseconds, so the counters stay integral) plus end-state counters
// and the end-to-end latency histogram.
void ExportRepairMetrics(const RepairStats& stats) {
  static Counter* detect_us = Metrics().GetCounter("ftrepair.phase.detect_us");
  static Counter* graph_us = Metrics().GetCounter("ftrepair.phase.graph_us");
  static Counter* solve_us = Metrics().GetCounter("ftrepair.phase.solve_us");
  static Counter* targets_us =
      Metrics().GetCounter("ftrepair.phase.targets_us");
  static Counter* apply_us = Metrics().GetCounter("ftrepair.phase.apply_us");
  static Counter* stats_us = Metrics().GetCounter("ftrepair.phase.stats_us");
  static Counter* runs = Metrics().GetCounter("ftrepair.repair.runs");
  static Counter* degraded_runs =
      Metrics().GetCounter("ftrepair.repair.degraded_runs");
  static Counter* cells = Metrics().GetCounter("ftrepair.repair.cells_changed");
  static Histogram* total_ms =
      Metrics().GetHistogram("ftrepair.repair.total_ms");
  auto us = [](double ms) {
    return static_cast<uint64_t>(ms > 0 ? ms * 1000.0 : 0);
  };
  detect_us->Increment(us(stats.phases.detect_ms));
  graph_us->Increment(us(stats.phases.graph_ms));
  solve_us->Increment(us(stats.phases.solve_ms));
  targets_us->Increment(us(stats.phases.targets_ms));
  apply_us->Increment(us(stats.phases.apply_ms));
  stats_us->Increment(us(stats.phases.stats_ms));
  runs->Increment();
  if (stats.degraded()) degraded_runs->Increment();
  cells->Increment(static_cast<uint64_t>(stats.cells_changed));
  total_ms->Observe(stats.phases.total_ms);
}

// Publishes one finished repair's memory-charge breakdown when a
// MemoryBudget was installed: a per-phase charged-MB histogram family
// (one series per MemPhase label). The resident/peak gauges stay
// current from inside TryCharge, so only the distributions are
// observed here.
void ExportMemoryMetrics(const MemoryBudget& memory) {
  for (size_t p = 0; p < kNumMemPhases; ++p) {
    MemPhase phase = static_cast<MemPhase>(p);
    Metrics()
        .GetHistogram(std::string("ftrepair.memory.phase_charge_mb{phase=") +
                      MemPhaseName(phase) + "}")
        ->Observe(static_cast<double>(memory.charged_bytes(phase)) /
                  (1024.0 * 1024.0));
  }
}

// "+"-joined FD names of a multi-FD component.
std::string ComponentName(const std::vector<const FD*>& fds) {
  std::string name;
  for (const FD* fd : fds) {
    if (!name.empty()) name += "+";
    name += fd->name();
  }
  return name;
}

std::vector<Pattern> PatternsFor(const Table& table, const FD& fd,
                                 bool group_tuples, bool columnar) {
  if (group_tuples) return BuildPatterns(table, fd.attrs(), columnar);
  std::vector<Pattern> out;
  out.reserve(static_cast<size_t>(table.num_rows()));
  for (int r = 0; r < table.num_rows(); ++r) {
    Pattern p;
    p.values.reserve(fd.attrs().size());
    for (int c : fd.attrs()) p.values.push_back(table.cell(r, c));
    if (columnar) {
      p.codes.reserve(fd.attrs().size());
      for (int c : fd.attrs()) p.codes.push_back(table.code(r, c));
    }
    p.rows.push_back(r);
    out.push_back(std::move(p));
  }
  return out;
}

// When `opts->auto_threshold` is set, resolves a tau per FD with the
// §2.1 distance-gap heuristic into opts->tau_by_fd (keyed by the
// guaranteed-unique names of `named`). Shared by Repair and RepairCFDs
// so both entry points honor auto-thresholding identically.
void ResolveAutoThresholds(const Table& table, const std::vector<FD>& named,
                           const DistanceModel& model, RepairOptions* opts) {
  if (!opts->auto_threshold) return;
  ThresholdOptions topt;
  topt.w_l = opts->w_l;
  topt.w_r = opts->w_r;
  topt.fallback = opts->default_tau;
  for (const FD& fd : named) {
    opts->tau_by_fd[fd.name()] = SuggestThreshold(table, fd, model, topt);
  }
}

// Per-run latency of one component's (or one CFD tableau unit's) solve,
// including its graph build. Fed from whichever thread ran it; the
// histogram is atomic.
Histogram* ComponentMsHistogram() {
  static Histogram* component_ms =
      Metrics().GetHistogram("ftrepair.solve.component_ms");
  return component_ms;
}

Gauge* SolveThreadsGauge() {
  static Gauge* solve_threads = Metrics().GetGauge("ftrepair.solve.threads");
  return solve_threads;
}

/// \brief Scratch result of one FD component's solve.
///
/// SolveComponent fills one of these on whatever pool thread claimed
/// the component; nothing in here touches shared repair state, so the
/// coordinating thread can replay-merge outcomes in component order and
/// reproduce the serial RepairResult bit for bit at any thread count.
struct ComponentOutcome {
  /// Hard failure (budget exhausted with the degradation valve closed,
  /// or a non-recoverable solver error): aborts the whole repair.
  Status status = Status::OK();
  /// Which solution below is valid. Both false = component left
  /// unrepaired (skipped or degraded to detect-only).
  bool apply_single = false;
  bool apply_multi = false;
  /// Single-FD component: the graph the solution indexes into and the
  /// FD repaired (points into the caller's `named` vector).
  const FD* fd = nullptr;
  ViolationGraph graph;
  SingleFDSolution single;
  /// Multi-FD component.
  MultiFDSolution multi;
  /// Component-local deltas: graph/solve/targets timings, solver
  /// counters, staged (not yet emitted) degradations, trusted
  /// conflicts. Merged into RepairStats in component order.
  RepairStats stats;
};

// Solves one connected FD component (the body of the old serial
// component loop, minus the apply step). Runs concurrently with other
// components: everything it writes lands in `out`, and the shared
// inputs (`table`, `named`, `model`, `opts`, the budget behind
// opts.budget) are either immutable for the duration of the solve
// phase or internally synchronized.
void SolveComponent(const Table& table, const std::vector<FD>& named,
                    const std::vector<int>& component,
                    const DistanceModel& model, const RepairOptions& opts_in,
                    SemanticsId semantics, const Timer& repair_clock,
                    ComponentOutcome* out) {
  Timer component_timer;
  if (component.size() == 1) {
    const FD& fd = named[static_cast<size_t>(component[0])];
    out->fd = &fd;
    FTR_TRACE_SPAN("repair.solve_component", {{"component", fd.name()}});
    if (BudgetExhausted(opts_in.budget) || MemExhausted(opts_in.memory)) {
      if (!opts_in.fall_back_to_greedy) {
        out->status = ResourceCheck(opts_in.budget, opts_in.memory,
                                    "repair pipeline");
        return;
      }
      // Detect-only: the component's tuples keep their values.
      StageDegradation(&out->stats, repair_clock, fd.name(), "skip",
                       ClassifyDegradationCause(opts_in.budget,
                                                opts_in.memory),
                       ResourceCheck(opts_in.budget, opts_in.memory,
                                     "repair pipeline")
                           .message());
      return;
    }
    RepairOptions degraded;
    const bool soften =
        opts_in.fall_back_to_greedy && MemSoftExceeded(opts_in.memory);
    if (soften) {
      degraded =
          SoftDegradedOptions(opts_in, repair_clock, fd.name(), &out->stats);
    }
    const RepairOptions& opts = soften ? degraded : opts_in;
    Timer graph_timer;
    out->graph = ViolationGraph::Build(
        PatternsFor(table, fd, opts.group_tuples, opts.columnar), fd, model,
        opts.FTFor(fd), opts.budget);
    out->stats.phases.graph_ms += graph_timer.Millis();
    if (out->graph.truncated()) {
      if (!opts.fall_back_to_greedy) {
        out->status = ResourceCheck(opts.budget, opts.memory,
                                    "violation graph construction");
        return;
      }
      StageDegradation(&out->stats, repair_clock, fd.name(),
                       "partial-graph",
                       ClassifyDegradationCause(opts.budget, opts.memory),
                       "resources exhausted while building the violation "
                       "graph; undetected violations stay unrepaired");
    }
    std::vector<bool> forced_storage;
    const std::vector<bool>* forced = nullptr;
    if (!opts.trusted_rows.empty()) {
      forced_storage =
          TrustedPatternMask(out->graph.patterns(), opts.trusted_rows);
      forced = &forced_storage;
    }
    // Single-FD ladder: exact -> greedy -> partial greedy. The greedy
    // rung never fails outright; the budget truncates it instead.
    // kGreedy and kApproJoin both land on the greedy rung — for a
    // single FD there is nothing to join, so Appro-M's per-FD phase
    // *is* Greedy-S (a contractual aliasing, see DESIGN.md §4).
    bool have_solution = false;
    Timer solve_timer;
    if (semantics == SemanticsId::kCardinality && fd.rhs_size() == 1) {
      // Tractable cardinality component: one LHS block per clique, one
      // cell per repaired row — per-block majority is exactly
      // cell-minimal, no search needed. Wider RHS vectors fall through
      // to the regular ladder (majority is not optimal there: moving a
      // row's LHS can beat rewriting its RHS vector).
      out->single = SolveCardinalityMajority(out->graph, forced,
                                             &out->stats.trusted_conflicts);
      have_solution = true;
    }
    if (!have_solution && opts.algorithm == RepairAlgorithm::kExact) {
      ExpansionConfig config;
      config.max_frontier = opts.max_frontier;
      config.forced = forced;
      config.budget = opts.budget;
      config.memory = opts.memory;
      auto exact = SolveExpansionSingle(out->graph, config);
      if (exact.ok()) {
        out->single = std::move(exact).value();
        have_solution = true;
        out->stats.expansion_nodes += out->single.nodes_expanded;
        out->stats.expansion_pruned += out->single.nodes_pruned;
      } else if (exact.status().IsResourceExhausted() &&
                 opts.fall_back_to_greedy) {
        StageDegradation(&out->stats, repair_clock, fd.name(),
                         "exact->greedy",
                         ClassifyDegradationCause(opts.budget, opts.memory),
                         exact.status().message());
      } else {
        out->status = exact.status();
        return;
      }
    }
    if (!have_solution) {
      out->single = SolveGreedySingle(out->graph, forced,
                                      &out->stats.trusted_conflicts,
                                      opts.budget, opts.memory);
      if (out->single.truncated) {
        if (!opts.fall_back_to_greedy) {
          out->status =
              ResourceCheck(opts.budget, opts.memory, "greedy cover");
          return;
        }
        StageDegradation(
            &out->stats, repair_clock, fd.name(), "greedy->partial",
            ClassifyDegradationCause(opts.budget, opts.memory),
            "resources exhausted while growing the greedy set; uncovered "
            "patterns stay unrepaired");
      }
    }
    if (semantics == SemanticsId::kSoftFd) {
      const double confidence = opts.ConfidenceFor(fd);
      if (confidence < 1.0) {
        FilterSingleFDSolutionSoft(out->graph, SoftFdPenaltyRate(confidence),
                                   &out->single);
      }
    }
    out->stats.phases.solve_ms += solve_timer.Millis();
    out->apply_single = true;
  } else {
    std::vector<const FD*> component_fds;
    component_fds.reserve(component.size());
    for (int idx : component) {
      component_fds.push_back(&named[static_cast<size_t>(idx)]);
    }
    std::string name = ComponentName(component_fds);
    FTR_TRACE_SPAN("repair.solve_component", {{"component", name}});
    if (BudgetExhausted(opts_in.budget) || MemExhausted(opts_in.memory)) {
      if (!opts_in.fall_back_to_greedy) {
        out->status = ResourceCheck(opts_in.budget, opts_in.memory,
                                    "repair pipeline");
        return;
      }
      StageDegradation(&out->stats, repair_clock, name, "skip",
                       ClassifyDegradationCause(opts_in.budget,
                                                opts_in.memory),
                       ResourceCheck(opts_in.budget, opts_in.memory,
                                     "repair pipeline")
                           .message());
      return;
    }
    RepairOptions degraded;
    const bool soften =
        opts_in.fall_back_to_greedy && MemSoftExceeded(opts_in.memory);
    if (soften) {
      degraded = SoftDegradedOptions(opts_in, repair_clock, name,
                                     &out->stats);
    }
    const RepairOptions& opts = soften ? degraded : opts_in;
    Timer graph_timer;
    ComponentContext context =
        BuildComponentContext(table, component_fds, model, opts);
    out->stats.phases.graph_ms += graph_timer.Millis();
    bool graphs_truncated = false;
    for (const ViolationGraph& graph : context.graphs) {
      graphs_truncated = graphs_truncated || graph.truncated();
    }
    if (graphs_truncated) {
      if (!opts.fall_back_to_greedy) {
        out->status = ResourceCheck(opts.budget, opts.memory,
                                    "violation graph construction");
        return;
      }
      StageDegradation(&out->stats, repair_clock, name, "partial-graph",
                       ClassifyDegradationCause(opts.budget, opts.memory),
                       "resources exhausted while building the violation "
                       "graphs; undetected violations stay unrepaired");
    }
    // Multi-FD ladder: exact -> greedy -> per-FD appro -> detect-only.
    // Each rung hands ResourceExhausted down one step (when the
    // fall_back_to_greedy valve is open); the bottom rung degrades to
    // leaving the component unrepaired.
    static constexpr const char* kRungs[] = {"exact", "greedy", "appro"};
    int rung = 0;
    switch (opts.algorithm) {
      case RepairAlgorithm::kExact:
        rung = 0;
        break;
      case RepairAlgorithm::kGreedy:
        rung = 1;
        break;
      case RepairAlgorithm::kApproJoin:
        rung = 2;
        break;
    }
    Result<MultiFDSolution> solved = Status::Internal("unreachable");
    bool solved_ok = false;
    // Target assignment runs nested inside the multi-FD solvers and
    // accumulates into phases.targets_ms on its own; subtract its
    // delta so solve/targets stay disjoint phases.
    double targets_before = out->stats.phases.targets_ms;
    Timer solve_timer;
    while (rung <= 2) {
      switch (rung) {
        case 0:
          solved = SolveExpansionMulti(context, model, opts, &out->stats);
          break;
        case 1:
          solved = SolveGreedyMulti(context, model, opts, &out->stats);
          break;
        case 2:
          solved = SolveApproMulti(context, model, opts, &out->stats);
          break;
      }
      if (solved.ok()) {
        solved_ok = true;
        break;
      }
      if (!solved.status().IsResourceExhausted() ||
          !opts.fall_back_to_greedy) {
        out->status = solved.status();
        return;
      }
      if (rung < 2) {
        StageDegradation(&out->stats, repair_clock, name,
                         std::string(kRungs[rung]) + "->" + kRungs[rung + 1],
                         ClassifyDegradationCause(opts.budget, opts.memory),
                         solved.status().message());
      } else {
        // Bottom of the ladder: detect-only for this component.
        StageDegradation(&out->stats, repair_clock, name, "skip",
                         ClassifyDegradationCause(opts.budget, opts.memory),
                         solved.status().message());
      }
      ++rung;
    }
    out->stats.phases.solve_ms +=
        solve_timer.Millis() -
        (out->stats.phases.targets_ms - targets_before);
    if (!solved_ok) return;  // component left unrepaired
    if (solved.value().truncated) {
      if (!opts.fall_back_to_greedy) {
        out->status =
            ResourceCheck(opts.budget, opts.memory, "target assignment");
        return;
      }
      StageDegradation(&out->stats, repair_clock, name, "partial-targets",
                       ClassifyDegradationCause(opts.budget, opts.memory),
                       "resources exhausted while assigning targets; "
                       "remaining patterns stay unrepaired");
    }
    out->multi = std::move(solved).value();
    if (semantics == SemanticsId::kSoftFd) {
      // The revert filter only runs on all-soft components: reverting
      // inside a mixed component could strand a hard FD's violations.
      bool all_soft = true;
      std::vector<double> rates;
      rates.reserve(component_fds.size());
      for (const FD* component_fd : component_fds) {
        const double confidence = opts.ConfidenceFor(*component_fd);
        all_soft = all_soft && confidence < 1.0;
        rates.push_back(SoftFdPenaltyRate(confidence));
      }
      if (all_soft) {
        FilterMultiFDSolutionSoft(context, rates, &out->multi);
      }
    }
    out->apply_multi = true;
  }
  ComponentMsHistogram()->Observe(component_timer.Millis());
}

}  // namespace

Status ValidateFDs(const Schema& schema, const std::vector<FD>& fds) {
  for (const FD& fd : fds) {
    for (int c : fd.attrs()) {
      if (c < 0 || c >= schema.num_columns()) {
        return Status::InvalidArgument(
            "FD references column " + std::to_string(c) +
            " outside the schema (" + std::to_string(schema.num_columns()) +
            " columns)");
      }
    }
  }
  return Status::OK();
}

namespace internal {

Result<RepairResult> RunRepairPipeline(const Table& table,
                                       const std::vector<FD>& fds,
                                       const RepairOptions& options,
                                       SemanticsId semantics) {
  FTR_RETURN_NOT_OK(ValidateFDs(table.schema(), fds));
  // One clock for the whole call: every DegradationEvent::elapsed_ms
  // and PhaseTimings::total_ms read it, so they are mutually
  // comparable and monotone.
  Timer repair_clock;
  FTR_TRACE_SPAN("repair.total",
                 {{"rows", std::to_string(table.num_rows())},
                  {"fds", std::to_string(fds.size())},
                  {"semantics", SemanticsName(semantics)},
                  {"algorithm", RepairAlgorithmName(options.algorithm)}});

  // Internal FD copies with guaranteed-unique names so per-FD taus can
  // be resolved by name (confidence rides along for soft-fd).
  std::vector<FD> named;
  named.reserve(fds.size());
  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].name().empty()) {
      FTR_ASSIGN_OR_RETURN(
          FD fd, FD::Make(fds[i].lhs(), fds[i].rhs(),
                          "__fd" + std::to_string(i), fds[i].confidence()));
      named.push_back(std::move(fd));
    } else {
      named.push_back(fds[i]);
    }
  }

  RepairOptions opts = options;
  if (semantics == SemanticsId::kCardinality) {
    // Cardinality overrides: classical FD detection (a violation is an
    // exact LHS match with any RHS disagreement) and indicator pricing,
    // so repair cost == cells changed. Grouping is forced on — the
    // majority solver reasons over pattern multiplicities.
    opts.w_l = 1.0;
    opts.w_r = 0.0;
    opts.default_tau = 0.0;
    opts.tau_by_fd.clear();
    opts.auto_threshold = false;
    opts.group_tuples = true;
  }
  DistanceModel model(table);
  if (semantics == SemanticsId::kCardinality) {
    for (int c = 0; c < table.num_columns(); ++c) {
      model.SetColumnMetric(c, ColumnMetric::kDiscrete);
    }
  }
  ResolveAutoThresholds(table, named, model, &opts);

  RepairResult result;
  result.repaired = table;

  if (opts.compute_violation_stats) {
    FTR_TRACE_SPAN("repair.detect");
    PhaseTimer phase(&result.stats.phases.detect_ms);
    bool truncated = false;
    for (const FD& fd : named) {
      bool fd_truncated = false;
      result.stats.ft_violations_before += CountFTViolations(
          table, fd, model, opts.FTFor(fd), opts.budget, &fd_truncated);
      truncated = truncated || fd_truncated;
    }
    if (truncated) {
      RecordDegradation(&result.stats, repair_clock, "violation-stats",
                        "partial-graph",
                        ClassifyDegradationCause(opts.budget, opts.memory),
                        "resources exhausted while counting FT-violations; "
                        "ft_violations_before is a lower bound");
    }
  }

  FDGraph fd_graph(named);
  const std::vector<std::vector<int>>& components = fd_graph.Components();

  if (opts.provenance) {
    RepairProvenance& prov = result.provenance;
    prov.enabled = true;
    prov.algorithm = RepairAlgorithmName(opts.algorithm);
    prov.semantics = SemanticsName(semantics);
    prov.violation_stats_computed = opts.compute_violation_stats;
    for (const FD& fd : named) {
      ProvenanceFD pfd;
      pfd.name = fd.name();
      pfd.lhs = fd.lhs();
      pfd.rhs = fd.rhs();
      pfd.tau = opts.TauFor(fd);
      pfd.w_l = opts.w_l;
      pfd.w_r = opts.w_r;
      pfd.confidence =
          semantics == SemanticsId::kSoftFd ? opts.ConfidenceFor(fd) : 1.0;
      prov.fds.push_back(std::move(pfd));
    }
    for (const std::vector<int>& component : components) {
      ProvenanceComponent pc;
      pc.fds = component;
      for (int idx : component) {
        if (!pc.name.empty()) pc.name += "+";
        pc.name += named[static_cast<size_t>(idx)].name();
      }
      prov.components.push_back(std::move(pc));
    }
  }

  // Solve phase. Components are independent by construction (Theorem
  // 5: they touch disjoint attribute sets and each reads only the
  // input table), so they run concurrently on the shared pool, each
  // writing a private ComponentOutcome. Components keep their inner
  // parallelism (graph builds, candidate scans, target assignment) —
  // ParallelFor nests safely, so idle workers drain into whichever
  // component dominates the critical path.
  int solve_parallelism = 1;
  if (components.size() > 1) {
    solve_parallelism = std::min(ResolveThreads(opts.threads),
                                 static_cast<int>(components.size()));
  }
  SolveThreadsGauge()->Set(solve_parallelism);

  std::vector<ComponentOutcome> outcomes(components.size());
  {
    FTR_TRACE_SPAN("repair.solve",
                   {{"components", std::to_string(components.size())},
                    {"threads", std::to_string(solve_parallelism)}});
    ParallelFor(
        static_cast<int>(components.size()), solve_parallelism, [&](int c) {
          SolveComponent(table, named, components[static_cast<size_t>(c)],
                         model, opts, semantics, repair_clock,
                         &outcomes[static_cast<size_t>(c)]);
        });
  }

  // Replay merge, strictly in component order: degradations are
  // emitted and appended in the order the serial loop would have
  // produced them (elapsed_ms stamps are clamped monotone, since
  // components finish out of order), stats deltas accumulate in
  // component order, and the apply step writes changes in component
  // order — so RepairResult is bit-identical to the serial run at any
  // thread count.
  double last_degradation_ms = result.stats.degradations.empty()
                                   ? 0.0
                                   : result.stats.degradations.back()
                                         .elapsed_ms;
  const std::unordered_set<int>* trusted =
      opts.trusted_rows.empty() ? nullptr : &opts.trusted_rows;
  for (size_t c = 0; c < outcomes.size(); ++c) {
    ComponentOutcome& out = outcomes[c];
    if (!out.status.ok()) return out.status;
    for (DegradationEvent& event : out.stats.degradations) {
      event.elapsed_ms = std::max(event.elapsed_ms, last_degradation_ms);
      last_degradation_ms = event.elapsed_ms;
      EmitDegradation(event);
    }
    result.stats.Merge(out.stats);
    ProvenanceScope scope;
    if (opts.provenance) {
      scope.prov = &result.provenance;
      scope.component = static_cast<int>(c);
      scope.fd = out.apply_single ? components[c][0] : -1;
      scope.degradations_before =
          static_cast<int>(result.stats.degradations.size());
    }
    PhaseTimer phase(&result.stats.phases.apply_ms);
    if (out.apply_single) {
      ApplySingleFDSolution(out.graph, *out.fd, out.single, &result.repaired,
                            &result.changes, trusted, scope);
    } else if (out.apply_multi) {
      ApplyMultiFDSolution(out.multi, &result.repaired, &result.changes,
                           trusted, scope);
    }
  }

  {
    FTR_TRACE_SPAN("repair.stats");
    PhaseTimer phase(&result.stats.phases.stats_ms);
    if (opts.compute_violation_stats) {
      // The "after" count runs unbudgeted only when the run never
      // degraded; a degraded run is already past its deadline, so give
      // the recount the same (exhausted) budget and let it skip.
      bool truncated = false;
      for (const FD& fd : named) {
        bool fd_truncated = false;
        result.stats.ft_violations_after += CountFTViolations(
            result.repaired, fd, model, opts.FTFor(fd), opts.budget,
            &fd_truncated);
        truncated = truncated || fd_truncated;
      }
      if (truncated) {
        RecordDegradation(&result.stats, repair_clock, "violation-stats",
                          "partial-graph",
                          ClassifyDegradationCause(opts.budget, opts.memory),
                          "resources exhausted while recounting "
                          "FT-violations; ft_violations_after is a lower "
                          "bound");
      }
    }
    result.stats.repair_cost = TableRepairCost(table, result.repaired, model);
  }
  result.stats.cells_changed = static_cast<int>(result.changes.size());
  std::unordered_set<int> touched;
  for (const CellChange& change : result.changes) touched.insert(change.row);
  result.stats.tuples_changed = static_cast<int>(touched.size());
  if (opts.provenance) {
    RepairProvenance& prov = result.provenance;
    bool stats_truncated = false;
    for (const DegradationEvent& event : result.stats.degradations) {
      stats_truncated =
          stats_truncated || event.component == "violation-stats";
    }
    prov.violation_stats_exact =
        prov.violation_stats_computed && !stats_truncated;
    if (opts.memory != nullptr) {
      prov.memory_limited = opts.memory->limited();
      prov.memory_soft_latched = opts.memory->SoftExceeded();
      prov.memory_exhausted = opts.memory->Exhausted();
      prov.memory_peak_bytes = opts.memory->peak_bytes();
    }
    FinalizeLedger(table, model, &result);
  }
  result.stats.phases.total_ms = repair_clock.Millis();
  ExportRepairMetrics(result.stats);
  if (opts.memory != nullptr) ExportMemoryMetrics(*opts.memory);
  return result;
}

}  // namespace internal

Result<RepairResult> Repairer::Repair(const Table& table,
                                      const std::vector<FD>& fds) const {
  FTR_ASSIGN_OR_RETURN(
      const RepairSemantics* semantics,
      SemanticsRegistry::Instance().Resolve(options_.semantics));
  FTR_RETURN_NOT_OK(semantics->Validate(options_, fds));
  return semantics->Repair(table, fds, options_);
}

Result<RepairResult> Repairer::RepairAppended(
    const Table& table, int first_new_row,
    const std::vector<FD>& fds) const {
  if (first_new_row < 0 || first_new_row > table.num_rows()) {
    return Status::InvalidArgument(
        "first_new_row " + std::to_string(first_new_row) +
        " outside [0, " + std::to_string(table.num_rows()) + "]");
  }
  Repairer incremental(options_);
  for (int r = 0; r < first_new_row; ++r) {
    incremental.options_.trusted_rows.insert(r);
  }
  return incremental.Repair(table, fds);
}

namespace {

/// Scratch result of one CFD tableau unit (one (CFD, tableau row)
/// pair). The unit's table writes go straight into the shared output
/// table — units of column-disjoint CFD groups touch disjoint cells —
/// but the change log, stats deltas and staged degradations are
/// private, replay-merged in (CFD, tableau row) order.
struct CfdUnitOutcome {
  Status status = Status::OK();
  std::vector<CellChange> changes;
  RepairStats stats;
  /// Unit-local provenance (decision indices and degradations_before
  /// are unit-relative; the merge rebases them onto the global tables).
  RepairProvenance prov;
};

}  // namespace

Result<RepairResult> Repairer::RepairCFDs(const Table& table,
                                          const std::vector<CFD>& cfds) const {
  FTR_ASSIGN_OR_RETURN(
      const RepairSemantics* semantics,
      SemanticsRegistry::Instance().Resolve(options_.semantics));
  if (!semantics->supports_cfds()) {
    return Status::InvalidArgument(
        "semantics '" + std::string(semantics->name()) +
        "' does not support CFDs (tableau constants are hard constraints); "
        "use --semantics=ft-cost");
  }
  Timer repair_clock;
  FTR_TRACE_SPAN("repair.cfd_total",
                 {{"rows", std::to_string(table.num_rows())},
                  {"cfds", std::to_string(cfds.size())}});
  RepairResult result;
  result.repaired = table;
  DistanceModel model(table);

  // Named embedded-FD copies (mirroring Repair) so per-FD taus — and
  // the auto-threshold heuristic — resolve by a guaranteed-unique name.
  std::vector<FD> named;
  named.reserve(cfds.size());
  for (size_t i = 0; i < cfds.size(); ++i) {
    const FD& fd = cfds[i].fd();
    FTR_RETURN_NOT_OK(ValidateFDs(table.schema(), {fd}));
    if (fd.name().empty()) {
      FTR_ASSIGN_OR_RETURN(
          FD named_fd,
          FD::Make(fd.lhs(), fd.rhs(), "__cfd" + std::to_string(i)));
      named.push_back(std::move(named_fd));
    } else {
      named.push_back(fd);
    }
  }
  RepairOptions opts = options_;
  ResolveAutoThresholds(table, named, model, &opts);

  // Flatten the tableau units in serial order; outcome slot u belongs
  // to the u-th (CFD, tableau row) pair.
  std::vector<size_t> unit_base(cfds.size(), 0);
  size_t num_units = 0;
  for (size_t i = 0; i < cfds.size(); ++i) {
    unit_base[i] = num_units;
    num_units += cfds[i].tableau().size();
  }
  std::vector<CfdUnitOutcome> outcomes(num_units);

  if (opts.provenance) {
    RepairProvenance& prov = result.provenance;
    prov.enabled = true;
    prov.algorithm = RepairAlgorithmName(opts.algorithm);
    for (size_t i = 0; i < named.size(); ++i) {
      ProvenanceFD pfd;
      pfd.name = named[i].name();
      pfd.lhs = named[i].lhs();
      pfd.rhs = named[i].rhs();
      pfd.tau = opts.TauFor(named[i]);
      pfd.w_l = opts.w_l;
      pfd.w_r = opts.w_r;
      prov.fds.push_back(std::move(pfd));
    }
    // One provenance component per (CFD, tableau row) unit, in the
    // same flattened order as `outcomes`.
    for (size_t i = 0; i < cfds.size(); ++i) {
      for (size_t p = 0; p < cfds[i].tableau().size(); ++p) {
        ProvenanceComponent pc;
        pc.name = named[i].name() + "#" + std::to_string(p);
        pc.fds = {static_cast<int>(i)};
        prov.components.push_back(std::move(pc));
      }
    }
  }

  // CFDs whose embedded FDs share an attribute must stay sequential:
  // later tableau rows re-read cells earlier rows wrote (matching,
  // scoping and graph building all run against the evolving output
  // table). Column-disjoint groups, by contrast, never read or write
  // each other's cells, so they run concurrently against the shared
  // output table — the CFD analogue of the FD-component solve fan-out.
  FDGraph cfd_graph(named);
  const std::vector<std::vector<int>>& groups = cfd_graph.Components();
  int parallelism = 1;
  if (groups.size() > 1) {
    parallelism = std::min(ResolveThreads(opts.threads),
                           static_cast<int>(groups.size()));
  }
  SolveThreadsGauge()->Set(parallelism);
  // Units keep opts.threads: ParallelFor nests safely, so a unit's
  // inner graph build can borrow idle workers even under group fan-out.
  const RepairOptions& unit_opts = opts;

  const std::unordered_set<int>* trusted =
      opts.trusted_rows.empty() ? nullptr : &opts.trusted_rows;

  auto run_unit = [&](int ci, int p, CfdUnitOutcome* out) {
    Timer unit_timer;
    const CFD& cfd = cfds[static_cast<size_t>(ci)];
    const FD& fd = cfd.fd();
    const FD& named_fd = named[static_cast<size_t>(ci)];
    std::string unit_name = named_fd.name() + "#" + std::to_string(p);
    if (BudgetExhausted(opts.budget) || MemExhausted(opts.memory)) {
      if (!opts.fall_back_to_greedy) {
        out->status =
            ResourceCheck(opts.budget, opts.memory, "CFD repair");
        return;
      }
      StageDegradation(&out->stats, repair_clock, unit_name, "skip",
                       ClassifyDegradationCause(opts.budget, opts.memory),
                       ResourceCheck(opts.budget, opts.memory, "CFD repair")
                           .message());
      return;
    }
    RepairOptions degraded;
    const bool soften =
        opts.fall_back_to_greedy && MemSoftExceeded(opts.memory);
    if (soften) {
      degraded = SoftDegradedOptions(opts, repair_clock, unit_name,
                                     &out->stats);
    }
    const RepairOptions& ropts = soften ? degraded : unit_opts;
    // 1. Constant violations: pin the RHS constants directly. Trusted
    // rows are never written; a trusted row disagreeing with a tableau
    // constant is a trusted conflict (the master data contradicts the
    // rule), surfaced instead of silently "repaired".
    const int unit_component = static_cast<int>(
        unit_base[static_cast<size_t>(ci)] + static_cast<size_t>(p));
    for (int r : cfd.ConstantViolations(result.repaired, p)) {
      if (trusted != nullptr && trusted->count(r) > 0) {
        ++out->stats.trusted_conflicts;
        continue;
      }
      const PatternRow& pat = cfd.tableau()[static_cast<size_t>(p)];
      int decision_index = -1;
      if (opts.provenance) {
        // One kConstant decision per pinned row: no solver and no
        // violation edges — the tableau constant dictates the target.
        RepairDecision d;
        d.component = unit_component;
        d.fd = ci;
        d.rung = SolverRung::kConstant;
        d.rows = {r};
        d.degradations_before =
            static_cast<int>(out->stats.degradations.size());
        for (int i = fd.lhs_size(); i < fd.num_attrs(); ++i) {
          const auto& constant = pat[static_cast<size_t>(i)];
          if (!constant.has_value()) continue;
          int col = fd.attrs()[static_cast<size_t>(i)];
          const Value& current = result.repaired.cell(r, col);
          d.cols.push_back(col);
          d.source_values.push_back(current);
          d.target_values.push_back(*constant);
          d.unit_cost += model.CellDistance(col, current, *constant);
        }
        decision_index = static_cast<int>(out->prov.decisions.size());
        out->prov.decisions.push_back(std::move(d));
      }
      for (int i = fd.lhs_size(); i < fd.num_attrs(); ++i) {
        const auto& constant = pat[static_cast<size_t>(i)];
        if (!constant.has_value()) continue;
        int col = fd.attrs()[static_cast<size_t>(i)];
        const Value& cell = result.repaired.cell(r, col);
        if (cell != *constant) {
          out->changes.push_back(CellChange{r, col, cell, *constant});
          if (opts.provenance) {
            out->prov.change_decision.push_back(decision_index);
          }
          result.repaired.SetCell(r, col, *constant);
        }
      }
    }
    // 2. Variable part: FT repair restricted to the matching tuples,
    // stepping down the same exact -> greedy -> partial ladder — with
    // the trusted-row mask threaded through exactly like the FD path.
    std::vector<int> scope = cfd.ApplicableRows(result.repaired, p);
    if (scope.size() < 2) return;
    Timer graph_timer;
    ViolationGraph graph = ViolationGraph::Build(
        BuildPatternsForRows(result.repaired, fd.attrs(), scope,
                             ropts.columnar),
        fd, model, ropts.FTFor(named_fd), ropts.budget);
    out->stats.phases.graph_ms += graph_timer.Millis();
    if (graph.truncated()) {
      if (!ropts.fall_back_to_greedy) {
        out->status = ResourceCheck(ropts.budget, ropts.memory,
                                    "violation graph construction");
        return;
      }
      StageDegradation(&out->stats, repair_clock, unit_name,
                       "partial-graph",
                       ClassifyDegradationCause(ropts.budget, ropts.memory),
                       "resources exhausted while building the violation "
                       "graph; undetected violations stay unrepaired");
    }
    std::vector<bool> forced_storage;
    const std::vector<bool>* forced = nullptr;
    if (trusted != nullptr) {
      forced_storage = TrustedPatternMask(graph.patterns(), *trusted);
      forced = &forced_storage;
    }
    SingleFDSolution solution;
    bool have_solution = false;
    Timer solve_timer;
    if (ropts.algorithm == RepairAlgorithm::kExact) {
      ExpansionConfig config;
      config.max_frontier = ropts.max_frontier;
      config.forced = forced;
      config.budget = ropts.budget;
      config.memory = ropts.memory;
      auto exact = SolveExpansionSingle(graph, config);
      if (exact.ok()) {
        solution = std::move(exact).value();
        have_solution = true;
        out->stats.expansion_nodes += solution.nodes_expanded;
        out->stats.expansion_pruned += solution.nodes_pruned;
      } else if (exact.status().IsResourceExhausted() &&
                 ropts.fall_back_to_greedy) {
        StageDegradation(&out->stats, repair_clock, unit_name,
                         "exact->greedy",
                         ClassifyDegradationCause(ropts.budget, ropts.memory),
                         exact.status().message());
      } else {
        out->status = exact.status();
        return;
      }
    }
    if (!have_solution) {
      solution = SolveGreedySingle(graph, forced,
                                   &out->stats.trusted_conflicts,
                                   ropts.budget, ropts.memory);
      if (solution.truncated) {
        if (!ropts.fall_back_to_greedy) {
          out->status =
              ResourceCheck(ropts.budget, ropts.memory, "greedy cover");
          return;
        }
        StageDegradation(
            &out->stats, repair_clock, unit_name, "greedy->partial",
            ClassifyDegradationCause(ropts.budget, ropts.memory),
            "resources exhausted while growing the greedy set; uncovered "
            "patterns stay unrepaired");
      }
    }
    out->stats.phases.solve_ms += solve_timer.Millis();
    {
      ProvenanceScope scope;
      if (opts.provenance) {
        scope.prov = &out->prov;
        scope.component = unit_component;
        scope.fd = ci;
        scope.degradations_before =
            static_cast<int>(out->stats.degradations.size());
      }
      PhaseTimer phase(&out->stats.phases.apply_ms);
      ApplySingleFDSolution(graph, fd, solution, &result.repaired,
                            &out->changes, trusted, scope);
    }
    ComponentMsHistogram()->Observe(unit_timer.Millis());
  };

  {
    FTR_TRACE_SPAN("repair.cfd_solve",
                   {{"groups", std::to_string(groups.size())},
                    {"threads", std::to_string(parallelism)}});
    ParallelFor(
        static_cast<int>(groups.size()), parallelism, [&](int g) {
          for (int ci : groups[static_cast<size_t>(g)]) {
            const CFD& cfd = cfds[static_cast<size_t>(ci)];
            int rows = static_cast<int>(cfd.tableau().size());
            for (int p = 0; p < rows; ++p) {
              CfdUnitOutcome* out =
                  &outcomes[unit_base[static_cast<size_t>(ci)] +
                            static_cast<size_t>(p)];
              run_unit(ci, p, out);
              // Serial semantics: a hard failure stops this group's
              // remaining units (the merge below surfaces it).
              if (!out->status.ok()) return;
            }
          }
        });
  }

  // Replay merge in (CFD, tableau row) order: the change log, the
  // degradation sequence and the stats deltas come out exactly as the
  // serial loop would have produced them.
  double last_degradation_ms = 0.0;
  for (CfdUnitOutcome& out : outcomes) {
    if (!out.status.ok()) return out.status;
    size_t degradations_base = result.stats.degradations.size();
    for (DegradationEvent& event : out.stats.degradations) {
      event.elapsed_ms = std::max(event.elapsed_ms, last_degradation_ms);
      last_degradation_ms = event.elapsed_ms;
      EmitDegradation(event);
    }
    result.stats.Merge(out.stats);
    result.changes.insert(result.changes.end(), out.changes.begin(),
                          out.changes.end());
    if (opts.provenance) {
      // Rebase the unit-local decision indices and audit-stream
      // positions onto the global tables, in unit order.
      RepairProvenance& prov = result.provenance;
      int decision_base = static_cast<int>(prov.decisions.size());
      for (RepairDecision& d : out.prov.decisions) {
        d.degradations_before += static_cast<int>(degradations_base);
        prov.decisions.push_back(std::move(d));
      }
      for (int cd : out.prov.change_decision) {
        prov.change_decision.push_back(cd >= 0 ? cd + decision_base : -1);
      }
    }
  }

  {
    PhaseTimer phase(&result.stats.phases.stats_ms);
    result.stats.repair_cost = TableRepairCost(table, result.repaired, model);
  }
  result.stats.cells_changed = static_cast<int>(result.changes.size());
  std::unordered_set<int> touched;
  for (const CellChange& change : result.changes) touched.insert(change.row);
  result.stats.tuples_changed = static_cast<int>(touched.size());
  if (opts.provenance) {
    if (opts.memory != nullptr) {
      result.provenance.memory_limited = opts.memory->limited();
      result.provenance.memory_soft_latched = opts.memory->SoftExceeded();
      result.provenance.memory_exhausted = opts.memory->Exhausted();
      result.provenance.memory_peak_bytes = opts.memory->peak_bytes();
    }
    FinalizeLedger(table, model, &result);
  }
  result.stats.phases.total_ms = repair_clock.Millis();
  ExportRepairMetrics(result.stats);
  if (opts.memory != nullptr) ExportMemoryMetrics(*opts.memory);
  return result;
}

}  // namespace ftrepair
