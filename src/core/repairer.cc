#include "core/repairer.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "constraint/fd_graph.h"
#include "core/appro_multi.h"
#include "core/expansion_multi.h"
#include "core/expansion_single.h"
#include "core/greedy_multi.h"
#include "core/greedy_single.h"
#include "core/multi_common.h"
#include "detect/detector.h"
#include "detect/threshold.h"

namespace ftrepair {

namespace {

std::vector<Pattern> PatternsFor(const Table& table, const FD& fd,
                                 bool group_tuples) {
  if (group_tuples) return BuildPatterns(table, fd.attrs());
  std::vector<Pattern> out;
  out.reserve(static_cast<size_t>(table.num_rows()));
  for (int r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> proj;
    proj.reserve(fd.attrs().size());
    for (int c : fd.attrs()) proj.push_back(table.cell(r, c));
    out.push_back(Pattern{std::move(proj), {r}});
  }
  return out;
}

}  // namespace

Status ValidateFDs(const Schema& schema, const std::vector<FD>& fds) {
  for (const FD& fd : fds) {
    for (int c : fd.attrs()) {
      if (c < 0 || c >= schema.num_columns()) {
        return Status::InvalidArgument(
            "FD references column " + std::to_string(c) +
            " outside the schema (" + std::to_string(schema.num_columns()) +
            " columns)");
      }
    }
  }
  return Status::OK();
}

Result<RepairResult> Repairer::Repair(const Table& table,
                                      const std::vector<FD>& fds) const {
  FTR_RETURN_NOT_OK(ValidateFDs(table.schema(), fds));

  // Internal FD copies with guaranteed-unique names so per-FD taus can
  // be resolved by name.
  std::vector<FD> named;
  named.reserve(fds.size());
  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].name().empty()) {
      FTR_ASSIGN_OR_RETURN(
          FD fd, FD::Make(fds[i].lhs(), fds[i].rhs(),
                          "__fd" + std::to_string(i)));
      named.push_back(std::move(fd));
    } else {
      named.push_back(fds[i]);
    }
  }

  DistanceModel model(table);
  RepairOptions opts = options_;
  if (opts.auto_threshold) {
    ThresholdOptions topt;
    topt.w_l = opts.w_l;
    topt.w_r = opts.w_r;
    topt.fallback = opts.default_tau;
    for (const FD& fd : named) {
      opts.tau_by_fd[fd.name()] = SuggestThreshold(table, fd, model, topt);
    }
  }

  RepairResult result;
  result.repaired = table;

  if (opts.compute_violation_stats) {
    for (const FD& fd : named) {
      result.stats.ft_violations_before +=
          CountFTViolations(table, fd, model, opts.FTFor(fd));
    }
  }

  FDGraph fd_graph(named);
  for (const std::vector<int>& component : fd_graph.Components()) {
    if (component.size() == 1) {
      const FD& fd = named[static_cast<size_t>(component[0])];
      ViolationGraph graph = ViolationGraph::Build(
          PatternsFor(table, fd, opts.group_tuples), fd, model,
          opts.FTFor(fd));
      std::vector<bool> forced_storage;
      const std::vector<bool>* forced = nullptr;
      if (!opts.trusted_rows.empty()) {
        forced_storage =
            TrustedPatternMask(graph.patterns(), opts.trusted_rows);
        forced = &forced_storage;
      }
      SingleFDSolution solution;
      if (opts.algorithm == RepairAlgorithm::kExact) {
        ExpansionConfig config;
        config.max_frontier = opts.max_frontier;
        config.forced = forced;
        auto exact = SolveExpansionSingle(graph, config);
        if (exact.ok()) {
          solution = std::move(exact).value();
          result.stats.expansion_nodes += solution.nodes_expanded;
          result.stats.expansion_pruned += solution.nodes_pruned;
        } else if (exact.status().IsResourceExhausted() &&
                   opts.fall_back_to_greedy) {
          FTR_LOG(kInfo) << "Expansion-S fell back to Greedy-S on "
                         << fd.name() << ": " << exact.status().ToString();
          result.stats.fell_back_to_greedy = true;
          solution = SolveGreedySingle(graph, forced,
                                       &result.stats.trusted_conflicts);
        } else {
          return exact.status();
        }
      } else {
        solution = SolveGreedySingle(graph, forced,
                                     &result.stats.trusted_conflicts);
      }
      ApplySingleFDSolution(graph, fd, solution, &result.repaired,
                            &result.changes,
                            opts.trusted_rows.empty()
                                ? nullptr
                                : &opts.trusted_rows);
    } else {
      std::vector<const FD*> component_fds;
      component_fds.reserve(component.size());
      for (int idx : component) {
        component_fds.push_back(&named[static_cast<size_t>(idx)]);
      }
      ComponentContext context =
          BuildComponentContext(table, component_fds, model, opts);
      Result<MultiFDSolution> solved = Status::Internal("unreachable");
      switch (opts.algorithm) {
        case RepairAlgorithm::kExact: {
          solved = SolveExpansionMulti(context, model, opts, &result.stats);
          if (!solved.ok() && solved.status().IsResourceExhausted() &&
              opts.fall_back_to_greedy) {
            // Anytime behavior: when the exact search trips a safety
            // valve, return the cheaper of the two heuristics.
            FTR_LOG(kInfo) << "Expansion-M fell back to heuristics: "
                           << solved.status().ToString();
            result.stats.fell_back_to_greedy = true;
            auto greedy = SolveGreedyMulti(context, model, opts,
                                           &result.stats);
            auto appro = SolveApproMulti(context, model, opts,
                                         &result.stats);
            if (greedy.ok() && appro.ok()) {
              solved = greedy.value().cost <= appro.value().cost
                           ? std::move(greedy)
                           : std::move(appro);
            } else {
              solved = greedy.ok() ? std::move(greedy) : std::move(appro);
            }
          }
          break;
        }
        case RepairAlgorithm::kGreedy:
          solved = SolveGreedyMulti(context, model, opts, &result.stats);
          break;
        case RepairAlgorithm::kApproJoin:
          solved = SolveApproMulti(context, model, opts, &result.stats);
          break;
      }
      if (!solved.ok()) return solved.status();
      ApplyMultiFDSolution(solved.value(), &result.repaired,
                           &result.changes,
                           opts.trusted_rows.empty() ? nullptr
                                                     : &opts.trusted_rows);
    }
  }

  if (opts.compute_violation_stats) {
    for (const FD& fd : named) {
      result.stats.ft_violations_after +=
          CountFTViolations(result.repaired, fd, model, opts.FTFor(fd));
    }
  }
  result.stats.repair_cost = TableRepairCost(table, result.repaired, model);
  result.stats.cells_changed = static_cast<int>(result.changes.size());
  std::unordered_set<int> touched;
  for (const CellChange& change : result.changes) touched.insert(change.row);
  result.stats.tuples_changed = static_cast<int>(touched.size());
  return result;
}

Result<RepairResult> Repairer::RepairAppended(
    const Table& table, int first_new_row,
    const std::vector<FD>& fds) const {
  if (first_new_row < 0 || first_new_row > table.num_rows()) {
    return Status::InvalidArgument(
        "first_new_row " + std::to_string(first_new_row) +
        " outside [0, " + std::to_string(table.num_rows()) + "]");
  }
  Repairer incremental(options_);
  for (int r = 0; r < first_new_row; ++r) {
    incremental.options_.trusted_rows.insert(r);
  }
  return incremental.Repair(table, fds);
}

Result<RepairResult> Repairer::RepairCFDs(const Table& table,
                                          const std::vector<CFD>& cfds) const {
  RepairResult result;
  result.repaired = table;
  DistanceModel model(table);

  for (const CFD& cfd : cfds) {
    const FD& fd = cfd.fd();
    FTR_RETURN_NOT_OK(ValidateFDs(table.schema(), {fd}));
    for (int p = 0; p < static_cast<int>(cfd.tableau().size()); ++p) {
      // 1. Constant violations: pin the RHS constants directly.
      for (int r : cfd.ConstantViolations(result.repaired, p)) {
        const PatternRow& pat = cfd.tableau()[static_cast<size_t>(p)];
        for (int i = fd.lhs_size(); i < fd.num_attrs(); ++i) {
          const auto& constant = pat[static_cast<size_t>(i)];
          if (!constant.has_value()) continue;
          int col = fd.attrs()[static_cast<size_t>(i)];
          Value* cell = result.repaired.mutable_cell(r, col);
          if (*cell != *constant) {
            result.changes.push_back(CellChange{r, col, *cell, *constant});
            *cell = *constant;
          }
        }
      }
      // 2. Variable part: FT repair restricted to the matching tuples.
      std::vector<int> scope = cfd.ApplicableRows(result.repaired, p);
      if (scope.size() < 2) continue;
      ViolationGraph graph = ViolationGraph::Build(
          BuildPatternsForRows(result.repaired, fd.attrs(), scope), fd,
          model, options_.FTFor(fd));
      SingleFDSolution solution;
      if (options_.algorithm == RepairAlgorithm::kExact) {
        ExpansionConfig config;
        config.max_frontier = options_.max_frontier;
        auto exact = SolveExpansionSingle(graph, config);
        if (exact.ok()) {
          solution = std::move(exact).value();
        } else if (exact.status().IsResourceExhausted() &&
                   options_.fall_back_to_greedy) {
          result.stats.fell_back_to_greedy = true;
          solution = SolveGreedySingle(graph);
        } else {
          return exact.status();
        }
      } else {
        solution = SolveGreedySingle(graph);
      }
      ApplySingleFDSolution(graph, fd, solution, &result.repaired,
                            &result.changes);
    }
  }

  result.stats.repair_cost = TableRepairCost(table, result.repaired, model);
  result.stats.cells_changed = static_cast<int>(result.changes.size());
  std::unordered_set<int> touched;
  for (const CellChange& change : result.changes) touched.insert(change.row);
  result.stats.tuples_changed = static_cast<int>(touched.size());
  return result;
}

}  // namespace ftrepair
