#include "core/repairer.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "constraint/fd_graph.h"
#include "core/appro_multi.h"
#include "core/expansion_multi.h"
#include "core/expansion_single.h"
#include "core/greedy_multi.h"
#include "core/greedy_single.h"
#include "core/multi_common.h"
#include "detect/detector.h"
#include "detect/threshold.h"

namespace ftrepair {

namespace {

// Appends one degradation-ladder event to `stats`, stamped from the
// repair-scoped clock (every event of a run shares `clock`, so
// elapsed_ms is monotonically non-decreasing in record order). Each
// event also lands as a trace instant and a labeled counter so
// degraded runs are visible in --trace-json / --metrics-json output.
void RecordDegradation(RepairStats* stats, const Timer& clock,
                       std::string component, std::string stage,
                       std::string reason) {
  DegradationEvent event;
  event.component = std::move(component);
  event.stage = std::move(stage);
  event.reason = std::move(reason);
  event.elapsed_ms = clock.Millis();
  FTR_LOG(kInfo) << "degradation [" << event.component << "] "
                 << event.stage << ": " << event.reason;
  Metrics().GetCounter("ftrepair.degradations", "stage", event.stage)
      ->Increment();
  Tracer::Instance().RecordInstant("repair.degradation",
                                   {{"component", event.component},
                                    {"stage", event.stage},
                                    {"reason", event.reason}});
  stats->degradations.push_back(std::move(event));
}

// Scope guard accumulating its lifetime into one PhaseTimings field.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* acc) : acc_(acc) {}
  ~PhaseTimer() { *acc_ += timer_.Millis(); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* acc_;
  Timer timer_;
};

// Publishes one finished repair's phase breakdown to the process-wide
// metrics registry: a per-phase elapsed-time counter family (in
// microseconds, so the counters stay integral) plus end-state counters
// and the end-to-end latency histogram.
void ExportRepairMetrics(const RepairStats& stats) {
  static Counter* detect_us = Metrics().GetCounter("ftrepair.phase.detect_us");
  static Counter* graph_us = Metrics().GetCounter("ftrepair.phase.graph_us");
  static Counter* solve_us = Metrics().GetCounter("ftrepair.phase.solve_us");
  static Counter* targets_us =
      Metrics().GetCounter("ftrepair.phase.targets_us");
  static Counter* apply_us = Metrics().GetCounter("ftrepair.phase.apply_us");
  static Counter* stats_us = Metrics().GetCounter("ftrepair.phase.stats_us");
  static Counter* runs = Metrics().GetCounter("ftrepair.repair.runs");
  static Counter* degraded_runs =
      Metrics().GetCounter("ftrepair.repair.degraded_runs");
  static Counter* cells = Metrics().GetCounter("ftrepair.repair.cells_changed");
  static Histogram* total_ms =
      Metrics().GetHistogram("ftrepair.repair.total_ms");
  auto us = [](double ms) {
    return static_cast<uint64_t>(ms > 0 ? ms * 1000.0 : 0);
  };
  detect_us->Increment(us(stats.phases.detect_ms));
  graph_us->Increment(us(stats.phases.graph_ms));
  solve_us->Increment(us(stats.phases.solve_ms));
  targets_us->Increment(us(stats.phases.targets_ms));
  apply_us->Increment(us(stats.phases.apply_ms));
  stats_us->Increment(us(stats.phases.stats_ms));
  runs->Increment();
  if (stats.degraded()) degraded_runs->Increment();
  cells->Increment(static_cast<uint64_t>(stats.cells_changed));
  total_ms->Observe(stats.phases.total_ms);
}

// "+"-joined FD names of a multi-FD component.
std::string ComponentName(const std::vector<const FD*>& fds) {
  std::string name;
  for (const FD* fd : fds) {
    if (!name.empty()) name += "+";
    name += fd->name();
  }
  return name;
}

std::vector<Pattern> PatternsFor(const Table& table, const FD& fd,
                                 bool group_tuples) {
  if (group_tuples) return BuildPatterns(table, fd.attrs());
  std::vector<Pattern> out;
  out.reserve(static_cast<size_t>(table.num_rows()));
  for (int r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> proj;
    proj.reserve(fd.attrs().size());
    for (int c : fd.attrs()) proj.push_back(table.cell(r, c));
    out.push_back(Pattern{std::move(proj), {r}});
  }
  return out;
}

}  // namespace

Status ValidateFDs(const Schema& schema, const std::vector<FD>& fds) {
  for (const FD& fd : fds) {
    for (int c : fd.attrs()) {
      if (c < 0 || c >= schema.num_columns()) {
        return Status::InvalidArgument(
            "FD references column " + std::to_string(c) +
            " outside the schema (" + std::to_string(schema.num_columns()) +
            " columns)");
      }
    }
  }
  return Status::OK();
}

Result<RepairResult> Repairer::Repair(const Table& table,
                                      const std::vector<FD>& fds) const {
  FTR_RETURN_NOT_OK(ValidateFDs(table.schema(), fds));
  // One clock for the whole call: every DegradationEvent::elapsed_ms
  // and PhaseTimings::total_ms read it, so they are mutually
  // comparable and monotone.
  Timer repair_clock;
  FTR_TRACE_SPAN("repair.total",
                 {{"rows", std::to_string(table.num_rows())},
                  {"fds", std::to_string(fds.size())},
                  {"algorithm", RepairAlgorithmName(options_.algorithm)}});

  // Internal FD copies with guaranteed-unique names so per-FD taus can
  // be resolved by name.
  std::vector<FD> named;
  named.reserve(fds.size());
  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].name().empty()) {
      FTR_ASSIGN_OR_RETURN(
          FD fd, FD::Make(fds[i].lhs(), fds[i].rhs(),
                          "__fd" + std::to_string(i)));
      named.push_back(std::move(fd));
    } else {
      named.push_back(fds[i]);
    }
  }

  DistanceModel model(table);
  RepairOptions opts = options_;
  if (opts.auto_threshold) {
    ThresholdOptions topt;
    topt.w_l = opts.w_l;
    topt.w_r = opts.w_r;
    topt.fallback = opts.default_tau;
    for (const FD& fd : named) {
      opts.tau_by_fd[fd.name()] = SuggestThreshold(table, fd, model, topt);
    }
  }

  RepairResult result;
  result.repaired = table;

  if (opts.compute_violation_stats) {
    FTR_TRACE_SPAN("repair.detect");
    PhaseTimer phase(&result.stats.phases.detect_ms);
    bool truncated = false;
    for (const FD& fd : named) {
      bool fd_truncated = false;
      result.stats.ft_violations_before += CountFTViolations(
          table, fd, model, opts.FTFor(fd), opts.budget, &fd_truncated);
      truncated = truncated || fd_truncated;
    }
    if (truncated) {
      RecordDegradation(&result.stats, repair_clock, "violation-stats",
                        "partial-graph",
                        "budget exhausted while counting FT-violations; "
                        "ft_violations_before is a lower bound");
    }
  }

  FDGraph fd_graph(named);
  for (const std::vector<int>& component : fd_graph.Components()) {
    if (component.size() == 1) {
      const FD& fd = named[static_cast<size_t>(component[0])];
      if (BudgetExhausted(opts.budget)) {
        if (!opts.fall_back_to_greedy) {
          return opts.budget->Check("repair pipeline");
        }
        // Detect-only: the component's tuples keep their values.
        RecordDegradation(&result.stats, repair_clock, fd.name(), "skip",
                          opts.budget->Check("repair pipeline").message());
        continue;
      }
      Timer graph_timer;
      ViolationGraph graph = ViolationGraph::Build(
          PatternsFor(table, fd, opts.group_tuples), fd, model,
          opts.FTFor(fd), opts.budget);
      result.stats.phases.graph_ms += graph_timer.Millis();
      if (graph.truncated()) {
        if (!opts.fall_back_to_greedy) {
          return opts.budget->Check("violation graph construction");
        }
        RecordDegradation(&result.stats, repair_clock, fd.name(),
                          "partial-graph",
                          "budget exhausted while building the violation "
                          "graph; undetected violations stay unrepaired");
      }
      std::vector<bool> forced_storage;
      const std::vector<bool>* forced = nullptr;
      if (!opts.trusted_rows.empty()) {
        forced_storage =
            TrustedPatternMask(graph.patterns(), opts.trusted_rows);
        forced = &forced_storage;
      }
      // Single-FD ladder: exact -> greedy -> partial greedy. The greedy
      // rung never fails outright; the budget truncates it instead.
      SingleFDSolution solution;
      bool have_solution = false;
      Timer solve_timer;
      if (opts.algorithm == RepairAlgorithm::kExact) {
        ExpansionConfig config;
        config.max_frontier = opts.max_frontier;
        config.forced = forced;
        config.budget = opts.budget;
        auto exact = SolveExpansionSingle(graph, config);
        if (exact.ok()) {
          solution = std::move(exact).value();
          have_solution = true;
          result.stats.expansion_nodes += solution.nodes_expanded;
          result.stats.expansion_pruned += solution.nodes_pruned;
        } else if (exact.status().IsResourceExhausted() &&
                   opts.fall_back_to_greedy) {
          RecordDegradation(&result.stats, repair_clock, fd.name(),
                            "exact->greedy", exact.status().message());
        } else {
          return exact.status();
        }
      }
      if (!have_solution) {
        solution = SolveGreedySingle(graph, forced,
                                     &result.stats.trusted_conflicts,
                                     opts.budget);
        if (solution.truncated) {
          if (!opts.fall_back_to_greedy) {
            return opts.budget->Check("greedy cover");
          }
          RecordDegradation(
              &result.stats, repair_clock, fd.name(), "greedy->partial",
              "budget exhausted while growing the greedy set; uncovered "
              "patterns stay unrepaired");
        }
      }
      result.stats.phases.solve_ms += solve_timer.Millis();
      {
        PhaseTimer phase(&result.stats.phases.apply_ms);
        ApplySingleFDSolution(graph, fd, solution, &result.repaired,
                              &result.changes,
                              opts.trusted_rows.empty()
                                  ? nullptr
                                  : &opts.trusted_rows);
      }
    } else {
      std::vector<const FD*> component_fds;
      component_fds.reserve(component.size());
      for (int idx : component) {
        component_fds.push_back(&named[static_cast<size_t>(idx)]);
      }
      std::string name = ComponentName(component_fds);
      if (BudgetExhausted(opts.budget)) {
        if (!opts.fall_back_to_greedy) {
          return opts.budget->Check("repair pipeline");
        }
        RecordDegradation(&result.stats, repair_clock, name, "skip",
                          opts.budget->Check("repair pipeline").message());
        continue;
      }
      Timer graph_timer;
      ComponentContext context =
          BuildComponentContext(table, component_fds, model, opts);
      result.stats.phases.graph_ms += graph_timer.Millis();
      bool graphs_truncated = false;
      for (const ViolationGraph& graph : context.graphs) {
        graphs_truncated = graphs_truncated || graph.truncated();
      }
      if (graphs_truncated) {
        if (!opts.fall_back_to_greedy) {
          return opts.budget->Check("violation graph construction");
        }
        RecordDegradation(&result.stats, repair_clock, name, "partial-graph",
                          "budget exhausted while building the violation "
                          "graphs; undetected violations stay unrepaired");
      }
      // Multi-FD ladder: exact -> greedy -> per-FD appro -> detect-only.
      // Each rung hands ResourceExhausted down one step (when the
      // fall_back_to_greedy valve is open); the bottom rung degrades to
      // leaving the component unrepaired.
      static constexpr const char* kRungs[] = {"exact", "greedy", "appro"};
      int rung = 0;
      switch (opts.algorithm) {
        case RepairAlgorithm::kExact:
          rung = 0;
          break;
        case RepairAlgorithm::kGreedy:
          rung = 1;
          break;
        case RepairAlgorithm::kApproJoin:
          rung = 2;
          break;
      }
      Result<MultiFDSolution> solved = Status::Internal("unreachable");
      bool solved_ok = false;
      // Target assignment runs nested inside the multi-FD solvers and
      // accumulates into phases.targets_ms on its own; subtract its
      // delta so solve/targets stay disjoint phases.
      double targets_before = result.stats.phases.targets_ms;
      Timer solve_timer;
      while (rung <= 2) {
        switch (rung) {
          case 0:
            solved = SolveExpansionMulti(context, model, opts, &result.stats);
            break;
          case 1:
            solved = SolveGreedyMulti(context, model, opts, &result.stats);
            break;
          case 2:
            solved = SolveApproMulti(context, model, opts, &result.stats);
            break;
        }
        if (solved.ok()) {
          solved_ok = true;
          break;
        }
        if (!solved.status().IsResourceExhausted() ||
            !opts.fall_back_to_greedy) {
          return solved.status();
        }
        if (rung < 2) {
          RecordDegradation(&result.stats, repair_clock, name,
                            std::string(kRungs[rung]) + "->" +
                                kRungs[rung + 1],
                            solved.status().message());
        } else {
          // Bottom of the ladder: detect-only for this component.
          RecordDegradation(&result.stats, repair_clock, name, "skip",
                            solved.status().message());
        }
        ++rung;
      }
      result.stats.phases.solve_ms +=
          solve_timer.Millis() -
          (result.stats.phases.targets_ms - targets_before);
      if (!solved_ok) continue;  // component left unrepaired
      if (solved.value().truncated) {
        if (!opts.fall_back_to_greedy) {
          return opts.budget->Check("target assignment");
        }
        RecordDegradation(&result.stats, repair_clock, name,
                          "partial-targets",
                          "budget exhausted while assigning targets; "
                          "remaining patterns stay unrepaired");
      }
      {
        PhaseTimer phase(&result.stats.phases.apply_ms);
        ApplyMultiFDSolution(solved.value(), &result.repaired,
                             &result.changes,
                             opts.trusted_rows.empty() ? nullptr
                                                       : &opts.trusted_rows);
      }
    }
  }

  {
    FTR_TRACE_SPAN("repair.stats");
    PhaseTimer phase(&result.stats.phases.stats_ms);
    if (opts.compute_violation_stats) {
      // The "after" count runs unbudgeted only when the run never
      // degraded; a degraded run is already past its deadline, so give
      // the recount the same (exhausted) budget and let it skip.
      bool truncated = false;
      for (const FD& fd : named) {
        bool fd_truncated = false;
        result.stats.ft_violations_after += CountFTViolations(
            result.repaired, fd, model, opts.FTFor(fd), opts.budget,
            &fd_truncated);
        truncated = truncated || fd_truncated;
      }
      if (truncated) {
        RecordDegradation(&result.stats, repair_clock, "violation-stats",
                          "partial-graph",
                          "budget exhausted while recounting FT-violations; "
                          "ft_violations_after is a lower bound");
      }
    }
    result.stats.repair_cost = TableRepairCost(table, result.repaired, model);
  }
  result.stats.cells_changed = static_cast<int>(result.changes.size());
  std::unordered_set<int> touched;
  for (const CellChange& change : result.changes) touched.insert(change.row);
  result.stats.tuples_changed = static_cast<int>(touched.size());
  result.stats.phases.total_ms = repair_clock.Millis();
  ExportRepairMetrics(result.stats);
  return result;
}

Result<RepairResult> Repairer::RepairAppended(
    const Table& table, int first_new_row,
    const std::vector<FD>& fds) const {
  if (first_new_row < 0 || first_new_row > table.num_rows()) {
    return Status::InvalidArgument(
        "first_new_row " + std::to_string(first_new_row) +
        " outside [0, " + std::to_string(table.num_rows()) + "]");
  }
  Repairer incremental(options_);
  for (int r = 0; r < first_new_row; ++r) {
    incremental.options_.trusted_rows.insert(r);
  }
  return incremental.Repair(table, fds);
}

Result<RepairResult> Repairer::RepairCFDs(const Table& table,
                                          const std::vector<CFD>& cfds) const {
  Timer repair_clock;
  FTR_TRACE_SPAN("repair.cfd_total",
                 {{"rows", std::to_string(table.num_rows())},
                  {"cfds", std::to_string(cfds.size())}});
  RepairResult result;
  result.repaired = table;
  DistanceModel model(table);

  for (const CFD& cfd : cfds) {
    const FD& fd = cfd.fd();
    FTR_RETURN_NOT_OK(ValidateFDs(table.schema(), {fd}));
    for (int p = 0; p < static_cast<int>(cfd.tableau().size()); ++p) {
      if (BudgetExhausted(options_.budget)) {
        if (!options_.fall_back_to_greedy) {
          return options_.budget->Check("CFD repair");
        }
        RecordDegradation(
            &result.stats, repair_clock,
            fd.name() + "#" + std::to_string(p), "skip",
            options_.budget->Check("CFD repair").message());
        continue;
      }
      // 1. Constant violations: pin the RHS constants directly.
      for (int r : cfd.ConstantViolations(result.repaired, p)) {
        const PatternRow& pat = cfd.tableau()[static_cast<size_t>(p)];
        for (int i = fd.lhs_size(); i < fd.num_attrs(); ++i) {
          const auto& constant = pat[static_cast<size_t>(i)];
          if (!constant.has_value()) continue;
          int col = fd.attrs()[static_cast<size_t>(i)];
          Value* cell = result.repaired.mutable_cell(r, col);
          if (*cell != *constant) {
            result.changes.push_back(CellChange{r, col, *cell, *constant});
            *cell = *constant;
          }
        }
      }
      // 2. Variable part: FT repair restricted to the matching tuples,
      // stepping down the same exact -> greedy -> partial ladder.
      std::vector<int> scope = cfd.ApplicableRows(result.repaired, p);
      if (scope.size() < 2) continue;
      Timer graph_timer;
      ViolationGraph graph = ViolationGraph::Build(
          BuildPatternsForRows(result.repaired, fd.attrs(), scope), fd,
          model, options_.FTFor(fd), options_.budget);
      result.stats.phases.graph_ms += graph_timer.Millis();
      if (graph.truncated()) {
        if (!options_.fall_back_to_greedy) {
          return options_.budget->Check("violation graph construction");
        }
        RecordDegradation(&result.stats, repair_clock,
                          fd.name() + "#" + std::to_string(p),
                          "partial-graph",
                          "budget exhausted while building the violation "
                          "graph; undetected violations stay unrepaired");
      }
      SingleFDSolution solution;
      bool have_solution = false;
      Timer solve_timer;
      if (options_.algorithm == RepairAlgorithm::kExact) {
        ExpansionConfig config;
        config.max_frontier = options_.max_frontier;
        config.budget = options_.budget;
        auto exact = SolveExpansionSingle(graph, config);
        if (exact.ok()) {
          solution = std::move(exact).value();
          have_solution = true;
        } else if (exact.status().IsResourceExhausted() &&
                   options_.fall_back_to_greedy) {
          RecordDegradation(&result.stats, repair_clock,
                            fd.name() + "#" + std::to_string(p),
                            "exact->greedy", exact.status().message());
        } else {
          return exact.status();
        }
      }
      if (!have_solution) {
        solution = SolveGreedySingle(graph, nullptr, nullptr,
                                     options_.budget);
        if (solution.truncated) {
          if (!options_.fall_back_to_greedy) {
            return options_.budget->Check("greedy cover");
          }
          RecordDegradation(
              &result.stats, repair_clock,
              fd.name() + "#" + std::to_string(p), "greedy->partial",
              "budget exhausted while growing the greedy set; uncovered "
              "patterns stay unrepaired");
        }
      }
      result.stats.phases.solve_ms += solve_timer.Millis();
      {
        PhaseTimer phase(&result.stats.phases.apply_ms);
        ApplySingleFDSolution(graph, fd, solution, &result.repaired,
                              &result.changes);
      }
    }
  }

  {
    PhaseTimer phase(&result.stats.phases.stats_ms);
    result.stats.repair_cost = TableRepairCost(table, result.repaired, model);
  }
  result.stats.cells_changed = static_cast<int>(result.changes.size());
  std::unordered_set<int> touched;
  for (const CellChange& change : result.changes) touched.insert(change.row);
  result.stats.tuples_changed = static_cast<int>(touched.size());
  result.stats.phases.total_ms = repair_clock.Millis();
  ExportRepairMetrics(result.stats);
  return result;
}

}  // namespace ftrepair
