#include "core/repairer.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "constraint/fd_graph.h"
#include "core/appro_multi.h"
#include "core/expansion_multi.h"
#include "core/expansion_single.h"
#include "core/greedy_multi.h"
#include "core/greedy_single.h"
#include "core/multi_common.h"
#include "detect/detector.h"
#include "detect/threshold.h"

namespace ftrepair {

namespace {

// Appends one degradation-ladder event to `stats`.
void RecordDegradation(RepairStats* stats, const Budget* budget,
                       std::string component, std::string stage,
                       std::string reason) {
  DegradationEvent event;
  event.component = std::move(component);
  event.stage = std::move(stage);
  event.reason = std::move(reason);
  event.elapsed_ms = budget != nullptr ? budget->ElapsedMs() : 0;
  FTR_LOG(kInfo) << "degradation [" << event.component << "] "
                 << event.stage << ": " << event.reason;
  stats->degradations.push_back(std::move(event));
}

// "+"-joined FD names of a multi-FD component.
std::string ComponentName(const std::vector<const FD*>& fds) {
  std::string name;
  for (const FD* fd : fds) {
    if (!name.empty()) name += "+";
    name += fd->name();
  }
  return name;
}

std::vector<Pattern> PatternsFor(const Table& table, const FD& fd,
                                 bool group_tuples) {
  if (group_tuples) return BuildPatterns(table, fd.attrs());
  std::vector<Pattern> out;
  out.reserve(static_cast<size_t>(table.num_rows()));
  for (int r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> proj;
    proj.reserve(fd.attrs().size());
    for (int c : fd.attrs()) proj.push_back(table.cell(r, c));
    out.push_back(Pattern{std::move(proj), {r}});
  }
  return out;
}

}  // namespace

Status ValidateFDs(const Schema& schema, const std::vector<FD>& fds) {
  for (const FD& fd : fds) {
    for (int c : fd.attrs()) {
      if (c < 0 || c >= schema.num_columns()) {
        return Status::InvalidArgument(
            "FD references column " + std::to_string(c) +
            " outside the schema (" + std::to_string(schema.num_columns()) +
            " columns)");
      }
    }
  }
  return Status::OK();
}

Result<RepairResult> Repairer::Repair(const Table& table,
                                      const std::vector<FD>& fds) const {
  FTR_RETURN_NOT_OK(ValidateFDs(table.schema(), fds));

  // Internal FD copies with guaranteed-unique names so per-FD taus can
  // be resolved by name.
  std::vector<FD> named;
  named.reserve(fds.size());
  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].name().empty()) {
      FTR_ASSIGN_OR_RETURN(
          FD fd, FD::Make(fds[i].lhs(), fds[i].rhs(),
                          "__fd" + std::to_string(i)));
      named.push_back(std::move(fd));
    } else {
      named.push_back(fds[i]);
    }
  }

  DistanceModel model(table);
  RepairOptions opts = options_;
  if (opts.auto_threshold) {
    ThresholdOptions topt;
    topt.w_l = opts.w_l;
    topt.w_r = opts.w_r;
    topt.fallback = opts.default_tau;
    for (const FD& fd : named) {
      opts.tau_by_fd[fd.name()] = SuggestThreshold(table, fd, model, topt);
    }
  }

  RepairResult result;
  result.repaired = table;

  if (opts.compute_violation_stats) {
    bool truncated = false;
    for (const FD& fd : named) {
      bool fd_truncated = false;
      result.stats.ft_violations_before += CountFTViolations(
          table, fd, model, opts.FTFor(fd), opts.budget, &fd_truncated);
      truncated = truncated || fd_truncated;
    }
    if (truncated) {
      RecordDegradation(&result.stats, opts.budget, "violation-stats",
                        "partial-graph",
                        "budget exhausted while counting FT-violations; "
                        "ft_violations_before is a lower bound");
    }
  }

  FDGraph fd_graph(named);
  for (const std::vector<int>& component : fd_graph.Components()) {
    if (component.size() == 1) {
      const FD& fd = named[static_cast<size_t>(component[0])];
      if (BudgetExhausted(opts.budget)) {
        if (!opts.fall_back_to_greedy) {
          return opts.budget->Check("repair pipeline");
        }
        // Detect-only: the component's tuples keep their values.
        RecordDegradation(&result.stats, opts.budget, fd.name(), "skip",
                          opts.budget->Check("repair pipeline").message());
        continue;
      }
      ViolationGraph graph = ViolationGraph::Build(
          PatternsFor(table, fd, opts.group_tuples), fd, model,
          opts.FTFor(fd), opts.budget);
      if (graph.truncated()) {
        if (!opts.fall_back_to_greedy) {
          return opts.budget->Check("violation graph construction");
        }
        RecordDegradation(&result.stats, opts.budget, fd.name(),
                          "partial-graph",
                          "budget exhausted while building the violation "
                          "graph; undetected violations stay unrepaired");
      }
      std::vector<bool> forced_storage;
      const std::vector<bool>* forced = nullptr;
      if (!opts.trusted_rows.empty()) {
        forced_storage =
            TrustedPatternMask(graph.patterns(), opts.trusted_rows);
        forced = &forced_storage;
      }
      // Single-FD ladder: exact -> greedy -> partial greedy. The greedy
      // rung never fails outright; the budget truncates it instead.
      SingleFDSolution solution;
      bool have_solution = false;
      if (opts.algorithm == RepairAlgorithm::kExact) {
        ExpansionConfig config;
        config.max_frontier = opts.max_frontier;
        config.forced = forced;
        config.budget = opts.budget;
        auto exact = SolveExpansionSingle(graph, config);
        if (exact.ok()) {
          solution = std::move(exact).value();
          have_solution = true;
          result.stats.expansion_nodes += solution.nodes_expanded;
          result.stats.expansion_pruned += solution.nodes_pruned;
        } else if (exact.status().IsResourceExhausted() &&
                   opts.fall_back_to_greedy) {
          RecordDegradation(&result.stats, opts.budget, fd.name(),
                            "exact->greedy", exact.status().message());
        } else {
          return exact.status();
        }
      }
      if (!have_solution) {
        solution = SolveGreedySingle(graph, forced,
                                     &result.stats.trusted_conflicts,
                                     opts.budget);
        if (solution.truncated) {
          if (!opts.fall_back_to_greedy) {
            return opts.budget->Check("greedy cover");
          }
          RecordDegradation(
              &result.stats, opts.budget, fd.name(), "greedy->partial",
              "budget exhausted while growing the greedy set; uncovered "
              "patterns stay unrepaired");
        }
      }
      ApplySingleFDSolution(graph, fd, solution, &result.repaired,
                            &result.changes,
                            opts.trusted_rows.empty()
                                ? nullptr
                                : &opts.trusted_rows);
    } else {
      std::vector<const FD*> component_fds;
      component_fds.reserve(component.size());
      for (int idx : component) {
        component_fds.push_back(&named[static_cast<size_t>(idx)]);
      }
      std::string name = ComponentName(component_fds);
      if (BudgetExhausted(opts.budget)) {
        if (!opts.fall_back_to_greedy) {
          return opts.budget->Check("repair pipeline");
        }
        RecordDegradation(&result.stats, opts.budget, name, "skip",
                          opts.budget->Check("repair pipeline").message());
        continue;
      }
      ComponentContext context =
          BuildComponentContext(table, component_fds, model, opts);
      bool graphs_truncated = false;
      for (const ViolationGraph& graph : context.graphs) {
        graphs_truncated = graphs_truncated || graph.truncated();
      }
      if (graphs_truncated) {
        if (!opts.fall_back_to_greedy) {
          return opts.budget->Check("violation graph construction");
        }
        RecordDegradation(&result.stats, opts.budget, name, "partial-graph",
                          "budget exhausted while building the violation "
                          "graphs; undetected violations stay unrepaired");
      }
      // Multi-FD ladder: exact -> greedy -> per-FD appro -> detect-only.
      // Each rung hands ResourceExhausted down one step (when the
      // fall_back_to_greedy valve is open); the bottom rung degrades to
      // leaving the component unrepaired.
      static constexpr const char* kRungs[] = {"exact", "greedy", "appro"};
      int rung = 0;
      switch (opts.algorithm) {
        case RepairAlgorithm::kExact:
          rung = 0;
          break;
        case RepairAlgorithm::kGreedy:
          rung = 1;
          break;
        case RepairAlgorithm::kApproJoin:
          rung = 2;
          break;
      }
      Result<MultiFDSolution> solved = Status::Internal("unreachable");
      bool solved_ok = false;
      while (rung <= 2) {
        switch (rung) {
          case 0:
            solved = SolveExpansionMulti(context, model, opts, &result.stats);
            break;
          case 1:
            solved = SolveGreedyMulti(context, model, opts, &result.stats);
            break;
          case 2:
            solved = SolveApproMulti(context, model, opts, &result.stats);
            break;
        }
        if (solved.ok()) {
          solved_ok = true;
          break;
        }
        if (!solved.status().IsResourceExhausted() ||
            !opts.fall_back_to_greedy) {
          return solved.status();
        }
        if (rung < 2) {
          RecordDegradation(&result.stats, opts.budget, name,
                            std::string(kRungs[rung]) + "->" +
                                kRungs[rung + 1],
                            solved.status().message());
        } else {
          // Bottom of the ladder: detect-only for this component.
          RecordDegradation(&result.stats, opts.budget, name, "skip",
                            solved.status().message());
        }
        ++rung;
      }
      if (!solved_ok) continue;  // component left unrepaired
      if (solved.value().truncated) {
        if (!opts.fall_back_to_greedy) {
          return opts.budget->Check("target assignment");
        }
        RecordDegradation(&result.stats, opts.budget, name,
                          "partial-targets",
                          "budget exhausted while assigning targets; "
                          "remaining patterns stay unrepaired");
      }
      ApplyMultiFDSolution(solved.value(), &result.repaired,
                           &result.changes,
                           opts.trusted_rows.empty() ? nullptr
                                                     : &opts.trusted_rows);
    }
  }

  if (opts.compute_violation_stats) {
    // The "after" count runs unbudgeted only when the run never
    // degraded; a degraded run is already past its deadline, so give
    // the recount the same (exhausted) budget and let it skip.
    bool truncated = false;
    for (const FD& fd : named) {
      bool fd_truncated = false;
      result.stats.ft_violations_after += CountFTViolations(
          result.repaired, fd, model, opts.FTFor(fd), opts.budget,
          &fd_truncated);
      truncated = truncated || fd_truncated;
    }
    if (truncated) {
      RecordDegradation(&result.stats, opts.budget, "violation-stats",
                        "partial-graph",
                        "budget exhausted while recounting FT-violations; "
                        "ft_violations_after is a lower bound");
    }
  }
  result.stats.repair_cost = TableRepairCost(table, result.repaired, model);
  result.stats.cells_changed = static_cast<int>(result.changes.size());
  std::unordered_set<int> touched;
  for (const CellChange& change : result.changes) touched.insert(change.row);
  result.stats.tuples_changed = static_cast<int>(touched.size());
  return result;
}

Result<RepairResult> Repairer::RepairAppended(
    const Table& table, int first_new_row,
    const std::vector<FD>& fds) const {
  if (first_new_row < 0 || first_new_row > table.num_rows()) {
    return Status::InvalidArgument(
        "first_new_row " + std::to_string(first_new_row) +
        " outside [0, " + std::to_string(table.num_rows()) + "]");
  }
  Repairer incremental(options_);
  for (int r = 0; r < first_new_row; ++r) {
    incremental.options_.trusted_rows.insert(r);
  }
  return incremental.Repair(table, fds);
}

Result<RepairResult> Repairer::RepairCFDs(const Table& table,
                                          const std::vector<CFD>& cfds) const {
  RepairResult result;
  result.repaired = table;
  DistanceModel model(table);

  for (const CFD& cfd : cfds) {
    const FD& fd = cfd.fd();
    FTR_RETURN_NOT_OK(ValidateFDs(table.schema(), {fd}));
    for (int p = 0; p < static_cast<int>(cfd.tableau().size()); ++p) {
      if (BudgetExhausted(options_.budget)) {
        if (!options_.fall_back_to_greedy) {
          return options_.budget->Check("CFD repair");
        }
        RecordDegradation(
            &result.stats, options_.budget,
            fd.name() + "#" + std::to_string(p), "skip",
            options_.budget->Check("CFD repair").message());
        continue;
      }
      // 1. Constant violations: pin the RHS constants directly.
      for (int r : cfd.ConstantViolations(result.repaired, p)) {
        const PatternRow& pat = cfd.tableau()[static_cast<size_t>(p)];
        for (int i = fd.lhs_size(); i < fd.num_attrs(); ++i) {
          const auto& constant = pat[static_cast<size_t>(i)];
          if (!constant.has_value()) continue;
          int col = fd.attrs()[static_cast<size_t>(i)];
          Value* cell = result.repaired.mutable_cell(r, col);
          if (*cell != *constant) {
            result.changes.push_back(CellChange{r, col, *cell, *constant});
            *cell = *constant;
          }
        }
      }
      // 2. Variable part: FT repair restricted to the matching tuples,
      // stepping down the same exact -> greedy -> partial ladder.
      std::vector<int> scope = cfd.ApplicableRows(result.repaired, p);
      if (scope.size() < 2) continue;
      ViolationGraph graph = ViolationGraph::Build(
          BuildPatternsForRows(result.repaired, fd.attrs(), scope), fd,
          model, options_.FTFor(fd), options_.budget);
      if (graph.truncated()) {
        if (!options_.fall_back_to_greedy) {
          return options_.budget->Check("violation graph construction");
        }
        RecordDegradation(&result.stats, options_.budget,
                          fd.name() + "#" + std::to_string(p),
                          "partial-graph",
                          "budget exhausted while building the violation "
                          "graph; undetected violations stay unrepaired");
      }
      SingleFDSolution solution;
      bool have_solution = false;
      if (options_.algorithm == RepairAlgorithm::kExact) {
        ExpansionConfig config;
        config.max_frontier = options_.max_frontier;
        config.budget = options_.budget;
        auto exact = SolveExpansionSingle(graph, config);
        if (exact.ok()) {
          solution = std::move(exact).value();
          have_solution = true;
        } else if (exact.status().IsResourceExhausted() &&
                   options_.fall_back_to_greedy) {
          RecordDegradation(&result.stats, options_.budget,
                            fd.name() + "#" + std::to_string(p),
                            "exact->greedy", exact.status().message());
        } else {
          return exact.status();
        }
      }
      if (!have_solution) {
        solution = SolveGreedySingle(graph, nullptr, nullptr,
                                     options_.budget);
        if (solution.truncated) {
          if (!options_.fall_back_to_greedy) {
            return options_.budget->Check("greedy cover");
          }
          RecordDegradation(
              &result.stats, options_.budget,
              fd.name() + "#" + std::to_string(p), "greedy->partial",
              "budget exhausted while growing the greedy set; uncovered "
              "patterns stay unrepaired");
        }
      }
      ApplySingleFDSolution(graph, fd, solution, &result.repaired,
                            &result.changes);
    }
  }

  result.stats.repair_cost = TableRepairCost(table, result.repaired, model);
  result.stats.cells_changed = static_cast<int>(result.changes.size());
  std::unordered_set<int> touched;
  for (const CellChange& change : result.changes) touched.insert(change.row);
  result.stats.tuples_changed = static_cast<int>(touched.size());
  return result;
}

}  // namespace ftrepair
