#include "core/soft_fd.h"

#include <algorithm>
#include <limits>

namespace ftrepair {

double SoftFdPenaltyRate(double confidence) {
  if (confidence >= 1.0) return std::numeric_limits<double>::infinity();
  if (confidence <= 0.0) return 0.0;
  return confidence / (1.0 - confidence);
}

void FilterSingleFDSolutionSoft(const ViolationGraph& graph, double rate,
                                SingleFDSolution* solution) {
  bool reverted = false;
  for (int i = 0; i < graph.num_patterns(); ++i) {
    int target = solution->repair_target[static_cast<size_t>(i)];
    if (target < 0) continue;
    const double count = static_cast<double>(graph.pattern(i).rows.size());
    double pairs = 0;
    double cost = 0;
    for (const ViolationGraph::Edge& e : graph.Neighbors(i)) {
      pairs += static_cast<double>(graph.pattern(e.to).rows.size());
      if (e.to == target) cost = count * e.unit_cost;
    }
    const double benefit = rate * count * pairs;
    if (cost > benefit) {
      solution->repair_target[static_cast<size_t>(i)] = -1;
      solution->cost -= cost;
      solution->chosen_set.push_back(i);
      reverted = true;
    }
  }
  if (reverted) {
    std::sort(solution->chosen_set.begin(), solution->chosen_set.end());
    solution->chosen_set.erase(std::unique(solution->chosen_set.begin(),
                                           solution->chosen_set.end()),
                               solution->chosen_set.end());
  }
}

void FilterMultiFDSolutionSoft(const ComponentContext& context,
                               const std::vector<double>& rates,
                               MultiFDSolution* solution) {
  for (size_t i = 0; i < solution->sigma_patterns.size(); ++i) {
    if (solution->targets[i].empty()) continue;
    const double count =
        static_cast<double>(solution->sigma_patterns[i].rows.size());
    double benefit = 0;
    for (size_t k = 0; k < context.graphs.size(); ++k) {
      const int phi = context.phi_of_sigma[k][i];
      double pairs = 0;
      for (const ViolationGraph::Edge& e : context.graphs[k].Neighbors(phi)) {
        pairs +=
            static_cast<double>(context.graphs[k].pattern(e.to).rows.size());
      }
      benefit += rates[k] * count * pairs;
    }
    const double unit =
        i < solution->target_costs.size() ? solution->target_costs[i] : 0.0;
    const double cost = count * unit;
    if (cost > benefit) {
      solution->targets[i].clear();
      if (i < solution->target_costs.size()) solution->target_costs[i] = 0;
      if (i < solution->prov_edges.size()) solution->prov_edges[i].clear();
      solution->cost -= cost;
    }
  }
}

}  // namespace ftrepair
