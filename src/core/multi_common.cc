#include "core/multi_common.h"

#include <algorithm>
#include <unordered_map>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/lazy_targets.h"

namespace ftrepair {

ComponentContext BuildComponentContext(const Table& table,
                                       const std::vector<const FD*>& fds,
                                       const DistanceModel& model,
                                       const RepairOptions& options) {
  ComponentContext ctx;
  ctx.fds = fds;
  ctx.component_cols = ComponentColumns(fds);
  ctx.sigma_patterns =
      options.group_tuples
          ? BuildPatterns(table, ctx.component_cols, options.columnar)
          : std::vector<Pattern>{};
  if (!options.group_tuples) {
    // Ablation: one pattern per row.
    for (int r = 0; r < table.num_rows(); ++r) {
      Pattern p;
      p.values.reserve(ctx.component_cols.size());
      for (int c : ctx.component_cols) p.values.push_back(table.cell(r, c));
      if (options.columnar) {
        p.codes.reserve(ctx.component_cols.size());
        for (int c : ctx.component_cols) p.codes.push_back(table.code(r, c));
      }
      p.rows.push_back(r);
      ctx.sigma_patterns.push_back(std::move(p));
    }
  }

  std::unordered_map<int, int> col_to_pos;
  for (size_t p = 0; p < ctx.component_cols.size(); ++p) {
    col_to_pos.emplace(ctx.component_cols[p], static_cast<int>(p));
  }

  size_t num_fds = fds.size();
  ctx.graphs.reserve(num_fds);
  ctx.phi_of_sigma.resize(num_fds);
  ctx.sigma_of_phi.resize(num_fds);
  ctx.ft.reserve(num_fds);
  for (size_t k = 0; k < num_fds; ++k) {
    const FD& fd = *fds[k];
    ctx.ft.push_back(options.FTFor(fd));
    // Group Sigma-patterns by their phi-projection.
    std::vector<Pattern> phi_patterns;
    std::unordered_map<std::vector<Value>, int, ProjectionHash> index;
    ctx.phi_of_sigma[k].resize(ctx.sigma_patterns.size());
    for (size_t i = 0; i < ctx.sigma_patterns.size(); ++i) {
      const Pattern& sigma = ctx.sigma_patterns[i];
      std::vector<Value> proj;
      proj.reserve(fd.attrs().size());
      for (int c : fd.attrs()) {
        proj.push_back(sigma.values[static_cast<size_t>(col_to_pos.at(c))]);
      }
      auto it = index.find(proj);
      int phi_id;
      if (it == index.end()) {
        phi_id = static_cast<int>(phi_patterns.size());
        index.emplace(proj, phi_id);
        Pattern phi;
        phi.values = std::move(proj);
        if (sigma.has_codes()) {
          // The phi-projection is a positional sub-projection, so its
          // codes are the matching sub-selection of the sigma codes.
          phi.codes.reserve(fd.attrs().size());
          for (int c : fd.attrs()) {
            phi.codes.push_back(
                sigma.codes[static_cast<size_t>(col_to_pos.at(c))]);
          }
        }
        phi_patterns.push_back(std::move(phi));
        ctx.sigma_of_phi[k].emplace_back();
      } else {
        phi_id = it->second;
      }
      ctx.phi_of_sigma[k][i] = phi_id;
      ctx.sigma_of_phi[k][static_cast<size_t>(phi_id)].push_back(
          static_cast<int>(i));
      // phi-pattern multiplicity = sum of underlying row counts.
      for (int row : ctx.sigma_patterns[i].rows) {
        phi_patterns[static_cast<size_t>(phi_id)].rows.push_back(row);
      }
    }
    ctx.graphs.push_back(ViolationGraph::Build(std::move(phi_patterns), fd,
                                               model, ctx.ft[k],
                                               options.budget));
  }
  return ctx;
}

size_t FindBestTargetLinear(const std::vector<std::vector<Value>>& targets,
                            const std::vector<Value>& tuple_proj,
                            const std::vector<int>& cols,
                            const DistanceModel& model, double* cost) {
  double best = ViolationGraph::kInfinity;
  size_t best_idx = 0;
  for (size_t t = 0; t < targets.size(); ++t) {
    double c = 0;
    for (size_t p = 0; p < cols.size() && c < best; ++p) {
      c += model.CellDistance(cols[p], tuple_proj[p], targets[t][p]);
    }
    if (c < best) {
      best = c;
      best_idx = t;
    }
  }
  *cost = best;
  return best_idx;
}

// Scope guard: accumulates target-assignment wall clock into
// stats->phases.targets_ms (stats may be null) and mirrors the search
// counters into the metrics registry on exit.
class TargetsInstrument {
 public:
  explicit TargetsInstrument(RepairStats* stats) : stats_(stats) {
    if (stats_ != nullptr) {
      visited_before_ = stats_->target_nodes_visited;
      pruned_before_ = stats_->target_nodes_pruned;
    }
  }
  ~TargetsInstrument() {
    static Counter* assign_calls =
        Metrics().GetCounter("ftrepair.targets.assign_calls");
    assign_calls->Increment();
    if (stats_ == nullptr) return;
    stats_->phases.targets_ms += timer_.Millis();
    static Counter* visited =
        Metrics().GetCounter("ftrepair.targets.nodes_visited");
    static Counter* pruned =
        Metrics().GetCounter("ftrepair.targets.nodes_pruned");
    visited->Increment(stats_->target_nodes_visited - visited_before_);
    pruned->Increment(stats_->target_nodes_pruned - pruned_before_);
  }

 private:
  RepairStats* stats_;
  uint64_t visited_before_ = 0;
  uint64_t pruned_before_ = 0;
  Timer timer_;
};

Result<MultiFDSolution> AssignTargets(
    const ComponentContext& context,
    const std::vector<std::vector<int>>& chosen, const DistanceModel& model,
    const RepairOptions& options, RepairStats* stats) {
  FTR_TRACE_SPAN("targets.assign");
  TargetsInstrument instrument(stats);
  MultiFDSolution solution;
  solution.component_cols = context.component_cols;
  solution.sigma_patterns = context.sigma_patterns;
  solution.targets.assign(context.sigma_patterns.size(), {});
  solution.target_costs.assign(context.sigma_patterns.size(), 0.0);
  solution.chosen = chosen;
  solution.cost = 0;

  size_t num_fds = context.fds.size();
  // Membership masks per FD.
  std::vector<std::vector<bool>> member(num_fds);
  std::vector<TargetTree::LevelInput> inputs(num_fds);
  for (size_t k = 0; k < num_fds; ++k) {
    member[k].assign(
        static_cast<size_t>(context.graphs[k].num_patterns()), false);
    for (int j : chosen[k]) member[k][static_cast<size_t>(j)] = true;
    inputs[k].fd = context.fds[k];
    for (int j : chosen[k]) {
      inputs[k].elements.push_back(context.graphs[k].pattern(j).values);
    }
  }

  // Which Sigma-patterns need repair?
  std::vector<size_t> dirty;
  for (size_t i = 0; i < context.sigma_patterns.size(); ++i) {
    bool all_member = true;
    for (size_t k = 0; k < num_fds && all_member; ++k) {
      int phi = context.phi_of_sigma[k][i];
      all_member = member[k][static_cast<size_t>(phi)];
    }
    if (!all_member) dirty.push_back(i);
  }
  if (dirty.empty()) return solution;

  if (options.provenance) {
    // Capture each dirty Sigma-pattern's implicating violation edges
    // now: the component context (and its graphs) is gone by the time
    // the solution is applied, so the lineage must ride the solution.
    // edge.fd is the component-local FD index; the apply layer remaps
    // it to the global FD table.
    solution.prov_edges.assign(context.sigma_patterns.size(), {});
    for (size_t i : dirty) {
      std::vector<ProvenanceEdge>& edges = solution.prov_edges[i];
      for (size_t k = 0; k < num_fds; ++k) {
        int phi = context.phi_of_sigma[k][i];
        for (const ViolationGraph::Edge& e :
             context.graphs[k].Neighbors(phi)) {
          ProvenanceEdge edge;
          edge.fd = static_cast<int>(k);
          edge.peer = e.to;
          edge.peer_values = context.graphs[k].pattern(e.to).values;
          edge.proj_dist = e.proj_dist;
          edge.unit_cost = e.unit_cost;
          edges.push_back(std::move(edge));
        }
      }
    }
  }

  auto tree_result = TargetTree::Build(inputs, context.component_cols,
                                       options.max_tree_nodes,
                                       options.memory);
  if (!tree_result.ok()) {
    if (tree_result.status().IsNotFound()) {
      // Empty join: leave tuples unrepaired, surface the flag.
      if (stats != nullptr) stats->join_empty = true;
      return solution;
    }
    if (tree_result.status().IsResourceExhausted() &&
        options.use_target_tree && !MemExhausted(options.memory)) {
      // The eager tree exploded; fall back to lazy materialization.
      auto lazy_result = LazyTargetSearch::Build(std::move(inputs),
                                                 context.component_cols);
      if (!lazy_result.ok()) {
        if (lazy_result.status().IsNotFound()) {
          if (stats != nullptr) stats->join_empty = true;
          return solution;
        }
        return lazy_result.status();
      }
      LazyTargetSearch lazy = std::move(lazy_result).value();
      const int threads = ResolveThreads(options.threads);
      if (threads > 1 && dirty.size() > 1) {
        // Same precompute-then-ordered-merge scheme as the eager tree
        // path below: FindBest is a const read of the lazy index, so
        // queries run concurrently and the merge replays them in dirty
        // order for serial-identical cost summation and stats.
        struct LazyPatternResult {
          LazyTargetSearch::QueryResult query;
          TargetTree::SearchStats search_stats;
          bool ran = false;
        };
        std::vector<LazyPatternResult> results(dirty.size());
        ParallelFor(
            static_cast<int>(dirty.size()), threads,
            [&](int d) {
              LazyPatternResult& r = results[static_cast<size_t>(d)];
              size_t i = dirty[static_cast<size_t>(d)];
              r.query = lazy.FindBest(context.sigma_patterns[i].values,
                                      model, options.max_target_visits,
                                      &r.search_stats, options.budget,
                                      options.memory);
              r.ran = true;
            },
            options.budget);
        for (size_t d = 0; d < dirty.size(); ++d) {
          LazyPatternResult& r = results[d];
          if (!r.ran) {
            solution.truncated = true;
            break;
          }
          size_t i = dirty[d];
          if (stats != nullptr) {
            stats->target_nodes_visited += r.search_stats.nodes_visited;
            stats->target_nodes_pruned += r.search_stats.nodes_pruned;
          }
          if (r.query.target.empty()) {
            if (r.query.truncated) {
              solution.truncated = true;
            } else if (stats != nullptr) {
              stats->join_empty = true;
            }
            continue;  // leave this pattern unrepaired
          }
          solution.targets[i] = std::move(r.query.target);
          solution.target_costs[i] = r.query.cost;
          solution.cost += context.sigma_patterns[i].count() * r.query.cost;
        }
        return solution;
      }
      for (size_t i : dirty) {
        if (BudgetExhausted(options.budget) ||
            MemExhausted(options.memory)) {
          // Remaining dirty patterns stay unrepaired (detect-only).
          solution.truncated = true;
          break;
        }
        TargetTree::SearchStats search_stats;
        LazyTargetSearch::QueryResult query =
            lazy.FindBest(context.sigma_patterns[i].values, model,
                          options.max_target_visits, &search_stats,
                          options.budget, options.memory);
        if (stats != nullptr) {
          stats->target_nodes_visited += search_stats.nodes_visited;
          stats->target_nodes_pruned += search_stats.nodes_pruned;
        }
        if (query.target.empty()) {
          if (query.truncated) {
            solution.truncated = true;
          } else if (stats != nullptr) {
            stats->join_empty = true;
          }
          continue;  // leave this pattern unrepaired
        }
        solution.targets[i] = std::move(query.target);
        solution.target_costs[i] = query.cost;
        solution.cost += context.sigma_patterns[i].count() * query.cost;
      }
      return solution;
    }
    return tree_result.status();
  }
  TargetTree tree = std::move(tree_result).value();

  if (options.use_target_tree) {
    const int threads = ResolveThreads(options.threads);
    if (threads > 1 && dirty.size() > 1) {
      // Per-pattern searches are independent reads of the immutable
      // tree and distance model; precompute them concurrently, then
      // merge strictly in dirty order so cost summation and the
      // search-counter accumulation keep the serial FP and ordering
      // semantics. Budget exhaustion skips unclaimed shards; the merge
      // stops at the first skipped pattern, mirroring the serial break
      // (exactly which later shards ran is the documented threads>1
      // truncation nondeterminism — threads=1 takes the loop below).
      struct PatternResult {
        std::vector<Value> target;
        double cost = 0;
        TargetTree::SearchStats search_stats;
        bool ran = false;
      };
      std::vector<PatternResult> results(dirty.size());
      ParallelFor(
          static_cast<int>(dirty.size()), threads,
          [&](int d) {
            PatternResult& r = results[static_cast<size_t>(d)];
            size_t i = dirty[static_cast<size_t>(d)];
            r.target =
                tree.FindBest(context.sigma_patterns[i].values, model,
                              &r.cost, &r.search_stats, options.budget,
                              options.memory);
            r.ran = true;
          },
          options.budget);
      for (size_t d = 0; d < dirty.size(); ++d) {
        PatternResult& r = results[d];
        if (!r.ran) {
          solution.truncated = true;
          break;
        }
        size_t i = dirty[d];
        if (stats != nullptr) {
          stats->target_nodes_visited += r.search_stats.nodes_visited;
          stats->target_nodes_pruned += r.search_stats.nodes_pruned;
        }
        if (r.target.empty()) {
          solution.truncated = true;  // budget ran out before any leaf
          continue;
        }
        solution.targets[i] = std::move(r.target);
        solution.target_costs[i] = r.cost;
        solution.cost += context.sigma_patterns[i].count() * r.cost;
      }
      return solution;
    }
    for (size_t i : dirty) {
      if (BudgetExhausted(options.budget) ||
          MemExhausted(options.memory)) {
        solution.truncated = true;
        break;
      }
      double cost = 0;
      TargetTree::SearchStats search_stats;
      solution.targets[i] =
          tree.FindBest(context.sigma_patterns[i].values, model, &cost,
                        &search_stats, options.budget, options.memory);
      if (stats != nullptr) {
        stats->target_nodes_visited += search_stats.nodes_visited;
        stats->target_nodes_pruned += search_stats.nodes_pruned;
      }
      if (solution.targets[i].empty()) {
        solution.truncated = true;  // budget ran out before any leaf
        continue;
      }
      solution.target_costs[i] = cost;
      solution.cost += context.sigma_patterns[i].count() * cost;
    }
  } else {
    std::vector<std::vector<Value>> targets = tree.EnumerateTargets();
    if (stats != nullptr) stats->targets_materialized += targets.size();
    for (size_t i : dirty) {
      if (BudgetExhausted(options.budget) ||
          MemExhausted(options.memory)) {
        solution.truncated = true;
        break;
      }
      double cost = 0;
      size_t t = FindBestTargetLinear(targets,
                                      context.sigma_patterns[i].values,
                                      context.component_cols, model, &cost);
      solution.targets[i] = targets[t];
      solution.target_costs[i] = cost;
      solution.cost += context.sigma_patterns[i].count() * cost;
    }
  }
  return solution;
}

}  // namespace ftrepair
