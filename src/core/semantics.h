#ifndef FTREPAIR_CORE_SEMANTICS_H_
#define FTREPAIR_CORE_SEMANTICS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "constraint/fd.h"
#include "core/repair_types.h"
#include "data/table.h"

namespace ftrepair {

/// The built-in repair semantics. Custom registrations are identified
/// by name only and carry kCustom.
enum class SemanticsId : uint8_t {
  /// The paper's cost model: minimize the Eq. 4 distance-weighted
  /// repair cost under fault-tolerant (Eq. 2) violation detection.
  kFtCost = 0,
  /// Soft FDs: each FD carries a confidence c in (0, 1]; violations of
  /// an FD are worth a penalty rate of c/(1-c) per violating pair, and
  /// a repair is kept only where its cost does not exceed the penalty
  /// it discharges. At c = 1 the rate is infinite — every repair is
  /// kept, and the run is decision-identical to ft-cost.
  kSoftFd,
  /// Minimum-change repair: minimize the number of changed cells.
  /// Detection collapses to classical FDs (tau = 0, lhs-only weights)
  /// and every change is priced with the indicator (discrete) metric.
  kCardinality,
  /// A semantics registered at runtime via SemanticsRegistry::Register.
  kCustom,
};

/// The canonical registry name of a built-in semantics ("ft-cost",
/// "soft-fd", "cardinality").
const char* SemanticsName(SemanticsId id);

/// \brief One pluggable repair semantics: what counts as a violation,
/// what a repair costs, and which solver strategy resolves a component.
///
/// Implementations are stateless (all run state lives in RepairOptions
/// and the pipeline); the registry hands out shared const pointers.
class RepairSemantics {
 public:
  virtual ~RepairSemantics() = default;

  /// Registry key, matched by RepairOptions::semantics (and the CLI's
  /// --semantics flag).
  virtual const char* name() const = 0;
  virtual SemanticsId id() const = 0;

  /// Whether Repairer::RepairCFDs accepts this semantics. CFD tableau
  /// constants are hard constraints, so only ft-cost supports them.
  virtual bool supports_cfds() const = 0;

  /// Checks `options` against `fds` before a run (e.g. soft-fd rejects
  /// confidence overrides that name no FD or fall outside (0, 1]).
  virtual Status Validate(const RepairOptions& options,
                          const std::vector<FD>& fds) const = 0;

  /// Runs the full repair pipeline under this semantics.
  virtual Result<RepairResult> Repair(const Table& table,
                                      const std::vector<FD>& fds,
                                      const RepairOptions& options) const = 0;

  /// This semantics' own consistency predicate: the number of residual
  /// violations `table` carries w.r.t. `fds` — FT-violations for
  /// ft-cost, FT-violations of the hard (confidence 1) FDs for
  /// soft-fd, classical exact violations for cardinality. Zero means
  /// the table satisfies the semantics' notion of consistency.
  virtual uint64_t CountResidualViolations(
      const Table& table, const std::vector<FD>& fds,
      const RepairOptions& options) const = 0;
};

/// \brief Process-wide name -> RepairSemantics registry.
///
/// The three built-ins are registered on first use; tests (or
/// embedders) may Register additional strategies. Lookups return
/// pointers that stay valid for the process lifetime — registered
/// semantics are never removed.
class SemanticsRegistry {
 public:
  static SemanticsRegistry& Instance();

  /// Registers a custom semantics. Fails on a duplicate name.
  Status Register(std::unique_ptr<RepairSemantics> semantics);

  /// nullptr when `name` is unknown.
  const RepairSemantics* Find(std::string_view name) const;

  /// Like Find, but an unknown name is an InvalidArgument listing the
  /// registered names — the single actionable error surfaced through
  /// Repairer and the CLI.
  Result<const RepairSemantics*> Resolve(std::string_view name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  SemanticsRegistry();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<RepairSemantics>> semantics_;
};

}  // namespace ftrepair

#endif  // FTREPAIR_CORE_SEMANTICS_H_
