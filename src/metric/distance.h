#ifndef FTREPAIR_METRIC_DISTANCE_H_
#define FTREPAIR_METRIC_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace ftrepair {

/// Which edit-distance implementation `EditDistance` /
/// `BoundedEditDistance` dispatch to. The kernels return identical
/// integers on every input (the differential fuzz suite enforces it),
/// so the choice is a pure speed knob; kAuto resolves to kBitParallel.
enum class DistanceKernel {
  kAuto,
  kScalar,       // banded dynamic-programming baseline
  kBitParallel,  // Myers' bit-parallel kernel (64 rows per word)
};

/// Process-wide kernel selection (`--distance-kernel`). Thread-safe:
/// concurrent readers see either the old or the new kernel, both of
/// which compute the same distances. Intended for A/B benchmarking and
/// the differential tests, set once before a run.
void SetDistanceKernel(DistanceKernel kernel);

/// The configured kernel (kAuto until SetDistanceKernel is called).
DistanceKernel ConfiguredDistanceKernel();

/// The kernel calls actually execute: ConfiguredDistanceKernel() with
/// kAuto resolved.
DistanceKernel EffectiveDistanceKernel();

/// "auto" / "scalar" / "bitparallel".
const char* DistanceKernelName(DistanceKernel kernel);

/// Parses a `--distance-kernel` value; returns false on unknown names.
bool ParseDistanceKernel(std::string_view name, DistanceKernel* out);

/// Levenshtein edit distance between `a` and `b` (unit costs).
size_t EditDistance(std::string_view a, std::string_view b);

/// Levenshtein distance with early exit: returns `cap + 1` as soon as the
/// distance provably exceeds `cap`. `cap + 1` therefore means "greater
/// than cap"; equivalently the result is min(EditDistance(a, b), cap + 1).
size_t BoundedEditDistance(std::string_view a, std::string_view b, size_t cap);

/// Fixed-kernel entry points. The un-suffixed functions above dispatch
/// between these; benchmarks and the differential tests call them
/// directly so both kernels stay exercised regardless of the process
/// setting. Same contracts as the dispatching functions.
size_t EditDistanceScalar(std::string_view a, std::string_view b);
size_t BoundedEditDistanceScalar(std::string_view a, std::string_view b,
                                 size_t cap);
size_t EditDistanceBitParallel(std::string_view a, std::string_view b);
size_t BoundedEditDistanceBitParallel(std::string_view a, std::string_view b,
                                      size_t cap);

/// Edit distance normalized into [0, 1] by the longer string length
/// (0 iff equal; 1 when every position differs). Two empty strings
/// have distance 0.
double NormalizedEditDistance(std::string_view a, std::string_view b);

/// Normalized-edit-distance lower bound from lengths alone:
/// |len(a) - len(b)| / max(len). Cheap pre-filter for similarity joins.
double EditDistanceLengthLowerBound(size_t len_a, size_t len_b);

/// Jaccard distance (1 - |A∩B| / |A∪B|) over whitespace-separated
/// tokens (any of " \t\n\r\f\v" separates).
double TokenJaccardDistance(std::string_view a, std::string_view b);

/// Jaro similarity-based distance (1 - jaro) in [0, 1]. Classic record
/// linkage metric; tolerant of transpositions.
double JaroDistance(std::string_view a, std::string_view b);

/// Jaro-Winkler distance: Jaro with the Winkler common-prefix bonus
/// (scaling factor 0.1, prefix capped at 4). Favors strings sharing a
/// prefix — a good fit for code-like attributes.
double JaroWinklerDistance(std::string_view a, std::string_view b);

/// Cosine distance over positional q-grams (default q = 2), in [0, 1].
/// Cheap alternative to edit distance for long strings.
double QGramCosineDistance(std::string_view a, std::string_view b,
                           size_t q = 2);

/// |a - b| / range, clamped to [0, 1]; `range <= 0` degrades to the
/// 0/1 discrete metric. This matches the paper's "normalize the
/// Euclidean distance by dividing the largest distance" (Ex. 7).
double NormalizedEuclideanDistance(double a, double b, double range);

}  // namespace ftrepair

#endif  // FTREPAIR_METRIC_DISTANCE_H_
