#include "metric/distance.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ftrepair {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({above + 1, row[j - 1] + 1, sub});
      diag = above;
    }
  }
  return row[b.size()];
}

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t cap) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > cap) return cap + 1;
  if (b.empty()) return a.size();
  const size_t kInf = cap + 1;
  std::vector<size_t> row(b.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(b.size(), cap); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    // Band: only columns with |i - j| <= cap can stay <= cap.
    size_t lo = (i > cap) ? i - cap : 1;
    size_t hi = std::min(b.size(), i + cap);
    // diag seeds D[i-1][lo-1]. The previous row's band started at
    // lo - 1 (the band advances one column per row once i > cap), so
    // row[lo - 1] still holds the genuine D[i-1][lo-1]; the dead-cell
    // cleanup below only zaps the column left of *that* band.
    size_t diag = row[lo - 1];
    // prev_left seeds D[i][lo-1]: column 0 of the new row is i (i
    // deletions) while i <= cap, and kInf otherwise; columns left of
    // the band are always kInf.
    size_t prev_left = (lo == 1 && i <= cap) ? i : kInf;
    if (lo == 1) row[0] = prev_left;
    size_t best = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      size_t above = row[j];
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t ins = prev_left == kInf ? kInf : prev_left + 1;
      size_t del = above == kInf ? kInf : above + 1;
      size_t cell = std::min({ins, del, sub});
      if (cell > kInf) cell = kInf;
      row[j] = cell;
      prev_left = cell;
      diag = above;
      best = std::min(best, cell);
    }
    if (lo >= 2) row[lo - 1] = kInf;  // cells left of the band are dead
    if (best > cap) return cap + 1;
  }
  return std::min(row[b.size()], kInf);
}

double NormalizedEditDistance(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 0.0;
  return static_cast<double>(EditDistance(a, b)) /
         static_cast<double>(max_len);
}

double EditDistanceLengthLowerBound(size_t len_a, size_t len_b) {
  size_t max_len = std::max(len_a, len_b);
  if (max_len == 0) return 0.0;
  size_t diff = len_a > len_b ? len_a - len_b : len_b - len_a;
  return static_cast<double>(diff) / static_cast<double>(max_len);
}

double TokenJaccardDistance(std::string_view a, std::string_view b) {
  auto tokenize = [](std::string_view s) {
    std::unordered_set<std::string> tokens;
    size_t i = 0;
    while (i < s.size()) {
      while (i < s.size() && s[i] == ' ') ++i;
      size_t start = i;
      while (i < s.size() && s[i] != ' ') ++i;
      if (i > start) tokens.emplace(s.substr(start, i - start));
    }
    return tokens;
  };
  auto ta = tokenize(a);
  auto tb = tokenize(b);
  if (ta.empty() && tb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& t : ta) inter += tb.count(t);
  size_t uni = ta.size() + tb.size() - inter;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

double JaroDistance(std::string_view a, std::string_view b) {
  if (a == b) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  size_t window = std::max(a.size(), b.size()) / 2;
  window = window > 0 ? window - 1 : 0;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 1.0;
  // Transpositions: matched characters out of order, halved.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  double jaro = (m / static_cast<double>(a.size()) +
                 m / static_cast<double>(b.size()) +
                 (m - static_cast<double>(transpositions) / 2.0) / m) /
                3.0;
  return 1.0 - jaro;
}

double JaroWinklerDistance(std::string_view a, std::string_view b) {
  double jaro_sim = 1.0 - JaroDistance(a, b);
  size_t prefix = 0;
  size_t cap = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < cap && a[prefix] == b[prefix]) ++prefix;
  double sim = jaro_sim + static_cast<double>(prefix) * 0.1 * (1 - jaro_sim);
  return 1.0 - sim;
}

double QGramCosineDistance(std::string_view a, std::string_view b,
                           size_t q) {
  if (a == b) return 0.0;
  if (q == 0) q = 1;
  auto profile = [q](std::string_view s) {
    std::unordered_map<std::string, double> grams;
    if (s.size() < q) {
      if (!s.empty()) grams[std::string(s)] += 1;
      return grams;
    }
    for (size_t i = 0; i + q <= s.size(); ++i) {
      grams[std::string(s.substr(i, q))] += 1;
    }
    return grams;
  };
  auto pa = profile(a);
  auto pb = profile(b);
  if (pa.empty() || pb.empty()) return 1.0;
  double dot = 0;
  double norm_a = 0;
  double norm_b = 0;
  for (const auto& [gram, count] : pa) {
    norm_a += count * count;
    auto it = pb.find(gram);
    if (it != pb.end()) dot += count * it->second;
  }
  for (const auto& [gram, count] : pb) norm_b += count * count;
  double denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  if (denom == 0) return 1.0;
  double d = 1.0 - dot / denom;
  return std::min(std::max(d, 0.0), 1.0);
}

double NormalizedEuclideanDistance(double a, double b, double range) {
  if (a == b) return 0.0;
  if (range <= 0) return 1.0;
  double d = std::fabs(a - b) / range;
  return std::min(d, 1.0);
}

}  // namespace ftrepair
