#include "metric/distance.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ftrepair {

namespace {

std::atomic<DistanceKernel> g_distance_kernel{DistanceKernel::kAuto};

// Scratch row of the scalar DP kernels. Thread-local so the detect
// hot loop never heap-allocates per call and concurrent builders never
// share state (TSan-clean by construction).
std::vector<size_t>& ScalarRow() {
  thread_local std::vector<size_t> row;
  return row;
}

// Thread-local state of the Myers kernels. Invariant between calls:
// `peq1` and `peqw` are all-zero — each call records the pattern bytes
// it sets in `touched` and zeroes exactly those entries before
// returning, so a fresh call never reads a stale mask for a text byte
// absent from its own pattern (which would corrupt EQ lookups), and
// the multi-word table survives stride (word-count) changes between
// calls without a full wipe.
struct MyersScratch {
  std::array<uint64_t, 256> peq1;       // single-word PEQ
  std::vector<uint64_t> peqw;           // multi-word PEQ, peqw[c * words + w]
  std::array<bool, 256> seen;           // multi-word dedup of touched bytes
  std::vector<unsigned char> touched;   // pattern bytes set this call
  std::vector<uint64_t> vp;             // multi-word vertical deltas
  std::vector<uint64_t> vn;
  MyersScratch() {
    peq1.fill(0);
    seen.fill(false);
  }
};

MyersScratch& Myers() {
  thread_local MyersScratch scratch;
  return scratch;
}

// One-word Myers/Hyyrö kernel: pattern rows live in one 64-bit word
// (m <= 64), the text is consumed column by column. Requires
// 1 <= pattern.size() <= 64, pattern.size() <= text.size(), and
// cap <= text.size() (callers clamp, which also rules out overflow in
// the early-exit arithmetic). Returns min(exact distance, cap + 1).
size_t MyersOneWord(std::string_view text, std::string_view pattern,
                    size_t cap) {
  MyersScratch& s = Myers();
  const size_t m = pattern.size();
  const size_t n = text.size();
  s.touched.clear();
  for (size_t r = 0; r < m; ++r) {
    unsigned char c = static_cast<unsigned char>(pattern[r]);
    if (s.peq1[c] == 0) s.touched.push_back(c);
    s.peq1[c] |= uint64_t{1} << r;
  }
  uint64_t vp = m == 64 ? ~uint64_t{0} : (uint64_t{1} << m) - 1;
  uint64_t vn = 0;
  size_t score = m;
  const uint64_t hibit = uint64_t{1} << (m - 1);
  size_t result = 0;
  bool clipped = false;
  for (size_t j = 0; j < n; ++j) {
    uint64_t eq = s.peq1[static_cast<unsigned char>(text[j])];
    uint64_t x = eq | vn;
    uint64_t d0 = (((eq & vp) + vp) ^ vp) | x;
    uint64_t hp = vn | ~(d0 | vp);
    uint64_t hn = d0 & vp;
    if (hp & hibit) {
      ++score;
    } else if (hn & hibit) {
      --score;
    }
    hp = (hp << 1) | 1;  // the shift-in encodes the D[0][j] = j boundary
    hn <<= 1;
    vp = hn | ~(d0 | hp);
    vn = d0 & hp;
    // The final score is reached from here by at most one decrement
    // per remaining column, so a score this far above cap cannot
    // recover: clip now.
    if (score > cap + (n - 1 - j)) {
      result = cap + 1;
      clipped = true;
      break;
    }
  }
  if (!clipped) result = score <= cap ? score : cap + 1;
  for (unsigned char c : s.touched) s.peq1[c] = 0;
  return result;
}

// Multi-word Myers kernel for patterns above 64 rows: blocks of 64
// rows each, carries flow strictly upward between blocks — the
// addition carry via two-step overflow detection, the HP/HN shift
// carries via the top bit of the block below (block 0 shifts in the
// D[0][j] = j boundary). Bits above row m-1 in the top block start as
// garbage and stay there harmlessly: no recurrence moves information
// downward. Same contract as MyersOneWord.
size_t MyersMultiWord(std::string_view text, std::string_view pattern,
                      size_t cap) {
  MyersScratch& s = Myers();
  const size_t m = pattern.size();
  const size_t n = text.size();
  const size_t words = (m + 63) / 64;
  if (s.peqw.size() < words * 256) s.peqw.resize(words * 256, 0);
  s.touched.clear();
  for (size_t r = 0; r < m; ++r) {
    unsigned char c = static_cast<unsigned char>(pattern[r]);
    if (!s.seen[c]) {
      s.seen[c] = true;
      s.touched.push_back(c);
    }
    s.peqw[c * words + r / 64] |= uint64_t{1} << (r % 64);
  }
  s.vp.assign(words, ~uint64_t{0});
  s.vn.assign(words, 0);
  size_t score = m;
  const size_t last = words - 1;
  const unsigned hi_shift = static_cast<unsigned>((m - 1) % 64);
  size_t result = 0;
  bool clipped = false;
  for (size_t j = 0; j < n; ++j) {
    const uint64_t* eq_row =
        &s.peqw[static_cast<size_t>(static_cast<unsigned char>(text[j])) *
                words];
    uint64_t add_carry = 0;
    uint64_t hp_in = 1;  // block 0 shifts in the D[0][j] = j boundary
    uint64_t hn_in = 0;
    for (size_t w = 0; w < words; ++w) {
      uint64_t eq = eq_row[w];
      uint64_t pv = s.vp[w];
      uint64_t mv = s.vn[w];
      uint64_t x = eq | mv;
      uint64_t ep = eq & pv;
      uint64_t sum = ep + pv;
      uint64_t c1 = sum < ep ? 1 : 0;
      uint64_t sum2 = sum + add_carry;
      uint64_t c2 = sum2 < sum ? 1 : 0;
      add_carry = c1 | c2;  // both carries cannot fire on one word
      uint64_t d0 = (sum2 ^ pv) | x;
      uint64_t hp = mv | ~(d0 | pv);
      uint64_t hn = d0 & pv;
      if (w == last) {
        score += (hp >> hi_shift) & 1;
        score -= (hn >> hi_shift) & 1;
      }
      uint64_t hp_sh = (hp << 1) | hp_in;
      uint64_t hn_sh = (hn << 1) | hn_in;
      hp_in = hp >> 63;
      hn_in = hn >> 63;
      s.vp[w] = hn_sh | ~(d0 | hp_sh);
      s.vn[w] = d0 & hp_sh;
    }
    if (score > cap + (n - 1 - j)) {
      result = cap + 1;
      clipped = true;
      break;
    }
  }
  if (!clipped) result = score <= cap ? score : cap + 1;
  for (unsigned char c : s.touched) {
    s.seen[c] = false;
    std::fill_n(s.peqw.begin() + static_cast<ptrdiff_t>(c * words), words,
                uint64_t{0});
  }
  return result;
}

// Dispatch on pattern width. `text` must be the longer string and
// `pattern` non-empty; `cap <= text.size()`.
size_t MyersBounded(std::string_view text, std::string_view pattern,
                    size_t cap) {
  return pattern.size() <= 64 ? MyersOneWord(text, pattern, cap)
                              : MyersMultiWord(text, pattern, cap);
}

}  // namespace

void SetDistanceKernel(DistanceKernel kernel) {
  g_distance_kernel.store(kernel, std::memory_order_relaxed);
}

DistanceKernel ConfiguredDistanceKernel() {
  return g_distance_kernel.load(std::memory_order_relaxed);
}

DistanceKernel EffectiveDistanceKernel() {
  DistanceKernel k = ConfiguredDistanceKernel();
  return k == DistanceKernel::kAuto ? DistanceKernel::kBitParallel : k;
}

const char* DistanceKernelName(DistanceKernel kernel) {
  switch (kernel) {
    case DistanceKernel::kScalar:
      return "scalar";
    case DistanceKernel::kBitParallel:
      return "bitparallel";
    case DistanceKernel::kAuto:
      break;
  }
  return "auto";
}

bool ParseDistanceKernel(std::string_view name, DistanceKernel* out) {
  if (name == "auto") {
    *out = DistanceKernel::kAuto;
  } else if (name == "scalar") {
    *out = DistanceKernel::kScalar;
  } else if (name == "bitparallel") {
    *out = DistanceKernel::kBitParallel;
  } else {
    return false;
  }
  return true;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  return EffectiveDistanceKernel() == DistanceKernel::kScalar
             ? EditDistanceScalar(a, b)
             : EditDistanceBitParallel(a, b);
}

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t cap) {
  return EffectiveDistanceKernel() == DistanceKernel::kScalar
             ? BoundedEditDistanceScalar(a, b, cap)
             : BoundedEditDistanceBitParallel(a, b, cap);
}

size_t EditDistanceScalar(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter
  if (b.empty()) return a.size();
  std::vector<size_t>& row = ScalarRow();
  row.resize(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({above + 1, row[j - 1] + 1, sub});
      diag = above;
    }
  }
  return row[b.size()];
}

size_t BoundedEditDistanceScalar(std::string_view a, std::string_view b,
                                 size_t cap) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > cap) return cap + 1;
  // A cap at or above the longer length never clips (the distance is
  // at most max(len)): the unbounded kernel is both cheaper and immune
  // to the cap + 1 sentinel wrapping on huge caps.
  if (cap >= a.size()) return EditDistanceScalar(a, b);
  if (b.empty()) return a.size();
  const size_t kInf = cap + 1;
  std::vector<size_t>& row = ScalarRow();
  row.assign(b.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(b.size(), cap); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    // Band: only columns with |i - j| <= cap can stay <= cap.
    size_t lo = (i > cap) ? i - cap : 1;
    size_t hi = std::min(b.size(), i + cap);
    // diag seeds D[i-1][lo-1]. The previous row's band started at
    // lo - 1 (the band advances one column per row once i > cap), so
    // row[lo - 1] still holds the genuine D[i-1][lo-1]; the dead-cell
    // cleanup below only zaps the column left of *that* band.
    size_t diag = row[lo - 1];
    // prev_left seeds D[i][lo-1]: column 0 of the new row is i (i
    // deletions) while i <= cap, and kInf otherwise; columns left of
    // the band are always kInf.
    size_t prev_left = (lo == 1 && i <= cap) ? i : kInf;
    if (lo == 1) row[0] = prev_left;
    size_t best = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      size_t above = row[j];
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t ins = prev_left == kInf ? kInf : prev_left + 1;
      size_t del = above == kInf ? kInf : above + 1;
      size_t cell = std::min({ins, del, sub});
      if (cell > kInf) cell = kInf;
      row[j] = cell;
      prev_left = cell;
      diag = above;
      best = std::min(best, cell);
    }
    if (lo >= 2) row[lo - 1] = kInf;  // cells left of the band are dead
    if (best > cap) return cap + 1;
  }
  return std::min(row[b.size()], kInf);
}

size_t EditDistanceBitParallel(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // a = text, b = pattern
  if (b.empty()) return a.size();
  // cap = text length never clips: the distance is at most a.size().
  return MyersBounded(a, b, a.size());
}

size_t BoundedEditDistanceBitParallel(std::string_view a, std::string_view b,
                                      size_t cap) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > cap) return cap + 1;
  if (b.empty()) return a.size();
  // Clamping to the text length keeps the kernel's early-exit
  // arithmetic overflow-free and never changes the result: a cap at or
  // above max(len) cannot clip, so the clamped run returns the exact
  // distance, which is <= cap.
  size_t eff_cap = std::min(cap, a.size());
  return MyersBounded(a, b, eff_cap);
}

double NormalizedEditDistance(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 0.0;
  return static_cast<double>(EditDistance(a, b)) /
         static_cast<double>(max_len);
}

double EditDistanceLengthLowerBound(size_t len_a, size_t len_b) {
  size_t max_len = std::max(len_a, len_b);
  if (max_len == 0) return 0.0;
  size_t diff = len_a > len_b ? len_a - len_b : len_b - len_a;
  return static_cast<double>(diff) / static_cast<double>(max_len);
}

double TokenJaccardDistance(std::string_view a, std::string_view b) {
  // Locale-independent whitespace (isspace would be UB on high bytes).
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  auto tokenize = [&is_space](std::string_view s) {
    std::unordered_set<std::string> tokens;
    size_t i = 0;
    while (i < s.size()) {
      while (i < s.size() && is_space(s[i])) ++i;
      size_t start = i;
      while (i < s.size() && !is_space(s[i])) ++i;
      if (i > start) tokens.emplace(s.substr(start, i - start));
    }
    return tokens;
  };
  auto ta = tokenize(a);
  auto tb = tokenize(b);
  if (ta.empty() && tb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& t : ta) inter += tb.count(t);
  size_t uni = ta.size() + tb.size() - inter;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

double JaroDistance(std::string_view a, std::string_view b) {
  if (a == b) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  size_t window = std::max(a.size(), b.size()) / 2;
  window = window > 0 ? window - 1 : 0;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 1.0;
  // Transpositions: matched characters out of order, halved.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  double jaro = (m / static_cast<double>(a.size()) +
                 m / static_cast<double>(b.size()) +
                 (m - static_cast<double>(transpositions) / 2.0) / m) /
                3.0;
  return 1.0 - jaro;
}

double JaroWinklerDistance(std::string_view a, std::string_view b) {
  double jaro_sim = 1.0 - JaroDistance(a, b);
  size_t prefix = 0;
  size_t cap = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < cap && a[prefix] == b[prefix]) ++prefix;
  double sim = jaro_sim + static_cast<double>(prefix) * 0.1 * (1 - jaro_sim);
  return 1.0 - sim;
}

double QGramCosineDistance(std::string_view a, std::string_view b,
                           size_t q) {
  if (a == b) return 0.0;
  if (q == 0) q = 1;
  auto profile = [q](std::string_view s) {
    std::unordered_map<std::string, double> grams;
    if (s.size() < q) {
      if (!s.empty()) grams[std::string(s)] += 1;
      return grams;
    }
    for (size_t i = 0; i + q <= s.size(); ++i) {
      grams[std::string(s.substr(i, q))] += 1;
    }
    return grams;
  };
  auto pa = profile(a);
  auto pb = profile(b);
  if (pa.empty() || pb.empty()) return 1.0;
  double dot = 0;
  double norm_a = 0;
  double norm_b = 0;
  for (const auto& [gram, count] : pa) {
    norm_a += count * count;
    auto it = pb.find(gram);
    if (it != pb.end()) dot += count * it->second;
  }
  for (const auto& [gram, count] : pb) norm_b += count * count;
  double denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  if (denom == 0) return 1.0;
  double d = 1.0 - dot / denom;
  return std::min(std::max(d, 0.0), 1.0);
}

double NormalizedEuclideanDistance(double a, double b, double range) {
  if (a == b) return 0.0;
  if (range <= 0) return 1.0;
  double d = std::fabs(a - b) / range;
  return std::min(d, 1.0);
}

}  // namespace ftrepair
