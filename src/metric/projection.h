#ifndef FTREPAIR_METRIC_PROJECTION_H_
#define FTREPAIR_METRIC_PROJECTION_H_

#include <vector>

#include "constraint/fd.h"
#include "data/table.h"

namespace ftrepair {

/// Per-column distance function choice. kAuto resolves to edit distance
/// for string columns and range-normalized Euclidean for numeric ones,
/// the paper's defaults (Eq. 1).
enum class ColumnMetric {
  kAuto,
  kEdit,
  kEuclidean,
  kJaccard,
  kJaroWinkler,
  kQGramCosine,
  kDiscrete,
};

/// \brief Normalized per-attribute distances over a fixed table schema.
///
/// A DistanceModel snapshots the numeric range of every column of the
/// *original dirty* table (used to normalize Euclidean distances) and
/// evaluates:
///   * `CellDistance`       — dist(t1[A], t2[A]) in [0, 1]   (Eq. 1)
///   * `ProjectionDistance` — weighted FD-projection distance  (Eq. 2)
///   * `RepairCost`         — unweighted sum over attributes   (Eq. 3)
///
/// The model is immutable after construction and shared by detection,
/// repair and evaluation so every component prices a change identically.
class DistanceModel {
 public:
  explicit DistanceModel(const Table& table);

  /// Overrides the metric for one column (defaults are kAuto).
  void SetColumnMetric(int col, ColumnMetric metric);

  /// Normalized distance between two cell values of column `col`.
  double CellDistance(int col, const Value& a, const Value& b) const;

  /// CellDistance with an early-exit budget for the edit-distance
  /// path. `cap` is the largest distance the caller still cares about
  /// (in normalized [0, 1] units). When the true distance is <= the
  /// character cap derived from it, the returned value is bit-identical
  /// to CellDistance. Otherwise returns a *lower bound* on the true
  /// distance and sets `*clipped = true` — the caller may only use a
  /// clipped result to reject, never as the exact distance. Metrics
  /// other than edit distance have no bounded kernel and always return
  /// the exact CellDistance with `*clipped` untouched.
  double CellDistanceCapped(int col, const Value& a, const Value& b,
                            double cap, bool* clipped) const;

  /// Eq. 2: w_l * sum_{A in X} dist + w_r * sum_{A in Y} dist.
  double ProjectionDistance(const FD& fd, const Row& t1, const Row& t2,
                            double w_l, double w_r) const;

  /// Eq. 3 restricted to `cols`: unweighted sum of cell distances.
  /// With cols = all columns this is the tuple repair cost; with
  /// cols = fd.attrs() it is the edge weight omega(u, v) of §3.
  double RepairCost(const std::vector<int>& cols, const Row& t1,
                    const Row& t2) const;

  /// Numeric range (max - min) of column `col`; 0 when unknown.
  double Range(int col) const { return ranges_[static_cast<size_t>(col)]; }

  /// Configured metric of column `col` (kAuto unless overridden).
  /// kAuto still resolves per value pair inside CellDistance; callers
  /// that need pair-independent guarantees (the blocking index) must
  /// combine this with knowledge of the column's value types.
  ColumnMetric column_metric(int col) const {
    return metrics_[static_cast<size_t>(col)];
  }

 private:
  std::vector<double> ranges_;
  std::vector<ColumnMetric> metrics_;
};

}  // namespace ftrepair

#endif  // FTREPAIR_METRIC_PROJECTION_H_
