#ifndef FTREPAIR_METRIC_PROJECTION_H_
#define FTREPAIR_METRIC_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "constraint/fd.h"
#include "data/table.h"

namespace ftrepair {

/// \brief Memo of *exact* cell distances keyed on (slot, code, code).
///
/// `slot` is a caller-chosen dense index (the graph build uses the FD
/// attribute position); the code pair is the two cells' dictionary
/// codes in that column. Symmetric: (a, b) and (b, a) share an entry,
/// which is sound because every column metric is symmetric.
///
/// Storage is a per-slot open-addressing table (linear probing,
/// power-of-two capacity). The packed key `(hi << 32) | lo` is always
/// nonzero — equal codes short-circuit before the memo, so hi >= 1 —
/// which makes 0 a safe empty sentinel and keeps a probe to one mix,
/// one mask, and (almost always) one cache line. Slots can be disabled
/// (`SetSlotEnabled`): a disabled slot never hits and never stores,
/// turning both calls into a single branch. Callers disable slots whose
/// code pairs are too distinct to repeat, where a probe is pure loss.
///
/// Only exact distances may be inserted — never a clipped lower bound
/// from the capped kernel. On a hit the caller may substitute the
/// memoized exact value wherever it would otherwise have computed a
/// capped one: a capped result is either already exact or only ever
/// compared against a threshold that the exact value decides
/// identically (see PERFORMANCE.md, "Dictionary-join equivalence").
class PairDistanceMemo {
 public:
  explicit PairDistanceMemo(size_t num_slots) : slots_(num_slots) {}

  /// Turns one slot on or off (all slots start enabled). Disabling
  /// never changes emitted distances — it only forfeits reuse.
  void SetSlotEnabled(size_t slot, bool enabled) {
    slots_[slot].enabled = enabled;
  }

  /// The memoized exact distance, or nullptr when absent.
  const double* Find(size_t slot, uint32_t a, uint32_t b) const {
    const Slot& s = slots_[slot];
    if (!s.enabled || s.size == 0) return nullptr;
    uint64_t key = Key(a, b);
    size_t mask = s.keys.size() - 1;
    for (size_t i = HashMix64(key) & mask;; i = (i + 1) & mask) {
      if (s.keys[i] == key) return &s.vals[i];
      if (s.keys[i] == 0) return nullptr;
    }
  }

  /// Records an exact distance (callers must never pass clipped ones).
  void Insert(size_t slot, uint32_t a, uint32_t b, double d) {
    Slot& s = slots_[slot];
    if (!s.enabled) return;
    if (s.keys.empty() || s.size * 4 >= s.keys.size() * 3) Grow(&s);
    uint64_t key = Key(a, b);
    size_t mask = s.keys.size() - 1;
    for (size_t i = HashMix64(key) & mask;; i = (i + 1) & mask) {
      if (s.keys[i] == key) return;  // already memoized (same exact d)
      if (s.keys[i] == 0) {
        s.keys[i] = key;
        s.vals[i] = d;
        ++s.size;
        return;
      }
    }
  }

 private:
  struct Slot {
    std::vector<uint64_t> keys;  // 0 = empty (packed keys are nonzero)
    std::vector<double> vals;
    size_t size = 0;
    bool enabled = true;
  };

  static uint64_t Key(uint32_t a, uint32_t b) {
    uint64_t lo = a < b ? a : b;
    uint64_t hi = a < b ? b : a;
    return (hi << 32) | lo;
  }

  static void Grow(Slot* s) {
    size_t cap = s->keys.empty() ? 64 : s->keys.size() * 2;
    std::vector<uint64_t> keys(cap, 0);
    std::vector<double> vals(cap, 0.0);
    size_t mask = cap - 1;
    for (size_t i = 0; i < s->keys.size(); ++i) {
      uint64_t key = s->keys[i];
      if (key == 0) continue;
      size_t j = HashMix64(key) & mask;
      while (keys[j] != 0) j = (j + 1) & mask;
      keys[j] = key;
      vals[j] = s->vals[i];
    }
    s->keys = std::move(keys);
    s->vals = std::move(vals);
  }

  std::vector<Slot> slots_;
};

/// Per-column distance function choice. kAuto resolves to edit distance
/// for string columns and range-normalized Euclidean for numeric ones,
/// the paper's defaults (Eq. 1).
enum class ColumnMetric {
  kAuto,
  kEdit,
  kEuclidean,
  kJaccard,
  kJaroWinkler,
  kQGramCosine,
  kDiscrete,
};

/// \brief Normalized per-attribute distances over a fixed table schema.
///
/// A DistanceModel snapshots the numeric range of every column of the
/// *original dirty* table (used to normalize Euclidean distances) and
/// evaluates:
///   * `CellDistance`       — dist(t1[A], t2[A]) in [0, 1]   (Eq. 1)
///   * `ProjectionDistance` — weighted FD-projection distance  (Eq. 2)
///   * `RepairCost`         — unweighted sum over attributes   (Eq. 3)
///
/// The model is immutable after construction and shared by detection,
/// repair and evaluation so every component prices a change identically.
class DistanceModel {
 public:
  explicit DistanceModel(const Table& table);

  /// Overrides the metric for one column (defaults are kAuto).
  void SetColumnMetric(int col, ColumnMetric metric);

  /// Normalized distance between two cell values of column `col`.
  double CellDistance(int col, const Value& a, const Value& b) const;

  /// CellDistance with an early-exit budget for the edit-distance
  /// path. `cap` is the largest distance the caller still cares about
  /// (in normalized [0, 1] units). When the true distance is <= the
  /// character cap derived from it, the returned value is bit-identical
  /// to CellDistance. Otherwise returns a *lower bound* on the true
  /// distance and sets `*clipped = true` — the caller may only use a
  /// clipped result to reject, never as the exact distance. Metrics
  /// other than edit distance have no bounded kernel and always return
  /// the exact CellDistance with `*clipped` untouched.
  double CellDistanceCapped(int col, const Value& a, const Value& b,
                            double cap, bool* clipped) const;

  /// CellDistance for two cells known by dictionary code. Equal codes
  /// short-circuit to 0 without touching the values (interning makes
  /// equal codes equal values); otherwise the memo is consulted and,
  /// on a miss, filled with the freshly computed exact distance.
  /// `slot` indexes the memo (callers use the FD attribute position).
  /// Bit-identical to CellDistance(col, a, b) in every case.
  double CellDistanceInterned(int col, const Value& a, const Value& b,
                              uint32_t ca, uint32_t cb, size_t slot,
                              PairDistanceMemo* memo) const;

  /// CellDistanceCapped on coded cells. A memo hit returns the exact
  /// distance with `*clipped` untouched — substituting exact for
  /// capped is sound because an unclipped capped result *is* the exact
  /// distance and a clipped one is only ever used to reject against a
  /// threshold the exact value rejects identically. A miss runs the
  /// capped kernel and memoizes only when the result was not clipped.
  double CellDistanceCappedInterned(int col, const Value& a, const Value& b,
                                    uint32_t ca, uint32_t cb, double cap,
                                    bool* clipped, size_t slot,
                                    PairDistanceMemo* memo) const;

  /// Eq. 2: w_l * sum_{A in X} dist + w_r * sum_{A in Y} dist.
  double ProjectionDistance(const FD& fd, const Row& t1, const Row& t2,
                            double w_l, double w_r) const;

  /// Eq. 3 restricted to `cols`: unweighted sum of cell distances.
  /// With cols = all columns this is the tuple repair cost; with
  /// cols = fd.attrs() it is the edge weight omega(u, v) of §3.
  double RepairCost(const std::vector<int>& cols, const Row& t1,
                    const Row& t2) const;

  /// Numeric range (max - min) of column `col`; 0 when unknown.
  double Range(int col) const { return ranges_[static_cast<size_t>(col)]; }

  /// Configured metric of column `col` (kAuto unless overridden).
  /// kAuto still resolves per value pair inside CellDistance; callers
  /// that need pair-independent guarantees (the blocking index) must
  /// combine this with knowledge of the column's value types.
  ColumnMetric column_metric(int col) const {
    return metrics_[static_cast<size_t>(col)];
  }

 private:
  /// True when `col`'s effective metric is a string kernel — the only
  /// case where a memo probe is cheaper than recomputation.
  bool MemoPays(int col, const Value& a, const Value& b) const;

  std::vector<double> ranges_;
  std::vector<ColumnMetric> metrics_;
};

}  // namespace ftrepair

#endif  // FTREPAIR_METRIC_PROJECTION_H_
