#include "metric/projection.h"

#include "metric/distance.h"

namespace ftrepair {

DistanceModel::DistanceModel(const Table& table) {
  int n = table.num_columns();
  ranges_.assign(static_cast<size_t>(n), 0.0);
  metrics_.assign(static_cast<size_t>(n), ColumnMetric::kAuto);
  for (int c = 0; c < n; ++c) {
    double mn = 0, mx = 0;
    if (table.NumericRange(c, &mn, &mx)) {
      ranges_[static_cast<size_t>(c)] = mx - mn;
    }
  }
}

void DistanceModel::SetColumnMetric(int col, ColumnMetric metric) {
  metrics_[static_cast<size_t>(col)] = metric;
}

double DistanceModel::CellDistance(int col, const Value& a,
                                   const Value& b) const {
  if (a == b) return 0.0;
  if (a.is_null() || b.is_null()) return 1.0;

  ColumnMetric metric = metrics_[static_cast<size_t>(col)];
  if (metric == ColumnMetric::kAuto) {
    metric = (a.is_number() && b.is_number()) ? ColumnMetric::kEuclidean
                                              : ColumnMetric::kEdit;
  }
  switch (metric) {
    case ColumnMetric::kDiscrete:
      return 1.0;
    case ColumnMetric::kEuclidean:
      if (a.is_number() && b.is_number()) {
        return NormalizedEuclideanDistance(a.num(), b.num(),
                                           ranges_[static_cast<size_t>(col)]);
      }
      // A typo turned a numeric cell into text: maximally dirty.
      return 1.0;
    case ColumnMetric::kJaccard:
      return TokenJaccardDistance(a.ToString(), b.ToString());
    case ColumnMetric::kJaroWinkler:
      return JaroWinklerDistance(a.ToString(), b.ToString());
    case ColumnMetric::kQGramCosine:
      return QGramCosineDistance(a.ToString(), b.ToString());
    case ColumnMetric::kEdit:
    case ColumnMetric::kAuto:
      return NormalizedEditDistance(a.ToString(), b.ToString());
  }
  return 1.0;
}

double DistanceModel::ProjectionDistance(const FD& fd, const Row& t1,
                                         const Row& t2, double w_l,
                                         double w_r) const {
  double lhs = 0;
  for (int c : fd.lhs()) {
    lhs += CellDistance(c, t1[static_cast<size_t>(c)],
                        t2[static_cast<size_t>(c)]);
  }
  double rhs = 0;
  for (int c : fd.rhs()) {
    rhs += CellDistance(c, t1[static_cast<size_t>(c)],
                        t2[static_cast<size_t>(c)]);
  }
  return w_l * lhs + w_r * rhs;
}

double DistanceModel::RepairCost(const std::vector<int>& cols, const Row& t1,
                                 const Row& t2) const {
  double cost = 0;
  for (int c : cols) {
    cost += CellDistance(c, t1[static_cast<size_t>(c)],
                         t2[static_cast<size_t>(c)]);
  }
  return cost;
}

}  // namespace ftrepair
