#include "metric/projection.h"

#include <algorithm>
#include <string>

#include "metric/distance.h"

namespace ftrepair {

DistanceModel::DistanceModel(const Table& table) {
  int n = table.num_columns();
  ranges_.assign(static_cast<size_t>(n), 0.0);
  metrics_.assign(static_cast<size_t>(n), ColumnMetric::kAuto);
  for (int c = 0; c < n; ++c) {
    double mn = 0, mx = 0;
    if (table.NumericRange(c, &mn, &mx)) {
      ranges_[static_cast<size_t>(c)] = mx - mn;
    }
  }
}

void DistanceModel::SetColumnMetric(int col, ColumnMetric metric) {
  metrics_[static_cast<size_t>(col)] = metric;
}

double DistanceModel::CellDistance(int col, const Value& a,
                                   const Value& b) const {
  if (a == b) return 0.0;
  if (a.is_null() || b.is_null()) return 1.0;

  ColumnMetric metric = metrics_[static_cast<size_t>(col)];
  if (metric == ColumnMetric::kAuto) {
    metric = (a.is_number() && b.is_number()) ? ColumnMetric::kEuclidean
                                              : ColumnMetric::kEdit;
  }
  switch (metric) {
    case ColumnMetric::kDiscrete:
      return 1.0;
    case ColumnMetric::kEuclidean:
      if (a.is_number() && b.is_number()) {
        return NormalizedEuclideanDistance(a.num(), b.num(),
                                           ranges_[static_cast<size_t>(col)]);
      }
      // A typo turned a numeric cell into text: maximally dirty.
      return 1.0;
    case ColumnMetric::kJaccard:
      return TokenJaccardDistance(a.ToString(), b.ToString());
    case ColumnMetric::kJaroWinkler:
      return JaroWinklerDistance(a.ToString(), b.ToString());
    case ColumnMetric::kQGramCosine:
      return QGramCosineDistance(a.ToString(), b.ToString());
    case ColumnMetric::kEdit:
    case ColumnMetric::kAuto:
      return NormalizedEditDistance(a.ToString(), b.ToString());
  }
  return 1.0;
}

double DistanceModel::CellDistanceCapped(int col, const Value& a,
                                         const Value& b, double cap,
                                         bool* clipped) const {
  if (a == b) return 0.0;
  if (a.is_null() || b.is_null()) return 1.0;

  ColumnMetric metric = metrics_[static_cast<size_t>(col)];
  if (metric == ColumnMetric::kAuto) {
    metric = (a.is_number() && b.is_number()) ? ColumnMetric::kEuclidean
                                              : ColumnMetric::kEdit;
  }
  if (metric != ColumnMetric::kEdit) return CellDistance(col, a, b);

  std::string sa = a.ToString();
  std::string sb = b.ToString();
  size_t max_len = std::max(sa.size(), sb.size());
  if (max_len == 0) return 0.0;
  // cap >= 1 admits every normalized distance: no point banding.
  if (cap >= 1.0) return NormalizedEditDistance(sa, sb);
  // Largest character count whose normalized distance is <= cap.
  size_t cap_chars =
      cap <= 0 ? 0
               : static_cast<size_t>(cap * static_cast<double>(max_len));
  if (cap_chars >= max_len) return NormalizedEditDistance(sa, sb);
  size_t ed = BoundedEditDistance(sa, sb, cap_chars);
  if (ed <= cap_chars) {
    // Exact: same integer distance, same division as CellDistance.
    return static_cast<double>(ed) / static_cast<double>(max_len);
  }
  if (clipped != nullptr) *clipped = true;
  return static_cast<double>(cap_chars + 1) / static_cast<double>(max_len);
}

bool DistanceModel::MemoPays(int col, const Value& a, const Value& b) const {
  // The memo costs one hash probe (and one insert on a miss). That
  // only beats recomputation when the distance itself is a string
  // kernel; discrete equality and the numeric subtraction are cheaper
  // than the probe, so those columns bypass the memo entirely.
  ColumnMetric metric = metrics_[static_cast<size_t>(col)];
  if (metric == ColumnMetric::kAuto) return !(a.is_number() && b.is_number());
  return metric != ColumnMetric::kDiscrete &&
         metric != ColumnMetric::kEuclidean;
}

double DistanceModel::CellDistanceInterned(int col, const Value& a,
                                           const Value& b, uint32_t ca,
                                           uint32_t cb, size_t slot,
                                           PairDistanceMemo* memo) const {
  if (ca == cb) return 0.0;  // equal codes <=> equal values => dist 0
  if (!MemoPays(col, a, b)) return CellDistance(col, a, b);
  if (const double* hit = memo->Find(slot, ca, cb)) return *hit;
  double d = CellDistance(col, a, b);
  memo->Insert(slot, ca, cb, d);
  return d;
}

double DistanceModel::CellDistanceCappedInterned(
    int col, const Value& a, const Value& b, uint32_t ca, uint32_t cb,
    double cap, bool* clipped, size_t slot, PairDistanceMemo* memo) const {
  if (ca == cb) return 0.0;
  if (!MemoPays(col, a, b)) {
    return CellDistanceCapped(col, a, b, cap, clipped);
  }
  if (const double* hit = memo->Find(slot, ca, cb)) return *hit;
  bool was_clipped = false;
  double d = CellDistanceCapped(col, a, b, cap, &was_clipped);
  if (was_clipped) {
    // A clipped value is a lower bound tied to this cap — not safe to
    // reuse under another cap, so it never enters the memo.
    if (clipped != nullptr) *clipped = true;
    return d;
  }
  memo->Insert(slot, ca, cb, d);
  return d;
}

double DistanceModel::ProjectionDistance(const FD& fd, const Row& t1,
                                         const Row& t2, double w_l,
                                         double w_r) const {
  double lhs = 0;
  for (int c : fd.lhs()) {
    lhs += CellDistance(c, t1[static_cast<size_t>(c)],
                        t2[static_cast<size_t>(c)]);
  }
  double rhs = 0;
  for (int c : fd.rhs()) {
    rhs += CellDistance(c, t1[static_cast<size_t>(c)],
                        t2[static_cast<size_t>(c)]);
  }
  return w_l * lhs + w_r * rhs;
}

double DistanceModel::RepairCost(const std::vector<int>& cols, const Row& t1,
                                 const Row& t2) const {
  double cost = 0;
  for (int c : cols) {
    cost += CellDistance(c, t1[static_cast<size_t>(c)],
                         t2[static_cast<size_t>(c)]);
  }
  return cost;
}

}  // namespace ftrepair
