#ifndef FTREPAIR_EVAL_QUALITY_H_
#define FTREPAIR_EVAL_QUALITY_H_

#include "data/table.h"

namespace ftrepair {

struct QualityOptions {
  /// Credit for a cell repaired to the llun variable (Llunatic's
  /// "partially correct change", Metric 0.5 in §6.4).
  double partial_credit = 0.5;
};

/// Cell-level repair quality (§6.1 "Measuring quality").
struct Quality {
  /// Correctly repaired cells (partial-credit weighted).
  double correct = 0;
  /// Cells changed by the repair.
  double repaired = 0;
  /// Erroneous cells in the dirty table.
  double errors = 0;

  /// correct / repaired (1 when nothing was repaired).
  double precision = 1;
  /// correct-of-erroneous / errors (1 when nothing was erroneous).
  double recall = 1;
  double f1 = 1;
};

/// Scores `repaired` against ground `truth`, both relative to `dirty`:
///   precision = (repairs that restored the true value) / (all repairs)
///   recall    = (errors whose true value was restored) / (all errors)
/// A cell repaired to LlunValue() earns `partial_credit` toward both
/// numerators (and a full unit in the precision denominator).
Quality EvaluateRepair(const Table& dirty, const Table& repaired,
                       const Table& truth, const QualityOptions& options = {});

}  // namespace ftrepair

#endif  // FTREPAIR_EVAL_QUALITY_H_
