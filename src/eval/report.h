#ifndef FTREPAIR_EVAL_REPORT_H_
#define FTREPAIR_EVAL_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace ftrepair {

/// \brief Fixed-width text table printer for bench output — every bench
/// binary prints its figure/table as one of these.
class Report {
 public:
  /// `title` is printed above the table (e.g. "Figure 5(a): HOSP
  /// precision, varying #tuples").
  explicit Report(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles to 3 decimals.
  static std::string Num(double v, int decimals = 3);

  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftrepair

#endif  // FTREPAIR_EVAL_REPORT_H_
