#include "eval/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace ftrepair {

void Report::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Report::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Report::Num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

void Report::Print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell;
      for (size_t pad = cell.size(); pad < widths[c] + 2; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
  os << '\n';
}

}  // namespace ftrepair
