#include "eval/experiment.h"

#include "baseline/llunatic.h"
#include "baseline/nadeef.h"
#include "baseline/urm.h"
#include "common/timer.h"
#include "core/repairer.h"

namespace ftrepair {

const char* SystemName(SystemUnderTest system) {
  switch (system) {
    case SystemUnderTest::kExpansion:
      return "Expansion";
    case SystemUnderTest::kGreedy:
      return "Greedy";
    case SystemUnderTest::kAppro:
      return "Appro";
    case SystemUnderTest::kNadeef:
      return "Nadeef";
    case SystemUnderTest::kUrm:
      return "URM";
    case SystemUnderTest::kLlunatic:
      return "Llunatic";
  }
  return "?";
}

Result<ExperimentRow> RunExperiment(const Dataset& dataset,
                                    SystemUnderTest system,
                                    const ExperimentConfig& config) {
  Table truth = config.num_rows > 0 ? dataset.clean.Head(config.num_rows)
                                    : dataset.clean;
  std::vector<FD> fds = dataset.fds;
  if (config.num_fds > 0 &&
      config.num_fds < static_cast<int>(fds.size())) {
    fds.resize(static_cast<size_t>(config.num_fds));
  }
  FTR_ASSIGN_OR_RETURN(Table dirty,
                       InjectErrors(truth, fds, config.noise, nullptr));

  RepairOptions repair = config.repair;
  if (config.use_recommended_tau) {
    for (const auto& [name, tau] : dataset.recommended_tau) {
      repair.tau_by_fd[name] = tau;
    }
    repair.w_l = dataset.recommended_w_l;
    repair.w_r = dataset.recommended_w_r;
  }

  ExperimentRow row;
  Timer timer;
  Table repaired;
  switch (system) {
    case SystemUnderTest::kExpansion:
    case SystemUnderTest::kGreedy:
    case SystemUnderTest::kAppro: {
      repair.algorithm = system == SystemUnderTest::kExpansion
                             ? RepairAlgorithm::kExact
                             : system == SystemUnderTest::kGreedy
                                   ? RepairAlgorithm::kGreedy
                                   : RepairAlgorithm::kApproJoin;
      Repairer repairer(repair);
      FTR_ASSIGN_OR_RETURN(RepairResult result, repairer.Repair(dirty, fds));
      row.stats = result.stats;
      repaired = std::move(result.repaired);
      break;
    }
    case SystemUnderTest::kNadeef: {
      FTR_ASSIGN_OR_RETURN(RepairResult result, NadeefRepair(dirty, fds));
      row.stats = result.stats;
      repaired = std::move(result.repaired);
      break;
    }
    case SystemUnderTest::kUrm: {
      FTR_ASSIGN_OR_RETURN(RepairResult result, UrmRepair(dirty, fds));
      row.stats = result.stats;
      repaired = std::move(result.repaired);
      break;
    }
    case SystemUnderTest::kLlunatic: {
      FTR_ASSIGN_OR_RETURN(RepairResult result, LlunaticRepair(dirty, fds));
      row.stats = result.stats;
      repaired = std::move(result.repaired);
      break;
    }
  }
  row.seconds = timer.Seconds();
  row.quality = EvaluateRepair(dirty, repaired, truth);
  return row;
}

}  // namespace ftrepair
