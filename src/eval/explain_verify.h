#ifndef FTREPAIR_EVAL_EXPLAIN_VERIFY_H_
#define FTREPAIR_EVAL_EXPLAIN_VERIFY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace ftrepair {

/// \brief Outcome of independently replaying an explain report.
///
/// `errors` holds one human-readable line per claim that failed to
/// verify (capped; `errors_truncated` flags overflow). An empty list
/// means every recomputed quantity matched the report.
struct ExplainVerifyReport {
  int decisions_checked = 0;
  int edges_checked = 0;
  int changes_checked = 0;
  /// FT-violation counts were recomputed and cross-checked (only done
  /// when the report claims exact counts).
  bool violations_recounted = false;
  std::vector<std::string> errors;
  bool errors_truncated = false;

  bool ok() const { return errors.empty() && !errors_truncated; }
};

/// \brief Replay-verifies an explain report against the input table it
/// claims to describe.
///
/// The verifier shares no state with the repair run that produced the
/// report: it re-derives every checkable claim from the report's own
/// self-contained value vectors plus `input` —
///   * the change log replays cleanly (each old value matches the
///     evolving cell, each claimed cost delta telescopes against the
///     input within `tolerance`),
///   * the ledger total equals both the sum of the deltas and the
///     reported repair cost, and the reported repair cost equals an
///     independent Eq. 4 recomputation on the reconstructed table,
///   * every decision's unit cost re-derives from its source/target
///     values (Eq. 3), every violation edge's projection distance and
///     unit cost re-derive from the peer values (Eq. 2/3) and respect
///     the FD's tau,
///   * every change points at a decision that covers its row and
///     column and targets exactly the value written,
///   * when the report claims exact violation stats, the FT-violation
///     counts recount to the reported before/after numbers on the
///     input and the reconstructed repaired table.
///
/// Structural problems (unparsable JSON, unknown schema version, shape
/// mismatches against `input`) return an error Status; semantic
/// mismatches are collected into ExplainVerifyReport::errors.
Result<ExplainVerifyReport> VerifyExplainReport(const Table& input,
                                                std::string_view report_json,
                                                double tolerance = 1e-9);

}  // namespace ftrepair

#endif  // FTREPAIR_EVAL_EXPLAIN_VERIFY_H_
