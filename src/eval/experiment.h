#ifndef FTREPAIR_EVAL_EXPERIMENT_H_
#define FTREPAIR_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/repair_types.h"
#include "eval/quality.h"
#include "gen/dataset.h"
#include "gen/error_injector.h"

namespace ftrepair {

/// The systems §6 compares. The first three are this paper's
/// algorithms; the rest are the reimplemented comparators.
enum class SystemUnderTest {
  kExpansion,  // Expansion-S / Expansion-M
  kGreedy,     // Greedy-S / Greedy-M
  kAppro,      // Greedy-S / Appro-M
  kNadeef,
  kUrm,
  kLlunatic,
};

const char* SystemName(SystemUnderTest system);

/// One experiment cell: a dataset slice + noise + one system.
struct ExperimentConfig {
  /// Rows taken from the front of the dataset.
  int num_rows = 0;  // 0 = all
  /// FDs taken from the front of the dataset FD list (paper's #-FDs
  /// factor). 0 = all.
  int num_fds = 0;
  NoiseOptions noise;
  RepairOptions repair;
  /// Use the dataset's recommended per-FD taus (default) or the
  /// repair.default_tau for every FD.
  bool use_recommended_tau = true;
};

/// Outcome of one run.
struct ExperimentRow {
  Quality quality;
  double seconds = 0;
  RepairStats stats;
};

/// Runs `system` on a dirty slice of `dataset` and scores it against
/// the clean slice. Deterministic given config.noise.seed.
Result<ExperimentRow> RunExperiment(const Dataset& dataset,
                                    SystemUnderTest system,
                                    const ExperimentConfig& config);

}  // namespace ftrepair

#endif  // FTREPAIR_EVAL_EXPERIMENT_H_
