#include "eval/quality.h"

#include "baseline/llunatic.h"
#include "common/logging.h"

namespace ftrepair {

Quality EvaluateRepair(const Table& dirty, const Table& repaired,
                       const Table& truth, const QualityOptions& options) {
  FTR_DCHECK(dirty.num_rows() == repaired.num_rows());
  FTR_DCHECK(dirty.num_rows() == truth.num_rows());
  FTR_DCHECK(dirty.num_columns() == repaired.num_columns());

  Quality q;
  double correct_of_errors = 0;
  for (int r = 0; r < dirty.num_rows(); ++r) {
    for (int c = 0; c < dirty.num_columns(); ++c) {
      const Value& dirty_cell = dirty.cell(r, c);
      const Value& repaired_cell = repaired.cell(r, c);
      const Value& truth_cell = truth.cell(r, c);
      bool was_error = dirty_cell != truth_cell;
      bool was_repaired = repaired_cell != dirty_cell;
      if (was_error) q.errors += 1;
      if (!was_repaired) continue;
      q.repaired += 1;
      double credit = 0;
      if (repaired_cell == truth_cell) {
        credit = 1;
      } else if (IsLlun(repaired_cell) && was_error) {
        credit = options.partial_credit;
      }
      q.correct += credit;
      if (was_error) correct_of_errors += credit;
    }
  }
  q.precision = q.repaired > 0 ? q.correct / q.repaired : 1.0;
  q.recall = q.errors > 0 ? correct_of_errors / q.errors : 1.0;
  q.f1 = (q.precision + q.recall) > 0
             ? 2 * q.precision * q.recall / (q.precision + q.recall)
             : 0.0;
  return q;
}

}  // namespace ftrepair
