#include "eval/profile.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>

namespace ftrepair {

std::vector<ColumnProfile> ProfileTable(const Table& table, int top_k) {
  std::vector<ColumnProfile> profiles;
  profiles.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    ColumnProfile profile;
    profile.name = table.schema().column(c).name;
    profile.type = table.schema().column(c).type;
    std::unordered_map<Value, int, ValueHash> counts;
    for (int r = 0; r < table.num_rows(); ++r) {
      const Value& v = table.cell(r, c);
      if (v.is_null()) {
        ++profile.nulls;
        continue;
      }
      ++profile.non_null;
      ++counts[v];
    }
    profile.distinct = static_cast<int>(counts.size());
    profile.distinct_ratio =
        profile.non_null > 0
            ? static_cast<double>(profile.distinct) / profile.non_null
            : 0;
    std::vector<std::pair<Value, int>> sorted(counts.begin(), counts.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (static_cast<int>(sorted.size()) > top_k) {
      sorted.resize(static_cast<size_t>(top_k));
    }
    profile.top_values = std::move(sorted);
    profile.has_numeric_range =
        table.NumericRange(c, &profile.min, &profile.max);
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

std::vector<ChangeSummaryLine> SummarizeChanges(
    const std::vector<CellChange>& changes, const Schema& schema) {
  // (col, old, new) -> count; std::map gives the deterministic tie order.
  std::map<std::tuple<int, Value, Value>, int> grouped;
  for (const CellChange& change : changes) {
    ++grouped[{change.col, change.old_value, change.new_value}];
  }
  std::vector<ChangeSummaryLine> lines;
  lines.reserve(grouped.size());
  for (const auto& [key, count] : grouped) {
    lines.push_back(ChangeSummaryLine{
        schema.column(std::get<0>(key)).name, std::get<1>(key),
        std::get<2>(key), count});
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const ChangeSummaryLine& a, const ChangeSummaryLine& b) {
                     return a.count > b.count;
                   });
  return lines;
}

}  // namespace ftrepair
