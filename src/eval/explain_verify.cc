#include "eval/explain_verify.h"

#include <cmath>
#include <unordered_map>

#include "common/json.h"
#include "core/provenance.h"
#include "core/repair_types.h"
#include "detect/detector.h"
#include "detect/violation_graph.h"
#include "metric/projection.h"

namespace ftrepair {

namespace {

constexpr size_t kMaxErrors = 32;

void AddError(ExplainVerifyReport* report, std::string message) {
  if (report->errors.size() >= kMaxErrors) {
    report->errors_truncated = true;
    return;
  }
  report->errors.push_back(std::move(message));
}

// Inverse of the writer's Value encoding: the JSON type carries the
// Value type.
Result<Value> ValueFromJson(const JsonValue& j) {
  switch (j.type()) {
    case JsonValue::Type::kNull:
      return Value();
    case JsonValue::Type::kString:
      return Value(j.str());
    case JsonValue::Type::kNumber:
      return Value(j.number());
    default:
      return Status::InvalidArgument(
          "expected null/string/number for a cell value");
  }
}

Result<std::vector<Value>> ValuesFromJson(const JsonValue& j,
                                          const char* what) {
  if (!j.is_array()) {
    return Status::InvalidArgument(std::string(what) + " is not an array");
  }
  std::vector<Value> out;
  out.reserve(j.array().size());
  for (const JsonValue& v : j.array()) {
    FTR_ASSIGN_OR_RETURN(Value value, ValueFromJson(v));
    out.push_back(std::move(value));
  }
  return out;
}

Result<std::vector<int>> IntsFromJson(const JsonValue& j, const char* what) {
  if (!j.is_array()) {
    return Status::InvalidArgument(std::string(what) + " is not an array");
  }
  std::vector<int> out;
  out.reserve(j.array().size());
  for (const JsonValue& v : j.array()) {
    if (!v.is_number()) {
      return Status::InvalidArgument(std::string(what) +
                                     " holds a non-number");
    }
    out.push_back(static_cast<int>(v.number()));
  }
  return out;
}

// One FD of the report, reconstructed for recomputation.
struct ReportFD {
  FD fd;
  double tau = 0;
  double w_l = 0;
  double w_r = 0;
};

std::string Ordinal(size_t i) { return "#" + std::to_string(i); }

}  // namespace

Result<ExplainVerifyReport> VerifyExplainReport(const Table& input,
                                                std::string_view report_json,
                                                double tolerance) {
  FTR_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(report_json));
  if (!root.is_object()) {
    return Status::InvalidArgument("explain report is not a JSON object");
  }
  FTR_ASSIGN_OR_RETURN(double version, root.GetNumber("schema_version"));
  if (static_cast<int>(version) != kExplainSchemaVersion) {
    return Status::InvalidArgument(
        "unknown explain schema version " +
        std::to_string(static_cast<int>(version)) + " (verifier knows " +
        std::to_string(kExplainSchemaVersion) + ")");
  }

  // Shape checks against the claimed input.
  const JsonValue& jinput = root.Get("input");
  FTR_ASSIGN_OR_RETURN(double rows, jinput.GetNumber("rows"));
  if (static_cast<int>(rows) != input.num_rows()) {
    return Status::InvalidArgument(
        "report claims " + std::to_string(static_cast<int>(rows)) +
        " input rows, table has " + std::to_string(input.num_rows()));
  }
  const JsonValue& jcols = jinput.Get("columns");
  if (!jcols.is_array() ||
      static_cast<int>(jcols.array().size()) != input.num_columns()) {
    return Status::InvalidArgument("report column list does not match the "
                                   "input schema width");
  }
  for (int c = 0; c < input.num_columns(); ++c) {
    const JsonValue& name = jcols.array()[static_cast<size_t>(c)];
    if (!name.is_string() ||
        name.str() != input.schema().column(c).name) {
      return Status::InvalidArgument("report column " + std::to_string(c) +
                                     " does not match the input schema");
    }
  }

  // Reconstruct the FD set with its resolved thresholds and weights.
  const JsonValue& jfds = root.Get("fds");
  if (!jfds.is_array()) {
    return Status::InvalidArgument("report has no fds array");
  }
  std::vector<ReportFD> fds;
  for (size_t f = 0; f < jfds.array().size(); ++f) {
    const JsonValue& jfd = jfds.array()[f];
    FTR_ASSIGN_OR_RETURN(std::vector<int> lhs,
                         IntsFromJson(jfd.Get("lhs"), "fd lhs"));
    FTR_ASSIGN_OR_RETURN(std::vector<int> rhs,
                         IntsFromJson(jfd.Get("rhs"), "fd rhs"));
    FTR_ASSIGN_OR_RETURN(std::string name, jfd.GetString("name"));
    FTR_ASSIGN_OR_RETURN(FD fd, FD::Make(lhs, rhs, name));
    ReportFD rfd{std::move(fd), 0, 0, 0};
    FTR_ASSIGN_OR_RETURN(rfd.tau, jfd.GetNumber("tau"));
    FTR_ASSIGN_OR_RETURN(rfd.w_l, jfd.GetNumber("w_l"));
    FTR_ASSIGN_OR_RETURN(rfd.w_r, jfd.GetNumber("w_r"));
    fds.push_back(std::move(rfd));
  }

  // The run's semantics dictates the distance model used for replay:
  // "cardinality" prices every change with indicator (discrete)
  // distances, so its unit costs only recompute under discrete metrics.
  // Reports predating the field carry no "semantics" key — ft-cost.
  std::string semantics = "ft-cost";
  const JsonValue& jsemantics = root.Get("semantics");
  if (jsemantics.is_string()) semantics = jsemantics.str();
  DistanceModel model(input);
  if (semantics == "cardinality") {
    for (int c = 0; c < input.num_columns(); ++c) {
      model.SetColumnMetric(c, ColumnMetric::kDiscrete);
    }
  }
  ExplainVerifyReport report;

  // Parse decisions up front; changes refer into them.
  struct ParsedDecision {
    int fd = -1;
    std::string rung;
    std::vector<int> cols;
    std::vector<Value> source_values;
    std::vector<Value> target_values;
    std::vector<int> rows;
    double unit_cost = 0;
  };
  const JsonValue& jdecisions = root.Get("decisions");
  if (!jdecisions.is_array()) {
    return Status::InvalidArgument("report has no decisions array");
  }
  std::vector<ParsedDecision> decisions;
  decisions.reserve(jdecisions.array().size());
  for (size_t i = 0; i < jdecisions.array().size(); ++i) {
    const JsonValue& jd = jdecisions.array()[i];
    ParsedDecision d;
    FTR_ASSIGN_OR_RETURN(double fd_idx, jd.GetNumber("fd"));
    d.fd = static_cast<int>(fd_idx);
    FTR_ASSIGN_OR_RETURN(d.rung, jd.GetString("rung"));
    FTR_ASSIGN_OR_RETURN(d.cols, IntsFromJson(jd.Get("cols"),
                                              "decision cols"));
    FTR_ASSIGN_OR_RETURN(
        d.source_values,
        ValuesFromJson(jd.Get("source_values"), "decision source_values"));
    FTR_ASSIGN_OR_RETURN(
        d.target_values,
        ValuesFromJson(jd.Get("target_values"), "decision target_values"));
    FTR_ASSIGN_OR_RETURN(d.rows, IntsFromJson(jd.Get("rows"),
                                              "decision rows"));
    FTR_ASSIGN_OR_RETURN(d.unit_cost, jd.GetNumber("unit_cost"));
    if (d.cols.size() != d.source_values.size() ||
        d.cols.size() != d.target_values.size()) {
      return Status::InvalidArgument("decision " + Ordinal(i) +
                                     " cols/values lengths disagree");
    }
    decisions.push_back(std::move(d));
  }

  // 1. Per-decision recomputation: unit cost from the self-contained
  // value vectors (Eq. 3), edges from the peer values (Eq. 2/3).
  for (size_t i = 0; i < decisions.size(); ++i) {
    const ParsedDecision& d = decisions[i];
    const JsonValue& jd = jdecisions.array()[i];
    double expected_unit = 0;
    if (d.fd >= 0 && d.rung != "constant") {
      // Single-FD decision: cols are exactly the FD's attrs.
      if (d.fd >= static_cast<int>(fds.size())) {
        AddError(&report, "decision " + Ordinal(i) +
                              " references unknown fd " +
                              std::to_string(d.fd));
        continue;
      }
      const ReportFD& rfd = fds[static_cast<size_t>(d.fd)];
      if (d.cols != rfd.fd.attrs()) {
        AddError(&report, "decision " + Ordinal(i) +
                              " cols do not match its FD's attributes");
        continue;
      }
      expected_unit = ViolationGraph::UnitCost(d.source_values,
                                               d.target_values, rfd.fd,
                                               model);
    } else {
      // Multi-FD or constant-pinning decision: plain per-column sum.
      for (size_t p = 0; p < d.cols.size(); ++p) {
        expected_unit += model.CellDistance(d.cols[p], d.source_values[p],
                                            d.target_values[p]);
      }
    }
    if (std::fabs(expected_unit - d.unit_cost) > tolerance) {
      AddError(&report, "decision " + Ordinal(i) + " claims unit cost " +
                            std::to_string(d.unit_cost) +
                            ", recomputed " + std::to_string(expected_unit));
    }
    ++report.decisions_checked;

    // Edges: recompute Eq. 2 / Eq. 3 between the decision's source
    // projection and the edge's peer values; a violation edge must sit
    // at or below its FD's tau.
    std::unordered_map<int, size_t> col_pos;
    for (size_t p = 0; p < d.cols.size(); ++p) col_pos[d.cols[p]] = p;
    const JsonValue& jedges = jd.Get("edges");
    if (!jedges.is_array()) {
      return Status::InvalidArgument("decision " + Ordinal(i) +
                                     " has no edges array");
    }
    for (size_t e = 0; e < jedges.array().size(); ++e) {
      const JsonValue& je = jedges.array()[e];
      FTR_ASSIGN_OR_RETURN(double efd, je.GetNumber("fd"));
      FTR_ASSIGN_OR_RETURN(double proj_dist, je.GetNumber("proj_dist"));
      FTR_ASSIGN_OR_RETURN(double unit_cost, je.GetNumber("unit_cost"));
      FTR_ASSIGN_OR_RETURN(
          std::vector<Value> peer,
          ValuesFromJson(je.Get("peer_values"), "edge peer_values"));
      int fd_idx = static_cast<int>(efd);
      if (fd_idx < 0 || fd_idx >= static_cast<int>(fds.size())) {
        AddError(&report, "decision " + Ordinal(i) + " edge " + Ordinal(e) +
                              " references unknown fd " +
                              std::to_string(fd_idx));
        continue;
      }
      const ReportFD& rfd = fds[static_cast<size_t>(fd_idx)];
      if (peer.size() != rfd.fd.attrs().size()) {
        AddError(&report, "decision " + Ordinal(i) + " edge " + Ordinal(e) +
                              " peer width does not match its FD");
        continue;
      }
      // Project the decision's source values onto this FD's attrs.
      std::vector<Value> src_proj;
      src_proj.reserve(rfd.fd.attrs().size());
      bool projected = true;
      for (int col : rfd.fd.attrs()) {
        auto it = col_pos.find(col);
        if (it == col_pos.end()) {
          projected = false;
          break;
        }
        src_proj.push_back(d.source_values[it->second]);
      }
      if (!projected) {
        AddError(&report, "decision " + Ordinal(i) + " edge " + Ordinal(e) +
                              " FD attribute outside the decision columns");
        continue;
      }
      double expected_proj = ViolationGraph::ProjDistance(
          src_proj, peer, rfd.fd, model, rfd.w_l, rfd.w_r);
      double expected_edge_unit =
          ViolationGraph::UnitCost(src_proj, peer, rfd.fd, model);
      if (std::fabs(expected_proj - proj_dist) > tolerance) {
        AddError(&report, "decision " + Ordinal(i) + " edge " + Ordinal(e) +
                              " claims proj distance " +
                              std::to_string(proj_dist) + ", recomputed " +
                              std::to_string(expected_proj));
      }
      if (std::fabs(expected_edge_unit - unit_cost) > tolerance) {
        AddError(&report, "decision " + Ordinal(i) + " edge " + Ordinal(e) +
                              " claims unit cost " +
                              std::to_string(unit_cost) + ", recomputed " +
                              std::to_string(expected_edge_unit));
      }
      if (expected_proj > rfd.tau + tolerance) {
        AddError(&report, "decision " + Ordinal(i) + " edge " + Ordinal(e) +
                              " is not an FT-violation: proj distance " +
                              std::to_string(expected_proj) +
                              " exceeds tau " + std::to_string(rfd.tau));
      }
      ++report.edges_checked;
    }
  }

  // 2. Replay the change log against the input: every old value must
  // match the evolving cell, every claimed cost delta must telescope
  // against the input, and every change must land inside its decision.
  const JsonValue& jchanges = root.Get("changes");
  if (!jchanges.is_array()) {
    return Status::InvalidArgument("report has no changes array");
  }
  Table repaired = input;
  std::unordered_map<int64_t, double> running;
  const int64_t ncols = input.num_columns();
  double ledger_sum = 0;
  for (size_t i = 0; i < jchanges.array().size(); ++i) {
    const JsonValue& jc = jchanges.array()[i];
    FTR_ASSIGN_OR_RETURN(double jrow, jc.GetNumber("row"));
    FTR_ASSIGN_OR_RETURN(double jcol, jc.GetNumber("col"));
    FTR_ASSIGN_OR_RETURN(double jdecision, jc.GetNumber("decision"));
    FTR_ASSIGN_OR_RETURN(double cost_delta, jc.GetNumber("cost_delta"));
    FTR_ASSIGN_OR_RETURN(Value old_value, ValueFromJson(jc.Get("old")));
    FTR_ASSIGN_OR_RETURN(Value new_value, ValueFromJson(jc.Get("new")));
    int row = static_cast<int>(jrow);
    int col = static_cast<int>(jcol);
    int decision = static_cast<int>(jdecision);
    if (row < 0 || row >= input.num_rows() || col < 0 ||
        col >= input.num_columns()) {
      return Status::InvalidArgument("change " + Ordinal(i) +
                                     " is outside the table");
    }
    if (repaired.cell(row, col) != old_value) {
      AddError(&report, "change " + Ordinal(i) +
                            " old value does not match the replayed cell (" +
                            std::to_string(row) + ", " +
                            std::to_string(col) + ")");
    }
    const Value& original = input.cell(row, col);
    int64_t key = static_cast<int64_t>(row) * ncols + col;
    auto it = running.find(key);
    double before = it != running.end()
                        ? it->second
                        : model.CellDistance(col, original, old_value);
    double after = model.CellDistance(col, original, new_value);
    if (std::fabs((after - before) - cost_delta) > tolerance) {
      AddError(&report, "change " + Ordinal(i) + " claims cost delta " +
                            std::to_string(cost_delta) + ", recomputed " +
                            std::to_string(after - before));
    }
    running[key] = after;
    ledger_sum += cost_delta;
    repaired.SetCell(row, col, new_value);

    if (decision >= 0) {
      if (decision >= static_cast<int>(decisions.size())) {
        AddError(&report, "change " + Ordinal(i) +
                              " references unknown decision " +
                              std::to_string(decision));
      } else {
        const ParsedDecision& d = decisions[static_cast<size_t>(decision)];
        bool row_ok = false;
        for (int r : d.rows) row_ok = row_ok || r == row;
        if (!row_ok) {
          AddError(&report, "change " + Ordinal(i) + " row " +
                                std::to_string(row) +
                                " is not covered by decision " +
                                std::to_string(decision));
        }
        bool col_ok = false;
        for (size_t p = 0; p < d.cols.size(); ++p) {
          if (d.cols[p] != col) continue;
          col_ok = true;
          if (d.target_values[p] != new_value) {
            AddError(&report,
                     "change " + Ordinal(i) +
                         " writes a value its decision did not target");
          }
        }
        if (!col_ok) {
          AddError(&report, "change " + Ordinal(i) + " column " +
                                std::to_string(col) +
                                " is not covered by decision " +
                                std::to_string(decision));
        }
      }
    } else {
      AddError(&report, "change " + Ordinal(i) + " carries no decision");
    }
    ++report.changes_checked;
  }

  // 3. Ledger reconciliation: report total vs replayed sum vs reported
  // repair cost vs an independent Eq. 4 recomputation.
  const JsonValue& jledger = root.Get("ledger");
  FTR_ASSIGN_OR_RETURN(double ledger_total, jledger.GetNumber("total"));
  const JsonValue& jstats = root.Get("stats");
  FTR_ASSIGN_OR_RETURN(double repair_cost, jstats.GetNumber("repair_cost"));
  if (std::fabs(ledger_total - ledger_sum) > tolerance) {
    AddError(&report, "ledger total " + std::to_string(ledger_total) +
                          " does not match the replayed sum " +
                          std::to_string(ledger_sum));
  }
  if (std::fabs(ledger_total - repair_cost) > tolerance) {
    AddError(&report, "ledger total " + std::to_string(ledger_total) +
                          " does not reconcile with repair cost " +
                          std::to_string(repair_cost));
  }
  double recomputed_cost = TableRepairCost(input, repaired, model);
  if (std::fabs(recomputed_cost - repair_cost) > tolerance) {
    AddError(&report, "reported repair cost " + std::to_string(repair_cost) +
                          " does not match the Eq. 4 recomputation " +
                          std::to_string(recomputed_cost));
  }

  // 4. FT-violation recount on the input and the reconstructed table —
  // only when the report claims exact counts.
  FTR_ASSIGN_OR_RETURN(bool stats_computed,
                       jstats.GetBool("violation_stats_computed"));
  FTR_ASSIGN_OR_RETURN(bool stats_exact,
                       jstats.GetBool("violation_stats_exact"));
  if (stats_computed && stats_exact) {
    FTR_ASSIGN_OR_RETURN(double before,
                         jstats.GetNumber("ft_violations_before"));
    FTR_ASSIGN_OR_RETURN(double after,
                         jstats.GetNumber("ft_violations_after"));
    uint64_t count_before = 0;
    uint64_t count_after = 0;
    for (const ReportFD& rfd : fds) {
      FTOptions ft;
      ft.w_l = rfd.w_l;
      ft.w_r = rfd.w_r;
      ft.tau = rfd.tau;
      count_before += CountFTViolations(input, rfd.fd, model, ft);
      count_after += CountFTViolations(repaired, rfd.fd, model, ft);
    }
    if (count_before != static_cast<uint64_t>(before)) {
      AddError(&report, "ft_violations_before recounts to " +
                            std::to_string(count_before) + ", report says " +
                            std::to_string(static_cast<uint64_t>(before)));
    }
    if (count_after != static_cast<uint64_t>(after)) {
      AddError(&report, "ft_violations_after recounts to " +
                            std::to_string(count_after) + ", report says " +
                            std::to_string(static_cast<uint64_t>(after)));
    }
    report.violations_recounted = true;
  }

  return report;
}

}  // namespace ftrepair
