#ifndef FTREPAIR_EVAL_PROFILE_H_
#define FTREPAIR_EVAL_PROFILE_H_

#include <string>
#include <vector>

#include "core/repair_types.h"
#include "data/table.h"

namespace ftrepair {

/// Per-column profile of a relation instance — the quick look a
/// practitioner takes before choosing constraints and thresholds.
struct ColumnProfile {
  std::string name;
  ValueType type = ValueType::kString;
  int non_null = 0;
  int nulls = 0;
  int distinct = 0;
  /// distinct / non_null; 1.0 marks a key column.
  double distinct_ratio = 0;
  /// Most frequent values with their counts, most frequent first
  /// (ties by value order), at most `top_k` of them.
  std::vector<std::pair<Value, int>> top_values;
  /// Numeric columns only.
  bool has_numeric_range = false;
  double min = 0;
  double max = 0;
};

/// Profiles every column of `table`.
std::vector<ColumnProfile> ProfileTable(const Table& table, int top_k = 3);

/// One aggregated line per (column, old value, new value) repair,
/// most frequent first — the human-readable digest of a RepairResult.
struct ChangeSummaryLine {
  std::string column;
  Value old_value;
  Value new_value;
  int count = 0;
};

/// Groups a repair's cell changes by (column, old, new) and orders them
/// by descending count (ties: column name, then old value).
std::vector<ChangeSummaryLine> SummarizeChanges(
    const std::vector<CellChange>& changes, const Schema& schema);

}  // namespace ftrepair

#endif  // FTREPAIR_EVAL_PROFILE_H_
