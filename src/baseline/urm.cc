#include "baseline/urm.h"

#include <algorithm>

#include "core/repairer.h"
#include "detect/pattern.h"
#include "metric/projection.h"

namespace ftrepair {

Result<RepairResult> UrmRepair(const Table& table, const std::vector<FD>& fds,
                               const UrmOptions& options) {
  FTR_RETURN_NOT_OK(ValidateFDs(table.schema(), fds));
  RepairResult result;
  result.repaired = table;
  DistanceModel model(table);

  for (const FD& fd : fds) {
    std::vector<Pattern> patterns =
        BuildPatterns(result.repaired, fd.attrs());
    std::vector<size_t> core;
    std::vector<size_t> deviant;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (patterns[i].count() >= options.core_frequency) {
        core.push_back(i);
      } else {
        deviant.push_back(i);
      }
    }
    if (core.empty()) continue;

    for (size_t d : deviant) {
      // Nearest core pattern by summed attribute distance.
      double best = ViolationGraph::kInfinity;
      size_t best_core = core[0];
      for (size_t c : core) {
        double dist = 0;
        for (int p = 0; p < fd.num_attrs(); ++p) {
          int col = fd.attrs()[static_cast<size_t>(p)];
          dist += model.CellDistance(col,
                                     patterns[d].values[static_cast<size_t>(p)],
                                     patterns[c].values[static_cast<size_t>(p)]);
        }
        if (dist < best) {
          best = dist;
          best_core = c;
        }
      }
      // Description-length test: only cheap moves shorten the encoding.
      if (best > options.max_change_ratio * fd.num_attrs()) continue;
      const Pattern& target = patterns[best_core];
      for (int row : patterns[d].rows) {
        for (int p = 0; p < fd.num_attrs(); ++p) {
          int col = fd.attrs()[static_cast<size_t>(p)];
          const Value& cell = result.repaired.cell(row, col);
          if (cell != target.values[static_cast<size_t>(p)]) {
            result.changes.push_back(CellChange{
                row, col, cell, target.values[static_cast<size_t>(p)]});
            result.repaired.SetCell(row, col,
                                    target.values[static_cast<size_t>(p)]);
          }
        }
      }
    }
  }

  result.stats.repair_cost = TableRepairCost(table, result.repaired, model);
  result.stats.cells_changed = static_cast<int>(result.changes.size());
  return result;
}

}  // namespace ftrepair
