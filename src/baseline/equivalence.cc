#include "baseline/equivalence.h"

#include "detect/pattern.h"

namespace ftrepair {

std::vector<LhsClass> BuildLhsClasses(const Table& table, const FD& fd) {
  std::vector<LhsClass> out;
  for (Pattern& lhs_group : BuildPatterns(table, fd.lhs())) {
    LhsClass cls;
    cls.lhs_values = std::move(lhs_group.values);
    cls.rows = lhs_group.rows;
    for (Pattern& rhs_group :
         BuildPatternsForRows(table, fd.rhs(), cls.rows)) {
      cls.rhs_values.push_back(std::move(rhs_group.values));
      cls.rhs_rows.push_back(std::move(rhs_group.rows));
    }
    out.push_back(std::move(cls));
  }
  return out;
}

size_t MajorityRhs(const LhsClass& lhs_class) {
  size_t best = 0;
  for (size_t i = 1; i < lhs_class.rhs_values.size(); ++i) {
    size_t best_count = lhs_class.rhs_rows[best].size();
    size_t count = lhs_class.rhs_rows[i].size();
    if (count > best_count ||
        (count == best_count &&
         lhs_class.rhs_values[i] < lhs_class.rhs_values[best])) {
      best = i;
    }
  }
  return best;
}

}  // namespace ftrepair
