#include "baseline/llunatic.h"

#include "baseline/equivalence.h"
#include "core/repairer.h"
#include "metric/projection.h"

namespace ftrepair {

const Value& LlunValue() {
  static const Value* kLlun = new Value("__LLUN__");
  return *kLlun;
}

bool IsLlun(const Value& v) { return v == LlunValue(); }

Result<RepairResult> LlunaticRepair(const Table& table,
                                    const std::vector<FD>& fds,
                                    const LlunaticOptions& options) {
  FTR_RETURN_NOT_OK(ValidateFDs(table.schema(), fds));
  RepairResult result;
  result.repaired = table;

  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool changed = false;
    for (const FD& fd : fds) {
      for (const LhsClass& cls : BuildLhsClasses(result.repaired, fd)) {
        // Llun variables are unknowns: they neither conflict nor vote.
        std::vector<size_t> concrete;
        for (size_t g = 0; g < cls.rhs_values.size(); ++g) {
          bool has_llun = false;
          for (const Value& v : cls.rhs_values[g]) has_llun |= IsLlun(v);
          if (!has_llun) concrete.push_back(g);
        }
        if (concrete.size() < 2) continue;  // no concrete conflict
        size_t majority = concrete[0];
        for (size_t g : concrete) {
          if (cls.rhs_rows[g].size() > cls.rhs_rows[majority].size() ||
              (cls.rhs_rows[g].size() == cls.rhs_rows[majority].size() &&
               cls.rhs_values[g] < cls.rhs_values[majority])) {
            majority = g;
          }
        }
        size_t majority_count = cls.rhs_rows[majority].size();
        bool dominant =
            static_cast<double>(majority_count) >=
            options.dominance_ratio * static_cast<double>(cls.rows.size());
        for (size_t g : concrete) {
          if (g == majority) continue;
          for (int row : cls.rhs_rows[g]) {
            for (int p = 0; p < fd.rhs_size(); ++p) {
              int col = fd.rhs()[static_cast<size_t>(p)];
              const Value& cell = result.repaired.cell(row, col);
              const Value& target =
                  dominant ? cls.rhs_values[majority][static_cast<size_t>(p)]
                           : LlunValue();
              if (cell != target) {
                result.changes.push_back(CellChange{row, col, cell, target});
                result.repaired.SetCell(row, col, target);
                changed = true;
              }
            }
          }
        }
      }
    }
    if (!changed) break;
  }

  DistanceModel model(table);
  result.stats.repair_cost = TableRepairCost(table, result.repaired, model);
  result.stats.cells_changed = static_cast<int>(result.changes.size());
  return result;
}

}  // namespace ftrepair
