#include "baseline/nadeef.h"

#include "baseline/equivalence.h"
#include "core/repairer.h"
#include "metric/projection.h"

namespace ftrepair {

Result<RepairResult> NadeefRepair(const Table& table,
                                  const std::vector<FD>& fds,
                                  const NadeefOptions& options) {
  FTR_RETURN_NOT_OK(ValidateFDs(table.schema(), fds));
  RepairResult result;
  result.repaired = table;

  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool changed = false;
    for (const FD& fd : fds) {
      for (const LhsClass& cls : BuildLhsClasses(result.repaired, fd)) {
        if (!cls.conflicted()) continue;
        size_t majority = MajorityRhs(cls);
        const std::vector<Value>& target = cls.rhs_values[majority];
        for (size_t g = 0; g < cls.rhs_values.size(); ++g) {
          if (g == majority) continue;
          for (int row : cls.rhs_rows[g]) {
            for (int p = 0; p < fd.rhs_size(); ++p) {
              int col = fd.rhs()[static_cast<size_t>(p)];
              const Value& cell = result.repaired.cell(row, col);
              if (cell != target[static_cast<size_t>(p)]) {
                result.changes.push_back(CellChange{
                    row, col, cell, target[static_cast<size_t>(p)]});
                result.repaired.SetCell(row, col,
                                        target[static_cast<size_t>(p)]);
                changed = true;
              }
            }
          }
        }
      }
    }
    if (!changed) break;
  }

  DistanceModel model(table);
  result.stats.repair_cost = TableRepairCost(table, result.repaired, model);
  result.stats.cells_changed = static_cast<int>(result.changes.size());
  return result;
}

}  // namespace ftrepair
