#ifndef FTREPAIR_BASELINE_EQUIVALENCE_H_
#define FTREPAIR_BASELINE_EQUIVALENCE_H_

#include <vector>

#include "constraint/fd.h"
#include "data/table.h"

namespace ftrepair {

/// An equivalence class of rows sharing one LHS projection.
struct LhsClass {
  std::vector<Value> lhs_values;
  std::vector<int> rows;
  /// Distinct RHS projections observed in the class and their rows.
  std::vector<std::vector<Value>> rhs_values;
  std::vector<std::vector<int>> rhs_rows;

  bool conflicted() const { return rhs_values.size() > 1; }
};

/// Groups rows of `table` by `fd`'s LHS, splitting each class by RHS.
std::vector<LhsClass> BuildLhsClasses(const Table& table, const FD& fd);

/// Index (into lhs_class.rhs_values) of the most frequent RHS
/// projection; ties break toward the lexicographically smaller value.
size_t MajorityRhs(const LhsClass& lhs_class);

}  // namespace ftrepair

#endif  // FTREPAIR_BASELINE_EQUIVALENCE_H_
