#ifndef FTREPAIR_BASELINE_NADEEF_H_
#define FTREPAIR_BASELINE_NADEEF_H_

#include <vector>

#include "common/status.h"
#include "constraint/fd.h"
#include "core/repair_types.h"
#include "data/table.h"

namespace ftrepair {

struct NadeefOptions {
  /// Passes over the FD list (one pass repairs every conflicted class
  /// of every FD once). The paper characterizes NADEEF as "the
  /// algorithm that only repairs RHS errors" — the single-pass default
  /// matches that behaviour; higher values let RHS repairs of one FD
  /// cascade into LHS positions of another.
  int max_passes = 1;
};

/// \brief NADEEF-style baseline (Dallachiesa et al., SIGMOD'13): holistic
/// equality-based repair.
///
/// Violations are detected with string equality; inside each conflicted
/// LHS equivalence class the RHS is set to the majority projection
/// (ties lexicographic). Passes over the FD list repeat until fixpoint
/// (a column repaired as RHS of one FD may create/resolve violations of
/// another), mirroring NADEEF's iterative holistic core. LHS-side
/// errors are therefore repaired only when the attribute also appears
/// on some RHS, the weakness §6.4 measures.
Result<RepairResult> NadeefRepair(const Table& table,
                                  const std::vector<FD>& fds,
                                  const NadeefOptions& options = {});

}  // namespace ftrepair

#endif  // FTREPAIR_BASELINE_NADEEF_H_
