#ifndef FTREPAIR_BASELINE_LLUNATIC_H_
#define FTREPAIR_BASELINE_LLUNATIC_H_

#include <vector>

#include "common/status.h"
#include "constraint/fd.h"
#include "core/repair_types.h"
#include "data/table.h"

namespace ftrepair {

/// The "llun" variable marker: a cell whose value the cost manager left
/// undetermined ("to be resolved by asking users"). The evaluation
/// harness scores such cells with partial credit (the paper's
/// Metric 0.5).
const Value& LlunValue();

/// True iff `v` is the llun marker.
bool IsLlun(const Value& v);

struct LlunaticOptions {
  /// An LHS class repairs to its dominant RHS when the most frequent
  /// projection covers at least this fraction of the class; otherwise
  /// the conflicting RHS cells become llun variables.
  double dominance_ratio = 0.6;
  /// Fixpoint passes over the FD list.
  int max_passes = 5;
};

/// \brief Llunatic-style baseline (Geerts et al., PVLDB'13) with the
/// frequency cost-manager.
///
/// Equality-detected conflicts whose class has a dominant RHS value are
/// repaired to it; classes without a dominant value get llun variables
/// — partially repaired cells that Metric 0.5 counts half-correct.
Result<RepairResult> LlunaticRepair(const Table& table,
                                    const std::vector<FD>& fds,
                                    const LlunaticOptions& options = {});

}  // namespace ftrepair

#endif  // FTREPAIR_BASELINE_LLUNATIC_H_
