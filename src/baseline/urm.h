#ifndef FTREPAIR_BASELINE_URM_H_
#define FTREPAIR_BASELINE_URM_H_

#include <vector>

#include "common/status.h"
#include "constraint/fd.h"
#include "core/repair_types.h"
#include "data/table.h"

namespace ftrepair {

struct UrmOptions {
  /// A pattern (projection over X ∪ Y) with frequency >= this is *core*;
  /// below it is *deviant*.
  int core_frequency = 2;
  /// A deviant pattern is repaired to its nearest core pattern only if
  /// the change touches at most this fraction of the pattern's
  /// attributes (the description-length test: a cheap modification
  /// shortens the encoding, an expensive one does not).
  double max_change_ratio = 0.5;
};

/// \brief URM-style baseline (Chiang & Miller, ICDE'11 "A unified model
/// for data and constraint repair"), data-repair option only.
///
/// Per FD, in the given order: patterns over X ∪ Y are split into core
/// (frequent) and deviant (rare); each deviant pattern moves to its
/// nearest core pattern when that shortens the description length. The
/// same deviant pattern is modified identically in every tuple, and
/// FDs are processed one by one — the two weaknesses §6.4 discusses.
Result<RepairResult> UrmRepair(const Table& table, const std::vector<FD>& fds,
                               const UrmOptions& options = {});

}  // namespace ftrepair

#endif  // FTREPAIR_BASELINE_URM_H_
