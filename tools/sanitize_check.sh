#!/usr/bin/env bash
# Builds the project with AddressSanitizer + UBSan and runs the full
# test suite. Usage: tools/sanitize_check.sh [build-dir]
#
# Any sanitizer report fails the run (-fno-sanitize-recover=all turns
# UB into aborts; ASAN_OPTIONS below keeps leaks fatal). Intended as a
# pre-merge gate for changes to the repair kernels or ingest paths.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFTREPAIR_SANITIZE=ON \
  -DFTREPAIR_BUILD_BENCHMARKS=OFF \
  -DFTREPAIR_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)"

export ASAN_OPTIONS="detect_leaks=1:abort_on_error=1"
export UBSAN_OPTIONS="print_stacktrace=1"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
