#!/usr/bin/env bash
# Builds the project under a sanitizer and runs the test suite.
#
# Usage: [FTREPAIR_SANITIZE=address|thread] tools/sanitize_check.sh [build-dir]
#
#   address (default)  ASan + UBSan over the full suite — the pre-merge
#                      gate for the repair kernels and ingest paths.
#   thread             TSan over the concurrency-relevant tests (the
#                      worker pool, the parallel violation-graph build,
#                      budget charging and the metrics/trace paths), so
#                      data races in those layers fail the gate.
#
# Any sanitizer report fails the run (-fno-sanitize-recover=all turns
# UB into aborts; ASAN_OPTIONS below keeps leaks fatal).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
mode="${FTREPAIR_SANITIZE:-address}"

case "${mode}" in
  address|ON|on)
    mode=address
    default_build_dir="${repo_root}/build-asan"
    ;;
  thread)
    default_build_dir="${repo_root}/build-tsan"
    ;;
  *)
    echo "unknown FTREPAIR_SANITIZE='${mode}' (address | thread)" >&2
    exit 2
    ;;
esac
build_dir="${1:-${default_build_dir}}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFTREPAIR_SANITIZE="${mode}" \
  -DFTREPAIR_BUILD_BENCHMARKS=OFF \
  -DFTREPAIR_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)"

if [[ "${mode}" == "thread" ]]; then
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  # The concurrency surface: thread pool + ParallelFor, the parallel
  # graph build (and everything exercising it), the per-component solve
  # fan-out and the solvers it runs concurrently, shared-budget and
  # shared-memory-budget charging (the chaos/ladder sweeps), the
  # relaxed-atomic metrics/trace registries, the distance-kernel
  # dispatch + thread-local kernel scratch (the kernel fuzz and
  # cross-kernel repair grids) with the SIMD screen differentials, and
  # the semantics registry + per-semantics pipelines (the mutex-guarded
  # singleton and the cross-semantics property sweeps run repairs at
  # several thread counts).
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
    -R 'ThreadPool|Parallel|ViolationGraph|BlockIndex|Detector|Budget|Metrics|Trace|Repairer|Greedy|Expansion|Multi|TargetTree|Trusted|Chaos|Memory|Ladder|Provenance|ExplainReport|AuditLog|Columnar|StreamingIngest|DistanceKernel|SimdScreen|Semantics|Cardinality|SoftFd'
else
  export ASAN_OPTIONS="detect_leaks=1:abort_on_error=1"
  export UBSAN_OPTIONS="print_stacktrace=1"
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
fi
