#!/usr/bin/env bash
# Pre-merge gate for the pluggable repair-semantics layer: builds the
# cross-semantics property harness and its unit suites under
# AddressSanitizer+UBSan and then ThreadSanitizer and runs them, so a
# semantics-dispatch bug that corrupts memory, races (the registry is a
# mutex-guarded process singleton and the property sweeps repair at
# several thread counts), or breaks a cross-semantics invariant fails
# the gate before merge.
#
# Usage: tools/semantics_check.sh [asan-build-dir] [tsan-build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
asan_dir="${1:-${repo_root}/build-semantics-asan}"
tsan_dir="${2:-${repo_root}/build-semantics-tsan}"

# The semantics surface: the registry + solver/filter units, the
# 520-table differential & property harness, the CLI flag plumbing
# (--semantics / --confidence / --cfds negative paths), and the FD/CFD
# parser extensions feeding it.
semantics_regex='Semantics|Cardinality|SoftFd|Cli|FDParser|CFDParser'

run_mode() {
  local mode="$1" build_dir="$2"
  echo "== semantics sweep under ${mode} sanitizer =="
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTREPAIR_SANITIZE="${mode}" \
    -DFTREPAIR_BUILD_BENCHMARKS=OFF \
    -DFTREPAIR_BUILD_EXAMPLES=OFF
  cmake --build "${build_dir}" -j "$(nproc)" \
    --target semantics_test semantics_property_test semantics_golden_test \
             cli_test fd_test cfd_test
  if [[ "${mode}" == "thread" ]]; then
    export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  else
    export ASAN_OPTIONS="detect_leaks=1:abort_on_error=1"
    export UBSAN_OPTIONS="print_stacktrace=1"
  fi
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
    -R "${semantics_regex}"
}

run_mode address "${asan_dir}"
run_mode thread "${tsan_dir}"

echo "semantics_check: PASS"
