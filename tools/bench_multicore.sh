#!/usr/bin/env bash
# Multi-core benchmark protocol for the distance kernels: builds the
# bench suite (RelWithDebInfo, same as every recorded BENCH_*.json) and
# records the scalar-vs-bitparallel A/B curves, the scratch-row
# allocation fix, the SIMD bigram screen, and the end-to-end detect
# phase into BENCH_distance_kernels.json (3 repetitions, aggregates
# only — medians are what docs/PERFORMANCE.md quotes).
#
# The thread-scaling sweep (BM_ViolationGraphKernelThreads) is only
# recorded when the box actually has >= 2 CPUs: on a single core the
# curve is flat by construction and recording it would launder a
# non-measurement into the benchmark ledger. On such boxes the script
# still runs the kernel A/B suites (valid on any core count) and marks
# the thread-scaling section as refused, with the reason, in the JSON.
#
# Usage: tools/bench_multicore.sh [build-dir] [output-json]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"
out_json="${2:-${repo_root}/BENCH_distance_kernels.json}"

reps=3
min_time=0.05

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFTREPAIR_BUILD_BENCHMARKS=ON \
  -DFTREPAIR_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)" --target micro_distance

kernel_json="$(mktemp)"
threads_json="$(mktemp)"
trap 'rm -f "${kernel_json}" "${threads_json}"' EXIT

run_bench() {
  local filter="$1" out="$2"
  "${build_dir}/bench/micro_distance" \
    --benchmark_filter="${filter}" \
    --benchmark_repetitions="${reps}" \
    --benchmark_report_aggregates_only=true \
    --benchmark_min_time="${min_time}" \
    --benchmark_format=json \
    --benchmark_out="${out}" \
    --benchmark_out_format=json
}

echo "== kernel A/B suites (valid on any core count) =="
run_bench \
  'BM_EditDistanceKernel|BM_BoundedEditDistanceKernel|BM_EditDistanceRowAlloc|BM_ScreenSharedCounts|BM_DetectPhaseKernel' \
  "${kernel_json}"

ncpu="$(nproc)"
threads_recorded=false
refusal=""
if (( ncpu >= 2 )); then
  echo "== thread-scaling sweep on ${ncpu} CPUs =="
  run_bench 'BM_ViolationGraphKernelThreads' "${threads_json}"
  threads_recorded=true
else
  refusal="nproc=${ncpu}: thread-scaling curve is flat by construction on a single core; refusing to record it as a measurement. Re-run on a box with >= 2 CPUs."
  echo "REFUSED thread-scaling recording: ${refusal}" >&2
fi

python3 - "${kernel_json}" "${threads_json}" "${out_json}" \
  "${threads_recorded}" "${refusal}" <<'PY'
import json, sys

kernel_path, threads_path, out_path, recorded, refusal = sys.argv[1:6]
with open(kernel_path) as f:
    merged = json.load(f)

if recorded == "true":
    with open(threads_path) as f:
        merged["benchmarks"].extend(json.load(f)["benchmarks"])
    merged["thread_scaling"] = {"recorded": True, "num_cpus_at_record": merged["context"]["num_cpus"]}
else:
    merged["thread_scaling"] = {"recorded": False, "refusal": refusal}

merged["protocol"] = {
    "script": "tools/bench_multicore.sh",
    "repetitions": 3,
    "build_type": "RelWithDebInfo",
    "kernel_arg": "0 = scalar, 1 = bitparallel",
    "notes": "Kernel A/B, row-alloc, SIMD screen and detect-phase suites are single-core-valid and always recorded; BM_ViolationGraphKernelThreads is only recorded when nproc >= 2.",
}

with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
PY

echo "bench_multicore: done"
