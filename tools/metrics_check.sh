#!/usr/bin/env bash
# End-to-end check of the observability surface: builds the CLI, runs a
# repair with --metrics-json and --trace-json, and fails if either file
# is missing, is not valid JSON, or lacks the keys the pipeline is
# supposed to emit (per-phase counters, the end-to-end latency
# histogram, and trace spans covering detect -> solve -> targets ->
# apply). Usage: tools/metrics_check.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" --target ftrepair_cli >/dev/null

work_dir="$(mktemp -d)"
trap 'rm -rf "${work_dir}"' EXIT

# The paper's running example: phi2 and phi3 share City, so the
# multi-FD component (target tree / AssignTargets) is exercised too.
cat > "${work_dir}/dirty.csv" <<'EOF'
Name,Education,Level,City,Street,District,State
Janaina,Bachelors,3,New York,Main,Manhattan,NY
Aloke,Bachelors,3,New York,Main,Manhattan,NY
Jieyu,Bachelors,3,New York,Western,Queens,NY
Paulo,Masters,4,New York,Western,Queens,MA
Zoe,Masters,4,Boston,Main,Manhattan,NY
Gara,Masers,4,Boston,Main,Financial,MA
Mitchell,HS-grad,9,Boston,Main,Financial,MA
Pavol,Masters,3,Boton,Arlingto,Brookside,MA
Thilo,Bachelors,1,Boston,Arlingto,Brookside,MA
Nenad,Bachelers,3,Boston,Arlingto,Brookside,NY
EOF
cat > "${work_dir}/fds.txt" <<'EOF'
phi1: Education -> Level
phi2: City -> State
phi3: City, Street -> District
EOF

metrics_json="${work_dir}/metrics.json"
trace_json="${work_dir}/trace.json"

"${build_dir}/tools/ftrepair" \
  --input "${work_dir}/dirty.csv" \
  --fds "${work_dir}/fds.txt" \
  --tau-fd phi1=0.30 --tau-fd phi2=0.5 --tau-fd phi3=0.5 \
  --wl 0.5 --wr 0.5 \
  --metrics-json="${metrics_json}" \
  --trace-json="${trace_json}" >/dev/null

for f in "${metrics_json}" "${trace_json}"; do
  if [[ ! -s "${f}" ]]; then
    echo "FAIL: ${f} missing or empty" >&2
    exit 1
  fi
done

python3 - "${metrics_json}" "${trace_json}" <<'EOF'
import json
import sys

metrics_path, trace_path = sys.argv[1], sys.argv[2]

with open(metrics_path) as f:
    metrics = json.load(f)  # raises on invalid JSON

counters = metrics.get("counters", {})
histograms = metrics.get("histograms", {})
missing = [
    key
    for key in (
        "ftrepair.phase.detect_us",
        "ftrepair.phase.graph_us",
        "ftrepair.phase.solve_us",
        "ftrepair.phase.targets_us",
        "ftrepair.phase.apply_us",
        "ftrepair.phase.stats_us",
        "ftrepair.repair.runs",
        "ftrepair.ingest.rows_read",
    )
    if key not in counters
]
if missing:
    sys.exit(f"FAIL: metrics snapshot lacks counters: {missing}")
if not histograms:
    sys.exit("FAIL: metrics snapshot has no latency histograms")
if "ftrepair.repair.total_ms" not in histograms:
    sys.exit("FAIL: metrics snapshot lacks ftrepair.repair.total_ms")
if metrics["counters"]["ftrepair.repair.runs"] < 1:
    sys.exit("FAIL: ftrepair.repair.runs counter never incremented")

with open(trace_path) as f:
    trace = json.load(f)

events = trace.get("traceEvents")
if not isinstance(events, list) or not events:
    sys.exit("FAIL: trace JSON has no traceEvents")
names = {e.get("name", "") for e in events}
for needed in (
    "ingest.read_csv",
    "repair.detect",
    "detect.graph_build",
    "targets.assign",
    "repair.total",
):
    if needed not in names:
        sys.exit(f"FAIL: trace lacks span '{needed}' (have: {sorted(names)})")
if not any(n.endswith(("solve_single", "solve_multi")) for n in names):
    sys.exit(f"FAIL: trace lacks a solver span (have: {sorted(names)})")
if not any(n.startswith("repair.apply") for n in names):
    sys.exit(f"FAIL: trace lacks an apply span (have: {sorted(names)})")

print(
    f"OK: {len(counters)} counters, {len(histograms)} histograms, "
    f"{len(events)} trace events"
)
EOF

echo "metrics_check: PASS"
