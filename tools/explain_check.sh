#!/usr/bin/env bash
# End-to-end check of the provenance/explain surface: builds the CLI and
# the replay verifier, runs a repair with --explain-json and
# --audit-log, validates the report schema and the NDJSON stream, and
# replays the report with ftrepair_verify (which recomputes every cost
# and violation claim from scratch and fails on any mismatch).
# Usage: tools/explain_check.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" \
  --target ftrepair_cli --target ftrepair_verify >/dev/null

work_dir="$(mktemp -d)"
trap 'rm -rf "${work_dir}"' EXIT

# The paper's running example: single-FD (phi1) and multi-FD (phi2+phi3
# share City) components, so both provenance paths are exercised.
cat > "${work_dir}/dirty.csv" <<'EOF'
Name,Education,Level,City,Street,District,State
Janaina,Bachelors,3,New York,Main,Manhattan,NY
Aloke,Bachelors,3,New York,Main,Manhattan,NY
Jieyu,Bachelors,3,New York,Western,Queens,NY
Paulo,Masters,4,New York,Western,Queens,MA
Zoe,Masters,4,Boston,Main,Manhattan,NY
Gara,Masers,4,Boston,Main,Financial,MA
Mitchell,HS-grad,9,Boston,Main,Financial,MA
Pavol,Masters,3,Boton,Arlingto,Brookside,MA
Thilo,Bachelors,1,Boston,Arlingto,Brookside,MA
Nenad,Bachelers,3,Boston,Arlingto,Brookside,NY
EOF
cat > "${work_dir}/fds.txt" <<'EOF'
phi1: Education -> Level
phi2: City -> State
phi3: City, Street -> District
EOF

explain_json="${work_dir}/explain.json"
audit_log="${work_dir}/audit.ndjson"

"${build_dir}/tools/ftrepair" \
  --input "${work_dir}/dirty.csv" \
  --fds "${work_dir}/fds.txt" \
  --tau-fd phi1=0.30 --tau-fd phi2=0.5 --tau-fd phi3=0.5 \
  --wl 0.5 --wr 0.5 \
  --explain-json="${explain_json}" \
  --audit-log="${audit_log}" \
  --explain 5,1 >/dev/null

for f in "${explain_json}" "${audit_log}"; do
  if [[ ! -s "${f}" ]]; then
    echo "FAIL: ${f} missing or empty" >&2
    exit 1
  fi
done

python3 - "${explain_json}" "${audit_log}" <<'EOF'
import json
import sys

explain_path, audit_path = sys.argv[1], sys.argv[2]

with open(explain_path) as f:
    report = json.load(f)  # raises on invalid JSON

if report.get("schema_version") != 1:
    sys.exit(f"FAIL: unexpected schema_version {report.get('schema_version')}")
for key in ("generator", "algorithm", "input", "fds", "components",
            "stats", "ledger", "memory", "degradations", "decisions",
            "changes"):
    if key not in report:
        sys.exit(f"FAIL: explain report lacks '{key}'")
if not report["decisions"]:
    sys.exit("FAIL: explain report has no decisions")
if not report["changes"]:
    sys.exit("FAIL: explain report has no changes")
ledger = report["ledger"]
if not ledger.get("reconciled"):
    sys.exit(f"FAIL: ledger does not reconcile: {ledger}")
if abs(ledger["total"] - report["stats"]["repair_cost"]) > 1e-9:
    sys.exit("FAIL: ledger total != stats.repair_cost")
replayed = sum(c["cost_delta"] for c in report["changes"])
if abs(replayed - ledger["total"]) > 1e-9:
    sys.exit("FAIL: per-change deltas do not sum to the ledger total")
for change in report["changes"]:
    if change["decision"] < 0 or change["decision"] >= len(report["decisions"]):
        sys.exit(f"FAIL: change points at missing decision: {change}")
for decision in report["decisions"]:
    if decision["rung"] not in ("exact", "greedy", "appro", "constant"):
        sys.exit(f"FAIL: unknown solver rung: {decision['rung']}")
    if len(decision["cols"]) != len(decision["target_values"]):
        sys.exit(f"FAIL: decision cols/values disagree: {decision}")

events = []
with open(audit_path) as f:
    for line in f:
        events.append(json.loads(line))  # raises on invalid NDJSON
if not events or events[0]["event"] != "run_start":
    sys.exit("FAIL: audit log does not start with run_start")
if events[-1]["event"] != "run_end":
    sys.exit("FAIL: audit log does not end with run_end")
decisions = [e for e in events if e["event"] == "decision"]
if len(decisions) != len(report["decisions"]):
    sys.exit(
        f"FAIL: audit log has {len(decisions)} decisions, "
        f"report has {len(report['decisions'])}"
    )

print(
    f"OK: {len(report['decisions'])} decisions, "
    f"{len(report['changes'])} changes, {len(events)} audit events"
)
EOF

"${build_dir}/tools/ftrepair_verify" \
  --input "${work_dir}/dirty.csv" --report "${explain_json}"

echo "explain_check: PASS"
