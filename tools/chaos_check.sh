#!/usr/bin/env bash
# Pre-merge gate for the resource-governance surface: builds the chaos
# suite under AddressSanitizer+UBSan and then ThreadSanitizer and runs
# the fault sweeps (tests/chaos_test.cc + the budget ladder suite), so
# a memory-exhaustion path that crashes, races, or leaks fails the
# gate. See docs/ROBUSTNESS.md for the contract being enforced.
#
# Usage: tools/chaos_check.sh [asan-build-dir] [tsan-build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
asan_dir="${1:-${repo_root}/build-chaos-asan}"
tsan_dir="${2:-${repo_root}/build-chaos-tsan}"

# The chaos surface: MemoryBudget unit semantics, the fault sweeps,
# ladder completeness, bit-identity, and the deadline-budget ladder
# suite that shares the degradation machinery — plus the
# distance-kernel fuzz/differential suites and the SIMD screen
# differentials, so a kernel swap can never slip past the sanitizers,
# and the repair-semantics property sweeps (cardinality majority,
# soft-fd filters), whose pipelines ride the same degradation ladder.
chaos_regex='Chaos|Memory|Ladder|Budget|DistanceKernel|SimdScreen|Semantics|Cardinality|SoftFd'

run_mode() {
  local mode="$1" build_dir="$2"
  echo "== chaos sweep under ${mode} sanitizer =="
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFTREPAIR_SANITIZE="${mode}" \
    -DFTREPAIR_BUILD_BENCHMARKS=OFF \
    -DFTREPAIR_BUILD_EXAMPLES=OFF
  cmake --build "${build_dir}" -j "$(nproc)" \
    --target chaos_test budget_test distance_kernel_test semantics_test \
             semantics_property_test
  if [[ "${mode}" == "thread" ]]; then
    export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  else
    export ASAN_OPTIONS="detect_leaks=1:abort_on_error=1"
    export UBSAN_OPTIONS="print_stacktrace=1"
  fi
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
    -R "${chaos_regex}"
}

run_mode address "${asan_dir}"
run_mode thread "${tsan_dir}"

echo "chaos_check: PASS"
