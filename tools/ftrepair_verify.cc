// Standalone replay verifier for explain reports: reads the input CSV
// an explain report claims to describe plus the report itself, then
// independently recomputes every checkable claim (cost deltas, decision
// unit costs, violation-edge distances, the reconciling ledger, exact
// FT-violation counts). Exits non-zero on any mismatch, so CI can gate
// on "the explain surface never lies".
//
// Usage: ftrepair_verify --input dirty.csv --report explain.json

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "data/csv.h"
#include "eval/explain_verify.h"

namespace {

using namespace ftrepair;

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --input dirty.csv --report explain.json\n"
               "\n"
               "Replays an ftrepair --explain-json report against the\n"
               "input table it was produced from and fails if any claim\n"
               "in the report does not independently recompute.\n";
  return 2;
}

int Run(int argc, char** argv) {
  std::string input_path;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return Usage(argv[0]);
    if ((arg == "--input" || arg == "--report") && i + 1 >= argc) {
      std::cerr << arg << " needs a value\n";
      return 2;
    }
    if (arg == "--input") {
      input_path = argv[++i];
    } else if (arg == "--report") {
      report_path = argv[++i];
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return Usage(argv[0]);
    }
  }
  if (input_path.empty() || report_path.empty()) return Usage(argv[0]);

  Result<Table> input = ReadCsvFile(input_path);
  if (!input.ok()) {
    std::cerr << "ftrepair_verify: " << input.status().ToString() << "\n";
    return 2;
  }
  std::ifstream report_stream(report_path, std::ios::binary);
  if (!report_stream) {
    std::cerr << "ftrepair_verify: cannot open '" << report_path << "'\n";
    return 2;
  }
  std::ostringstream report_text;
  report_text << report_stream.rdbuf();

  Result<ExplainVerifyReport> verified =
      VerifyExplainReport(input.value(), report_text.str());
  if (!verified.ok()) {
    std::cerr << "ftrepair_verify: " << verified.status().ToString()
              << "\n";
    return 2;
  }
  const ExplainVerifyReport& report = verified.value();
  for (const std::string& error : report.errors) {
    std::cerr << "MISMATCH: " << error << "\n";
  }
  if (report.errors_truncated) {
    std::cerr << "MISMATCH: ... further mismatches truncated\n";
  }
  std::cout << "ftrepair_verify: " << report.decisions_checked
            << " decisions, " << report.edges_checked << " edges, "
            << report.changes_checked << " changes"
            << (report.violations_recounted ? ", violations recounted"
                                            : "")
            << (report.ok() ? " -- OK" : " -- FAIL") << "\n";
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
