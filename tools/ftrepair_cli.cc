// The `ftrepair` command-line tool: repair a CSV against a list of FDs.
// See CliUsage() / --help for flags.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto options = ftrepair::ParseCliArgs(args);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().message().c_str());
    return EXIT_FAILURE;
  }
  ftrepair::Status status = ftrepair::RunCli(options.value(), std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
