#!/usr/bin/env bash
# Cross-semantics benchmark protocol: builds the bench suite
# (RelWithDebInfo, same as every recorded BENCH_*.json) and records the
# full-pipeline wall time and change-count/cost counters of
# ft-cost vs soft-fd vs cardinality on the 10k-row dirty HOSP instance
# into BENCH_semantics.json (3 repetitions, aggregates only — medians
# are what the docs quote), following the bench_multicore.sh protocol.
#
# Usage: tools/bench_semantics.sh [build-dir] [output-json]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"
out_json="${2:-${repo_root}/BENCH_semantics.json}"

reps=3
min_time=0.05

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFTREPAIR_BUILD_BENCHMARKS=ON \
  -DFTREPAIR_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)" --target micro_semantics

"${build_dir}/bench/micro_semantics" \
  --benchmark_filter='BM_RepairSemantics' \
  --benchmark_repetitions="${reps}" \
  --benchmark_report_aggregates_only=true \
  --benchmark_min_time="${min_time}" \
  --benchmark_format=json \
  --benchmark_out="${out_json}" \
  --benchmark_out_format=json

echo "bench_semantics: wrote ${out_json}"
