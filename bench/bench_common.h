#ifndef FTREPAIR_BENCH_BENCH_COMMON_H_
#define FTREPAIR_BENCH_BENCH_COMMON_H_

// Shared plumbing for the per-figure bench harnesses. Every binary in
// bench/ regenerates one table or figure of the paper's evaluation
// (§6): it prints the same series the paper plots, at a CI-friendly
// scale by default. Set FTR_SCALE=paper for paper-sized inputs.

#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/report.h"
#include "gen/dataset.h"

namespace ftrepair {
namespace bench {

/// Sweep parameters for one dataset.
struct DatasetScale {
  /// #-tuples sweep (Figs. 5, 8, 11, 14).
  std::vector<int> rows_sweep;
  /// Fixed #-tuples for the #-FDs and error-rate sweeps.
  int fixed_rows;
};

struct Scale {
  DatasetScale hosp;
  DatasetScale tax;
  /// Error-rate sweep in percent (Figs. 7, 10, 13, 16).
  std::vector<double> error_percents;
  /// #-FDs sweep (Figs. 6, 9, 12, 15).
  std::vector<int> fd_counts;
  /// Fixed error rate for the other sweeps (the paper uses 4%).
  double fixed_error_percent = 4.0;
  bool paper_scale = false;
};

/// Reads FTR_SCALE ("ci" default, "paper" for the paper's sizes).
const Scale& GetScale();

/// Cached dataset generation: generated once at the sweep's maximum
/// size; slices come from Dataset.clean.Head().
const Dataset& HospDataset();
const Dataset& TaxDataset();
const Dataset& DatasetFor(bool hosp);

/// Builds the experiment config shared by every figure: recommended
/// taus/weights, violation stats off (pure repair timing).
ExperimentConfig BaseConfig(int rows, int num_fds, double error_percent);

/// Runs `system`; on error prints a warning and returns a row with
/// NaN quality (rendered "n/a").
ExperimentRow RunOrWarn(const Dataset& dataset, SystemUnderTest system,
                        const ExperimentConfig& config);

/// Formats a metric, rendering NaN as "n/a".
std::string Cell(double value, int decimals = 3);

/// One plotted series: a system plus config tweaks.
struct Variant {
  std::string label;
  SystemUnderTest system;
  /// 0 = all FDs; 1 reproduces the paper's "-S" (single-FD) series.
  int num_fds = 0;
  /// false = the no-target-tree ablation (materialize + linear scan).
  bool use_target_tree = true;
};

/// The swept x-axis of a figure.
enum class SweepAxis { kRows, kFds, kErrorRate };

/// Runs the sweep over both datasets and prints the paper-style series:
/// one precision and one recall table per dataset when `show_quality`,
/// one runtime table per dataset when `show_time`. `figure` prefixes
/// the table titles (e.g. "Figure 5").
void PrintSweep(const std::string& figure, SweepAxis axis,
                const std::vector<Variant>& variants, bool show_quality,
                bool show_time);

/// The paper's own algorithms (Figs. 5-10).
std::vector<Variant> OurVariants();

/// Single-FD comparison series (URM-S / Nadeef-S / Llunatic-S vs ours).
std::vector<Variant> SingleFDComparisonVariants();

/// Multi-FD comparison series.
std::vector<Variant> MultiFDComparisonVariants();

}  // namespace bench
}  // namespace ftrepair

#endif  // FTREPAIR_BENCH_BENCH_COMMON_H_
