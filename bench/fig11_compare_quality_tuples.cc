// Figure 11: quality vs URM/NADEEF/Llunatic, varying #tuples.

#include "bench_common.h"

int main() {
  using namespace ftrepair::bench;
  PrintSweep("Figure 11 (single FD)", ftrepair::bench::SweepAxis::kRows,
             SingleFDComparisonVariants(), /*show_quality=*/true,
             /*show_time=*/false);
  PrintSweep("Figure 11 (multi FD)", ftrepair::bench::SweepAxis::kRows,
             MultiFDComparisonVariants(), /*show_quality=*/true,
             /*show_time=*/false);
  return 0;
}
