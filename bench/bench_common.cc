#include "bench_common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"

namespace ftrepair {
namespace bench {

const Scale& GetScale() {
  static const Scale* kScale = [] {
    auto* scale = new Scale();
    const char* env = std::getenv("FTR_SCALE");
    if (env != nullptr && std::strcmp(env, "paper") == 0) {
      scale->paper_scale = true;
      scale->hosp = {{4000, 8000, 12000, 16000, 20000}, 8000};
      scale->tax = {{2000, 4000, 6000, 8000, 10000}, 4000};
    } else {
      scale->hosp = {{400, 800, 1200, 1600, 2000}, 1200};
      scale->tax = {{200, 400, 600, 800, 1000}, 600};
    }
    scale->error_percents = {2, 4, 6, 8, 10};
    scale->fd_counts = {1, 3, 5, 7, 9};
    return scale;
  }();
  return *kScale;
}

const Dataset& HospDataset() {
  static const Dataset* kDataset = [] {
    int max_rows = GetScale().hosp.rows_sweep.back();
    return new Dataset(
        std::move(GenerateHosp({.num_rows = max_rows, .seed = 7}))
            .ValueOrDie());
  }();
  return *kDataset;
}

const Dataset& TaxDataset() {
  static const Dataset* kDataset = [] {
    int max_rows = GetScale().tax.rows_sweep.back();
    return new Dataset(
        std::move(GenerateTax({.num_rows = max_rows, .seed = 11}))
            .ValueOrDie());
  }();
  return *kDataset;
}

const Dataset& DatasetFor(bool hosp) {
  return hosp ? HospDataset() : TaxDataset();
}

ExperimentConfig BaseConfig(int rows, int num_fds, double error_percent) {
  ExperimentConfig config;
  config.num_rows = rows;
  config.num_fds = num_fds;
  config.noise.error_rate = error_percent / 100.0;
  config.noise.seed = 42;
  config.repair.compute_violation_stats = false;
  return config;
}

ExperimentRow RunOrWarn(const Dataset& dataset, SystemUnderTest system,
                        const ExperimentConfig& config) {
  auto row = RunExperiment(dataset, system, config);
  if (row.ok()) return std::move(row).value();
  std::fprintf(stderr, "[bench] %s on %s failed: %s\n", SystemName(system),
               dataset.name.c_str(), row.status().ToString().c_str());
  ExperimentRow bad;
  bad.quality.precision = std::nan("");
  bad.quality.recall = std::nan("");
  bad.quality.f1 = std::nan("");
  bad.seconds = std::nan("");
  return bad;
}

std::string Cell(double value, int decimals) {
  if (std::isnan(value)) return "n/a";
  return Report::Num(value, decimals);
}

namespace {

struct AxisPoint {
  std::string label;
  int rows;
  int num_fds;       // 0 = all
  double error_pct;
};

std::vector<AxisPoint> AxisPoints(SweepAxis axis, bool hosp) {
  const Scale& scale = GetScale();
  const DatasetScale& ds = hosp ? scale.hosp : scale.tax;
  std::vector<AxisPoint> points;
  switch (axis) {
    case SweepAxis::kRows:
      for (int rows : ds.rows_sweep) {
        points.push_back({std::to_string(rows), rows, 0,
                          scale.fixed_error_percent});
      }
      break;
    case SweepAxis::kFds:
      for (int fds : scale.fd_counts) {
        points.push_back({std::to_string(fds), ds.fixed_rows, fds,
                          scale.fixed_error_percent});
      }
      break;
    case SweepAxis::kErrorRate:
      for (double pct : scale.error_percents) {
        points.push_back({Report::Num(pct, 0) + "%", ds.fixed_rows, 0, pct});
      }
      break;
  }
  return points;
}

const char* AxisName(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kRows:
      return "#tuples";
    case SweepAxis::kFds:
      return "#FDs";
    case SweepAxis::kErrorRate:
      return "e%";
  }
  return "?";
}

}  // namespace

void PrintSweep(const std::string& figure, SweepAxis axis,
                const std::vector<Variant>& variants, bool show_quality,
                bool show_time) {
  for (bool hosp : {true, false}) {
    const Dataset& dataset = DatasetFor(hosp);
    std::vector<std::string> header = {AxisName(axis)};
    for (const Variant& v : variants) header.push_back(v.label);

    Report precision(figure + " — " + dataset.name + " precision");
    Report recall(figure + " — " + dataset.name + " recall");
    Report time(figure + " — " + dataset.name + " runtime (s)");
    precision.SetHeader(header);
    recall.SetHeader(header);
    time.SetHeader(header);

    for (const AxisPoint& point : AxisPoints(axis, hosp)) {
      std::vector<std::string> p_row = {point.label};
      std::vector<std::string> r_row = {point.label};
      std::vector<std::string> t_row = {point.label};
      for (const Variant& variant : variants) {
        int num_fds = variant.num_fds > 0 ? variant.num_fds : point.num_fds;
        ExperimentConfig config =
            BaseConfig(point.rows, num_fds, point.error_pct);
        config.repair.use_target_tree = variant.use_target_tree;
        ExperimentRow row = RunOrWarn(dataset, variant.system, config);
        p_row.push_back(Cell(row.quality.precision));
        r_row.push_back(Cell(row.quality.recall));
        t_row.push_back(Cell(row.seconds, 3));
      }
      precision.AddRow(std::move(p_row));
      recall.AddRow(std::move(r_row));
      time.AddRow(std::move(t_row));
    }
    if (show_quality) {
      precision.Print(std::cout);
      recall.Print(std::cout);
    }
    if (show_time) time.Print(std::cout);
  }
}

std::vector<Variant> OurVariants() {
  return {{"Expansion", SystemUnderTest::kExpansion},
          {"Greedy", SystemUnderTest::kGreedy},
          {"Appro", SystemUnderTest::kAppro}};
}

std::vector<Variant> SingleFDComparisonVariants() {
  return {{"Greedy-S", SystemUnderTest::kGreedy, 1},
          {"Expansion-S", SystemUnderTest::kExpansion, 1},
          {"URM-S", SystemUnderTest::kUrm, 1},
          {"Nadeef-S", SystemUnderTest::kNadeef, 1},
          {"Llunatic-S", SystemUnderTest::kLlunatic, 1}};
}

std::vector<Variant> MultiFDComparisonVariants() {
  return {{"Greedy-M", SystemUnderTest::kGreedy},
          {"Appro-M", SystemUnderTest::kAppro},
          {"URM-M", SystemUnderTest::kUrm},
          {"Nadeef-M", SystemUnderTest::kNadeef},
          {"Llunatic-M", SystemUnderTest::kLlunatic}};
}

}  // namespace bench
}  // namespace ftrepair
