// Micro-benchmarks of the distance kernels everything else is built on
// (google-benchmark).
//
// The kernel A/B suites (BM_*Kernel*) drive the fixed entry points of
// both edit-distance kernels — scalar banded DP vs Myers bit-parallel
// — across string lengths straddling the one-word/multi-word boundary,
// plus the detect phase end-to-end under either kernel and a thread
// sweep for the multi-core protocol (tools/bench_multicore.sh records
// these into BENCH_distance_kernels.json). Kernel arg convention:
// 0 = scalar, 1 = bitparallel.

#include <cstdint>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "detect/block_index.h"
#include "detect/pattern.h"
#include "detect/violation_graph.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "metric/distance.h"

namespace {

using namespace ftrepair;

std::string RandomString(ftrepair::Rng* rng, size_t len) {
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>('a' + rng->Index(26));
  }
  return s;
}

// `a` with a few random byte edits: realistic near-duplicate pairs so
// bounded kernels see small true distances, not the ~len of two
// independent random strings.
std::string Mutate(ftrepair::Rng* rng, std::string a, int edits) {
  for (int i = 0; i < edits && !a.empty(); ++i) {
    a[rng->Index(a.size())] = static_cast<char>('a' + rng->Index(26));
  }
  return a;
}

void BM_EditDistance(benchmark::State& state) {
  ftrepair::Rng rng(1);
  size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(&rng, len);
  std::string b = RandomString(&rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftrepair::EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance)->Arg(8)->Arg(16)->Arg(64);

void BM_BoundedEditDistance(benchmark::State& state) {
  ftrepair::Rng rng(1);
  size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(&rng, len);
  std::string b = RandomString(&rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftrepair::BoundedEditDistance(a, b, 3));
  }
}
BENCHMARK(BM_BoundedEditDistance)->Arg(8)->Arg(16)->Arg(64);

void BM_NormalizedEditDistance(benchmark::State& state) {
  ftrepair::Rng rng(2);
  std::string a = RandomString(&rng, 12);
  std::string b = RandomString(&rng, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftrepair::NormalizedEditDistance(a, b));
  }
}
BENCHMARK(BM_NormalizedEditDistance);

void BM_TokenJaccard(benchmark::State& state) {
  std::string a = "aspirin prescribed at discharge for patients";
  std::string b = "statin prescribed at discharge for all patients";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftrepair::TokenJaccardDistance(a, b));
  }
}
BENCHMARK(BM_TokenJaccard);

// ---- Kernel A/B: scalar vs bit-parallel -----------------------------

void BM_EditDistanceKernel(benchmark::State& state) {
  ftrepair::Rng rng(1);
  size_t len = static_cast<size_t>(state.range(0));
  bool bitparallel = state.range(1) != 0;
  std::string a = RandomString(&rng, len);
  std::string b = Mutate(&rng, a, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitparallel ? EditDistanceBitParallel(a, b)
                                         : EditDistanceScalar(a, b));
  }
}
BENCHMARK(BM_EditDistanceKernel)
    ->ArgsProduct({{8, 16, 32, 63, 64, 65, 128, 256}, {0, 1}});

void BM_BoundedEditDistanceKernel(benchmark::State& state) {
  ftrepair::Rng rng(1);
  size_t len = static_cast<size_t>(state.range(0));
  size_t cap = static_cast<size_t>(state.range(1));
  bool bitparallel = state.range(2) != 0;
  std::string a = RandomString(&rng, len);
  std::string b = Mutate(&rng, a, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitparallel
                                 ? BoundedEditDistanceBitParallel(a, b, cap)
                                 : BoundedEditDistanceScalar(a, b, cap));
  }
}
BENCHMARK(BM_BoundedEditDistanceKernel)
    ->ArgsProduct({{8, 16, 64, 128}, {1, 3, 8}, {0, 1}});

// ---- Scratch-row fix: per-call allocation vs thread-local reuse -----

// The pre-fix scalar kernel, verbatim: a fresh heap row per call.
// Kept here (not in the library) so the allocation cost stays measured.
size_t EditDistanceAllocRow(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({above + 1, row[j - 1] + 1, sub});
      diag = above;
    }
  }
  return row[b.size()];
}

void BM_EditDistanceRowAlloc(benchmark::State& state) {
  ftrepair::Rng rng(1);
  size_t len = static_cast<size_t>(state.range(0));
  bool scratch = state.range(1) != 0;  // 0 = per-call alloc, 1 = thread-local
  std::string a = RandomString(&rng, len);
  std::string b = Mutate(&rng, a, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scratch ? EditDistanceScalar(a, b)
                                     : EditDistanceAllocRow(a, b));
  }
}
BENCHMARK(BM_EditDistanceRowAlloc)->ArgsProduct({{8, 16, 64}, {0, 1}});

// ---- SIMD bigram screen vs scalar reference -------------------------

void BM_ScreenSharedCounts(benchmark::State& state) {
  ftrepair::Rng rng(3);
  int n = static_cast<int>(state.range(0));
  bool simd = state.range(1) != 0;
  const uint32_t threshold = 4;
  std::vector<uint32_t> counts(static_cast<size_t>(n));
  for (uint32_t& c : counts) {
    c = static_cast<uint32_t>(rng.Uniform(2 * threshold + 2));
  }
  std::vector<int> out;
  out.reserve(counts.size());
  for (auto _ : state) {
    out.clear();
    if (simd) {
      ScreenSharedCounts(counts.data(), n, threshold, &out);
    } else {
      ScreenSharedCountsScalar(counts.data(), n, threshold, &out);
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ScreenSharedCounts)->ArgsProduct({{64, 1024, 16384}, {0, 1}});

// ---- Detect phase under either kernel (50k-row HOSP) ----------------

constexpr int kMaxRows = 50000;

const Dataset& SharedDataset() {
  static const Dataset* kDataset = new Dataset(
      std::move(GenerateHosp({.num_rows = kMaxRows, .seed = 7}))
          .ValueOrDie());
  return *kDataset;
}

const Table& DirtyTable() {
  static const Table* kTable = [] {
    NoiseOptions noise;
    noise.error_rate = 0.04;
    return new Table(std::move(InjectErrors(SharedDataset().clean,
                                            SharedDataset().fds, noise,
                                            nullptr))
                         .ValueOrDie());
  }();
  return *kTable;
}

// Process-wide kernel pin for the pipeline benches, restored on exit.
class ScopedKernel {
 public:
  explicit ScopedKernel(bool bitparallel) {
    SetDistanceKernel(bitparallel ? DistanceKernel::kBitParallel
                                  : DistanceKernel::kScalar);
  }
  ~ScopedKernel() { SetDistanceKernel(DistanceKernel::kAuto); }
};

// End-to-end detect phase (grouping + graph build) over every HOSP FD
// — the workload `--distance-kernel` actually moves.
void BM_DetectPhaseKernel(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  Table slice = DirtyTable().Head(static_cast<int>(state.range(0)));
  ScopedKernel kernel(state.range(1) != 0);
  DistanceModel model(slice);
  for (auto _ : state) {
    uint64_t edges = 0;
    for (const FD& fd : ds.fds) {
      FTOptions opts{ds.recommended_w_l, ds.recommended_w_r,
                     ds.recommended_tau.at(fd.name())};
      std::vector<Pattern> patterns = BuildPatterns(slice, fd.attrs(), true);
      edges += ViolationGraph::Build(patterns, fd, model, opts).num_edges();
    }
    benchmark::DoNotOptimize(edges);
  }
}
BENCHMARK(BM_DetectPhaseKernel)
    ->ArgsProduct({{10000, kMaxRows}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Thread-scaling curve of the graph build under either kernel: the
// multi-core protocol's payload (single-core boxes record a flat
// curve; bench_multicore.sh refuses to record it — see
// docs/PERFORMANCE.md, "Measuring on multiple cores").
void BM_ViolationGraphKernelThreads(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  Table slice = DirtyTable().Head(kMaxRows);
  ScopedKernel kernel(state.range(1) != 0);
  const FD& fd = ds.fds[2];  // ZipCode -> City
  DistanceModel model(slice);
  FTOptions opts{ds.recommended_w_l, ds.recommended_w_r,
                 ds.recommended_tau.at(fd.name())};
  opts.threads = static_cast<int>(state.range(0));
  std::vector<Pattern> patterns = BuildPatterns(slice, fd.attrs(), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ViolationGraph::Build(patterns, fd, model, opts));
  }
}
BENCHMARK(BM_ViolationGraphKernelThreads)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
