// Micro-benchmarks of the distance kernels everything else is built on
// (google-benchmark).

#include <string>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "metric/distance.h"

namespace {

std::string RandomString(ftrepair::Rng* rng, size_t len) {
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>('a' + rng->Index(26));
  }
  return s;
}

void BM_EditDistance(benchmark::State& state) {
  ftrepair::Rng rng(1);
  size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(&rng, len);
  std::string b = RandomString(&rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftrepair::EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistance)->Arg(8)->Arg(16)->Arg(64);

void BM_BoundedEditDistance(benchmark::State& state) {
  ftrepair::Rng rng(1);
  size_t len = static_cast<size_t>(state.range(0));
  std::string a = RandomString(&rng, len);
  std::string b = RandomString(&rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftrepair::BoundedEditDistance(a, b, 3));
  }
}
BENCHMARK(BM_BoundedEditDistance)->Arg(8)->Arg(16)->Arg(64);

void BM_NormalizedEditDistance(benchmark::State& state) {
  ftrepair::Rng rng(2);
  std::string a = RandomString(&rng, 12);
  std::string b = RandomString(&rng, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftrepair::NormalizedEditDistance(a, b));
  }
}
BENCHMARK(BM_NormalizedEditDistance);

void BM_TokenJaccard(benchmark::State& state) {
  std::string a = "aspirin prescribed at discharge for patients";
  std::string b = "statin prescribed at discharge for all patients";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftrepair::TokenJaccardDistance(a, b));
  }
}
BENCHMARK(BM_TokenJaccard);

}  // namespace

BENCHMARK_MAIN();
