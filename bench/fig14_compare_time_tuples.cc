// Figure 14: runtime vs URM/NADEEF/Llunatic, varying #tuples.

#include "bench_common.h"

int main() {
  using namespace ftrepair::bench;
  PrintSweep("Figure 14", ftrepair::bench::SweepAxis::kRows,
             MultiFDComparisonVariants(), /*show_quality=*/false,
             /*show_time=*/true);
  return 0;
}
