// Figure 6: precision/recall of our algorithms, varying #FDs
// Prints the series the paper plots; FTR_SCALE=paper for paper sizes.

#include "bench_common.h"

int main() {
  using namespace ftrepair::bench;
  PrintSweep("Figure 6", ftrepair::bench::SweepAxis::kFds,
             OurVariants(), true, false);
  return 0;
}
