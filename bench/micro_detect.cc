// Micro-benchmarks of the detection pipeline: tuple grouping, violation
// graph construction (the similarity self-join) and threshold
// suggestion, on HOSP slices.

#include <benchmark/benchmark.h>

#include "detect/pattern.h"
#include "detect/threshold.h"
#include "detect/violation_graph.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"

namespace {

using namespace ftrepair;

const Dataset& SharedDataset() {
  static const Dataset* kDataset = new Dataset(
      std::move(GenerateHosp({.num_rows = 4000, .seed = 7})).ValueOrDie());
  return *kDataset;
}

const Table& DirtyTable() {
  static const Table* kTable = [] {
    NoiseOptions noise;
    noise.error_rate = 0.04;
    return new Table(std::move(InjectErrors(SharedDataset().clean,
                                            SharedDataset().fds, noise,
                                            nullptr))
                         .ValueOrDie());
  }();
  return *kTable;
}

void BM_BuildPatterns(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  const Table& dirty = DirtyTable();
  Table slice = dirty.Head(static_cast<int>(state.range(0)));
  const FD& fd = ds.fds[2];  // ZipCode -> City
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPatterns(slice, fd.attrs()));
  }
}
BENCHMARK(BM_BuildPatterns)->Arg(1000)->Arg(4000);

void BM_ViolationGraphBuild(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  const Table& dirty = DirtyTable();
  Table slice = dirty.Head(static_cast<int>(state.range(0)));
  const FD& fd = ds.fds[2];
  DistanceModel model(slice);
  FTOptions opts{ds.recommended_w_l, ds.recommended_w_r,
                 ds.recommended_tau.at(fd.name())};
  std::vector<Pattern> patterns = BuildPatterns(slice, fd.attrs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ViolationGraph::Build(patterns, fd, model, opts));
  }
}
BENCHMARK(BM_ViolationGraphBuild)->Arg(1000)->Arg(4000);

// Thread-count sweep of the same build: the graph is bit-identical at
// every point, so this isolates the parallel-join scaling (acceptance
// target: >= 2x at 4 threads on the 4000-row HOSP slice).
void BM_ViolationGraphBuildThreads(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  const Table& dirty = DirtyTable();
  Table slice = dirty.Head(static_cast<int>(state.range(0)));
  const FD& fd = ds.fds[2];
  DistanceModel model(slice);
  FTOptions opts{ds.recommended_w_l, ds.recommended_w_r,
                 ds.recommended_tau.at(fd.name()),
                 static_cast<int>(state.range(1))};
  std::vector<Pattern> patterns = BuildPatterns(slice, fd.attrs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ViolationGraph::Build(patterns, fd, model, opts));
  }
}
BENCHMARK(BM_ViolationGraphBuildThreads)
    ->Args({4000, 1})
    ->Args({4000, 2})
    ->Args({4000, 4})
    ->Args({4000, 8});

void BM_SuggestThreshold(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  const Table& dirty = DirtyTable();
  Table slice = dirty.Head(1000);
  const FD& fd = ds.fds[2];
  DistanceModel model(slice);
  ThresholdOptions topt;
  topt.w_l = ds.recommended_w_l;
  topt.w_r = ds.recommended_w_r;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SuggestThreshold(slice, fd, model, topt));
  }
}
BENCHMARK(BM_SuggestThreshold);

}  // namespace

BENCHMARK_MAIN();
