// Micro-benchmarks of the detection pipeline: tuple grouping, violation
// graph construction (the similarity self-join) and threshold
// suggestion, on HOSP slices.

#include <benchmark/benchmark.h>

#include "detect/pattern.h"
#include "detect/threshold.h"
#include "detect/violation_graph.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"

namespace {

using namespace ftrepair;

const Dataset& SharedDataset() {
  static const Dataset* kDataset = new Dataset(
      std::move(GenerateHosp({.num_rows = 4000, .seed = 7})).ValueOrDie());
  return *kDataset;
}

const Table& DirtyTable() {
  static const Table* kTable = [] {
    NoiseOptions noise;
    noise.error_rate = 0.04;
    return new Table(std::move(InjectErrors(SharedDataset().clean,
                                            SharedDataset().fds, noise,
                                            nullptr))
                         .ValueOrDie());
  }();
  return *kTable;
}

void BM_BuildPatterns(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  const Table& dirty = DirtyTable();
  Table slice = dirty.Head(static_cast<int>(state.range(0)));
  const FD& fd = ds.fds[2];  // ZipCode -> City
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPatterns(slice, fd.attrs()));
  }
}
BENCHMARK(BM_BuildPatterns)->Arg(1000)->Arg(4000);

void BM_ViolationGraphBuild(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  const Table& dirty = DirtyTable();
  Table slice = dirty.Head(static_cast<int>(state.range(0)));
  const FD& fd = ds.fds[2];
  DistanceModel model(slice);
  FTOptions opts{ds.recommended_w_l, ds.recommended_w_r,
                 ds.recommended_tau.at(fd.name())};
  std::vector<Pattern> patterns = BuildPatterns(slice, fd.attrs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ViolationGraph::Build(patterns, fd, model, opts));
  }
}
BENCHMARK(BM_ViolationGraphBuild)->Arg(1000)->Arg(4000);

// Thread-count sweep of the same build: the graph is bit-identical at
// every point, so this isolates the parallel-join scaling (acceptance
// target: >= 2x at 4 threads on the 4000-row HOSP slice).
void BM_ViolationGraphBuildThreads(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  const Table& dirty = DirtyTable();
  Table slice = dirty.Head(static_cast<int>(state.range(0)));
  const FD& fd = ds.fds[2];
  DistanceModel model(slice);
  FTOptions opts{ds.recommended_w_l, ds.recommended_w_r,
                 ds.recommended_tau.at(fd.name()),
                 static_cast<int>(state.range(1))};
  std::vector<Pattern> patterns = BuildPatterns(slice, fd.attrs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ViolationGraph::Build(patterns, fd, model, opts));
  }
}
BENCHMARK(BM_ViolationGraphBuildThreads)
    ->Args({4000, 1})
    ->Args({4000, 2})
    ->Args({4000, 4})
    ->Args({4000, 8});

// --- blocking-index sweeps (--detect-index) --------------------------

// A larger HOSP instance for the index benchmarks; generated once.
const Dataset& IndexDataset() {
  static const Dataset* kDataset = new Dataset(
      std::move(GenerateHosp({.num_rows = 50000, .seed = 7})).ValueOrDie());
  return *kDataset;
}

const Table& IndexDirtyTable() {
  static const Table* kTable = [] {
    NoiseOptions noise;
    noise.error_rate = 0.04;
    return new Table(std::move(InjectErrors(IndexDataset().clean,
                                            IndexDataset().fds, noise,
                                            nullptr))
                         .ValueOrDie());
  }();
  return *kTable;
}

DetectIndexMode ModeArg(int64_t v) {
  return v == 0 ? DetectIndexMode::kAllPairs : DetectIndexMode::kBlocked;
}

// The tau > 0 q-gram path: h3 (ZipCode -> City) at tau = 0.2 with the
// recommended weights, all-pairs vs blocked at 10k and 50k dirty rows
// (acceptance: >= 5x candidate reduction at 50k). Single-threaded so
// the sweep isolates the candidate generation, not the shard fan-out.
void BM_ViolationGraphBuildIndex(benchmark::State& state) {
  const Dataset& ds = IndexDataset();
  Table slice = IndexDirtyTable().Head(static_cast<int>(state.range(0)));
  const FD& fd = ds.fds[2];
  DistanceModel model(slice);
  FTOptions opts{ds.recommended_w_l, ds.recommended_w_r, 0.2, 1,
                 ModeArg(state.range(1))};
  std::vector<Pattern> patterns = BuildPatterns(slice, fd.attrs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ViolationGraph::Build(patterns, fd, model, opts));
  }
  ViolationGraph g = ViolationGraph::Build(patterns, fd, model, opts);
  state.counters["patterns"] = static_cast<double>(g.num_patterns());
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["cand_generated"] =
      static_cast<double>(g.candidates_generated());
  state.counters["cand_verified"] =
      static_cast<double>(g.candidates_verified());
}
BENCHMARK(BM_ViolationGraphBuildIndex)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({50000, 0})
    ->Args({50000, 1})
    ->Unit(benchmark::kMillisecond);

// The tau = 0 exact-match bucket join under classical FD semantics:
// h1 (ProviderNumber -> HospitalName) over a key-rich 100k-row HOSP
// table (acceptance: >= 10x over all-pairs at 100k rows).
// Default provider count (rows / 64 = 1562 distinct keys). Generating
// this table takes ~2 minutes of rejection sampling in the provider
// pool; the static init only runs when a Tau0 benchmark is selected.
const Dataset& Tau0Dataset() {
  static const Dataset* kDataset = new Dataset(
      std::move(GenerateHosp({.num_rows = 100000, .seed = 7})).ValueOrDie());
  return *kDataset;
}

const Table& Tau0DirtyTable() {
  static const Table* kTable = [] {
    NoiseOptions noise;
    noise.error_rate = 0.04;
    return new Table(std::move(InjectErrors(Tau0Dataset().clean,
                                            Tau0Dataset().fds, noise,
                                            nullptr))
                         .ValueOrDie());
  }();
  return *kTable;
}

void BM_ViolationGraphBuildTau0(benchmark::State& state) {
  const Dataset& ds = Tau0Dataset();
  Table slice = Tau0DirtyTable().Head(static_cast<int>(state.range(0)));
  const FD& fd = ds.fds[0];
  DistanceModel model(slice);
  FTOptions opts = ClassicalFTOptions();
  opts.index = ModeArg(state.range(1));
  std::vector<Pattern> patterns = BuildPatterns(slice, fd.attrs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ViolationGraph::Build(patterns, fd, model, opts));
  }
  ViolationGraph g = ViolationGraph::Build(patterns, fd, model, opts);
  state.counters["patterns"] = static_cast<double>(g.num_patterns());
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["cand_generated"] =
      static_cast<double>(g.candidates_generated());
}
BENCHMARK(BM_ViolationGraphBuildTau0)
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Args({100000, 1})
    ->Unit(benchmark::kMillisecond);

// The quadratic 100k-row all-pairs control runs once — it exists to
// anchor the speedup ratio, not to be measured precisely.
BENCHMARK(BM_ViolationGraphBuildTau0)
    ->Args({100000, 0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SuggestThreshold(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  const Table& dirty = DirtyTable();
  Table slice = dirty.Head(1000);
  const FD& fd = ds.fds[2];
  DistanceModel model(slice);
  ThresholdOptions topt;
  topt.w_l = ds.recommended_w_l;
  topt.w_r = ds.recommended_w_r;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SuggestThreshold(slice, fd, model, topt));
  }
}
BENCHMARK(BM_SuggestThreshold);

}  // namespace

BENCHMARK_MAIN();
