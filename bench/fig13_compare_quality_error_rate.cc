// Figure 13: quality vs URM/NADEEF/Llunatic, varying error rate.

#include "bench_common.h"

int main() {
  using namespace ftrepair::bench;
  PrintSweep("Figure 13 (single FD)", ftrepair::bench::SweepAxis::kErrorRate,
             SingleFDComparisonVariants(), /*show_quality=*/true,
             /*show_time=*/false);
  PrintSweep("Figure 13 (multi FD)", ftrepair::bench::SweepAxis::kErrorRate,
             MultiFDComparisonVariants(), /*show_quality=*/true,
             /*show_time=*/false);
  return 0;
}
