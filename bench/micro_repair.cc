// Micro-benchmarks of the repair kernels (google-benchmark): Greedy-S,
// Expansion-S, the target-tree search, and the deadline-governed full
// pipeline, on fixed HOSP-derived inputs.

#include <benchmark/benchmark.h>

#include "common/budget.h"
#include "common/resource.h"
#include "core/expansion_single.h"
#include "core/greedy_single.h"
#include "core/multi_common.h"
#include "core/repairer.h"
#include "core/target_tree.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"

namespace {

using namespace ftrepair;

struct Fixture {
  Dataset dataset;
  Table dirty;
  DistanceModel model;
  ViolationGraph graph;

  Fixture()
      : dataset(std::move(GenerateHosp({.num_rows = 2000, .seed = 7}))
                    .ValueOrDie()),
        dirty(MakeDirty()),
        model(dirty),
        graph(MakeGraph()) {}

  Table MakeDirty() {
    NoiseOptions noise;
    noise.error_rate = 0.04;
    noise.seed = 42;
    return std::move(InjectErrors(dataset.clean, dataset.fds, noise,
                                  nullptr))
        .ValueOrDie();
  }

  ViolationGraph MakeGraph() {
    const FD& fd = dataset.fds[2];  // ZipCode -> City
    FTOptions ft{dataset.recommended_w_l, dataset.recommended_w_r,
                 dataset.recommended_tau.at(fd.name())};
    return ViolationGraph::Build(BuildPatterns(dirty, fd.attrs()), fd,
                                 model, ft);
  }
};

Fixture& SharedFixture() {
  static Fixture* kFixture = new Fixture();
  return *kFixture;
}

void BM_GreedySingle(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveGreedySingle(fixture.graph));
  }
}
BENCHMARK(BM_GreedySingle);

void BM_ExpansionSingle(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    auto solution = SolveExpansionSingle(fixture.graph, ExpansionConfig{});
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_ExpansionSingle);

void BM_TargetTreeSearch(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  // Measure component: the measure FDs h7-h9 joined through MeasureCode.
  RepairOptions options;
  options.w_l = fixture.dataset.recommended_w_l;
  options.w_r = fixture.dataset.recommended_w_r;
  for (const auto& [name, tau] : fixture.dataset.recommended_tau) {
    options.tau_by_fd[name] = tau;
  }
  std::vector<const FD*> fds = {&fixture.dataset.fds[6],
                                &fixture.dataset.fds[7],
                                &fixture.dataset.fds[8]};
  ComponentContext context =
      BuildComponentContext(fixture.dirty, fds, fixture.model, options);
  std::vector<TargetTree::LevelInput> inputs(fds.size());
  for (size_t k = 0; k < fds.size(); ++k) {
    inputs[k].fd = fds[k];
    for (int j : SolveGreedySingle(context.graphs[k]).chosen_set) {
      inputs[k].elements.push_back(context.graphs[k].pattern(j).values);
    }
  }
  TargetTree tree = std::move(TargetTree::Build(
                                  inputs, context.component_cols, 1000000))
                        .ValueOrDie();
  size_t i = 0;
  for (auto _ : state) {
    const Pattern& sigma =
        context.sigma_patterns[i++ % context.sigma_patterns.size()];
    double cost = 0;
    benchmark::DoNotOptimize(
        tree.FindBest(sigma.values, fixture.model, &cost, nullptr));
  }
}
BENCHMARK(BM_TargetTreeSearch);

// Deadline sweep: the full exact pipeline under shrinking budgets.
// Arg is the deadline in microseconds (0 = unlimited). Shows how much
// repair (cost recovered, ladder steps taken) each slice of wall-clock
// buys — the graceful-degradation latency/quality trade-off.
void BM_RepairDeadlineSweep(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kExact;
  options.w_l = fixture.dataset.recommended_w_l;
  options.w_r = fixture.dataset.recommended_w_r;
  for (const auto& [name, tau] : fixture.dataset.recommended_tau) {
    options.tau_by_fd[name] = tau;
  }
  options.compute_violation_stats = false;
  double deadline_ms = static_cast<double>(state.range(0)) / 1000.0;
  double cost = 0;
  double degradations = 0;
  double cells = 0;
  int64_t runs = 0;
  for (auto _ : state) {
    Budget budget(deadline_ms > 0 ? deadline_ms : Budget::kUnlimited);
    options.budget = &budget;
    Repairer repairer(options);
    auto result = repairer.Repair(fixture.dirty, fixture.dataset.fds);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    cost += result.value().stats.repair_cost;
    degradations +=
        static_cast<double>(result.value().stats.degradations.size());
    cells += static_cast<double>(result.value().stats.cells_changed);
    ++runs;
    benchmark::DoNotOptimize(result);
  }
  if (runs > 0) {
    state.counters["cost"] = cost / static_cast<double>(runs);
    state.counters["ladder_steps"] = degradations / static_cast<double>(runs);
    state.counters["cells_changed"] = cells / static_cast<double>(runs);
  }
}
BENCHMARK(BM_RepairDeadlineSweep)
    ->Arg(0)        // unlimited baseline
    ->Arg(100000)   // 100 ms
    ->Arg(10000)    // 10 ms
    ->Arg(1000)     // 1 ms
    ->Arg(100)      // 100 us
    ->Arg(10)       // 10 us
    ->Unit(benchmark::kMillisecond);

// Memory sweep: the full exact pipeline under shrinking resident-byte
// budgets. Arg is the hard limit in KB (0 = unlimited). Shows what
// each slice of memory buys (cells repaired, ladder steps taken) and
// what charging itself costs: the unlimited-budget row vs. the
// no-budget deadline baseline above is the pure accounting overhead.
void BM_RepairMemorySweep(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kExact;
  options.w_l = fixture.dataset.recommended_w_l;
  options.w_r = fixture.dataset.recommended_w_r;
  for (const auto& [name, tau] : fixture.dataset.recommended_tau) {
    options.tau_by_fd[name] = tau;
  }
  options.compute_violation_stats = false;
  uint64_t limit_bytes = static_cast<uint64_t>(state.range(0)) * 1024;
  double peak = 0;
  double degradations = 0;
  double cells = 0;
  int64_t runs = 0;
  for (auto _ : state) {
    MemoryBudget memory(limit_bytes > 0 ? limit_bytes
                                        : MemoryBudget::kUnlimited);
    options.memory = &memory;
    Repairer repairer(options);
    auto result = repairer.Repair(fixture.dirty, fixture.dataset.fds);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    peak += static_cast<double>(memory.peak_bytes());
    degradations +=
        static_cast<double>(result.value().stats.degradations.size());
    cells += static_cast<double>(result.value().stats.cells_changed);
    ++runs;
    benchmark::DoNotOptimize(result);
  }
  if (runs > 0) {
    state.counters["peak_bytes"] = peak / static_cast<double>(runs);
    state.counters["ladder_steps"] = degradations / static_cast<double>(runs);
    state.counters["cells_changed"] = cells / static_cast<double>(runs);
  }
}
BENCHMARK(BM_RepairMemorySweep)
    ->Arg(0)       // unlimited: isolates the charging overhead
    ->Arg(65536)   // 64 MB: no watermark reached on this instance
    ->Arg(4096)    // 4 MB
    ->Arg(1024)    // 1 MB
    ->Arg(256)     // 256 KB
    ->Arg(64)      // 64 KB: deep in the ladder
    ->Unit(benchmark::kMillisecond);

// Thread sweep over the solve-phase fan-out: the full greedy pipeline
// on HOSP (nine FDs, several independent components) at 1/2/4/8 solve
// threads. The merge keeps the result bit-identical, so the sweep
// isolates pure scheduling gain.
void BM_RepairSolveThreads(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  options.w_l = fixture.dataset.recommended_w_l;
  options.w_r = fixture.dataset.recommended_w_r;
  for (const auto& [name, tau] : fixture.dataset.recommended_tau) {
    options.tau_by_fd[name] = tau;
  }
  options.compute_violation_stats = false;
  options.threads = static_cast<int>(state.range(0));
  Repairer repairer(options);
  for (auto _ : state) {
    auto result = repairer.Repair(fixture.dirty, fixture.dataset.fds);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RepairSolveThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
