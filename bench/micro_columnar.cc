// Micro-benchmarks of the columnar (dictionary-code) detect paths
// against the row/value paths they shadow, on HOSP slices up to 50k
// rows. Both sides of every pair produce bit-identical output (see
// tests/columnar_test.cc and PERFORMANCE.md, "Dictionary-join
// equivalence"); the delta here is the point of the layer.

#include <benchmark/benchmark.h>

#include "data/csv.h"
#include "detect/pattern.h"
#include "detect/violation_graph.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"

namespace {

using namespace ftrepair;

constexpr int kMaxRows = 50000;

const Dataset& SharedDataset() {
  static const Dataset* kDataset = new Dataset(
      std::move(GenerateHosp({.num_rows = kMaxRows, .seed = 7}))
          .ValueOrDie());
  return *kDataset;
}

const Table& DirtyTable() {
  static const Table* kTable = [] {
    NoiseOptions noise;
    noise.error_rate = 0.04;
    return new Table(std::move(InjectErrors(SharedDataset().clean,
                                            SharedDataset().fds, noise,
                                            nullptr))
                         .ValueOrDie());
  }();
  return *kTable;
}

// Pattern grouping: code-vector keys vs value-vector keys.
void BM_BuildPatternsCoded(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  Table slice = DirtyTable().Head(static_cast<int>(state.range(0)));
  const FD& fd = ds.fds[2];  // ZipCode -> City
  bool coded = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPatterns(slice, fd.attrs(), coded));
  }
}
BENCHMARK(BM_BuildPatternsCoded)
    ->ArgsProduct({{10000, kMaxRows}, {0, 1}});

// The detect phase proper: violation-graph build with the interned
// fast paths (code-keyed identical check, coded bucket join, per-pair
// distance memoization) on vs off.
void BM_ViolationGraphInterned(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  Table slice = DirtyTable().Head(static_cast<int>(state.range(0)));
  const FD& fd = ds.fds[2];
  DistanceModel model(slice);
  FTOptions opts{ds.recommended_w_l, ds.recommended_w_r,
                 ds.recommended_tau.at(fd.name())};
  opts.interned = state.range(1) != 0;
  std::vector<Pattern> patterns =
      BuildPatterns(slice, fd.attrs(), opts.interned);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ViolationGraph::Build(patterns, fd, model, opts));
  }
}
BENCHMARK(BM_ViolationGraphInterned)
    ->ArgsProduct({{10000, kMaxRows}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// End-to-end detect phase (grouping + graph build) over every HOSP FD:
// what `--columnar on|off` actually toggles ahead of the solvers.
void BM_DetectPhaseColumnar(benchmark::State& state) {
  const Dataset& ds = SharedDataset();
  Table slice = DirtyTable().Head(static_cast<int>(state.range(0)));
  bool columnar = state.range(1) != 0;
  DistanceModel model(slice);
  for (auto _ : state) {
    uint64_t edges = 0;
    for (const FD& fd : ds.fds) {
      FTOptions opts{ds.recommended_w_l, ds.recommended_w_r,
                     ds.recommended_tau.at(fd.name())};
      opts.interned = columnar;
      std::vector<Pattern> patterns =
          BuildPatterns(slice, fd.attrs(), columnar);
      edges += ViolationGraph::Build(patterns, fd, model, opts).num_edges();
    }
    benchmark::DoNotOptimize(edges);
  }
}
BENCHMARK(BM_DetectPhaseColumnar)
    ->ArgsProduct({{10000, kMaxRows}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Streaming CSV ingest of the 50k-row dirty table (from a string, so
// the numbers are parse + intern, not disk).
void BM_CsvIngest(benchmark::State& state) {
  static const std::string* kText =
      new std::string(WriteCsvString(DirtyTable()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReadCsvString(*kText));
  }
}
BENCHMARK(BM_CsvIngest)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
