// Table 3: the paper's algorithm-comparison summary. One row per
// system and mode (-S = single FD, -M = all 9 FDs), at the fixed
// configuration (HOSP/Tax at the scale's fixed #tuples, e% = 4).

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace ftrepair;
  using namespace ftrepair::bench;

  struct Entry {
    const char* label;
    SystemUnderTest system;
    int num_fds;
  };
  const Entry kEntries[] = {
      {"Expansion-S", SystemUnderTest::kExpansion, 1},
      {"Greedy-S", SystemUnderTest::kGreedy, 1},
      {"URM-S", SystemUnderTest::kUrm, 1},
      {"Nadeef-S", SystemUnderTest::kNadeef, 1},
      {"Llunatic-S", SystemUnderTest::kLlunatic, 1},
      {"Expansion-M", SystemUnderTest::kExpansion, 0},
      {"Greedy-M", SystemUnderTest::kGreedy, 0},
      {"Appro-M", SystemUnderTest::kAppro, 0},
      {"URM-M", SystemUnderTest::kUrm, 0},
      {"Nadeef-M", SystemUnderTest::kNadeef, 0},
      {"Llunatic-M", SystemUnderTest::kLlunatic, 0},
  };

  Report report("Table 3: algorithm comparison (P / R / time)");
  report.SetHeader({"system", "HOSP P", "HOSP R", "HOSP t(s)", "Tax P",
                    "Tax R", "Tax t(s)"});
  for (const Entry& entry : kEntries) {
    std::vector<std::string> row = {entry.label};
    for (bool hosp : {true, false}) {
      const Dataset& dataset = DatasetFor(hosp);
      int rows = hosp ? GetScale().hosp.fixed_rows : GetScale().tax.fixed_rows;
      ExperimentConfig config =
          BaseConfig(rows, entry.num_fds, GetScale().fixed_error_percent);
      ExperimentRow result = RunOrWarn(dataset, entry.system, config);
      row.push_back(Cell(result.quality.precision));
      row.push_back(Cell(result.quality.recall));
      row.push_back(Cell(result.seconds, 3));
    }
    report.AddRow(std::move(row));
  }
  report.Print(std::cout);
  return 0;
}
