// Ablation: §3 "Tuple grouping". Repairing on the grouped pattern graph
// G'(V', E') vs one vertex per tuple — identical repairs (the grouping
// is exact), very different cost.

#include <iostream>

#include "bench_common.h"
#include "common/timer.h"
#include "core/repairer.h"
#include "gen/error_injector.h"

int main() {
  using namespace ftrepair;
  using namespace ftrepair::bench;

  Report report("Ablation: tuple grouping (Greedy, all FDs, e%=4)");
  report.SetHeader({"dataset", "#tuples", "grouped t(s)", "ungrouped t(s)",
                    "grouped P", "ungrouped P"});
  for (bool hosp : {true, false}) {
    const Dataset& dataset = DatasetFor(hosp);
    int rows = hosp ? GetScale().hosp.fixed_rows : GetScale().tax.fixed_rows;
    Table truth = dataset.clean.Head(rows);
    NoiseOptions noise;
    noise.error_rate = GetScale().fixed_error_percent / 100.0;
    noise.seed = 42;
    Table dirty =
        std::move(InjectErrors(truth, dataset.fds, noise, nullptr))
            .ValueOrDie();

    std::vector<std::string> row = {dataset.name, std::to_string(rows)};
    std::vector<std::string> quality;
    for (bool grouped : {true, false}) {
      RepairOptions options;
      options.algorithm = RepairAlgorithm::kGreedy;
      options.group_tuples = grouped;
      options.compute_violation_stats = false;
      options.w_l = dataset.recommended_w_l;
      options.w_r = dataset.recommended_w_r;
      for (const auto& [name, tau] : dataset.recommended_tau) {
        options.tau_by_fd[name] = tau;
      }
      Repairer repairer(options);
      Timer timer;
      auto result = repairer.Repair(dirty, dataset.fds);
      row.push_back(Cell(timer.Seconds(), 3));
      if (result.ok()) {
        Quality q = EvaluateRepair(dirty, result.value().repaired, truth);
        quality.push_back(Cell(q.precision));
      } else {
        quality.push_back("n/a");
      }
    }
    row.insert(row.end(), quality.begin(), quality.end());
    report.AddRow(std::move(row));
  }
  report.Print(std::cout);
  return 0;
}
