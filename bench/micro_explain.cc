// Overhead of the provenance/explain layer on the full repair pipeline
// (google-benchmark): the same HOSP repair with provenance off (the
// default) and on. The "off" configuration must stay at noise level
// relative to a build without the layer at all — provenance is recorded
// only behind `if (options.provenance)` checks and pre-sized buffers.

#include <benchmark/benchmark.h>

#include "core/provenance.h"
#include "core/repairer.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"

namespace {

using namespace ftrepair;

struct Fixture {
  Dataset dataset;
  Table dirty;

  Fixture()
      : dataset(std::move(GenerateHosp({.num_rows = 10000, .seed = 7}))
                    .ValueOrDie()),
        dirty(MakeDirty()) {}

  Table MakeDirty() {
    NoiseOptions noise;
    noise.error_rate = 0.04;
    noise.seed = 42;
    return std::move(InjectErrors(dataset.clean, dataset.fds, noise,
                                  nullptr))
        .ValueOrDie();
  }

  RepairOptions Options(bool provenance) const {
    RepairOptions options;
    options.algorithm = RepairAlgorithm::kGreedy;
    options.w_l = dataset.recommended_w_l;
    options.w_r = dataset.recommended_w_r;
    for (const auto& [name, tau] : dataset.recommended_tau) {
      options.tau_by_fd[name] = tau;
    }
    options.provenance = provenance;
    return options;
  }
};

Fixture& SharedFixture() {
  static Fixture* kFixture = new Fixture();
  return *kFixture;
}

void BM_RepairExplainOverhead(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  const bool provenance = state.range(0) != 0;
  Repairer repairer(fixture.Options(provenance));
  int64_t cells = 0;
  for (auto _ : state) {
    auto result = repairer.Repair(fixture.dirty, fixture.dataset.fds);
    if (!result.ok()) state.SkipWithError("repair failed");
    cells += result.value().stats.cells_changed;
    benchmark::DoNotOptimize(result.value().stats.repair_cost);
  }
  state.SetLabel(provenance ? "provenance_on" : "provenance_off");
  state.counters["cells_changed"] =
      benchmark::Counter(static_cast<double>(cells),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RepairExplainOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The export itself (report serialization) priced separately: it runs
// only when --explain-json is actually given.
void BM_ExplainReportSerialize(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  Repairer repairer(fixture.Options(true));
  auto result = repairer.Repair(fixture.dirty, fixture.dataset.fds);
  if (!result.ok()) {
    state.SkipWithError("repair failed");
    return;
  }
  for (auto _ : state) {
    std::string report = ExplainReportJson(fixture.dirty, result.value());
    benchmark::DoNotOptimize(report.data());
  }
}
BENCHMARK(BM_ExplainReportSerialize)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
