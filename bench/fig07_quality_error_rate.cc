// Figure 7: precision/recall of our algorithms, varying error rate
// Prints the series the paper plots; FTR_SCALE=paper for paper sizes.

#include "bench_common.h"

int main() {
  using namespace ftrepair::bench;
  PrintSweep("Figure 7", ftrepair::bench::SweepAxis::kErrorRate,
             OurVariants(), true, false);
  return 0;
}
