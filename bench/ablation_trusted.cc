// Extension experiment: master-data anchoring. Sweeps the fraction of
// rows marked trusted (verified correct against their ground truth) and
// measures how much the anchors lift repair quality on the untrusted
// remainder — the "editing rules / master data" integration the paper's
// related work discusses ([18]).

#include <iostream>

#include "bench_common.h"
#include "core/repairer.h"
#include "eval/quality.h"
#include "gen/error_injector.h"

int main() {
  using namespace ftrepair;
  using namespace ftrepair::bench;

  Report report("Extension: trusted-row anchoring (Greedy, e%=6)");
  report.SetHeader({"dataset", "trusted %", "precision", "recall", "f1"});
  for (bool hosp : {true, false}) {
    const Dataset& dataset = DatasetFor(hosp);
    int rows = hosp ? GetScale().hosp.fixed_rows : GetScale().tax.fixed_rows;
    Table truth = dataset.clean.Head(rows);
    NoiseOptions noise;
    noise.error_rate = 0.06;
    noise.seed = 42;
    Table dirty =
        std::move(InjectErrors(truth, dataset.fds, noise, nullptr))
            .ValueOrDie();

    for (int pct : {0, 10, 25}) {
      RepairOptions options;
      options.algorithm = RepairAlgorithm::kGreedy;
      options.compute_violation_stats = false;
      options.w_l = dataset.recommended_w_l;
      options.w_r = dataset.recommended_w_r;
      for (const auto& [name, tau] : dataset.recommended_tau) {
        options.tau_by_fd[name] = tau;
      }
      // Trust every pct-th row *after restoring its truth* (a trusted
      // row is verified data, not trusted noise).
      Table input = dirty;
      if (pct > 0) {
        int stride = 100 / pct;
        for (int r = 0; r < rows; r += stride) {
          options.trusted_rows.insert(r);
          for (int c = 0; c < input.num_columns(); ++c) {
            input.SetCell(r, c, truth.cell(r, c));
          }
        }
      }
      Repairer repairer(options);
      auto result = repairer.Repair(input, dataset.fds);
      if (!result.ok()) {
        report.AddRow({dataset.name, std::to_string(pct), "n/a", "n/a",
                       "n/a"});
        continue;
      }
      Quality q = EvaluateRepair(input, result.value().repaired, truth);
      report.AddRow({dataset.name, std::to_string(pct),
                     Report::Num(q.precision), Report::Num(q.recall),
                     Report::Num(q.f1)});
    }
  }
  report.Print(std::cout);
  return 0;
}
