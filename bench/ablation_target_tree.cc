// Ablation: target search engines (§5). Compares, per multi-FD target
// query, the eager target tree, the lazy-materialization search, and a
// linear scan over materialized targets, on the HOSP measure component.

#include <iostream>

#include "bench_common.h"
#include "common/timer.h"
#include "core/lazy_targets.h"
#include "core/multi_common.h"
#include "core/greedy_single.h"
#include "gen/error_injector.h"

int main() {
  using namespace ftrepair;
  using namespace ftrepair::bench;

  const Dataset& dataset = HospDataset();
  int rows = GetScale().hosp.fixed_rows;
  Table truth = dataset.clean.Head(rows);
  NoiseOptions noise;
  noise.error_rate = GetScale().fixed_error_percent / 100.0;
  noise.seed = 42;
  Table dirty = std::move(InjectErrors(truth, dataset.fds, noise, nullptr))
                    .ValueOrDie();
  DistanceModel model(dirty);

  // The measure component {h7, h8, h9}: run Greedy-S per FD and take
  // the chosen sets, exactly as Appro-M would.
  RepairOptions options;
  options.w_l = dataset.recommended_w_l;
  options.w_r = dataset.recommended_w_r;
  for (const auto& [name, tau] : dataset.recommended_tau) {
    options.tau_by_fd[name] = tau;
  }
  std::vector<const FD*> fds = {&dataset.fds[6], &dataset.fds[7],
                                &dataset.fds[8]};
  ComponentContext context = BuildComponentContext(dirty, fds, model,
                                                   options);
  std::vector<TargetTree::LevelInput> inputs(fds.size());
  for (size_t k = 0; k < fds.size(); ++k) {
    inputs[k].fd = fds[k];
    for (int j : SolveGreedySingle(context.graphs[k]).chosen_set) {
      inputs[k].elements.push_back(context.graphs[k].pattern(j).values);
    }
  }

  Report report("Ablation: target search engines (HOSP measure component)");
  report.SetHeader({"engine", "build t(s)", "query t(s) total", "targets"});

  // Eager tree.
  {
    Timer build;
    auto tree = TargetTree::Build(inputs, context.component_cols, 2'000'000);
    double build_time = build.Seconds();
    if (tree.ok()) {
      Timer queries;
      for (const Pattern& sigma : context.sigma_patterns) {
        double cost = 0;
        tree.value().FindBest(sigma.values, model, &cost, nullptr);
      }
      report.AddRow({"eager tree", Cell(build_time, 4),
                     Cell(queries.Seconds(), 4),
                     std::to_string(tree.value().num_targets())});
      // Linear scan over the same targets.
      auto targets = tree.value().EnumerateTargets();
      Timer linear;
      for (const Pattern& sigma : context.sigma_patterns) {
        double cost = 0;
        FindBestTargetLinear(targets, sigma.values, context.component_cols,
                             model, &cost);
      }
      report.AddRow({"linear scan", "-", Cell(linear.Seconds(), 4),
                     std::to_string(targets.size())});
    } else {
      report.AddRow({"eager tree", "exhausted", "-", "-"});
    }
  }
  // Lazy search.
  {
    Timer build;
    auto lazy = LazyTargetSearch::Build(inputs, context.component_cols);
    double build_time = build.Seconds();
    if (lazy.ok()) {
      Timer queries;
      for (const Pattern& sigma : context.sigma_patterns) {
        lazy.value().FindBest(sigma.values, model, 200000, nullptr);
      }
      report.AddRow({"lazy search", Cell(build_time, 4),
                     Cell(queries.Seconds(), 4), "-"});
    } else {
      report.AddRow({"lazy search", lazy.status().ToString(), "-", "-"});
    }
  }
  report.Print(std::cout);
  return 0;
}
