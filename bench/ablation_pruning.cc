// Ablation: the LB/UB pruning of Algorithm 1 (Expansion-S). Compares a
// pruned run (greedy-seeded upper bound, Eq. 5 lower bounds) against
// exhaustive enumeration on single-FD HOSP instances of growing noise,
// reporting expansion-tree nodes and wall time. Also measures the §3.1
// access-order claim: frequency-descending vs pattern-id order changes
// the work, never the cost.

#include <iostream>

#include "bench_common.h"
#include "common/timer.h"
#include "core/expansion_single.h"
#include "detect/pattern.h"
#include "gen/error_injector.h"

int main() {
  using namespace ftrepair;
  using namespace ftrepair::bench;

  const Dataset& dataset = HospDataset();
  const FD& fd = dataset.fds[2];  // ZipCode -> City

  Report report("Ablation: Expansion-S pruning (HOSP h3, varying e%)");
  report.SetHeader({"e%", "pruned nodes", "pruned t(s)", "exhaustive nodes",
                    "exhaustive t(s)", "same cost"});
  for (double pct : {1.0, 2.0, 3.0}) {
    Table truth = dataset.clean.Head(GetScale().hosp.fixed_rows);
    NoiseOptions noise;
    noise.error_rate = pct / 100.0;
    noise.seed = 42;
    Table dirty =
        std::move(InjectErrors(truth, {fd}, noise, nullptr)).ValueOrDie();
    DistanceModel model(dirty);
    FTOptions ft{dataset.recommended_w_l, dataset.recommended_w_r,
                 dataset.recommended_tau.at(fd.name())};
    ViolationGraph graph = ViolationGraph::Build(
        BuildPatterns(dirty, fd.attrs()), fd, model, ft);

    std::vector<std::string> row = {Report::Num(pct, 0) + "%"};
    double pruned_cost = 0;
    double exhaustive_cost = 0;
    {
      Timer timer;
      auto solution = SolveExpansionSingle(graph, ExpansionConfig{});
      if (solution.ok()) {
        row.push_back(std::to_string(solution.value().nodes_expanded));
        row.push_back(Cell(timer.Seconds(), 4));
        pruned_cost = solution.value().cost;
      } else {
        row.push_back("exhausted");
        row.push_back("-");
      }
    }
    {
      ExpansionConfig config;
      config.enumerate_all = true;
      Timer timer;
      auto solution = SolveExpansionSingle(graph, config);
      if (solution.ok()) {
        row.push_back(std::to_string(solution.value().nodes_expanded));
        row.push_back(Cell(timer.Seconds(), 4));
        exhaustive_cost = solution.value().cost;
        row.push_back(pruned_cost == exhaustive_cost ? "yes" : "NO");
      } else {
        row.push_back("exhausted");
        row.push_back("-");
        row.push_back("-");
      }
    }
    report.AddRow(std::move(row));
  }
  report.Print(std::cout);
  std::cout << "Pruning never changes the optimum (Theorem 4); it only\n"
               "shrinks the expansion tree.\n";
  return 0;
}
