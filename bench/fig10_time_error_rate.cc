// Figure 10: runtime with vs without the target tree, varying error rate.
// "-Tree" uses the §5 target tree (lazy fallback past the eager cap);
// "-NoTree" materializes every target and scans linearly — the ablation
// the paper plots, which stops scaling quickly ("n/a" = exhausted).

#include "bench_common.h"

int main() {
  using namespace ftrepair::bench;
  std::vector<Variant> variants = {
      {"Expansion-Tree", ftrepair::SystemUnderTest::kExpansion, 0, true},
      {"Greedy-Tree", ftrepair::SystemUnderTest::kGreedy, 0, true},
      {"Greedy-NoTree", ftrepair::SystemUnderTest::kGreedy, 0, false},
      {"Appro-Tree", ftrepair::SystemUnderTest::kAppro, 0, true},
      {"Appro-NoTree", ftrepair::SystemUnderTest::kAppro, 0, false},
  };
  PrintSweep("Figure 10", ftrepair::bench::SweepAxis::kErrorRate, variants,
             /*show_quality=*/false, /*show_time=*/true);
  return 0;
}
