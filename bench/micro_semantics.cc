// Cross-semantics benchmark (google-benchmark): the full Repairer
// pipeline on a 10k-row dirty HOSP instance under each registered
// repair semantics, reporting wall time plus the decision counters
// (cells changed, repair cost) that separate the modes — recorded into
// BENCH_semantics.json by tools/bench_semantics.sh.

#include <string>

#include <benchmark/benchmark.h>

#include "core/repairer.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"

namespace {

using namespace ftrepair;

struct Fixture {
  Dataset dataset;
  Table dirty;

  Fixture()
      : dataset(std::move(GenerateHosp({.num_rows = 10000, .seed = 7}))
                    .ValueOrDie()),
        dirty(MakeDirty()) {}

  Table MakeDirty() {
    NoiseOptions noise;
    noise.error_rate = 0.04;
    noise.seed = 42;
    return std::move(InjectErrors(dataset.clean, dataset.fds, noise,
                                  nullptr))
        .ValueOrDie();
  }

  RepairOptions Options(const std::string& semantics) const {
    RepairOptions options;
    options.semantics = semantics;
    options.algorithm = RepairAlgorithm::kGreedy;
    options.w_l = dataset.recommended_w_l;
    options.w_r = dataset.recommended_w_r;
    options.tau_by_fd = dataset.recommended_tau;
    if (semantics == "soft-fd") {
      // Uniformly soft constraints: every FD at confidence 0.9, so the
      // revert filter prices each repair instead of rubber-stamping.
      for (const FD& fd : dataset.fds) {
        options.confidence_by_fd[fd.name()] = 0.9;
      }
    }
    return options;
  }
};

Fixture& SharedFixture() {
  static Fixture* kFixture = new Fixture();
  return *kFixture;
}

void RunSemantics(benchmark::State& state, const std::string& semantics) {
  Fixture& fixture = SharedFixture();
  RepairOptions options = fixture.Options(semantics);
  int cells = 0;
  double cost = 0;
  for (auto _ : state) {
    auto result = Repairer(options).Repair(fixture.dirty, fixture.dataset.fds);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    cells = result.value().stats.cells_changed;
    cost = result.value().stats.repair_cost;
    benchmark::DoNotOptimize(result.value().repaired);
  }
  state.counters["cells_changed"] = cells;
  state.counters["repair_cost"] = cost;
  state.counters["rows"] = static_cast<double>(fixture.dirty.num_rows());
}

void BM_RepairSemanticsFtCost(benchmark::State& state) {
  RunSemantics(state, "ft-cost");
}
BENCHMARK(BM_RepairSemanticsFtCost)->Unit(benchmark::kMillisecond);

void BM_RepairSemanticsSoftFd(benchmark::State& state) {
  RunSemantics(state, "soft-fd");
}
BENCHMARK(BM_RepairSemanticsSoftFd)->Unit(benchmark::kMillisecond);

void BM_RepairSemanticsCardinality(benchmark::State& state) {
  RunSemantics(state, "cardinality");
}
BENCHMARK(BM_RepairSemanticsCardinality)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
