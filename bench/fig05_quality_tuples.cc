// Figure 5: precision/recall of our algorithms, varying #tuples (e%=4, all FDs)
// Prints the series the paper plots; FTR_SCALE=paper for paper sizes.

#include "bench_common.h"

int main() {
  using namespace ftrepair::bench;
  PrintSweep("Figure 5", ftrepair::bench::SweepAxis::kRows,
             OurVariants(), true, false);
  return 0;
}
