// Figure 12: quality vs URM/NADEEF/Llunatic, varying #FDs.

#include "bench_common.h"

int main() {
  using namespace ftrepair::bench;
  PrintSweep("Figure 12 (multi FD)", ftrepair::bench::SweepAxis::kFds,
             MultiFDComparisonVariants(), /*show_quality=*/true,
             /*show_time=*/false);
  return 0;
}
