// Figure 16: runtime vs URM/NADEEF/Llunatic, varying error rate.

#include "bench_common.h"

int main() {
  using namespace ftrepair::bench;
  PrintSweep("Figure 16", ftrepair::bench::SweepAxis::kErrorRate,
             MultiFDComparisonVariants(), /*show_quality=*/false,
             /*show_time=*/true);
  return 0;
}
