// Figure 15: runtime vs URM/NADEEF/Llunatic, varying #FDs.

#include "bench_common.h"

int main() {
  using namespace ftrepair::bench;
  PrintSweep("Figure 15", ftrepair::bench::SweepAxis::kFds,
             MultiFDComparisonVariants(), /*show_quality=*/false,
             /*show_time=*/true);
  return 0;
}
