#include <gtest/gtest.h>

#include "baseline/llunatic.h"
#include "eval/quality.h"

namespace ftrepair {
namespace {

Table OneColumn(std::vector<const char*> values) {
  Table t(Schema({{"a", ValueType::kString}}));
  for (const char* v : values) (void)t.AppendRow({Value(v)});
  return t;
}

TEST(QualityTest, PerfectRepair) {
  Table truth = OneColumn({"x", "y", "z"});
  Table dirty = OneColumn({"x", "BAD", "z"});
  Table repaired = OneColumn({"x", "y", "z"});
  Quality q = EvaluateRepair(dirty, repaired, truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
  EXPECT_DOUBLE_EQ(q.errors, 1.0);
  EXPECT_DOUBLE_EQ(q.repaired, 1.0);
}

TEST(QualityTest, NoRepairsGivesPerfectPrecisionZeroRecall) {
  Table truth = OneColumn({"x", "y"});
  Table dirty = OneColumn({"x", "BAD"});
  Quality q = EvaluateRepair(dirty, dirty, truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);  // vacuous
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
}

TEST(QualityTest, WrongRepairHurtsPrecision) {
  Table truth = OneColumn({"x", "y"});
  Table dirty = OneColumn({"x", "BAD"});
  Table repaired = OneColumn({"x", "ALSO_BAD"});
  Quality q = EvaluateRepair(dirty, repaired, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
}

TEST(QualityTest, FalsePositiveRepairOfCleanCell) {
  Table truth = OneColumn({"x", "y"});
  Table dirty = OneColumn({"x", "y"});  // no errors
  Table repaired = OneColumn({"x", "CHANGED"});
  Quality q = EvaluateRepair(dirty, repaired, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);  // vacuous: no errors existed
}

TEST(QualityTest, MixedRepairs) {
  Table truth = OneColumn({"a", "b", "c", "d"});
  Table dirty = OneColumn({"a", "X", "Y", "d"});
  // One fixed correctly, one fixed wrongly, one clean cell changed.
  Table repaired = OneColumn({"a", "b", "Z", "W"});
  Quality q = EvaluateRepair(dirty, repaired, truth);
  EXPECT_DOUBLE_EQ(q.repaired, 3.0);
  EXPECT_DOUBLE_EQ(q.errors, 2.0);
  EXPECT_DOUBLE_EQ(q.precision, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
}

TEST(QualityTest, LlunGetsPartialCredit) {
  Table truth = OneColumn({"a", "b"});
  Table dirty = OneColumn({"a", "X"});
  Table repaired(Schema({{"a", ValueType::kString}}));
  (void)repaired.AppendRow({Value("a")});
  (void)repaired.AppendRow({LlunValue()});
  Quality q = EvaluateRepair(dirty, repaired, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);  // Metric 0.5 (§6.4)
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
}

TEST(QualityTest, LlunOnCleanCellGetsNoCredit) {
  Table truth = OneColumn({"a"});
  Table dirty = OneColumn({"a"});
  Table repaired(Schema({{"a", ValueType::kString}}));
  (void)repaired.AppendRow({LlunValue()});
  Quality q = EvaluateRepair(dirty, repaired, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
}

TEST(QualityTest, PartialCreditConfigurable) {
  Table truth = OneColumn({"b"});
  Table dirty = OneColumn({"X"});
  Table repaired(Schema({{"a", ValueType::kString}}));
  (void)repaired.AppendRow({LlunValue()});
  QualityOptions options;
  options.partial_credit = 0.25;
  Quality q = EvaluateRepair(dirty, repaired, truth, options);
  EXPECT_DOUBLE_EQ(q.precision, 0.25);
  EXPECT_DOUBLE_EQ(q.recall, 0.25);
}

TEST(QualityTest, F1IsHarmonicMean) {
  Table truth = OneColumn({"a", "b", "c", "d"});
  Table dirty = OneColumn({"a", "X", "Y", "d"});
  Table repaired = OneColumn({"a", "b", "Z", "W"});
  Quality q = EvaluateRepair(dirty, repaired, truth);
  double expected =
      2 * q.precision * q.recall / (q.precision + q.recall);
  EXPECT_DOUBLE_EQ(q.f1, expected);
}

TEST(QualityTest, CleanTableTrivially100) {
  Table t = OneColumn({"a", "b"});
  Quality q = EvaluateRepair(t, t, t);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

}  // namespace
}  // namespace ftrepair
