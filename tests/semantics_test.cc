// Unit tests of the RepairSemantics layer's parts: the registry
// (lookup, custom registration, the actionable unknown-name error),
// the cardinality majority solver, and the soft-fd penalty filter.
// End-to-end behavior across the three built-ins is pinned by
// semantics_property_test / semantics_golden_test.

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "constraint/fd.h"
#include "core/cardinality.h"
#include "core/repairer.h"
#include "core/semantics.h"
#include "core/soft_fd.h"
#include "detect/pattern.h"
#include "detect/violation_graph.h"
#include "metric/projection.h"
#include "test_util.h"

namespace ftrepair {
namespace {

// ---------------------------------------------------------------------------
// Registry

TEST(SemanticsRegistryTest, BuiltinsAreRegistered) {
  SemanticsRegistry& registry = SemanticsRegistry::Instance();
  std::vector<std::string> names = registry.Names();
  // Sorted; at least the three built-ins (other tests may add more).
  for (const char* expected : {"cardinality", "ft-cost", "soft-fd"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

  const RepairSemantics* ft = registry.Find("ft-cost");
  ASSERT_NE(ft, nullptr);
  EXPECT_EQ(ft->id(), SemanticsId::kFtCost);
  EXPECT_TRUE(ft->supports_cfds());

  const RepairSemantics* soft = registry.Find("soft-fd");
  ASSERT_NE(soft, nullptr);
  EXPECT_EQ(soft->id(), SemanticsId::kSoftFd);
  EXPECT_FALSE(soft->supports_cfds());

  const RepairSemantics* card = registry.Find("cardinality");
  ASSERT_NE(card, nullptr);
  EXPECT_EQ(card->id(), SemanticsId::kCardinality);
  EXPECT_FALSE(card->supports_cfds());

  EXPECT_EQ(registry.Find("nope"), nullptr);

  EXPECT_STREQ(SemanticsName(SemanticsId::kFtCost), "ft-cost");
  EXPECT_STREQ(SemanticsName(SemanticsId::kSoftFd), "soft-fd");
  EXPECT_STREQ(SemanticsName(SemanticsId::kCardinality), "cardinality");
}

TEST(SemanticsRegistryTest, ResolveUnknownListsEveryRegisteredName) {
  auto resolved = SemanticsRegistry::Instance().Resolve("nope");
  ASSERT_FALSE(resolved.ok());
  EXPECT_TRUE(resolved.status().IsInvalidArgument());
  const std::string& message = resolved.status().message();
  EXPECT_NE(message.find("unknown semantics 'nope'"), std::string::npos)
      << message;
  for (const char* known : {"cardinality", "ft-cost", "soft-fd"}) {
    EXPECT_NE(message.find(known), std::string::npos) << message;
  }
  // Single line: the CLI forwards this verbatim as its whole error.
  EXPECT_EQ(message.find('\n'), std::string::npos) << message;
}

/// Minimal custom strategy: ft-cost's pipeline under a different name.
class EchoSemantics : public RepairSemantics {
 public:
  const char* name() const override { return "unit-echo"; }
  SemanticsId id() const override { return SemanticsId::kCustom; }
  bool supports_cfds() const override { return false; }
  Status Validate(const RepairOptions&,
                  const std::vector<FD>&) const override {
    return Status::OK();
  }
  Result<RepairResult> Repair(const Table& table, const std::vector<FD>& fds,
                              const RepairOptions& options) const override {
    return SemanticsRegistry::Instance().Find("ft-cost")->Repair(table, fds,
                                                                 options);
  }
  uint64_t CountResidualViolations(
      const Table& table, const std::vector<FD>& fds,
      const RepairOptions& options) const override {
    return SemanticsRegistry::Instance().Find("ft-cost")->CountResidualViolations(
        table, fds, options);
  }
};

TEST(SemanticsRegistryTest, CustomRegistrationAndDuplicateRejection) {
  SemanticsRegistry& registry = SemanticsRegistry::Instance();
  ASSERT_TRUE(registry.Register(std::make_unique<EchoSemantics>()).ok());
  ASSERT_NE(registry.Find("unit-echo"), nullptr);

  Status dup = registry.Register(std::make_unique<EchoSemantics>());
  EXPECT_TRUE(dup.IsInvalidArgument()) << dup.ToString();
  EXPECT_NE(dup.message().find("unit-echo"), std::string::npos)
      << dup.ToString();
  EXPECT_FALSE(registry.Register(nullptr).ok());

  Status builtin = registry.Register(nullptr);
  EXPECT_FALSE(builtin.ok());

  // The custom strategy is reachable through the Repairer facade.
  Table t = testing_util::RandomFDTable(20, 2, 3, 4, 5);
  std::vector<FD> fds{std::move(FD::Make({0}, {1}, "phi")).ValueOrDie()};
  RepairOptions options;
  options.semantics = "unit-echo";
  auto custom = Repairer(options).Repair(t, fds);
  ASSERT_TRUE(custom.ok()) << custom.status().ToString();
  options.semantics = "ft-cost";
  auto ft = Repairer(options).Repair(t, fds);
  ASSERT_TRUE(ft.ok()) << ft.status().ToString();
  EXPECT_EQ(custom.value().stats.cells_changed, ft.value().stats.cells_changed);
}

TEST(SemanticsRegistryTest, SoftFdValidateRejectsBadConfidences) {
  const RepairSemantics* soft = SemanticsRegistry::Instance().Find("soft-fd");
  ASSERT_NE(soft, nullptr);
  std::vector<FD> fds{std::move(FD::Make({0}, {1}, "phi")).ValueOrDie()};

  RepairOptions options;
  options.confidence_by_fd["phi"] = 0.5;
  EXPECT_TRUE(soft->Validate(options, fds).ok());

  options.confidence_by_fd["phi"] = 0.0;
  EXPECT_FALSE(soft->Validate(options, fds).ok());
  options.confidence_by_fd["phi"] = 1.5;
  EXPECT_FALSE(soft->Validate(options, fds).ok());

  options.confidence_by_fd.clear();
  options.confidence_by_fd["phantom"] = 0.5;
  Status unknown = soft->Validate(options, fds);
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.message().find("phantom"), std::string::npos)
      << unknown.ToString();
}

// ---------------------------------------------------------------------------
// Cardinality majority solver

/// Classical (tau 0, lhs-only) violation graph over an indicator-metric
/// model — exactly the preconditions the pipeline establishes before
/// dispatching to SolveCardinalityMajority.
ViolationGraph ClassicalGraph(const Table& t, const FD& fd) {
  DistanceModel model(t);
  for (int c = 0; c < t.num_columns(); ++c) {
    model.SetColumnMetric(c, ColumnMetric::kDiscrete);
  }
  return ViolationGraph::Build(BuildPatterns(t, fd.attrs()), fd, model,
                               FTOptions{1.0, 0.0, 0.0});
}

Table TwoColumnTable(const std::vector<std::pair<std::string, std::string>>&
                         rows) {
  Table t{Schema({{"c0", ValueType::kString}, {"c1", ValueType::kString}})};
  for (const auto& [a, b] : rows) {
    EXPECT_TRUE(t.AppendRow({Value(a), Value(b)}).ok());
  }
  return t;
}

int PatternId(const ViolationGraph& g, const std::string& lhs,
              const std::string& rhs) {
  for (int i = 0; i < g.num_patterns(); ++i) {
    if (g.pattern(i).values[0].ToString() == lhs &&
        g.pattern(i).values[1].ToString() == rhs) {
      return i;
    }
  }
  ADD_FAILURE() << "no pattern " << lhs << "/" << rhs;
  return -1;
}

TEST(CardinalityMajorityTest, RepairsMinorityTowardMajority) {
  // Block "a": x dominates (3 rows) over y (1) and z (1); block "b" is
  // already consistent. Min-change == 2 cells.
  Table t = TwoColumnTable({{"a", "x"},
                            {"a", "x"},
                            {"a", "x"},
                            {"a", "y"},
                            {"a", "z"},
                            {"b", "w"}});
  FD fd = std::move(FD::Make({0}, {1}, "phi")).ValueOrDie();
  ViolationGraph g = ClassicalGraph(t, fd);

  uint64_t conflicts = 0;
  SingleFDSolution solution = SolveCardinalityMajority(g, nullptr, &conflicts);
  EXPECT_EQ(conflicts, 0u);
  EXPECT_EQ(solution.rung, SolverRung::kCardinality);
  EXPECT_FALSE(solution.truncated);

  const int x = PatternId(g, "a", "x");
  const int y = PatternId(g, "a", "y");
  const int z = PatternId(g, "a", "z");
  const int w = PatternId(g, "b", "w");
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(x)], -1);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(y)], x);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(z)], x);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(w)], -1);
  // Indicator pricing: each repaired row rewrites one rhs cell.
  EXPECT_DOUBLE_EQ(solution.cost, 2.0);
  // Unrepaired patterns form the chosen (kept) set.
  EXPECT_EQ(solution.chosen_set.size(), 2u);
}

TEST(CardinalityMajorityTest, TieBreaksTowardLowestPatternId) {
  Table t = TwoColumnTable({{"a", "x"}, {"a", "y"}, {"a", "x"}, {"a", "y"}});
  FD fd = std::move(FD::Make({0}, {1}, "phi")).ValueOrDie();
  ViolationGraph g = ClassicalGraph(t, fd);

  uint64_t conflicts = 0;
  SingleFDSolution solution = SolveCardinalityMajority(g, nullptr, &conflicts);
  const int x = PatternId(g, "a", "x");
  const int y = PatternId(g, "a", "y");
  const int lo = std::min(x, y);
  const int hi = std::max(x, y);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(lo)], -1);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(hi)], lo);
  EXPECT_DOUBLE_EQ(solution.cost, 2.0);
}

TEST(CardinalityMajorityTest, ForcedPatternBeatsMajority) {
  // "y" carries a trusted row: the 3-row majority must repair toward
  // it, not the other way around.
  Table t = TwoColumnTable(
      {{"a", "x"}, {"a", "x"}, {"a", "x"}, {"a", "y"}});
  FD fd = std::move(FD::Make({0}, {1}, "phi")).ValueOrDie();
  ViolationGraph g = ClassicalGraph(t, fd);

  const int x = PatternId(g, "a", "x");
  const int y = PatternId(g, "a", "y");
  std::vector<bool> forced(static_cast<size_t>(g.num_patterns()), false);
  forced[static_cast<size_t>(y)] = true;

  uint64_t conflicts = 0;
  SingleFDSolution solution = SolveCardinalityMajority(g, &forced, &conflicts);
  EXPECT_EQ(conflicts, 0u);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(y)], -1);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(x)], y);
  EXPECT_DOUBLE_EQ(solution.cost, 3.0);
}

TEST(CardinalityMajorityTest, ConflictingForcedPatternsAreCountedNotRepaired) {
  Table t = TwoColumnTable({{"a", "x"}, {"a", "y"}, {"a", "z"}});
  FD fd = std::move(FD::Make({0}, {1}, "phi")).ValueOrDie();
  ViolationGraph g = ClassicalGraph(t, fd);

  const int x = PatternId(g, "a", "x");
  const int y = PatternId(g, "a", "y");
  const int z = PatternId(g, "a", "z");
  std::vector<bool> forced(static_cast<size_t>(g.num_patterns()), false);
  forced[static_cast<size_t>(x)] = true;
  forced[static_cast<size_t>(y)] = true;

  uint64_t conflicts = 0;
  SingleFDSolution solution = SolveCardinalityMajority(g, &forced, &conflicts);
  // Two trusted patterns disagree: 2*(2-1)/2 = 1 conflict pair; both
  // keep their values, the non-forced pattern repairs to the lowest-id
  // forced one.
  EXPECT_EQ(conflicts, 1u);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(x)], -1);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(y)], -1);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(z)], std::min(x, y));
}

// ---------------------------------------------------------------------------
// Soft-fd penalty rate + filters

TEST(SoftFdTest, PenaltyRateShape) {
  EXPECT_EQ(SoftFdPenaltyRate(1.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(SoftFdPenaltyRate(1.5), std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(SoftFdPenaltyRate(0.5), 1.0);
  EXPECT_NEAR(SoftFdPenaltyRate(0.9), 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(SoftFdPenaltyRate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(SoftFdPenaltyRate(-0.3), 0.0);
  EXPECT_LT(SoftFdPenaltyRate(0.2), SoftFdPenaltyRate(0.4));
}

TEST(SoftFdTest, SingleFilterRevertsExactlyWhenCostExceedsPenalty) {
  // Block "a": 3 rows of x, 1 of y. Repairing y -> x costs 1 cell
  // (indicator metric) and discharges 3 violating pairs.
  Table t = TwoColumnTable({{"a", "x"}, {"a", "x"}, {"a", "x"}, {"a", "y"}});
  FD fd = std::move(FD::Make({0}, {1}, "phi")).ValueOrDie();
  ViolationGraph g = ClassicalGraph(t, fd);
  const int x = PatternId(g, "a", "x");
  const int y = PatternId(g, "a", "y");

  uint64_t conflicts = 0;
  SingleFDSolution repaired = SolveCardinalityMajority(g, nullptr, &conflicts);
  ASSERT_EQ(repaired.repair_target[static_cast<size_t>(y)], x);

  // rate 1 (c = 0.5): benefit 1*1*3 = 3 >= cost 1 — repair kept.
  SingleFDSolution kept = repaired;
  FilterSingleFDSolutionSoft(g, SoftFdPenaltyRate(0.5), &kept);
  EXPECT_EQ(kept.repair_target[static_cast<size_t>(y)], x);
  EXPECT_DOUBLE_EQ(kept.cost, repaired.cost);

  // rate 0.25 (c = 0.2): benefit 0.75 < cost 1 — repair reverted, the
  // pattern rejoins the chosen set and its cost leaves the total.
  SingleFDSolution dropped = repaired;
  FilterSingleFDSolutionSoft(g, SoftFdPenaltyRate(0.2), &dropped);
  EXPECT_EQ(dropped.repair_target[static_cast<size_t>(y)], -1);
  EXPECT_DOUBLE_EQ(dropped.cost, 0.0);
  EXPECT_NE(std::find(dropped.chosen_set.begin(), dropped.chosen_set.end(), y),
            dropped.chosen_set.end());
}

TEST(SoftFdTest, AllSoftMultiComponentReverts) {
  // Shared-lhs component {c0->c1, c0->c2}: one doubly-flipped row
  // against five agreeing ones. ft-cost rewrites its two rhs cells;
  // with both FDs at confidence 0.05 the penalty (2 * 0.0526 * 5) is
  // far below the repair cost (~2), so soft-fd keeps the row as is.
  Table t{Schema({{"c0", ValueType::kString},
                  {"c1", ValueType::kString},
                  {"c2", ValueType::kString}})};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({Value("a"), Value("b"), Value("c")}).ok());
  }
  ASSERT_TRUE(t.AppendRow({Value("a"), Value("B"), Value("C")}).ok());
  std::vector<FD> fds{std::move(FD::Make({0}, {1}, "phi0")).ValueOrDie(),
                      std::move(FD::Make({0}, {2}, "phi1")).ValueOrDie()};

  RepairOptions options;
  options.w_l = 1.0;
  options.w_r = 0.0;
  options.default_tau = 0.0;
  options.semantics = "ft-cost";
  auto ft = Repairer(options).Repair(t, fds);
  ASSERT_TRUE(ft.ok()) << ft.status().ToString();
  EXPECT_EQ(ft.value().stats.cells_changed, 2);

  options.semantics = "soft-fd";
  options.confidence_by_fd["phi0"] = 0.05;
  options.confidence_by_fd["phi1"] = 0.05;
  auto soft = Repairer(options).Repair(t, fds);
  ASSERT_TRUE(soft.ok()) << soft.status().ToString();
  EXPECT_EQ(soft.value().stats.cells_changed, 0);
  EXPECT_DOUBLE_EQ(soft.value().stats.repair_cost, 0.0);

  // A mixed component (one hard FD) must NOT filter: the hard FD's
  // consistency cannot be sacrificed.
  options.confidence_by_fd.erase("phi1");
  auto mixed = Repairer(options).Repair(t, fds);
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  EXPECT_EQ(mixed.value().stats.cells_changed, 2);
}

}  // namespace
}  // namespace ftrepair
