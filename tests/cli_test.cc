#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_set>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "constraint/fd_parser.h"
#include "data/csv.h"
#include "test_util.h"

namespace ftrepair {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    // ctest runs each test case as its own process in parallel: paths
    // must be unique per test to avoid collisions.
    std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    input_path_ = dir_ + "/cli_" + tag + "_dirty.csv";
    fds_path_ = dir_ + "/cli_" + tag + "_fds.txt";
    truth_path_ = dir_ + "/cli_" + tag + "_truth.csv";
    output_path_ = dir_ + "/cli_" + tag + "_repaired.csv";
    changes_path_ = dir_ + "/cli_" + tag + "_changes.csv";
    metrics_path_ = dir_ + "/cli_" + tag + "_metrics.json";
    trace_path_ = dir_ + "/cli_" + tag + "_trace.json";
    ASSERT_TRUE(
        WriteCsvFile(testing_util::CitizensDirty(), input_path_).ok());
    ASSERT_TRUE(
        WriteCsvFile(testing_util::CitizensTruth(), truth_path_).ok());
    std::ofstream fds(fds_path_);
    fds << "phi1: Education -> Level\n"
           "phi2: City -> State\n"
           "phi3: City, Street -> District\n";
  }

  void TearDown() override {
    for (const std::string& path : {input_path_, fds_path_, truth_path_,
                                    output_path_, changes_path_,
                                    metrics_path_, trace_path_}) {
      std::remove(path.c_str());
    }
  }

  static std::string SlurpFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  std::string dir_, input_path_, fds_path_, truth_path_, output_path_,
      changes_path_, metrics_path_, trace_path_;
};

TEST_F(CliTest, ParseRequiresInputAndFds) {
  EXPECT_FALSE(ParseCliArgs({}).ok());
  EXPECT_FALSE(ParseCliArgs({"--input", "x.csv"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--fds", "f.txt"}).ok());
  auto ok = ParseCliArgs({"--input", "x.csv", "--fds", "f.txt"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().input_path, "x.csv");
  EXPECT_EQ(ok.value().repair.algorithm, RepairAlgorithm::kGreedy);
}

TEST_F(CliTest, ParseFlags) {
  auto options = ParseCliArgs(
      {"--input", "x.csv", "--fds", "f.txt", "--algorithm", "exact",
       "--tau", "0.33", "--tau-fd", "phi2=0.5", "--wl", "0.6", "--wr",
       "0.4", "--verbose", "--auto-threshold"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options.value().repair.algorithm, RepairAlgorithm::kExact);
  EXPECT_DOUBLE_EQ(options.value().repair.default_tau, 0.33);
  EXPECT_DOUBLE_EQ(options.value().repair.tau_by_fd.at("phi2"), 0.5);
  EXPECT_DOUBLE_EQ(options.value().repair.w_l, 0.6);
  EXPECT_TRUE(options.value().verbose);
  EXPECT_TRUE(options.value().repair.auto_threshold);
}

TEST_F(CliTest, ParseTrustedRows) {
  auto options = ParseCliArgs(
      {"--input", "x", "--fds", "f", "--trusted-rows", "0,5,9"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options.value().repair.trusted_rows,
            (std::unordered_set<int>{0, 5, 9}));
  EXPECT_FALSE(
      ParseCliArgs({"--input", "x", "--fds", "f", "--trusted-rows", "a,b"})
          .ok());
  EXPECT_FALSE(
      ParseCliArgs({"--input", "x", "--fds", "f", "--trusted-rows", "1.5"})
          .ok());
}

TEST_F(CliTest, ParseExplainFlags) {
  auto options = ParseCliArgs(
      {"--input", "x", "--fds", "f", "--explain-json", "e.json",
       "--audit-log=a.ndjson", "--explain", "5,1"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options.value().explain_json_path, "e.json");
  EXPECT_EQ(options.value().audit_log_path, "a.ndjson");
  EXPECT_EQ(options.value().explain_row, 5);
  EXPECT_EQ(options.value().explain_col, 1);
  // Unset by default: -1 means "no --explain requested".
  auto plain = ParseCliArgs({"--input", "x", "--fds", "f"});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().explain_row, -1);
  for (const char* bad : {"5", "5,", "a,b", "1.5,2", "-1,2", "5,1,2"}) {
    EXPECT_FALSE(
        ParseCliArgs({"--input", "x", "--fds", "f", "--explain", bad}).ok())
        << "--explain " << bad << " should be rejected";
  }
}

TEST_F(CliTest, ParseRejectsBadValues) {
  EXPECT_FALSE(ParseCliArgs({"--input", "x", "--fds", "f", "--tau"}).ok());
  EXPECT_FALSE(
      ParseCliArgs({"--input", "x", "--fds", "f", "--tau", "abc"}).ok());
  EXPECT_FALSE(
      ParseCliArgs({"--input", "x", "--fds", "f", "--algorithm", "magic"})
          .ok());
  EXPECT_FALSE(
      ParseCliArgs({"--input", "x", "--fds", "f", "--tau-fd", "phi2"}).ok());
  EXPECT_FALSE(ParseCliArgs({"--bogus"}).ok());
  EXPECT_FALSE(
      ParseCliArgs({"--input", "x", "--fds", "f", "--deadline-ms", "0"})
          .ok());
  EXPECT_FALSE(
      ParseCliArgs({"--input", "x", "--fds", "f", "--deadline-ms", "abc"})
          .ok());
  EXPECT_FALSE(
      ParseCliArgs({"--input", "x", "--fds", "f", "--on-bad-row", "explode"})
          .ok());
}

TEST_F(CliTest, HelpParsesOkAndPrintsUsage) {
  // --help succeeds (the binary exits 0) and short-circuits the
  // required-flag checks.
  auto help = ParseCliArgs({"--help"});
  ASSERT_TRUE(help.ok()) << help.status().ToString();
  EXPECT_TRUE(help.value().help);
  std::ostringstream out;
  ASSERT_TRUE(RunCli(help.value(), out).ok());
  EXPECT_NE(out.str().find("Usage:"), std::string::npos);
  EXPECT_NE(out.str().find("--deadline-ms"), std::string::npos);
  EXPECT_NE(out.str().find("--on-bad-row"), std::string::npos);
}

TEST_F(CliTest, ParseDeadlineAndBadRowPolicy) {
  auto options = ParseCliArgs(
      {"--input", "x", "--fds", "f", "--deadline-ms", "250",
       "--on-bad-row", "pad"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_DOUBLE_EQ(options.value().deadline_ms, 250);
  EXPECT_EQ(options.value().csv.bad_rows, BadRowPolicy::kPadRagged);
  auto skip = ParseCliArgs(
      {"--input", "x", "--fds", "f", "--on-bad-row", "skip"});
  ASSERT_TRUE(skip.ok());
  EXPECT_EQ(skip.value().csv.bad_rows, BadRowPolicy::kSkipBadRows);
  auto strict = ParseCliArgs(
      {"--input", "x", "--fds", "f", "--on-bad-row", "strict"});
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict.value().csv.bad_rows, BadRowPolicy::kStrict);
}

TEST_F(CliTest, ParseColumnarFlag) {
  auto off = ParseCliArgs(
      {"--input", "x", "--fds", "f", "--columnar", "off"});
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_FALSE(off.value().repair.columnar);
  auto on = ParseCliArgs({"--input", "x", "--fds", "f", "--columnar=on"});
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(on.value().repair.columnar);
  // Default is on.
  auto plain = ParseCliArgs({"--input", "x", "--fds", "f"});
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain.value().repair.columnar);
  EXPECT_FALSE(
      ParseCliArgs({"--input", "x", "--fds", "f", "--columnar", "maybe"})
          .ok());
}

TEST_F(CliTest, UnknownTauFdNameRejected) {
  auto parsed = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_, "--tau-fd",
       "phantom=0.5"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::ostringstream out;
  Status status = RunCli(parsed.value(), out);
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();
  EXPECT_NE(status.message().find("phantom"), std::string::npos)
      << status.ToString();
}

TEST_F(CliTest, SkipBadRowsSalvagesMalformedInput) {
  // Append a ragged row to the dirty table: strict fails, skip warns
  // and repairs the clean subset.
  {
    std::ofstream append(input_path_, std::ios::app);
    append << "stray,row\n";
  }
  auto strict = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_, "--tau-fd", "phi1=0.30",
       "--tau-fd", "phi2=0.5", "--tau-fd", "phi3=0.5"});
  ASSERT_TRUE(strict.ok());
  std::ostringstream strict_out;
  EXPECT_TRUE(RunCli(strict.value(), strict_out).IsIOError());

  auto skip = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_, "--on-bad-row", "skip",
       "--tau-fd", "phi1=0.30", "--tau-fd", "phi2=0.5", "--tau-fd",
       "phi3=0.5", "--wl", "0.5", "--wr", "0.5"});
  ASSERT_TRUE(skip.ok());
  std::ostringstream out;
  Status status = RunCli(skip.value(), out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.str().find("malformed row"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("repaired"), std::string::npos) << out.str();
}

TEST_F(CliTest, DeadlineSurfacesDegradationNotFailure) {
  // An (effectively) instant deadline must still produce a successful
  // run with a well-formed summary — the ladder degrades, never aborts.
  setenv("FTREPAIR_FAULT_BUDGET_UNITS", "1", 1);
  auto parsed = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_, "--deadline-ms",
       "100000", "--algorithm", "exact", "--tau-fd", "phi1=0.30",
       "--tau-fd", "phi2=0.5", "--tau-fd", "phi3=0.5", "--wl", "0.5",
       "--wr", "0.5"});
  ASSERT_TRUE(parsed.ok());
  std::ostringstream out;
  Status status = RunCli(parsed.value(), out);
  unsetenv("FTREPAIR_FAULT_BUDGET_UNITS");
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.str().find("deadline:"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("degraded"), std::string::npos) << out.str();
}

TEST_F(CliTest, EndToEndRepairAndScore) {
  auto parsed = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_, "--output", output_path_,
       "--changes", changes_path_, "--truth", truth_path_, "--algorithm",
       "exact", "--tau-fd", "phi1=0.30", "--tau-fd", "phi2=0.5", "--tau-fd",
       "phi3=0.5", "--wl", "0.5", "--wr", "0.5"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::ostringstream out;
  Status status = RunCli(parsed.value(), out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::string text = out.str();
  EXPECT_NE(text.find("repaired 8 cells"), std::string::npos) << text;
  EXPECT_NE(text.find("precision: 1"), std::string::npos) << text;
  EXPECT_NE(text.find("recall: 1"), std::string::npos) << text;
  // Outputs round-trip.
  Table repaired = std::move(ReadCsvFile(output_path_)).ValueOrDie();
  EXPECT_EQ(repaired.num_rows(), 10);
  Table changes = std::move(ReadCsvFile(changes_path_)).ValueOrDie();
  EXPECT_EQ(changes.num_rows(), 8);
}

TEST_F(CliTest, VerbosePrintsChanges) {
  auto parsed = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_, "--verbose", "--tau-fd",
       "phi1=0.30", "--tau-fd", "phi2=0.5", "--tau-fd", "phi3=0.5", "--wl",
       "0.5", "--wr", "0.5"});
  ASSERT_TRUE(parsed.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(parsed.value(), out).ok());
  // The change log is a table with column names and old/new values.
  EXPECT_NE(out.str().find("cell changes"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("Education"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("Masers"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("Masters"), std::string::npos) << out.str();
}

TEST_F(CliTest, MissingFilesSurfaceIOErrors) {
  auto parsed = ParseCliArgs({"--input", dir_ + "/nope.csv", "--fds",
                              fds_path_});
  ASSERT_TRUE(parsed.ok());
  std::ostringstream out;
  EXPECT_TRUE(RunCli(parsed.value(), out).IsIOError());

  auto parsed2 =
      ParseCliArgs({"--input", input_path_, "--fds", dir_ + "/nope.txt"});
  ASSERT_TRUE(parsed2.ok());
  EXPECT_TRUE(RunCli(parsed2.value(), out).IsIOError());
}

TEST_F(CliTest, TruthSchemaMismatchRejected) {
  std::string bad_truth = dir_ + "/cli_bad_truth.csv";
  Table small = testing_util::CitizensTruth().Head(3);
  ASSERT_TRUE(WriteCsvFile(small, bad_truth).ok());
  auto parsed = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_, "--truth", bad_truth});
  ASSERT_TRUE(parsed.ok());
  std::ostringstream out;
  EXPECT_TRUE(RunCli(parsed.value(), out).IsInvalidArgument());
  std::remove(bad_truth.c_str());
}

TEST_F(CliTest, ProfileMode) {
  auto parsed = ParseCliArgs({"--input", input_path_, "--profile"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(parsed.value(), out).ok());
  EXPECT_NE(out.str().find("column profiles"), std::string::npos);
  EXPECT_NE(out.str().find("Education"), std::string::npos);
}

TEST_F(CliTest, DiscoverModePrintsParseableSpec) {
  auto parsed = ParseCliArgs(
      {"--input", input_path_, "--discover", "--max-lhs", "1", "--g3",
       "0.25"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::ostringstream out;
  ASSERT_TRUE(RunCli(parsed.value(), out).ok());
  // The output must itself parse as an FD list against the schema.
  Table dirty = std::move(ReadCsvFile(input_path_)).ValueOrDie();
  auto fds = ParseFDList(out.str(), dirty.schema());
  ASSERT_TRUE(fds.ok()) << fds.status().ToString() << "\n" << out.str();
}

TEST_F(CliTest, ParseEqualsSpelling) {
  // Every value-taking flag also accepts --flag=VALUE; --tau-fd keeps
  // its own NAME=VALUE payload past the first '='.
  auto options = ParseCliArgs(
      {"--input=x.csv", "--fds=f.txt", "--algorithm=exact", "--tau=0.33",
       "--tau-fd=phi2=0.5", "--deadline-ms=250"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options.value().input_path, "x.csv");
  EXPECT_EQ(options.value().fds_path, "f.txt");
  EXPECT_EQ(options.value().repair.algorithm, RepairAlgorithm::kExact);
  EXPECT_DOUBLE_EQ(options.value().repair.default_tau, 0.33);
  EXPECT_DOUBLE_EQ(options.value().repair.tau_by_fd.at("phi2"), 0.5);
  EXPECT_DOUBLE_EQ(options.value().deadline_ms, 250);
  // A boolean flag must reject an inline value.
  EXPECT_FALSE(
      ParseCliArgs({"--input", "x", "--fds", "f", "--verbose=yes"}).ok());
}

TEST_F(CliTest, ParseObservabilityFlags) {
  auto options = ParseCliArgs(
      {"--input", "x", "--fds", "f", "--metrics-json=m.json",
       "--trace-json", "t.json", "--log-level", "debug"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options.value().metrics_json_path, "m.json");
  EXPECT_EQ(options.value().trace_json_path, "t.json");
  EXPECT_TRUE(options.value().log_level_set);
  EXPECT_EQ(options.value().log_level, LogLevel::kDebug);
  EXPECT_FALSE(
      ParseCliArgs({"--input", "x", "--fds", "f", "--log-level", "loud"})
          .ok());
}

TEST_F(CliTest, MetricsAndTraceJsonEmitted) {
  auto parsed = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_,
       "--metrics-json=" + metrics_path_, "--trace-json=" + trace_path_,
       "--tau-fd", "phi1=0.30", "--tau-fd", "phi2=0.5", "--tau-fd",
       "phi3=0.5", "--wl", "0.5", "--wr", "0.5"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::ostringstream out;
  Status status = RunCli(parsed.value(), out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.str().find("wrote " + metrics_path_), std::string::npos);
  EXPECT_NE(out.str().find("wrote " + trace_path_), std::string::npos);

  std::string metrics = SlurpFile(metrics_path_);
  ASSERT_FALSE(metrics.empty());
  EXPECT_TRUE(testing_util::IsValidJson(metrics)) << metrics;
  // A counter for every pipeline phase plus the end-to-end histogram.
  for (const char* key :
       {"ftrepair.phase.detect_us", "ftrepair.phase.graph_us",
        "ftrepair.phase.solve_us", "ftrepair.phase.targets_us",
        "ftrepair.phase.apply_us", "ftrepair.phase.stats_us",
        "ftrepair.repair.runs", "ftrepair.repair.total_ms",
        "ftrepair.ingest.rows_read"}) {
    EXPECT_NE(metrics.find(key), std::string::npos)
        << "missing " << key << " in " << metrics;
  }

  std::string trace = SlurpFile(trace_path_);
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(testing_util::IsValidJson(trace)) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  // Spans cover the pipeline: ingest -> detect -> solve -> targets ->
  // apply (phi2/phi3 share City, so the multi-FD path runs).
  for (const char* span :
       {"ingest.read_csv", "repair.detect", "detect.graph_build",
        "greedy.solve_multi", "targets.assign", "repair.apply",
        "repair.total"}) {
    EXPECT_NE(trace.find(span), std::string::npos)
        << "missing span " << span << " in " << trace;
  }
}

TEST_F(CliTest, DefaultReportIncludesPhaseTimings) {
  auto parsed = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_, "--tau-fd", "phi1=0.30",
       "--tau-fd", "phi2=0.5", "--tau-fd", "phi3=0.5", "--wl", "0.5",
       "--wr", "0.5"});
  ASSERT_TRUE(parsed.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(parsed.value(), out).ok());
  EXPECT_NE(out.str().find("phase timings"), std::string::npos) << out.str();
  for (const char* phase :
       {"detect", "graph", "solve", "targets", "apply", "stats", "total"}) {
    EXPECT_NE(out.str().find(phase), std::string::npos)
        << "missing phase row " << phase << " in " << out.str();
  }
}

// Every mis-use of the semantics surface must die with ONE actionable
// line — these pin the exact failure mode (parse-time vs run-time) and
// that no message ever spans multiple lines.
void ExpectSingleLine(const Status& status) {
  EXPECT_EQ(status.message().find('\n'), std::string::npos)
      << "multi-line CLI error: " << status.ToString();
}

TEST_F(CliTest, UnknownSemanticsRejectedAtParse) {
  auto parsed = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_, "--semantics", "bogus"});
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument())
      << parsed.status().ToString();
  // The error names the offender and lists every registered semantics.
  EXPECT_NE(parsed.status().message().find("unknown semantics 'bogus'"),
            std::string::npos)
      << parsed.status().ToString();
  for (const char* known : {"ft-cost", "soft-fd", "cardinality"}) {
    EXPECT_NE(parsed.status().message().find(known), std::string::npos)
        << "missing " << known << " in " << parsed.status().ToString();
  }
  ExpectSingleLine(parsed.status());
}

TEST_F(CliTest, CardinalitySemanticsRejectsCfds) {
  std::string cfds_path = dir_ + "/cli_card_cfds.txt";
  {
    std::ofstream cfds(cfds_path);
    cfds << "c1: City -> State | Boston -> MA\n";
  }
  auto parsed = ParseCliArgs({"--input", input_path_, "--cfds", cfds_path,
                              "--semantics", "cardinality"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::ostringstream out;
  Status status = RunCli(parsed.value(), out);
  std::remove(cfds_path.c_str());
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.message().find("does not support CFDs"),
            std::string::npos)
      << status.ToString();
  // The message must point at the fix, not just the problem.
  EXPECT_NE(status.message().find("--semantics=ft-cost"), std::string::npos)
      << status.ToString();
  ExpectSingleLine(status);
}

TEST_F(CliTest, MalformedConfidenceRejectedAtParse) {
  for (const char* bad : {"phi2", "phi2=", "phi2=abc", "phi2=0", "phi2=2",
                          "phi2=-0.5", "=0.5"}) {
    auto parsed = ParseCliArgs({"--input", input_path_, "--fds", fds_path_,
                                "--semantics", "soft-fd", "--confidence",
                                bad});
    ASSERT_FALSE(parsed.ok()) << "accepted --confidence " << bad;
    EXPECT_TRUE(parsed.status().IsInvalidArgument())
        << parsed.status().ToString();
    EXPECT_NE(parsed.status().message().find("(0, 1]"), std::string::npos)
        << parsed.status().ToString();
    ExpectSingleLine(parsed.status());
  }
}

TEST_F(CliTest, UnknownConfidenceFdNameRejected) {
  auto parsed = ParseCliArgs({"--input", input_path_, "--fds", fds_path_,
                              "--semantics", "soft-fd", "--confidence",
                              "phantom=0.5"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::ostringstream out;
  Status status = RunCli(parsed.value(), out);
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();
  EXPECT_NE(status.message().find("phantom"), std::string::npos)
      << status.ToString();
  ExpectSingleLine(status);
}

TEST_F(CliTest, FdsAndCfdsMutuallyExclusive) {
  auto parsed = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_, "--cfds", fds_path_});
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("mutually exclusive"),
            std::string::npos)
      << parsed.status().ToString();
  ExpectSingleLine(parsed.status());
}

TEST_F(CliTest, SemanticsFlagRunsEndToEnd) {
  auto card = ParseCliArgs({"--input", input_path_, "--fds", fds_path_,
                            "--semantics", "cardinality"});
  ASSERT_TRUE(card.ok()) << card.status().ToString();
  std::ostringstream card_out;
  ASSERT_TRUE(RunCli(card.value(), card_out).ok());
  EXPECT_NE(card_out.str().find("semantics: cardinality"),
            std::string::npos)
      << card_out.str();

  auto soft = ParseCliArgs({"--input", input_path_, "--fds", fds_path_,
                            "--semantics", "soft-fd", "--confidence",
                            "phi2=0.5", "--tau-fd", "phi1=0.30", "--tau-fd",
                            "phi2=0.5", "--tau-fd", "phi3=0.5", "--wl",
                            "0.5", "--wr", "0.5"});
  ASSERT_TRUE(soft.ok()) << soft.status().ToString();
  std::ostringstream soft_out;
  ASSERT_TRUE(RunCli(soft.value(), soft_out).ok());
  EXPECT_NE(soft_out.str().find("semantics: soft-fd"), std::string::npos)
      << soft_out.str();
}

TEST_F(CliTest, SummaryModeAggregates) {
  auto parsed = ParseCliArgs(
      {"--input", input_path_, "--fds", fds_path_, "--summary", "--tau-fd",
       "phi1=0.30", "--tau-fd", "phi2=0.5", "--tau-fd", "phi3=0.5", "--wl",
       "0.5", "--wr", "0.5"});
  ASSERT_TRUE(parsed.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(parsed.value(), out).ok());
  EXPECT_NE(out.str().find("changes by (column, old, new)"),
            std::string::npos);
  EXPECT_NE(out.str().find("Masers"), std::string::npos);
}

}  // namespace
}  // namespace ftrepair
