// Every worked example of the paper, checked end to end on the Table 1
// instance. Example-specific unit assertions also live in the per-module
// suites; this file reads as a companion to the paper text.

#include <gtest/gtest.h>

#include "core/repairer.h"
#include "detect/detector.h"
#include "detect/violation_graph.h"
#include "metric/distance.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::CitizensTruth;

class PaperExamples : public ::testing::Test {
 protected:
  Table table = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(table.schema());
  DistanceModel model{table};
};

TEST_F(PaperExamples, Example2_ClassicalViolationsOfPhi1) {
  // "The two tuples t1 and t9 violate phi1, as they have the same
  //  Education (Bachelors) but different Level values."
  bool found = false;
  for (const Violation& v : FindExactViolations(table, fds[0])) {
    if (v.row1 == 0 && v.row2 == 8) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(PaperExamples, Example4_SemanticsOfSatisfaction) {
  // (t4, t8) violate phi1; (t4, t6) do not; hence D does not satisfy phi1.
  EXPECT_FALSE(IsConsistent(table, fds[0]));
  uint64_t count = CountExactViolations(table, fds[0]);
  EXPECT_GT(count, 0u);
}

TEST_F(PaperExamples, Example5_ProjectionDistance) {
  // dist(t4^phi1, t6^phi1) = 0.5*dist(Masters, Masers) + 0.5*dist(4,4)
  //                        ~= 0.07.
  double d =
      model.ProjectionDistance(fds[0], table.row(3), table.row(5), 0.5, 0.5);
  EXPECT_NEAR(d, 0.07, 0.005);
}

TEST_F(PaperExamples, Example6_FTViolationAtTau035) {
  // tau = 0.35 => (t4, t6) is an FT-violation and D is not FT-consistent;
  // the typo in t6[Education] becomes repairable.
  FTOptions opts{0.5, 0.5, 0.35};
  EXPECT_FALSE(IsFTConsistent(table, fds[0], model, opts));
  bool t4_t6 = false;
  for (const Violation& v : FindFTViolations(table, fds[0], model, opts)) {
    if (v.row1 == 3 && v.row2 == 5) t4_t6 = true;
  }
  EXPECT_TRUE(t4_t6);
}

TEST_F(PaperExamples, Example7_GraphAndWeights) {
  // omega(t1, t9) = dist(Bachelors, Bachelors) + |3 - 1| / 8 = 0.25
  // ("we normalize the Euclidean distance by dividing the largest
  //  distance" — the Level range of Table 1 is 8).
  ViolationGraph g = ViolationGraph::Build(
      BuildPatterns(table, fds[0].attrs()), fds[0], model,
      FTOptions{0.5, 0.5, 0.35});
  int t1_pattern = -1;
  int t9_pattern = -1;
  for (int i = 0; i < g.num_patterns(); ++i) {
    if (g.pattern(i).values[0] == Value("Bachelors")) {
      if (g.pattern(i).values[1] == Value(3.0)) t1_pattern = i;
      if (g.pattern(i).values[1] == Value(1.0)) t9_pattern = i;
    }
  }
  ASSERT_GE(t1_pattern, 0);
  ASSERT_GE(t9_pattern, 0);
  double weight = -1;
  for (const ViolationGraph::Edge& e : g.Neighbors(t1_pattern)) {
    if (e.to == t9_pattern) weight = e.unit_cost;
  }
  EXPECT_DOUBLE_EQ(weight, 0.25);
}

TEST_F(PaperExamples, Examples8And9_SingleFDRepairOfPhi1) {
  // Both Expansion-S and Greedy-S end with t6, t8 repaired toward t4's
  // pattern and t9, t10 toward t1's.
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kExact, RepairAlgorithm::kGreedy}) {
    RepairOptions options;
    options.algorithm = algorithm;
    options.tau_by_fd = {{"phi1", 0.30}};
    Repairer repairer(options);
    RepairResult result =
        std::move(repairer.Repair(table, {fds[0]})).ValueOrDie();
    EXPECT_EQ(result.repaired.cell(5, 1), Value("Masters"));  // t6
    EXPECT_EQ(result.repaired.cell(7, 2), Value(4.0));        // t8 Level
    EXPECT_EQ(result.repaired.cell(8, 2), Value(3.0));        // t9 Level
    EXPECT_EQ(result.repaired.cell(9, 1), Value("Bachelors"));  // t10
  }
}

TEST_F(PaperExamples, Example3And10To14_JointRepairOfPhi2Phi3) {
  // Joint handling of phi2 and phi3 repairs t5[City] to New York with
  // minimal cost, resolving both constraints at once; t4 is repaired to
  // (New York, Western, Queens, NY) per Example 14's search trace.
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  options.tau_by_fd = {{"phi1", 0.30}, {"phi2", 0.5}, {"phi3", 0.5}};
  Repairer repairer(options);
  RepairResult result =
      std::move(repairer.Repair(table, fds)).ValueOrDie();
  const Schema& schema = table.schema();
  int city = schema.IndexOf("City");
  int state = schema.IndexOf("State");
  int street = schema.IndexOf("Street");
  int district = schema.IndexOf("District");
  // t5 -> (New York, Main, Manhattan, NY).
  EXPECT_EQ(result.repaired.cell(4, city), Value("New York"));
  EXPECT_EQ(result.repaired.cell(4, district), Value("Manhattan"));
  EXPECT_EQ(result.repaired.cell(4, state), Value("NY"));
  // t4 -> (New York, Western, Queens, NY) (Example 14).
  EXPECT_EQ(result.repaired.cell(3, city), Value("New York"));
  EXPECT_EQ(result.repaired.cell(3, street), Value("Western"));
  EXPECT_EQ(result.repaired.cell(3, district), Value("Queens"));
  EXPECT_EQ(result.repaired.cell(3, state), Value("NY"));
}

TEST_F(PaperExamples, FullRepairRecoversTable1Truth) {
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  options.tau_by_fd = {{"phi1", 0.30}, {"phi2", 0.5}, {"phi3", 0.5}};
  Repairer repairer(options);
  RepairResult result =
      std::move(repairer.Repair(table, fds)).ValueOrDie();
  Table truth = CitizensTruth();
  for (int r = 0; r < truth.num_rows(); ++r) {
    for (int c = 0; c < truth.num_columns(); ++c) {
      EXPECT_EQ(result.repaired.cell(r, c), truth.cell(r, c))
          << "t" << (r + 1) << " column "
          << table.schema().column(c).name;
    }
  }
}

TEST_F(PaperExamples, Theorem1_TauAboveWrYSubsumesClassical) {
  // For phi1 (|Y| = 1, w_r = 0.5): any FT-consistent instance at
  // tau >= 0.5 is classically consistent. Verify on the repaired table.
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  options.tau_by_fd = {{"phi1", 0.5}};
  Repairer repairer(options);
  RepairResult result =
      std::move(repairer.Repair(table, {fds[0]})).ValueOrDie();
  FTOptions opts{0.5, 0.5, 0.5};
  DistanceModel repaired_model(result.repaired);
  ASSERT_TRUE(IsFTConsistent(result.repaired, fds[0], repaired_model, opts));
  EXPECT_TRUE(IsConsistent(result.repaired, fds[0]));
}

}  // namespace
}  // namespace ftrepair
