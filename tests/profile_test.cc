#include <gtest/gtest.h>

#include "constraint/fd_parser.h"
#include "core/repairer.h"
#include "eval/profile.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;

TEST(ProfileTest, CountsAndRatios) {
  Table t = CitizensDirty();
  std::vector<ColumnProfile> profiles = ProfileTable(t);
  ASSERT_EQ(profiles.size(), 7u);
  const ColumnProfile& name = profiles[0];
  EXPECT_EQ(name.name, "Name");
  EXPECT_EQ(name.non_null, 10);
  EXPECT_EQ(name.nulls, 0);
  EXPECT_EQ(name.distinct, 10);
  EXPECT_DOUBLE_EQ(name.distinct_ratio, 1.0);  // key column
  const ColumnProfile& city = profiles[3];
  EXPECT_EQ(city.distinct, 3);  // New York, Boston, Boton
  EXPECT_DOUBLE_EQ(city.distinct_ratio, 0.3);
}

TEST(ProfileTest, TopValuesOrderedByCount) {
  Table t = CitizensDirty();
  std::vector<ColumnProfile> profiles = ProfileTable(t, 2);
  const ColumnProfile& city = profiles[3];
  ASSERT_EQ(city.top_values.size(), 2u);
  EXPECT_EQ(city.top_values[0].first, Value("Boston"));
  EXPECT_EQ(city.top_values[0].second, 5);
  EXPECT_EQ(city.top_values[1].first, Value("New York"));
  EXPECT_EQ(city.top_values[1].second, 4);
}

TEST(ProfileTest, NumericRange) {
  Table t = CitizensDirty();
  std::vector<ColumnProfile> profiles = ProfileTable(t);
  const ColumnProfile& level = profiles[2];
  EXPECT_TRUE(level.has_numeric_range);
  EXPECT_DOUBLE_EQ(level.min, 1);
  EXPECT_DOUBLE_EQ(level.max, 9);
  EXPECT_FALSE(profiles[0].has_numeric_range);
}

TEST(ProfileTest, NullsCounted) {
  Table t(Schema({{"a", ValueType::kString}}));
  (void)t.AppendRow({Value("x")});
  (void)t.AppendRow({Value()});
  (void)t.AppendRow({Value()});
  std::vector<ColumnProfile> profiles = ProfileTable(t);
  EXPECT_EQ(profiles[0].non_null, 1);
  EXPECT_EQ(profiles[0].nulls, 2);
}

TEST(SummarizeChangesTest, GroupsAndOrders) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kExact;
  options.tau_by_fd = {{"phi1", 0.30}, {"phi2", 0.5}, {"phi3", 0.5}};
  Repairer repairer(options);
  RepairResult result = std::move(repairer.Repair(dirty, fds)).ValueOrDie();
  std::vector<ChangeSummaryLine> lines =
      SummarizeChanges(result.changes, dirty.schema());
  // 8 individual changes, all distinct (column, old, new) triples here.
  int total = 0;
  for (const ChangeSummaryLine& line : lines) total += line.count;
  EXPECT_EQ(total, 8);
  // Ordered by descending count.
  for (size_t i = 1; i < lines.size(); ++i) {
    EXPECT_GE(lines[i - 1].count, lines[i].count);
  }
  bool found = false;
  for (const ChangeSummaryLine& line : lines) {
    if (line.column == "Education" && line.old_value == Value("Masers")) {
      EXPECT_EQ(line.new_value, Value("Masters"));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SummarizeChangesTest, AggregatesRepeatedChanges) {
  Schema schema({{"a", ValueType::kString}});
  std::vector<CellChange> changes = {
      {0, 0, Value("x"), Value("y")},
      {1, 0, Value("x"), Value("y")},
      {2, 0, Value("z"), Value("y")},
  };
  std::vector<ChangeSummaryLine> lines = SummarizeChanges(changes, schema);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].count, 2);
  EXPECT_EQ(lines[0].old_value, Value("x"));
  EXPECT_EQ(lines[1].count, 1);
}

TEST(FDSpecTest, ToSpecRoundTrips) {
  Table t = CitizensDirty();
  for (const FD& fd : CitizensFDs(t.schema())) {
    std::string spec = fd.ToSpec(t.schema());
    FD reparsed = std::move(ParseFD(spec, t.schema())).ValueOrDie();
    EXPECT_EQ(reparsed.lhs(), fd.lhs()) << spec;
    EXPECT_EQ(reparsed.rhs(), fd.rhs()) << spec;
    EXPECT_EQ(reparsed.name(), fd.name()) << spec;
  }
  // Unnamed FDs round-trip too.
  FD unnamed = std::move(FD::Make({3, 4}, {5})).ValueOrDie();
  FD reparsed =
      std::move(ParseFD(unnamed.ToSpec(t.schema()), t.schema())).ValueOrDie();
  EXPECT_EQ(reparsed.attrs(), unnamed.attrs());
}

}  // namespace
}  // namespace ftrepair
