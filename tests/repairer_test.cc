#include <algorithm>

#include <gtest/gtest.h>

#include "core/repairer.h"
#include "detect/detector.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::CitizensSchema;
using testing_util::CitizensTruth;

RepairOptions CitizensOptions(RepairAlgorithm algorithm) {
  RepairOptions options;
  options.algorithm = algorithm;
  options.tau_by_fd = {{"phi1", 0.30}, {"phi2", 0.5}, {"phi3", 0.5}};
  return options;
}

TEST(RepairerTest, ValidateFDsCatchesBadColumns) {
  Schema schema = CitizensSchema();
  FD bad = std::move(FD::Make({0}, {99})).ValueOrDie();
  EXPECT_TRUE(ValidateFDs(schema, {bad}).IsInvalidArgument());
  Repairer repairer;
  auto result = repairer.Repair(CitizensDirty(), {bad});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(RepairerTest, GreedyRepairsCitizensToTruth) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  Repairer repairer(CitizensOptions(RepairAlgorithm::kGreedy));
  RepairResult result = std::move(repairer.Repair(dirty, fds)).ValueOrDie();
  Table truth = CitizensTruth();
  // Every error highlighted in Table 1 is corrected.
  for (int r = 0; r < truth.num_rows(); ++r) {
    for (int c = 0; c < truth.num_columns(); ++c) {
      EXPECT_EQ(result.repaired.cell(r, c), truth.cell(r, c))
          << "row " << r << " col " << c;
    }
  }
  EXPECT_GT(result.stats.ft_violations_before, 0u);
  EXPECT_EQ(result.stats.ft_violations_after, 0u);
  EXPECT_GT(result.stats.cells_changed, 0);
  EXPECT_GT(result.stats.repair_cost, 0.0);
}

TEST(RepairerTest, ExactRepairsCitizensToTruth) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  Repairer repairer(CitizensOptions(RepairAlgorithm::kExact));
  RepairResult result = std::move(repairer.Repair(dirty, fds)).ValueOrDie();
  Table truth = CitizensTruth();
  for (int r = 0; r < truth.num_rows(); ++r) {
    for (int c = 0; c < truth.num_columns(); ++c) {
      EXPECT_EQ(result.repaired.cell(r, c), truth.cell(r, c));
    }
  }
  EXPECT_TRUE(result.stats.degradations.empty());
}

TEST(RepairerTest, ApproJoinProducesFTConsistentOutput) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options = CitizensOptions(RepairAlgorithm::kApproJoin);
  Repairer repairer(options);
  RepairResult result = std::move(repairer.Repair(dirty, fds)).ValueOrDie();
  EXPECT_EQ(result.stats.ft_violations_after, 0u);
}

TEST(RepairerTest, ChangesListMatchesTableDiff) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  Repairer repairer(CitizensOptions(RepairAlgorithm::kGreedy));
  RepairResult result = std::move(repairer.Repair(dirty, fds)).ValueOrDie();
  // Apply the change list onto a fresh copy and compare.
  Table replay = dirty;
  for (const CellChange& change : result.changes) {
    EXPECT_EQ(replay.cell(change.row, change.col), change.old_value);
    replay.SetCell(change.row, change.col, change.new_value);
  }
  for (int r = 0; r < dirty.num_rows(); ++r) {
    for (int c = 0; c < dirty.num_columns(); ++c) {
      EXPECT_EQ(replay.cell(r, c), result.repaired.cell(r, c));
    }
  }
  EXPECT_EQ(result.stats.cells_changed,
            static_cast<int>(result.changes.size()));
}

TEST(RepairerTest, CloseWorldValidity) {
  // Every repaired cell value must come from the dirty table's active
  // domain of that column (§2.2).
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  Repairer repairer(CitizensOptions(RepairAlgorithm::kGreedy));
  RepairResult result = std::move(repairer.Repair(dirty, fds)).ValueOrDie();
  for (const CellChange& change : result.changes) {
    std::vector<Value> domain = dirty.ActiveDomain(change.col);
    EXPECT_NE(std::find(domain.begin(), domain.end(), change.new_value),
              domain.end())
        << "column " << change.col << " value "
        << change.new_value.ToString();
  }
}

TEST(RepairerTest, IndependentFDsRepairIndependently) {
  // phi1 shares no attribute with phi2/phi3 (Theorem 5): repairing all
  // three equals repairing phi1 alone + {phi2, phi3} alone.
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  Repairer repairer(CitizensOptions(RepairAlgorithm::kGreedy));
  Table all = std::move(repairer.Repair(dirty, fds)).ValueOrDie().repaired;
  Table only1 =
      std::move(repairer.Repair(dirty, {fds[0]})).ValueOrDie().repaired;
  Table only23 =
      std::move(repairer.Repair(dirty, {fds[1], fds[2]})).ValueOrDie()
          .repaired;
  for (int r = 0; r < dirty.num_rows(); ++r) {
    // phi1 columns from the phi1-only run.
    for (int c : fds[0].attrs()) {
      EXPECT_EQ(all.cell(r, c), only1.cell(r, c));
    }
    for (int c : fds[1].attrs()) {
      EXPECT_EQ(all.cell(r, c), only23.cell(r, c));
    }
    for (int c : fds[2].attrs()) {
      EXPECT_EQ(all.cell(r, c), only23.cell(r, c));
    }
  }
}

TEST(RepairerTest, AutoThresholdRunsEndToEnd) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  options.auto_threshold = true;
  Repairer repairer(options);
  auto result = repairer.Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().stats.ft_violations_after, 0u);
}

TEST(RepairerTest, EmptyFDListIsNoop) {
  Table dirty = CitizensDirty();
  Repairer repairer;
  RepairResult result = std::move(repairer.Repair(dirty, {})).ValueOrDie();
  EXPECT_TRUE(result.changes.empty());
  EXPECT_DOUBLE_EQ(result.stats.repair_cost, 0.0);
}

TEST(RepairerTest, ViolationStatsCanBeDisabled) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options = CitizensOptions(RepairAlgorithm::kGreedy);
  options.compute_violation_stats = false;
  Repairer repairer(options);
  RepairResult result = std::move(repairer.Repair(dirty, fds)).ValueOrDie();
  EXPECT_EQ(result.stats.ft_violations_before, 0u);
  EXPECT_EQ(result.stats.ft_violations_after, 0u);
  EXPECT_GT(result.stats.cells_changed, 0);
}

TEST(RepairerTest, RepairCFDsFixesConstantAndVariableViolations) {
  Table dirty = CitizensDirty();
  Schema schema = dirty.schema();
  FD fd = std::move(FD::Make({schema.IndexOf("City")},
                             {schema.IndexOf("State")}, "phi2"))
              .ValueOrDie();
  std::vector<PatternRow> tableau;
  // Constant rule: New York tuples must have NY.
  tableau.push_back({Value("New York"), Value("NY")});
  // Variable rule: plain FD semantics elsewhere.
  tableau.push_back({std::nullopt, std::nullopt});
  CFD cfd = std::move(CFD::Make(fd, std::move(tableau), "c1")).ValueOrDie();
  RepairOptions options;
  options.tau_by_fd = {{"phi2", 0.5}};
  Repairer repairer(options);
  RepairResult result =
      std::move(repairer.RepairCFDs(dirty, {cfd})).ValueOrDie();
  // t4 (New York, MA) fixed by the constant rule.
  EXPECT_EQ(result.repaired.cell(3, schema.IndexOf("State")), Value("NY"));
  EXPECT_GT(result.stats.cells_changed, 0);
}

}  // namespace
}  // namespace ftrepair
