#include <gtest/gtest.h>

#include "detect/detector.h"
#include "detect/threshold.h"
#include "test_util.h"

namespace ftrepair {
namespace {

// A table where error-pair distances (small) and legitimate-pair
// distances (large) are cleanly separated by a gap.
Table GappedTable() {
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  auto add = [&t](const char* k, const char* v) {
    (void)t.AppendRow({Value(k), Value(v)});
  };
  // Two legitimate clusters far apart...
  for (int i = 0; i < 5; ++i) add("aaaaaaaa", "alpha");
  for (int i = 0; i < 5; ++i) add("zzzzzzzz", "omega");
  // ...plus one near-duplicate (typo) of the first.
  add("aaaaaaab", "alpha");
  return t;
}

TEST(ThresholdTest, PicksValueBelowTheBigGap) {
  Table t = GappedTable();
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  double tau = SuggestThreshold(t, fd, model);
  // Typo pair distance: 0.5 * 1/8 = 0.0625; legit pair distance:
  // 0.5 * 1 + 0.5 * dist(alpha, omega) >> 0.0625. tau must be the small one.
  EXPECT_NEAR(tau, 0.0625, 1e-9);
}

TEST(ThresholdTest, DetectedViolationsMatchIntent) {
  Table t = GappedTable();
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  double tau = SuggestThreshold(t, fd, model);
  // At the suggested tau the typo is an FT-violation but the two
  // legitimate clusters are not.
  FTOptions opts{0.5, 0.5, tau};
  EXPECT_EQ(CountFTViolations(t, fd, model, opts), 5u);  // typo vs 5 copies
}

TEST(ThresholdTest, FallbackWhenTooFewDistances) {
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value("a"), Value("b")}).ok());
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ThresholdOptions opts;
  opts.fallback = 0.123;
  EXPECT_DOUBLE_EQ(SuggestThreshold(t, fd, model, opts), 0.123);
}

TEST(ThresholdTest, CeilingExcludesFarPairs) {
  Table t = GappedTable();
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ThresholdOptions opts;
  opts.ceiling = 0.1;  // only the typo distances survive
  opts.fallback = 0.5;
  // A single distinct distance remains -> fallback.
  EXPECT_DOUBLE_EQ(SuggestThreshold(t, fd, model, opts), 0.5);
}

TEST(ThresholdTest, SubsamplingStaysDeterministic) {
  Table t = testing_util::RandomFDTable(80, 3, 10, 20, 99);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ThresholdOptions opts;
  opts.max_pairs = 50;
  double a = SuggestThreshold(t, fd, model, opts);
  double b = SuggestThreshold(t, fd, model, opts);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace ftrepair
