// Concurrency suite: the worker pool, ParallelFor, shared-budget
// charging, and — the load-bearing property — bit-identical violation
// graphs from the parallel build at every thread count.

#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/parallel.h"
#include "detect/pattern.h"
#include "detect/violation_graph.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::RandomFDTable;

// Scoped setenv/unsetenv so a failing assertion cannot leak the fault
// seam into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      if (done.fetch_add(1, std::memory_order_relaxed) + 1 == 100) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load(std::memory_order_relaxed) == 100; });
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // join: every submitted task must have run
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
}

TEST(ParallelForTest, EveryShardRunsExactlyOnce) {
  for (int parallelism : {1, 2, 4, 0}) {
    const int kShards = 37;
    std::vector<std::atomic<int>> hits(kShards);
    for (auto& h : hits) h.store(0);
    bool complete = ParallelFor(kShards, parallelism, [&](int s) {
      hits[static_cast<size_t>(s)].fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_TRUE(complete);
    for (int s = 0; s < kShards; ++s) {
      EXPECT_EQ(hits[static_cast<size_t>(s)].load(), 1) << "shard " << s;
    }
  }
}

TEST(ParallelForTest, SerialModeRunsInOrderOnCaller) {
  // parallelism = 1 must be the plain serial loop: caller thread, in
  // shard order — the graph build's threads=1 guarantee rests on this.
  std::vector<int> order;
  std::thread::id caller = std::this_thread::get_id();
  bool complete = ParallelFor(8, 1, [&](int s) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(s);
  });
  EXPECT_TRUE(complete);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ParallelForTest, ZeroShardsIsANoOp) {
  EXPECT_TRUE(ParallelFor(0, 4, [](int) { FAIL(); }));
}

TEST(ParallelForTest, ExhaustedBudgetSkipsRemainingShards) {
  Budget zero(0);  // exhausted from construction
  std::atomic<int> ran{0};
  bool complete = ParallelFor(
      16, 4, [&](int) { ran.fetch_add(1, std::memory_order_relaxed); },
      &zero);
  EXPECT_FALSE(complete);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelForTest, CancellationStopsClaimingShards) {
  Budget budget;  // unlimited, but cancellable
  std::atomic<int> ran{0};
  bool complete = ParallelFor(
      64, 1,
      [&](int s) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (s == 4) budget.Cancel();
      },
      &budget);
  EXPECT_FALSE(complete);
  // Serial mode: shards 0..4 ran, everything after was skipped.
  EXPECT_EQ(ran.load(), 5);
}

TEST(ParallelForTest, NestedCallsCompleteEveryShard) {
  // A pool task calling ParallelFor must never deadlock, even when the
  // outer fan-out saturates every worker: the inner call blocks on
  // shard *completion* and the caller participates, so it can always
  // finish its shards alone. 4 outer x 8 inner at full parallelism.
  const int kOuter = 4;
  const int kInner = 8;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  bool outer_complete = ParallelFor(kOuter, 0, [&](int o) {
    bool inner_complete = ParallelFor(kInner, 0, [&](int i) {
      hits[static_cast<size_t>(o * kInner + i)].fetch_add(
          1, std::memory_order_relaxed);
    });
    EXPECT_TRUE(inner_complete);
  });
  EXPECT_TRUE(outer_complete);
  for (int u = 0; u < kOuter * kInner; ++u) {
    EXPECT_EQ(hits[static_cast<size_t>(u)].load(), 1) << "unit " << u;
  }
}

TEST(ParallelForTest, NestedSerialInnerStaysOrdered) {
  // threads=1 inside an outer fan-out must still be the plain serial
  // loop on whichever thread runs the outer shard.
  const int kOuter = 3;
  std::vector<std::vector<int>> orders(kOuter);
  bool complete = ParallelFor(kOuter, 0, [&](int o) {
    std::thread::id me = std::this_thread::get_id();
    ParallelFor(6, 1, [&, me](int i) {
      EXPECT_EQ(std::this_thread::get_id(), me);
      orders[static_cast<size_t>(o)].push_back(i);
    });
  });
  EXPECT_TRUE(complete);
  for (int o = 0; o < kOuter; ++o) {
    EXPECT_EQ(orders[static_cast<size_t>(o)],
              (std::vector<int>{0, 1, 2, 3, 4, 5}));
  }
}

TEST(BudgetConcurrencyTest, SharedChargeAccountsExactly) {
  // Many threads charging one limited budget must lose no units — the
  // parallel graph build's accounting depends on it.
  Budget budget(1e9);  // limited (so units are tracked) but far away
  const int kThreads = 8;
  const int kChargesEach = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget] {
      for (int i = 0; i < kChargesEach; ++i) EXPECT_TRUE(budget.Charge());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(budget.units_charged(),
            static_cast<uint64_t>(kThreads) * kChargesEach);
}

TEST(BudgetConcurrencyTest, FaultSeamTripsOnceAcrossThreads) {
  ScopedEnv fault("FTREPAIR_FAULT_BUDGET_UNITS", "5000");
  Budget budget(1e9);
  const int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Each thread alone charges past the trip point, so every thread is
  // guaranteed to observe the latched failure.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 6000; ++i) {
        if (!budget.Charge()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(failures.load(), kThreads);  // every thread saw the trip
}

// ---------------------------------------------------------------------
// Parallel graph build determinism.

void ExpectGraphsIdentical(const ViolationGraph& a, const ViolationGraph& b) {
  ASSERT_EQ(a.num_patterns(), b.num_patterns());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.pairs_evaluated(), b.pairs_evaluated());
  EXPECT_EQ(a.pairs_length_filtered(), b.pairs_length_filtered());
  EXPECT_EQ(a.truncated(), b.truncated());
  // Bit-identical doubles, not approximately equal: the parallel build
  // promises the exact serial result.
  EXPECT_EQ(a.TotalMinEdgeCost(), b.TotalMinEdgeCost());
  for (int i = 0; i < a.num_patterns(); ++i) {
    EXPECT_EQ(a.MinEdgeCost(i), b.MinEdgeCost(i)) << "vertex " << i;
    const auto& na = a.Neighbors(i);
    const auto& nb = b.Neighbors(i);
    ASSERT_EQ(na.size(), nb.size()) << "vertex " << i;
    for (size_t k = 0; k < na.size(); ++k) {
      EXPECT_EQ(na[k].to, nb[k].to) << "vertex " << i << " edge " << k;
      EXPECT_EQ(na[k].proj_dist, nb[k].proj_dist)
          << "vertex " << i << " edge " << k;
      EXPECT_EQ(na[k].unit_cost, nb[k].unit_cost)
          << "vertex " << i << " edge " << k;
    }
  }
}

Table MakeDirty(Dataset& ds, uint64_t seed) {
  NoiseOptions noise;
  noise.error_rate = 0.05;
  noise.seed = seed;
  return std::move(InjectErrors(ds.clean, ds.fds, noise, nullptr))
      .ValueOrDie();
}

class ParallelBuildTest : public ::testing::TestWithParam<bool> {
 protected:
  Dataset Generate(int rows) {
    if (GetParam()) {
      return std::move(GenerateHosp({.num_rows = rows, .seed = 13}))
          .ValueOrDie();
    }
    return std::move(GenerateTax({.num_rows = rows, .seed = 13}))
        .ValueOrDie();
  }
};

TEST_P(ParallelBuildTest, ByteIdenticalToSerialOnGenerators) {
  Dataset ds = Generate(600);
  Table dirty = MakeDirty(ds, 29);
  DistanceModel model(dirty);
  for (const FD& fd : ds.fds) {
    std::vector<Pattern> patterns = BuildPatterns(dirty, fd.attrs());
    FTOptions serial{ds.recommended_w_l, ds.recommended_w_r,
                     ds.recommended_tau.at(fd.name()), 1};
    ViolationGraph reference =
        ViolationGraph::Build(patterns, fd, model, serial);
    for (int threads : {2, 3, 4, 0}) {
      FTOptions opts = serial;
      opts.threads = threads;
      ViolationGraph parallel =
          ViolationGraph::Build(patterns, fd, model, opts);
      SCOPED_TRACE("fd=" + fd.name() +
                   " threads=" + std::to_string(threads));
      ExpectGraphsIdentical(reference, parallel);
    }
  }
}

TEST(ParallelGraphBuildTest, ByteIdenticalOnRandomTableManyPatterns) {
  // More patterns than one shard (64 rows/shard) so the merge crosses
  // many shard boundaries.
  Table t = RandomFDTable(500, 3, 220, 80, 99);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  std::vector<Pattern> patterns = BuildPatterns(t, fd.attrs());
  ASSERT_GT(patterns.size(), 128u);
  FTOptions serial{0.5, 0.5, 0.45, 1};
  ViolationGraph reference = ViolationGraph::Build(patterns, fd, model, serial);
  for (int threads : {2, 4, 7, 0}) {
    FTOptions opts = serial;
    opts.threads = threads;
    ViolationGraph parallel = ViolationGraph::Build(patterns, fd, model, opts);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectGraphsIdentical(reference, parallel);
  }
}

TEST(ParallelGraphBuildTest, TruncatedParallelBuildIsWellFormed) {
  // Exhaust the budget mid-build on many threads: which pairs ran is
  // nondeterministic, but the graph must be marked truncated and every
  // invariant (symmetric adjacency, i<j edge count) must hold.
  ScopedEnv fault("FTREPAIR_FAULT_BUDGET_UNITS", "2000");
  Table t = RandomFDTable(400, 3, 180, 60, 7);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  std::vector<Pattern> patterns = BuildPatterns(t, fd.attrs());
  Budget budget(1e9);  // limited, so the fault seam applies
  ViolationGraph g = ViolationGraph::Build(patterns, fd, model,
                                           FTOptions{0.5, 0.5, 0.45, 4},
                                           &budget);
  EXPECT_TRUE(g.truncated());
  size_t directed = 0;
  for (int i = 0; i < g.num_patterns(); ++i) {
    for (const ViolationGraph::Edge& e : g.Neighbors(i)) {
      ASSERT_GE(e.to, 0);
      ASSERT_LT(e.to, g.num_patterns());
      ASSERT_NE(e.to, i);
      ++directed;
      // The mirror edge must exist with the same weights.
      bool mirrored = false;
      for (const ViolationGraph::Edge& back : g.Neighbors(e.to)) {
        if (back.to == i && back.proj_dist == e.proj_dist &&
            back.unit_cost == e.unit_cost) {
          mirrored = true;
          break;
        }
      }
      EXPECT_TRUE(mirrored) << i << " -> " << e.to;
    }
  }
  EXPECT_EQ(directed, 2 * g.num_edges());
}

TEST(ParallelGraphBuildTest, PreExhaustedBudgetMarksTruncated) {
  Table t = RandomFDTable(50, 3, 20, 10, 3);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  Budget zero(0);
  for (int threads : {1, 4}) {
    ViolationGraph g = ViolationGraph::Build(
        BuildPatterns(t, fd.attrs()), fd, model,
        FTOptions{0.5, 0.5, 0.45, threads}, &zero);
    EXPECT_TRUE(g.truncated()) << "threads=" << threads;
    EXPECT_EQ(g.num_edges(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(HospAndTax, ParallelBuildTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Hosp" : "Tax";
                         });

}  // namespace
}  // namespace ftrepair
