#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "detect/violation_graph.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::RandomFDTable;

ViolationGraph Phi1Graph(const Table& t, const DistanceModel& model,
                         double tau = 0.35) {
  std::vector<FD> fds = CitizensFDs(t.schema());
  return ViolationGraph::Build(BuildPatterns(t, fds[0].attrs()), fds[0],
                               model, FTOptions{0.5, 0.5, tau});
}

// Pattern id whose values match (education, level); -1 if absent.
int FindPattern(const ViolationGraph& g, const char* education,
                double level) {
  for (int i = 0; i < g.num_patterns(); ++i) {
    if (g.pattern(i).values[0] == Value(education) &&
        g.pattern(i).values[1] == Value(level)) {
      return i;
    }
  }
  return -1;
}

bool HasEdge(const ViolationGraph& g, int a, int b) {
  for (const ViolationGraph::Edge& e : g.Neighbors(a)) {
    if (e.to == b) return true;
  }
  return false;
}

TEST(ViolationGraphTest, PaperFig2Structure) {
  // Fig. 2 graph of phi1 over Table 1 (grouped patterns).
  Table t = CitizensDirty();
  DistanceModel model(t);
  ViolationGraph g = Phi1Graph(t, model);
  ASSERT_EQ(g.num_patterns(), 7);
  int bachelors3 = FindPattern(g, "Bachelors", 3);
  int bachelors1 = FindPattern(g, "Bachelors", 1);
  int bachelers3 = FindPattern(g, "Bachelers", 3);
  int masters4 = FindPattern(g, "Masters", 4);
  int masters3 = FindPattern(g, "Masters", 3);
  int masers4 = FindPattern(g, "Masers", 4);
  int hsgrad9 = FindPattern(g, "HS-grad", 9);
  ASSERT_GE(bachelors3, 0);
  ASSERT_GE(masers4, 0);
  // Edges shown in Fig. 2.
  EXPECT_TRUE(HasEdge(g, bachelors3, bachelors1));  // (t1, t9)
  EXPECT_TRUE(HasEdge(g, bachelors3, bachelers3));  // (t1, t10)
  EXPECT_TRUE(HasEdge(g, masters4, masers4));       // (t4, t6)
  EXPECT_TRUE(HasEdge(g, masters4, masters3));      // (t4, t8)
  // HS-grad is isolated (far from everything).
  EXPECT_EQ(g.degree(hsgrad9), 0);
  EXPECT_DOUBLE_EQ(g.MinEdgeCost(hsgrad9), ViolationGraph::kInfinity);
}

TEST(ViolationGraphTest, EdgeWeightsMatchExample7) {
  // omega(t1, t9) = dist(Bachelors, Bachelors) + |3-1|/8 = 0.25.
  Table t = CitizensDirty();
  DistanceModel model(t);
  ViolationGraph g = Phi1Graph(t, model);
  int bachelors3 = FindPattern(g, "Bachelors", 3);
  int bachelors1 = FindPattern(g, "Bachelors", 1);
  double unit = -1;
  for (const ViolationGraph::Edge& e : g.Neighbors(bachelors3)) {
    if (e.to == bachelors1) unit = e.unit_cost;
  }
  EXPECT_DOUBLE_EQ(unit, 0.25);
}

TEST(ViolationGraphTest, IdenticalProjectionsNeverEdge) {
  // Two patterns cannot share values by construction, but passing
  // ungrouped duplicates must not create edges either.
  Table t = CitizensDirty();
  DistanceModel model(t);
  std::vector<FD> fds = CitizensFDs(t.schema());
  std::vector<Pattern> per_row;
  for (int r = 0; r < t.num_rows(); ++r) {
    std::vector<Value> proj;
    for (int c : fds[0].attrs()) proj.push_back(t.cell(r, c));
    Pattern p;
    p.values = std::move(proj);
    p.rows.push_back(r);
    per_row.push_back(std::move(p));
  }
  ViolationGraph g = ViolationGraph::Build(std::move(per_row), fds[0], model,
                                           FTOptions{0.5, 0.5, 0.35});
  // Rows 0 and 1 share (Bachelors, 3): no edge between them.
  EXPECT_FALSE(HasEdge(g, 0, 1));
}

TEST(ViolationGraphTest, LengthFilterIsLossless) {
  // The cheap length filter must not change the edge set: build with a
  // model over random data and compare against a brute-force edge count.
  Table t = RandomFDTable(60, 3, 6, 20, 77);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  FTOptions opts{0.5, 0.5, 0.4};
  ViolationGraph g =
      ViolationGraph::Build(BuildPatterns(t, fd.attrs()), fd, model, opts);
  // Recount edges without any filtering.
  std::vector<Pattern> patterns = BuildPatterns(t, fd.attrs());
  size_t expected = 0;
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (size_t j = i + 1; j < patterns.size(); ++j) {
      if (patterns[i].values == patterns[j].values) continue;
      double d = ViolationGraph::ProjDistance(
          patterns[i].values, patterns[j].values, fd, model, 0.5, 0.5);
      if (d <= opts.tau) ++expected;
    }
  }
  EXPECT_EQ(g.num_edges(), expected);
  EXPECT_GT(g.pairs_evaluated() + g.pairs_length_filtered(), 0u);
}

TEST(ViolationGraphTest, GroupedWeightsUseMultiplicity) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  ViolationGraph g = Phi1Graph(t, model);
  int bachelors3 = FindPattern(g, "Bachelors", 3);
  EXPECT_EQ(g.pattern(bachelors3).count(), 3);  // t1, t2, t3
  // TotalMinEdgeCost weights by count.
  EXPECT_GT(g.TotalMinEdgeCost(), 0.0);
}

TEST(ViolationGraphTest, ConnectedComponentsAndSubgraph) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  ViolationGraph g = Phi1Graph(t, model);
  auto components = g.ConnectedComponents();
  // At tau = 0.35 the Bachelors and Masters clusters are linked through
  // the (Bachelors, 3)-(Masters, 4) pair (distance 0.34); HS-grad stays
  // isolated.
  EXPECT_EQ(components.size(), 2u);
  for (const auto& comp : components) {
    ViolationGraph sub = g.InducedSubgraph(comp);
    EXPECT_EQ(sub.num_patterns(), static_cast<int>(comp.size()));
    // Edge endpoints must stay inside.
    for (int i = 0; i < sub.num_patterns(); ++i) {
      for (const ViolationGraph::Edge& e : sub.Neighbors(i)) {
        EXPECT_GE(e.to, 0);
        EXPECT_LT(e.to, sub.num_patterns());
      }
    }
  }
}

TEST(ViolationGraphTest, SubgraphPreservesEdgeData) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  ViolationGraph g = Phi1Graph(t, model);
  auto components = g.ConnectedComponents();
  size_t total_edges = 0;
  for (const auto& comp : components) {
    total_edges += g.InducedSubgraph(comp).num_edges();
  }
  EXPECT_EQ(total_edges, g.num_edges());
}

TEST(ViolationGraphTest, SubgraphPropagatesTruncationAndStats) {
  // Regression: InducedSubgraph used to drop truncated() and the pair
  // stats, so per-component solvers working off a budget-truncated
  // graph believed detection had been complete.
  setenv("FTREPAIR_FAULT_BUDGET_UNITS", "40", 1);
  Table t = RandomFDTable(80, 3, 12, 25, 5);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  Budget budget(1e9);  // limited, so the fault seam applies
  ViolationGraph g =
      ViolationGraph::Build(BuildPatterns(t, fd.attrs()), fd, model,
                            FTOptions{0.5, 0.5, 0.45}, &budget);
  unsetenv("FTREPAIR_FAULT_BUDGET_UNITS");
  ASSERT_TRUE(g.truncated());
  for (const auto& comp : g.ConnectedComponents()) {
    ViolationGraph sub = g.InducedSubgraph(comp);
    EXPECT_TRUE(sub.truncated());
    EXPECT_EQ(sub.pairs_evaluated(), g.pairs_evaluated());
    EXPECT_EQ(sub.pairs_length_filtered(), g.pairs_length_filtered());
  }
}

TEST(ViolationGraphTest, SubgraphOfCompleteBuildIsNotTruncated) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  ViolationGraph g = Phi1Graph(t, model);
  ASSERT_FALSE(g.truncated());
  for (const auto& comp : g.ConnectedComponents()) {
    EXPECT_FALSE(g.InducedSubgraph(comp).truncated());
  }
}

TEST(ViolationGraphTest, EmptyInput) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  std::vector<FD> fds = CitizensFDs(t.schema());
  ViolationGraph g = ViolationGraph::Build({}, fds[0], model,
                                           FTOptions{0.5, 0.5, 0.3});
  EXPECT_EQ(g.num_patterns(), 0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.ConnectedComponents().empty());
}

}  // namespace
}  // namespace ftrepair
