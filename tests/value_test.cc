#include <cmath>
#include <limits>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/value.h"

namespace ftrepair {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_string());
  EXPECT_FALSE(v.is_number());
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, StringValue) {
  Value v("Boston");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.str(), "Boston");
  EXPECT_EQ(v.ToString(), "Boston");
}

TEST(ValueTest, NumberValue) {
  Value v(3.5);
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.num(), 3.5);
  EXPECT_EQ(v.ToString(), "3.5");
  EXPECT_EQ(Value(4).ToString(), "4");
}

TEST(ValueTest, EqualityIsTypeAware) {
  EXPECT_EQ(Value("3"), Value("3"));
  EXPECT_NE(Value("3"), Value(3.0));  // string vs number
  EXPECT_EQ(Value(3.0), Value(3));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value(""));  // null vs empty string differ
}

TEST(ValueTest, OrderingByTypeThenContent) {
  EXPECT_LT(Value(), Value("a"));          // null < string
  EXPECT_LT(Value("a"), Value(1.0));       // string < number
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(1.0), Value(2.0));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, ParseRespectsTypeHint) {
  EXPECT_EQ(Value::Parse("42", ValueType::kNumber), Value(42.0));
  EXPECT_EQ(Value::Parse("42", ValueType::kString), Value("42"));
  EXPECT_EQ(Value::Parse("  x  ", ValueType::kString), Value("x"));
  EXPECT_EQ(Value::Parse("", ValueType::kString), Value());
  EXPECT_EQ(Value::Parse("   ", ValueType::kNumber), Value());
}

TEST(ValueTest, ParseDirtyNumericFallsBackToString) {
  // Typos can corrupt numeric cells; they must survive as strings.
  Value v = Value::Parse("4x2", ValueType::kNumber);
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.str(), "4x2");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_EQ(Value(1.5).Hash(), Value(1.5).Hash());
  // "3" as string and 3 as number must hash differently (type-tagged).
  EXPECT_NE(Value("3").Hash(), Value(3.0).Hash());
}

TEST(ValueTest, NegativeZeroCanonicalizesToPositiveZero) {
  // Regression: IEEE -0.0 == 0.0 but their bit patterns differ, so a
  // byte-based hash split them into distinct buckets while equality
  // merged them — breaking the hash/equality contract every dictionary
  // and pattern-grouping map depends on.
  Value neg(-0.0);
  Value pos(0.0);
  EXPECT_EQ(neg, pos);
  EXPECT_EQ(neg.Hash(), pos.Hash());
  EXPECT_FALSE(std::signbit(neg.num()));
  EXPECT_EQ(neg.ToString(), pos.ToString());
  std::unordered_set<Value, ValueHash> set;
  set.insert(neg);
  EXPECT_EQ(set.count(pos), 1u);
  // Parsing "-0" (e.g. a CSV cell) canonicalizes too.
  EXPECT_EQ(Value::Parse("-0", ValueType::kNumber).Hash(), pos.Hash());
}

TEST(ValueTest, NaNValuesAreSelfEqualAndHashable) {
  // NaN != NaN under IEEE; as a *key* that would make a NaN Value
  // unfindable in any container that stored it. Values canonicalize
  // every NaN to one quiet NaN and compare it equal to itself.
  Value a(std::numeric_limits<double>::quiet_NaN());
  Value b(-std::numeric_limits<double>::signaling_NaN());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  std::unordered_set<Value, ValueHash> set;
  set.insert(a);
  EXPECT_EQ(set.count(b), 1u);
  // NaN sorts after every other number, deterministically.
  EXPECT_TRUE(Value(1e300) < a);
  EXPECT_FALSE(a < a);
}

TEST(ValueTest, HashDispersesInContainers) {
  std::unordered_set<Value, ValueHash> set;
  for (int i = 0; i < 1000; ++i) {
    set.insert(Value("v" + std::to_string(i)));
    set.insert(Value(static_cast<double>(i)));
  }
  EXPECT_EQ(set.size(), 2000u);
  EXPECT_EQ(set.count(Value("v5")), 1u);
  EXPECT_EQ(set.count(Value(5.0)), 1u);
  EXPECT_EQ(set.count(Value("missing")), 0u);
}

}  // namespace
}  // namespace ftrepair
