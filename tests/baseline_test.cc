#include <gtest/gtest.h>

#include "baseline/equivalence.h"
#include "baseline/llunatic.h"
#include "baseline/nadeef.h"
#include "baseline/urm.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;

// A table with one LHS class holding a 4-vs-1 RHS conflict plus an
// unrelated clean class.
Table MajorityTable() {
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  auto add = [&t](const char* k, const char* v) {
    (void)t.AppendRow({Value(k), Value(v)});
  };
  for (int i = 0; i < 4; ++i) add("zip1", "Boston");
  add("zip1", "Chicago");
  add("zip2", "Denver");
  return t;
}

TEST(EquivalenceTest, BuildsClassesWithRhsSplit) {
  Table t = MajorityTable();
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  std::vector<LhsClass> classes = BuildLhsClasses(t, fd);
  ASSERT_EQ(classes.size(), 2u);
  const LhsClass& zip1 = classes[0];
  EXPECT_TRUE(zip1.conflicted());
  ASSERT_EQ(zip1.rhs_values.size(), 2u);
  EXPECT_FALSE(classes[1].conflicted());
  size_t majority = MajorityRhs(zip1);
  EXPECT_EQ(zip1.rhs_values[majority], (std::vector<Value>{Value("Boston")}));
}

TEST(EquivalenceTest, MajorityTieBreaksLexicographically) {
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  (void)t.AppendRow({Value("k"), Value("bbb")});
  (void)t.AppendRow({Value("k"), Value("aaa")});
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  std::vector<LhsClass> classes = BuildLhsClasses(t, fd);
  ASSERT_EQ(classes.size(), 1u);
  size_t majority = MajorityRhs(classes[0]);
  EXPECT_EQ(classes[0].rhs_values[majority],
            (std::vector<Value>{Value("aaa")}));
}

TEST(NadeefTest, RepairsRhsToMajority) {
  Table t = MajorityTable();
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  RepairResult result = std::move(NadeefRepair(t, {fd})).ValueOrDie();
  EXPECT_EQ(result.repaired.cell(4, 1), Value("Boston"));
  EXPECT_EQ(result.repaired.cell(5, 1), Value("Denver"));  // untouched
  EXPECT_EQ(result.stats.cells_changed, 1);
}

TEST(NadeefTest, SinglePassLeavesLhsErrors) {
  // The typo'd Education in t6 ("Masers") forms its own LHS class for
  // phi1, so NADEEF cannot see it.
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  RepairResult result = std::move(NadeefRepair(t, fds)).ValueOrDie();
  EXPECT_EQ(result.repaired.cell(5, 1), Value("Masers"));
}

TEST(NadeefTest, MultiPassCascades) {
  // With a chain a->b, b->c a second pass can fix a b-error's
  // consequences on c groups; at minimum more passes never undo work.
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  NadeefOptions more;
  more.max_passes = 5;
  RepairResult one = std::move(NadeefRepair(t, fds)).ValueOrDie();
  RepairResult many = std::move(NadeefRepair(t, fds, more)).ValueOrDie();
  EXPECT_GE(many.stats.cells_changed, one.stats.cells_changed);
}

TEST(UrmTest, MovesDeviantToNearestCore) {
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  for (int i = 0; i < 5; ++i) {
    (void)t.AppendRow({Value("aaaaaa"), Value("right")});
  }
  (void)t.AppendRow({Value("aaaaab"), Value("right")});  // deviant typo
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  RepairResult result = std::move(UrmRepair(t, {fd})).ValueOrDie();
  EXPECT_EQ(result.repaired.cell(5, 0), Value("aaaaaa"));
}

TEST(UrmTest, DescriptionLengthTestBlocksExpensiveMoves) {
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  for (int i = 0; i < 5; ++i) {
    (void)t.AppendRow({Value("aaaaaa"), Value("right")});
  }
  (void)t.AppendRow({Value("zzzzzz"), Value("other")});  // far deviant
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  RepairResult result = std::move(UrmRepair(t, {fd})).ValueOrDie();
  // Changing both attributes entirely exceeds max_change_ratio: no touch.
  EXPECT_EQ(result.repaired.cell(5, 0), Value("zzzzzz"));
  EXPECT_EQ(result.repaired.cell(5, 1), Value("other"));
}

TEST(UrmTest, SameDeviantPatternRepairedIdentically) {
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  for (int i = 0; i < 5; ++i) {
    (void)t.AppendRow({Value("aaaaaa"), Value("right")});
  }
  (void)t.AppendRow({Value("aaaaab"), Value("right")});
  (void)t.AppendRow({Value("aaaaab"), Value("right")});
  UrmOptions options;
  options.core_frequency = 3;
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  RepairResult result = std::move(UrmRepair(t, {fd}, options)).ValueOrDie();
  EXPECT_EQ(result.repaired.cell(5, 0), result.repaired.cell(6, 0));
  EXPECT_EQ(result.repaired.cell(5, 0), Value("aaaaaa"));
}

TEST(LlunaticTest, DominantClassRepairsToWinner) {
  Table t = MajorityTable();  // 4-vs-1: dominance 0.8 >= 0.6
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  RepairResult result = std::move(LlunaticRepair(t, {fd})).ValueOrDie();
  EXPECT_EQ(result.repaired.cell(4, 1), Value("Boston"));
}

TEST(LlunaticTest, NonDominantClassGetsLlun) {
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  (void)t.AppendRow({Value("k"), Value("a")});
  (void)t.AppendRow({Value("k"), Value("b")});
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  RepairResult result = std::move(LlunaticRepair(t, {fd})).ValueOrDie();
  // 1-vs-1: no dominance; the loser cell becomes a llun variable.
  int lluns = 0;
  for (int r = 0; r < 2; ++r) {
    if (IsLlun(result.repaired.cell(r, 1))) ++lluns;
  }
  EXPECT_EQ(lluns, 1);
}

TEST(LlunaticTest, LlunMarkerIdentity) {
  EXPECT_TRUE(IsLlun(LlunValue()));
  EXPECT_FALSE(IsLlun(Value("x")));
  EXPECT_FALSE(IsLlun(Value()));
}

TEST(BaselineTest, AllBaselinesDeterministic) {
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  auto run_twice_same = [&](auto&& fn) {
    RepairResult a = std::move(fn()).ValueOrDie();
    RepairResult b = std::move(fn()).ValueOrDie();
    ASSERT_EQ(a.repaired.num_rows(), b.repaired.num_rows());
    for (int r = 0; r < a.repaired.num_rows(); ++r) {
      for (int c = 0; c < a.repaired.num_columns(); ++c) {
        ASSERT_EQ(a.repaired.cell(r, c), b.repaired.cell(r, c));
      }
    }
  };
  run_twice_same([&] { return NadeefRepair(t, fds); });
  run_twice_same([&] { return UrmRepair(t, fds); });
  run_twice_same([&] { return LlunaticRepair(t, fds); });
}

TEST(BaselineTest, BadFDsRejected) {
  Table t = CitizensDirty();
  FD bad = std::move(FD::Make({0}, {42})).ValueOrDie();
  EXPECT_FALSE(NadeefRepair(t, {bad}).ok());
  EXPECT_FALSE(UrmRepair(t, {bad}).ok());
  EXPECT_FALSE(LlunaticRepair(t, {bad}).ok());
}

}  // namespace
}  // namespace ftrepair
