#include <gtest/gtest.h>

#include "constraint/fd.h"
#include "constraint/fd_graph.h"
#include "constraint/fd_parser.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensSchema;

TEST(FDTest, MakeValidates) {
  EXPECT_TRUE(FD::Make({0}, {1}).ok());
  EXPECT_TRUE(FD::Make({0, 2}, {1, 3}).ok());
  EXPECT_FALSE(FD::Make({}, {1}).ok());
  EXPECT_FALSE(FD::Make({0}, {}).ok());
  EXPECT_FALSE(FD::Make({0, 0}, {1}).ok());   // duplicate LHS
  EXPECT_FALSE(FD::Make({0}, {1, 1}).ok());   // duplicate RHS
  EXPECT_FALSE(FD::Make({0}, {0}).ok());      // LHS/RHS overlap
  EXPECT_FALSE(FD::Make({-1}, {1}).ok());
}

TEST(FDTest, AttrsAreLhsThenRhs) {
  FD fd = std::move(FD::Make({3, 4}, {5}, "phi3")).ValueOrDie();
  EXPECT_EQ(fd.attrs(), (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(fd.lhs_size(), 2);
  EXPECT_EQ(fd.rhs_size(), 1);
  EXPECT_EQ(fd.num_attrs(), 3);
  EXPECT_EQ(fd.AttrPosition(4), 1);
  EXPECT_EQ(fd.AttrPosition(5), 2);
  EXPECT_EQ(fd.AttrPosition(9), -1);
  EXPECT_TRUE(fd.IsLhsColumn(3));
  EXPECT_FALSE(fd.IsLhsColumn(5));
  EXPECT_TRUE(fd.UsesColumn(5));
}

TEST(FDTest, SharedColumnsAndOverlap) {
  FD a = std::move(FD::Make({1}, {2})).ValueOrDie();
  FD b = std::move(FD::Make({3}, {4})).ValueOrDie();
  FD c = std::move(FD::Make({2}, {5})).ValueOrDie();
  EXPECT_FALSE(a.Overlaps(b));
  EXPECT_TRUE(a.Overlaps(c));
  EXPECT_EQ(a.SharedColumns(c), (std::vector<int>{2}));
}

TEST(FDTest, ToStringUsesColumnNames) {
  Schema schema = CitizensSchema();
  FD fd = std::move(FD::Make({3, 4}, {5}, "phi3")).ValueOrDie();
  EXPECT_EQ(fd.ToString(schema), "phi3: [City, Street] -> [District]");
}

TEST(FDParserTest, ParsesNamedAndUnnamed) {
  Schema schema = CitizensSchema();
  FD named = std::move(ParseFD("phi2: City -> State", schema)).ValueOrDie();
  EXPECT_EQ(named.name(), "phi2");
  EXPECT_EQ(named.lhs(), (std::vector<int>{3}));
  EXPECT_EQ(named.rhs(), (std::vector<int>{6}));

  FD unnamed = std::move(ParseFD("City, Street -> District", schema)).ValueOrDie();
  EXPECT_TRUE(unnamed.name().empty());
  EXPECT_EQ(unnamed.lhs(), (std::vector<int>{3, 4}));
}

TEST(FDParserTest, RejectsBadInput) {
  Schema schema = CitizensSchema();
  EXPECT_FALSE(ParseFD("City State", schema).ok());       // no arrow
  EXPECT_FALSE(ParseFD("Nope -> State", schema).ok());    // unknown column
  EXPECT_FALSE(ParseFD("City -> ", schema).ok());         // empty RHS
  EXPECT_FALSE(ParseFD(" -> State", schema).ok());        // empty LHS
  EXPECT_FALSE(ParseFD("City,,Street -> State", schema).ok());
}

TEST(FDParserTest, ConfidenceParsesAndRoundTrips) {
  Schema schema = CitizensSchema();
  FD soft =
      std::move(ParseFD("zip2city: City -> State @ 0.9", schema)).ValueOrDie();
  EXPECT_DOUBLE_EQ(soft.confidence(), 0.9);
  // ToSpec renders the soft form back; re-parsing reproduces the FD.
  std::string spec = soft.ToSpec(schema);
  EXPECT_NE(spec.find("@ 0.9"), std::string::npos) << spec;
  FD reparsed = std::move(ParseFD(spec, schema)).ValueOrDie();
  EXPECT_DOUBLE_EQ(reparsed.confidence(), 0.9);
  EXPECT_EQ(reparsed.lhs(), soft.lhs());
  EXPECT_EQ(reparsed.rhs(), soft.rhs());
  EXPECT_EQ(reparsed.name(), soft.name());

  // Hard FDs (the default, confidence 1) render without the suffix.
  FD hard = std::move(ParseFD("phi2: City -> State", schema)).ValueOrDie();
  EXPECT_DOUBLE_EQ(hard.confidence(), 1.0);
  EXPECT_EQ(hard.ToSpec(schema).find('@'), std::string::npos);
  EXPECT_DOUBLE_EQ(
      std::move(ParseFD("City -> State @ 1", schema)).ValueOrDie()
          .confidence(),
      1.0);
}

TEST(FDParserTest, RejectsBadConfidence) {
  Schema schema = CitizensSchema();
  EXPECT_FALSE(ParseFD("City -> State @ 0", schema).ok());
  EXPECT_FALSE(ParseFD("City -> State @ -0.5", schema).ok());
  EXPECT_FALSE(ParseFD("City -> State @ 1.5", schema).ok());
  EXPECT_FALSE(ParseFD("City -> State @ abc", schema).ok());
  EXPECT_FALSE(ParseFD("City -> State @", schema).ok());
  EXPECT_FALSE(FD::Make({0}, {1}, "phi", 0.0).ok());
  EXPECT_FALSE(FD::Make({0}, {1}, "phi", 2.0).ok());
  EXPECT_TRUE(FD::Make({0}, {1}, "phi", 0.5).ok());
}

TEST(FDParserTest, ParsesListSkippingCommentsAndBlanks) {
  Schema schema = CitizensSchema();
  auto fds = std::move(ParseFDList("# comment\n\nphi1: Education -> Level\n"
                                   "phi2: City -> State   # inline note\n",
                                   schema))
                 .ValueOrDie();
  ASSERT_EQ(fds.size(), 2u);
  EXPECT_EQ(fds[0].name(), "phi1");
  EXPECT_EQ(fds[1].name(), "phi2");
}

TEST(FDGraphTest, PaperComponentStructure) {
  // phi1 (Education->Level) is independent; phi2 and phi3 share City.
  Schema schema = CitizensSchema();
  std::vector<FD> fds = testing_util::CitizensFDs(schema);
  FDGraph graph(fds);
  EXPECT_EQ(graph.num_fds(), 3);
  EXPECT_FALSE(graph.Connected(0, 1));
  EXPECT_FALSE(graph.Connected(0, 2));
  EXPECT_TRUE(graph.Connected(1, 2));
  ASSERT_EQ(graph.Components().size(), 2u);
  EXPECT_EQ(graph.Components()[0], (std::vector<int>{0}));
  EXPECT_EQ(graph.Components()[1], (std::vector<int>{1, 2}));
}

TEST(FDGraphTest, TransitiveConnectivity) {
  // a-b share col 1, b-c share col 3; a and c land in one component.
  std::vector<FD> fds;
  fds.push_back(std::move(FD::Make({0}, {1})).ValueOrDie());
  fds.push_back(std::move(FD::Make({1}, {3})).ValueOrDie());
  fds.push_back(std::move(FD::Make({3}, {4})).ValueOrDie());
  fds.push_back(std::move(FD::Make({7}, {8})).ValueOrDie());
  FDGraph graph(fds);
  ASSERT_EQ(graph.Components().size(), 2u);
  EXPECT_EQ(graph.Components()[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(graph.Components()[1], (std::vector<int>{3}));
  EXPECT_FALSE(graph.Connected(0, 2));  // not directly adjacent
}

TEST(FDGraphTest, EmptyGraph) {
  FDGraph graph({});
  EXPECT_EQ(graph.num_fds(), 0);
  EXPECT_TRUE(graph.Components().empty());
}

}  // namespace
}  // namespace ftrepair
