#include <sstream>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/report.h"
#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"

namespace ftrepair {
namespace {

class ExperimentSystemTest
    : public ::testing::TestWithParam<SystemUnderTest> {};

TEST_P(ExperimentSystemTest, RunsEndToEndOnHosp) {
  Dataset ds =
      std::move(GenerateHosp({.num_rows = 400, .seed = 7})).ValueOrDie();
  ExperimentConfig config;
  config.num_rows = 400;
  config.noise.error_rate = 0.04;
  config.noise.seed = 5;
  config.repair.compute_violation_stats = false;
  auto row = RunExperiment(ds, GetParam(), config);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_GE(row.value().quality.precision, 0.0);
  EXPECT_LE(row.value().quality.precision, 1.0);
  EXPECT_GE(row.value().quality.recall, 0.0);
  EXPECT_LE(row.value().quality.recall, 1.0);
  EXPECT_GT(row.value().quality.errors, 0.0);
  EXPECT_GE(row.value().seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ExperimentSystemTest,
    ::testing::Values(SystemUnderTest::kExpansion, SystemUnderTest::kGreedy,
                      SystemUnderTest::kAppro, SystemUnderTest::kNadeef,
                      SystemUnderTest::kUrm, SystemUnderTest::kLlunatic),
    [](const ::testing::TestParamInfo<SystemUnderTest>& info) {
      return SystemName(info.param);
    });

TEST(ExperimentTest, SystemNames) {
  EXPECT_STREQ(SystemName(SystemUnderTest::kExpansion), "Expansion");
  EXPECT_STREQ(SystemName(SystemUnderTest::kGreedy), "Greedy");
  EXPECT_STREQ(SystemName(SystemUnderTest::kAppro), "Appro");
  EXPECT_STREQ(SystemName(SystemUnderTest::kNadeef), "Nadeef");
  EXPECT_STREQ(SystemName(SystemUnderTest::kUrm), "URM");
  EXPECT_STREQ(SystemName(SystemUnderTest::kLlunatic), "Llunatic");
}

TEST(ExperimentTest, NumFdsSliceRestrictsConstraints) {
  Dataset ds =
      std::move(GenerateTax({.num_rows = 300, .seed = 7})).ValueOrDie();
  ExperimentConfig config;
  config.num_rows = 300;
  config.num_fds = 1;  // only x1
  config.noise.error_rate = 0.04;
  config.repair.compute_violation_stats = false;
  auto row = RunExperiment(ds, SystemUnderTest::kGreedy, config);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  // With one FD fewer errors are even detectable; recall below 1.
  EXPECT_LT(row.value().quality.recall, 1.0);
}

TEST(ExperimentTest, DeterministicGivenSeed) {
  Dataset ds =
      std::move(GenerateTax({.num_rows = 300, .seed = 7})).ValueOrDie();
  ExperimentConfig config;
  config.num_rows = 300;
  config.noise.error_rate = 0.04;
  config.noise.seed = 13;
  config.repair.compute_violation_stats = false;
  auto a = RunExperiment(ds, SystemUnderTest::kGreedy, config);
  auto b = RunExperiment(ds, SystemUnderTest::kGreedy, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().quality.precision, b.value().quality.precision);
  EXPECT_DOUBLE_EQ(a.value().quality.recall, b.value().quality.recall);
}

TEST(ReportTest, PrintsAlignedTable) {
  Report report("Figure 0: demo");
  report.SetHeader({"N", "Greedy", "Nadeef"});
  report.AddRow({"1000", Report::Num(0.95), Report::Num(0.5)});
  report.AddRow({"20000", Report::Num(1.0, 2), "n/a"});
  std::ostringstream os;
  report.Print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("== Figure 0: demo =="), std::string::npos);
  EXPECT_NE(text.find("0.950"), std::string::npos);
  EXPECT_NE(text.find("1.00"), std::string::npos);
  EXPECT_NE(text.find("20000"), std::string::npos);
  // Header columns padded at least as wide as the widest cell.
  EXPECT_NE(text.find("N      "), std::string::npos);
}

TEST(ReportTest, NumFormatsDecimals) {
  EXPECT_EQ(Report::Num(0.5), "0.500");
  EXPECT_EQ(Report::Num(1.0 / 3.0, 2), "0.33");
  EXPECT_EQ(Report::Num(12, 0), "12");
}

}  // namespace
}  // namespace ftrepair
