// Randomized CSV round-trip suite: tables with adversarial cell
// contents (commas, quotes, newlines, unicode bytes, numeric strings)
// must serialize and re-parse losslessly.

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"

namespace ftrepair {
namespace {

std::string RandomCell(Rng* rng) {
  static const char* kAtoms[] = {"a",  "B",    ",",  "\"", "\n", "\r\n",
                                 " ",  "ü",    "'s", "x,y", "{}", "#",
                                 "->", "0.5",  "-3", "NaNish", "__LLUN__"};
  std::string out;
  size_t pieces = rng->Index(6);
  for (size_t i = 0; i < pieces; ++i) {
    out += kAtoms[rng->Index(sizeof(kAtoms) / sizeof(kAtoms[0]))];
  }
  return out;
}

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, RoundTripsAdversarialStringTables) {
  Rng rng(GetParam() * 1315423911ULL + 3);
  int cols = 1 + static_cast<int>(rng.Index(5));
  std::vector<Column> columns;
  for (int c = 0; c < cols; ++c) {
    // Header names must be non-empty and trim-stable.
    columns.push_back(Column{"col" + std::to_string(c), ValueType::kString});
  }
  Table table{Schema(columns)};
  int rows = static_cast<int>(rng.Index(30));
  for (int r = 0; r < rows; ++r) {
    Row row;
    for (int c = 0; c < cols; ++c) {
      std::string cell = RandomCell(&rng);
      // The reader trims unquoted whitespace and maps "" to null; to
      // assert exact round-trips, normalize the generated cell the same
      // way a Value would parse it.
      Value v = Value::Parse(cell, ValueType::kString);
      row.push_back(v);
    }
    ASSERT_TRUE(table.AppendRow(std::move(row)).ok());
  }

  std::string text = WriteCsvString(table);
  auto parsed = ReadCsvString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  const Table& round = parsed.value();
  ASSERT_EQ(round.num_rows(), table.num_rows());
  ASSERT_EQ(round.num_columns(), table.num_columns());
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Type inference may re-parse numeric-looking strings as numbers;
      // compare the renderings, which is the CSV-level contract.
      EXPECT_EQ(round.cell(r, c).ToString(), table.cell(r, c).ToString())
          << "seed " << GetParam() << " r=" << r << " c=" << c;
    }
  }
}

TEST_P(CsvFuzzTest, NumericColumnsSurviveRoundTrip) {
  Rng rng(GetParam() * 2654435761ULL + 7);
  Table table(Schema({{"n", ValueType::kNumber}, {"s", ValueType::kString}}));
  int rows = 1 + static_cast<int>(rng.Index(20));
  for (int r = 0; r < rows; ++r) {
    double v = static_cast<double>(rng.UniformInt(-100000, 100000));
    ASSERT_TRUE(
        table.AppendRow({Value(v), Value("s" + std::to_string(r))}).ok());
  }
  Table round =
      std::move(ReadCsvString(WriteCsvString(table))).ValueOrDie();
  ASSERT_EQ(round.schema().column(0).type, ValueType::kNumber);
  for (int r = 0; r < rows; ++r) {
    EXPECT_EQ(round.cell(r, 0), table.cell(r, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace ftrepair
