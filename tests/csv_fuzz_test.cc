// Randomized CSV round-trip suite: tables with adversarial cell
// contents (commas, quotes, newlines, unicode bytes, numeric strings)
// must serialize and re-parse losslessly. The malformed-input suite
// below drives ragged rows, unterminated quotes, NUL bytes and CRLF
// endings through every BadRowPolicy.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"

namespace ftrepair {
namespace {

std::string RandomCell(Rng* rng) {
  static const char* kAtoms[] = {"a",  "B",    ",",  "\"", "\n", "\r\n",
                                 " ",  "ü",    "'s", "x,y", "{}", "#",
                                 "->", "0.5",  "-3", "NaNish", "__LLUN__"};
  std::string out;
  size_t pieces = rng->Index(6);
  for (size_t i = 0; i < pieces; ++i) {
    out += kAtoms[rng->Index(sizeof(kAtoms) / sizeof(kAtoms[0]))];
  }
  return out;
}

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, RoundTripsAdversarialStringTables) {
  Rng rng(GetParam() * 1315423911ULL + 3);
  int cols = 1 + static_cast<int>(rng.Index(5));
  std::vector<Column> columns;
  for (int c = 0; c < cols; ++c) {
    // Header names must be non-empty and trim-stable.
    columns.push_back(Column{"col" + std::to_string(c), ValueType::kString});
  }
  Table table{Schema(columns)};
  int rows = static_cast<int>(rng.Index(30));
  for (int r = 0; r < rows; ++r) {
    Row row;
    for (int c = 0; c < cols; ++c) {
      std::string cell = RandomCell(&rng);
      // The reader trims unquoted whitespace and maps "" to null; to
      // assert exact round-trips, normalize the generated cell the same
      // way a Value would parse it.
      Value v = Value::Parse(cell, ValueType::kString);
      row.push_back(v);
    }
    ASSERT_TRUE(table.AppendRow(std::move(row)).ok());
  }

  std::string text = WriteCsvString(table);
  auto parsed = ReadCsvString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  const Table& round = parsed.value();
  ASSERT_EQ(round.num_rows(), table.num_rows());
  ASSERT_EQ(round.num_columns(), table.num_columns());
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Type inference may re-parse numeric-looking strings as numbers;
      // compare the renderings, which is the CSV-level contract.
      EXPECT_EQ(round.cell(r, c).ToString(), table.cell(r, c).ToString())
          << "seed " << GetParam() << " r=" << r << " c=" << c;
    }
  }
}

TEST_P(CsvFuzzTest, NumericColumnsSurviveRoundTrip) {
  Rng rng(GetParam() * 2654435761ULL + 7);
  Table table(Schema({{"n", ValueType::kNumber}, {"s", ValueType::kString}}));
  int rows = 1 + static_cast<int>(rng.Index(20));
  for (int r = 0; r < rows; ++r) {
    double v = static_cast<double>(rng.UniformInt(-100000, 100000));
    ASSERT_TRUE(
        table.AppendRow({Value(v), Value("s" + std::to_string(r))}).ok());
  }
  Table round =
      std::move(ReadCsvString(WriteCsvString(table))).ValueOrDie();
  ASSERT_EQ(round.schema().column(0).type, ValueType::kNumber);
  for (int r = 0; r < rows; ++r) {
    EXPECT_EQ(round.cell(r, 0), table.cell(r, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Range<uint64_t>(1, 17));

// --- Malformed-input suite: each defect under all three policies ------

CsvOptions WithPolicy(BadRowPolicy policy) {
  CsvOptions options;
  options.bad_rows = policy;
  return options;
}

TEST(CsvMalformedTest, RaggedRowsUnderAllPolicies) {
  const std::string text = "a,b,c\n1,2,3\nshort,row\n4,5,6,7\nx,y,z\n";

  auto strict = ReadCsvString(text, WithPolicy(BadRowPolicy::kStrict));
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("expected 3"), std::string::npos)
      << strict.status().ToString();

  CsvReadReport report;
  auto skipped =
      ReadCsvString(text, WithPolicy(BadRowPolicy::kSkipBadRows), &report);
  ASSERT_TRUE(skipped.ok()) << skipped.status().ToString();
  EXPECT_EQ(skipped.value().num_rows(), 2);
  EXPECT_EQ(report.rows_kept, 2u);
  EXPECT_EQ(report.rows_dropped, 2u);
  ASSERT_EQ(report.errors.size(), 2u);
  EXPECT_EQ(report.errors[0].kind, RowErrorKind::kRagged);
  EXPECT_EQ(report.errors[0].row, 1u);
  EXPECT_EQ(report.errors[1].row, 2u);

  auto padded =
      ReadCsvString(text, WithPolicy(BadRowPolicy::kPadRagged), &report);
  ASSERT_TRUE(padded.ok()) << padded.status().ToString();
  EXPECT_EQ(padded.value().num_rows(), 4);
  EXPECT_EQ(report.rows_dropped, 0u);
  EXPECT_EQ(report.rows_padded, 2u);
  EXPECT_EQ(report.rows_kept, 4u);
  // Short row padded with nulls, long row truncated.
  EXPECT_TRUE(padded.value().cell(1, 2).is_null());
  EXPECT_EQ(padded.value().cell(2, 2).ToString(), "6");
}

TEST(CsvMalformedTest, UnterminatedQuoteUnderAllPolicies) {
  const std::string text = "a,b\n1,2\n3,\"never closed";

  auto strict = ReadCsvString(text, WithPolicy(BadRowPolicy::kStrict));
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("unterminated"),
            std::string::npos);

  CsvReadReport report;
  auto skipped =
      ReadCsvString(text, WithPolicy(BadRowPolicy::kSkipBadRows), &report);
  ASSERT_TRUE(skipped.ok()) << skipped.status().ToString();
  EXPECT_EQ(skipped.value().num_rows(), 1);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].kind, RowErrorKind::kUnterminatedQuote);
  EXPECT_EQ(report.errors[0].row, 1u);

  auto padded =
      ReadCsvString(text, WithPolicy(BadRowPolicy::kPadRagged), &report);
  ASSERT_TRUE(padded.ok()) << padded.status().ToString();
  EXPECT_EQ(padded.value().num_rows(), 2);
  EXPECT_EQ(padded.value().cell(1, 1).ToString(), "never closed");
  EXPECT_EQ(report.rows_padded, 1u);
}

TEST(CsvMalformedTest, EmbeddedNulUnderAllPolicies) {
  std::string text = "a,b\nok,row\n";
  text += "nul";
  text += '\0';
  text += "here,x\n";

  auto strict = ReadCsvString(text, WithPolicy(BadRowPolicy::kStrict));
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("NUL"), std::string::npos);

  CsvReadReport report;
  auto skipped =
      ReadCsvString(text, WithPolicy(BadRowPolicy::kSkipBadRows), &report);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped.value().num_rows(), 1);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].kind, RowErrorKind::kEmbeddedNul);

  auto padded =
      ReadCsvString(text, WithPolicy(BadRowPolicy::kPadRagged), &report);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded.value().num_rows(), 2);
  // NULs are stripped from the salvaged row.
  EXPECT_EQ(padded.value().cell(1, 0).ToString(), "nulhere");
}

TEST(CsvMalformedTest, NulInHeaderOnlySalvageableByPad) {
  std::string text = "a";
  text += '\0';
  text += "x,b\n1,2\n";
  EXPECT_FALSE(ReadCsvString(text, WithPolicy(BadRowPolicy::kStrict)).ok());
  EXPECT_FALSE(
      ReadCsvString(text, WithPolicy(BadRowPolicy::kSkipBadRows)).ok());
  auto padded = ReadCsvString(text, WithPolicy(BadRowPolicy::kPadRagged));
  ASSERT_TRUE(padded.ok()) << padded.status().ToString();
  EXPECT_EQ(padded.value().schema().column(0).name, "ax");
  EXPECT_EQ(padded.value().num_rows(), 1);
}

TEST(CsvMalformedTest, CrlfEndingsAreNormalizedEverywhere) {
  const std::string text = "a,b\r\n1,2\r\n3,4\r\n";
  for (BadRowPolicy policy :
       {BadRowPolicy::kStrict, BadRowPolicy::kSkipBadRows,
        BadRowPolicy::kPadRagged}) {
    CsvReadReport report;
    auto parsed = ReadCsvString(text, WithPolicy(policy), &report);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed.value().num_rows(), 2);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.rows_kept, 2u);
  }
}

TEST(CsvMalformedTest, InjectedFaultSeamDrivesEveryPolicy) {
  const std::string text = "a,b\nr0,x\nr1,y\nr2,z\n";
  setenv("FTREPAIR_FAULT_CSV_BAD_ROW", "1", 1);
  auto strict = ReadCsvString(text, WithPolicy(BadRowPolicy::kStrict));
  EXPECT_FALSE(strict.ok());

  CsvReadReport report;
  auto skipped =
      ReadCsvString(text, WithPolicy(BadRowPolicy::kSkipBadRows), &report);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped.value().num_rows(), 2);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].kind, RowErrorKind::kInjectedFault);
  EXPECT_EQ(report.errors[0].row, 1u);

  auto padded =
      ReadCsvString(text, WithPolicy(BadRowPolicy::kPadRagged), &report);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded.value().num_rows(), 3);
  EXPECT_EQ(report.rows_padded, 1u);
  unsetenv("FTREPAIR_FAULT_CSV_BAD_ROW");

  // Seam off: clean parse again.
  auto clean = ReadCsvString(text, WithPolicy(BadRowPolicy::kStrict));
  EXPECT_TRUE(clean.ok());
}

// Randomized malformed-text fuzz: mutate valid CSV with structural
// defects; non-strict policies must never fail (and never crash), and
// the report tallies must be consistent with the parsed table.
TEST_P(CsvFuzzTest, MalformedTextNeverCrashesNonStrictPolicies) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 1);
  std::string text = "h0,h1,h2\n";
  size_t rows = 1 + rng.Index(20);
  for (size_t r = 0; r < rows; ++r) {
    size_t fields = 1 + rng.Index(5);  // often ragged (width 3 is valid)
    for (size_t f = 0; f < fields; ++f) {
      if (f > 0) text += ',';
      text += RandomCell(&rng);
      if (rng.Index(12) == 0) text += '\0';
    }
    text += rng.Index(4) == 0 ? "\r\n" : "\n";
  }
  if (rng.Index(3) == 0) text += "tail,\"unterminated";

  for (BadRowPolicy policy :
       {BadRowPolicy::kSkipBadRows, BadRowPolicy::kPadRagged}) {
    CsvReadReport report;
    auto parsed = ReadCsvString(text, WithPolicy(policy), &report);
    ASSERT_TRUE(parsed.ok())
        << parsed.status().ToString() << " seed " << GetParam();
    EXPECT_EQ(static_cast<size_t>(parsed.value().num_rows()),
              report.rows_kept);
    if (policy == BadRowPolicy::kSkipBadRows) {
      EXPECT_EQ(report.rows_padded, 0u);
    } else {
      EXPECT_EQ(report.rows_dropped, 0u);
    }
    EXPECT_EQ(parsed.value().num_columns(), 3);
  }
}

}  // namespace
}  // namespace ftrepair
