// Distance-kernel equivalence suite.
//
// The edit-distance kernels (scalar banded DP, Myers bit-parallel
// one-word and multi-word) are interchangeable speed layers: every
// kernel must return the same integer on every input, including the
// BoundedEditDistance `cap + 1` sentinel. The fuzz harness here drives
// random byte strings — high bytes and embedded NULs included, so
// signed-char PEQ indexing can never land — across lengths straddling
// the one-word/multi-word boundary {0, 1, 63, 64, 65, 128} and caps
// {0, 1, len-1, len, huge}, asserting
//
//   BoundedEditDistance(a, b, cap) == min(EditDistance(a, b), cap + 1)
//
// for every kernel and scalar == bitparallel throughout. The repair
// grid then fingerprints entire RepairResults across
// {kernel} x {solver} x {threads} on Citizens/HOSP/Tax/random, the
// same bit-identity oracle the columnar suite uses. The SIMD screen
// of the blocking index gets the same treatment against its scalar
// reference.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "constraint/fd_parser.h"
#include "core/repairer.h"
#include "data/csv.h"
#include "common/strings.h"
#include "detect/block_index.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"
#include "metric/distance.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::RandomFDTable;

constexpr size_t kHugeCap = std::numeric_limits<size_t>::max();

// Restores the process-wide kernel setting on scope exit so a failing
// assertion cannot leak a fixed kernel into later tests.
class ScopedKernel {
 public:
  explicit ScopedKernel(DistanceKernel kernel) { SetDistanceKernel(kernel); }
  ~ScopedKernel() { SetDistanceKernel(DistanceKernel::kAuto); }
};

std::string RandomBytes(Rng* rng, size_t len, bool full_alphabet) {
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (full_alphabet) {
      // Full byte range: exercises high bytes (>= 0x80) and NULs.
      s.push_back(static_cast<char>(rng->Uniform(256)));
    } else {
      // Tiny alphabet: forces interesting match structure.
      s.push_back(static_cast<char>('a' + rng->Uniform(3)));
    }
  }
  return s;
}

// All four kernel entry points on one (a, b, cap) triple.
void ExpectKernelsAgree(const std::string& a, const std::string& b,
                        size_t cap) {
  size_t exact = EditDistanceScalar(a, b);
  ASSERT_EQ(EditDistanceBitParallel(a, b), exact)
      << "len_a=" << a.size() << " len_b=" << b.size();
  size_t expected = exact <= cap ? exact : cap + 1;
  ASSERT_EQ(BoundedEditDistanceScalar(a, b, cap), expected)
      << "len_a=" << a.size() << " len_b=" << b.size() << " cap=" << cap;
  ASSERT_EQ(BoundedEditDistanceBitParallel(a, b, cap), expected)
      << "len_a=" << a.size() << " len_b=" << b.size() << " cap=" << cap;
}

class DistanceKernelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistanceKernelFuzzTest, BoundedMatchesMinOfExactForEveryKernel) {
  Rng rng(GetParam() * 7919 + 1);
  // Lengths straddling the one-word/multi-word boundary, plus deeper
  // multi-word shapes (128 -> 2 words, 193 -> 4, 300 -> 5).
  const size_t lengths[] = {0, 1, 2, 7, 31, 63, 64, 65, 66, 100, 128, 193, 300};
  for (size_t len_a : lengths) {
    for (int rep = 0; rep < 4; ++rep) {
      bool full = rep % 2 == 0;
      size_t len_b = rng.Uniform(static_cast<uint64_t>(len_a) + 4);
      std::string a = RandomBytes(&rng, len_a, full);
      std::string b = RandomBytes(&rng, len_b, full);
      // Correlated pair: mutate a few positions of `a` so small true
      // distances (where the cap semantics bite) actually occur.
      if (len_a > 0 && rep % 2 == 1) {
        b = a;
        for (int m = 0; m < 3 && !b.empty(); ++m) {
          b[rng.Index(b.size())] = static_cast<char>(rng.Uniform(256));
        }
      }
      size_t len = std::max(a.size(), b.size());
      std::vector<size_t> caps = {0, 1, len, len + 3, kHugeCap,
                                  rng.Uniform(static_cast<uint64_t>(len) + 2)};
      if (len > 0) caps.push_back(len - 1);
      for (size_t cap : caps) {
        ExpectKernelsAgree(a, b, cap);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceKernelFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

TEST(DistanceKernelTest, HighByteAndEmbeddedNulStrings) {
  // PEQ tables must index by unsigned char: these inputs make a
  // signed-char index negative (0xe9, 0xc3, 0xa9) or zero ('\0').
  std::string nul_a("a\0b", 3);
  std::string nul_b("a\0c", 3);
  std::string nul_run("\0\0\0", 3);
  struct Case {
    std::string a, b;
    size_t expected;
  };
  const Case cases[] = {
      {"caf\xc3\xa9", "cafe", 2},          // UTF-8 é vs e
      {"\xe9\xe9\xe9", "\xe9\xe9", 1},     // Latin-1 high bytes
      {"\x80\x81\x82", "\x80\x81\x82", 0},
      {"\xff", "\x7f", 1},                 // 0xff vs 0x7f collide mod 128
      {nul_a, nul_b, 1},
      {nul_run, "", 3},
      {std::string(70, '\xfe') + nul_a, std::string(70, '\xfe') + nul_b, 1},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(EditDistanceScalar(c.a, c.b), c.expected);
    EXPECT_EQ(EditDistanceBitParallel(c.a, c.b), c.expected);
    for (size_t cap : {size_t{0}, size_t{1}, size_t{4}, kHugeCap}) {
      size_t expected = c.expected <= cap ? c.expected : cap + 1;
      EXPECT_EQ(BoundedEditDistanceScalar(c.a, c.b, cap), expected);
      EXPECT_EQ(BoundedEditDistanceBitParallel(c.a, c.b, cap), expected);
    }
  }
}

TEST(DistanceKernelTest, CapSentinelSemantics) {
  // cap + 1 means "greater than cap" for every kernel; a cap at or
  // above max(len) can never clip, even at the huge end of size_t.
  EXPECT_EQ(BoundedEditDistanceScalar("kitten", "sitting", 2), size_t{3});
  EXPECT_EQ(BoundedEditDistanceBitParallel("kitten", "sitting", 2), size_t{3});
  EXPECT_EQ(BoundedEditDistanceScalar("kitten", "sitting", kHugeCap),
            size_t{3});
  EXPECT_EQ(BoundedEditDistanceBitParallel("kitten", "sitting", kHugeCap),
            size_t{3});
  EXPECT_EQ(BoundedEditDistanceScalar("abc", "xyz", 0), size_t{1});
  EXPECT_EQ(BoundedEditDistanceBitParallel("abc", "xyz", 0), size_t{1});
}

TEST(DistanceKernelTest, DispatchHonorsProcessSetting) {
  ASSERT_EQ(ConfiguredDistanceKernel(), DistanceKernel::kAuto);
  EXPECT_EQ(EffectiveDistanceKernel(), DistanceKernel::kBitParallel);
  {
    ScopedKernel guard(DistanceKernel::kScalar);
    EXPECT_EQ(EffectiveDistanceKernel(), DistanceKernel::kScalar);
    EXPECT_EQ(EditDistance("kitten", "sitting"), size_t{3});
  }
  {
    ScopedKernel guard(DistanceKernel::kBitParallel);
    EXPECT_EQ(EffectiveDistanceKernel(), DistanceKernel::kBitParallel);
    EXPECT_EQ(EditDistance("kitten", "sitting"), size_t{3});
    EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 1), size_t{2});
  }
  EXPECT_EQ(ConfiguredDistanceKernel(), DistanceKernel::kAuto);
}

TEST(DistanceKernelTest, NamesRoundTrip) {
  for (DistanceKernel k : {DistanceKernel::kAuto, DistanceKernel::kScalar,
                           DistanceKernel::kBitParallel}) {
    DistanceKernel parsed = DistanceKernel::kAuto;
    EXPECT_TRUE(ParseDistanceKernel(DistanceKernelName(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  DistanceKernel parsed = DistanceKernel::kAuto;
  EXPECT_FALSE(ParseDistanceKernel("simd", &parsed));
}

// ---- SIMD screen vs scalar reference --------------------------------

class SimdScreenTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimdScreenTest, MatchesScalarReference) {
  Rng rng(GetParam() * 104729 + 3);
  // Sizes crossing every vector width (4 and 8 lanes) plus ragged tails.
  const int sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 100, 257};
  for (int n : sizes) {
    std::vector<uint32_t> counts(static_cast<size_t>(n));
    uint32_t threshold = static_cast<uint32_t>(1 + rng.Uniform(6));
    for (uint32_t& c : counts) {
      // Cluster values tightly around the threshold so both compare
      // outcomes occur in every lane position.
      c = static_cast<uint32_t>(rng.Uniform(2 * threshold + 2));
    }
    if (n > 0) {
      // Pin extremes into random slots.
      counts[rng.Index(counts.size())] = 0;
      counts[rng.Index(counts.size())] =
          std::numeric_limits<uint32_t>::max();
    }
    std::vector<int> simd;
    std::vector<int> scalar;
    ScreenSharedCounts(counts.data(), n, threshold, &simd);
    ScreenSharedCountsScalar(counts.data(), n, threshold, &scalar);
    ASSERT_EQ(simd, scalar) << "n=" << n << " t=" << threshold
                            << " path=" << SimdScreenPathName();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdScreenTest,
                         ::testing::Range(uint64_t{1}, uint64_t{5}));

TEST(SimdScreenTest, ReportsAPathName) {
  const std::string name = SimdScreenPathName();
  EXPECT_TRUE(name == "avx2" || name == "sse4.2" || name == "neon" ||
              name == "scalar")
      << name;
}

// ---- Whole-pipeline bit identity across kernels ---------------------

std::string Fingerprint(const RepairResult& result) {
  std::string fp = WriteCsvString(result.repaired);
  fp += "|changes:";
  for (const CellChange& c : result.changes) {
    fp += std::to_string(c.row) + "," + std::to_string(c.col) + ":" +
          c.old_value.ToString() + "->" + c.new_value.ToString() + ";";
  }
  fp += "|cost:" + FormatDouble(result.stats.repair_cost);
  fp += "|cells:" + std::to_string(result.stats.cells_changed);
  fp += "|tuples:" + std::to_string(result.stats.tuples_changed);
  fp += "|before:" + std::to_string(result.stats.ft_violations_before);
  fp += "|after:" + std::to_string(result.stats.ft_violations_after);
  return fp;
}

// Runs {scalar, bitparallel} x {1, 2, 4, 8 threads} for one repair
// instance and asserts a single fingerprint.
void ExpectKernelInvariant(const Table& table, const std::vector<FD>& fds,
                           RepairOptions base) {
  std::string reference;
  for (DistanceKernel kernel :
       {DistanceKernel::kScalar, DistanceKernel::kBitParallel}) {
    ScopedKernel guard(kernel);
    for (int threads : {1, 2, 4, 8}) {
      RepairOptions options = base;
      options.threads = threads;
      auto result = Repairer(options).Repair(table, fds);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      std::string fp = Fingerprint(result.value());
      if (reference.empty()) {
        reference = fp;
      } else {
        ASSERT_EQ(fp, reference) << "kernel=" << DistanceKernelName(kernel)
                                 << " threads=" << threads;
      }
    }
  }
}

RepairOptions BaseOptions(RepairAlgorithm algorithm, double tau) {
  RepairOptions options;
  options.algorithm = algorithm;
  options.default_tau = tau;
  return options;
}

TEST(DistanceKernelDifferentialTest, CitizensAllSolvers) {
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kExact, RepairAlgorithm::kGreedy,
        RepairAlgorithm::kApproJoin}) {
    ExpectKernelInvariant(t, fds, BaseOptions(algorithm, 0.4));
  }
}

TEST(DistanceKernelDifferentialTest, RandomCorporaAllSolvers) {
  Table small = RandomFDTable(40, 3, 5, 10, /*seed=*/21);
  auto small_fds =
      std::move(ParseFDList("f1: c0 -> c1\nf2: c0 -> c2\n", small.schema()))
          .ValueOrDie();
  ExpectKernelInvariant(small, small_fds,
                        BaseOptions(RepairAlgorithm::kExact, 0.35));
  Table t = RandomFDTable(200, 4, 12, 30, /*seed=*/3);
  auto fds = std::move(ParseFDList("f1: c0 -> c1\nf2: c0 -> c2\nf3: c3 -> c1\n",
                                   t.schema()))
                 .ValueOrDie();
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kGreedy, RepairAlgorithm::kApproJoin}) {
    ExpectKernelInvariant(t, fds, BaseOptions(algorithm, 0.35));
  }
}

// Dirty slice of a generated dataset with its recommended weights.
Table DirtySlice(const Dataset& dataset, int rows) {
  NoiseOptions noise;
  noise.error_rate = 0.04;
  Table dirty =
      std::move(InjectErrors(dataset.clean, dataset.fds, noise, nullptr))
          .ValueOrDie();
  return dirty.Head(rows);
}

void ExpectKernelInvariantOnDataset(const Dataset& dataset, int rows,
                                    RepairAlgorithm algorithm) {
  RepairOptions base;
  base.algorithm = algorithm;
  base.w_l = dataset.recommended_w_l;
  base.w_r = dataset.recommended_w_r;
  base.tau_by_fd = dataset.recommended_tau;
  ExpectKernelInvariant(DirtySlice(dataset, rows), dataset.fds, base);
}

TEST(DistanceKernelDifferentialTest, HospAllSolvers) {
  Dataset hosp =
      std::move(GenerateHosp({.num_rows = 600, .seed = 7})).ValueOrDie();
  ExpectKernelInvariantOnDataset(hosp, 24, RepairAlgorithm::kExact);
  ExpectKernelInvariantOnDataset(hosp, 600, RepairAlgorithm::kGreedy);
  ExpectKernelInvariantOnDataset(hosp, 600, RepairAlgorithm::kApproJoin);
}

TEST(DistanceKernelDifferentialTest, TaxAllSolvers) {
  Dataset tax =
      std::move(GenerateTax({.num_rows = 500, .seed = 11})).ValueOrDie();
  ExpectKernelInvariantOnDataset(tax, 24, RepairAlgorithm::kExact);
  ExpectKernelInvariantOnDataset(tax, 500, RepairAlgorithm::kGreedy);
  ExpectKernelInvariantOnDataset(tax, 500, RepairAlgorithm::kApproJoin);
}

// ---- Jaccard whitespace fix: seed corpora are provably unaffected ---

// TokenJaccardDistance now splits on any whitespace instead of ' '
// alone. The repair delta on the seed corpora is *provably* zero:
// their cells contain no tab/newline/CR/FF/VT bytes, so the old and
// new tokenizers emit identical token sets on every cell. This test
// is that proof, kept green against generator drift.
TEST(DistanceKernelDifferentialTest, SeedCorporaHaveNoNonSpaceWhitespace) {
  auto scan = [](const Table& table, const std::string& label) {
    for (int r = 0; r < table.num_rows(); ++r) {
      for (int c = 0; c < table.num_columns(); ++c) {
        std::string s = table.cell(r, c).ToString();
        EXPECT_EQ(s.find_first_of("\t\n\r\f\v"), std::string::npos)
            << label << " cell(" << r << ", " << c << ")";
      }
    }
  };
  scan(CitizensDirty(), "citizens");
  Dataset hosp =
      std::move(GenerateHosp({.num_rows = 1000, .seed = 7})).ValueOrDie();
  scan(DirtySlice(hosp, 1000), "hosp");
  Dataset tax =
      std::move(GenerateTax({.num_rows = 1000, .seed = 11})).ValueOrDie();
  scan(DirtySlice(tax, 1000), "tax");
}

}  // namespace
}  // namespace ftrepair
