#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/lazy_targets.h"
#include "core/multi_common.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;

struct Example13 {
  Table table = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(table.schema());
  std::vector<TargetTree::LevelInput> inputs;
  std::vector<int> cols;

  Example13() {
    TargetTree::LevelInput phi2;
    phi2.fd = &fds[1];
    phi2.elements = {{Value("New York"), Value("NY")},
                     {Value("Boston"), Value("MA")}};
    TargetTree::LevelInput phi3;
    phi3.fd = &fds[2];
    phi3.elements = {
        {Value("New York"), Value("Main"), Value("Manhattan")},
        {Value("New York"), Value("Western"), Value("Queens")},
        {Value("Boston"), Value("Main"), Value("Financial")},
        {Value("Boston"), Value("Arlingto"), Value("Brookside")}};
    inputs = {phi2, phi3};
    cols = {3, 4, 5, 6};
  }
};

TEST(LazyTargetsTest, MatchesEagerTreeCosts) {
  Example13 ex;
  TargetTree tree =
      std::move(TargetTree::Build(ex.inputs, ex.cols, 100000)).ValueOrDie();
  LazyTargetSearch lazy =
      std::move(LazyTargetSearch::Build(ex.inputs, ex.cols)).ValueOrDie();
  DistanceModel model(ex.table);
  for (int r = 0; r < ex.table.num_rows(); ++r) {
    std::vector<Value> proj;
    for (int c : ex.cols) proj.push_back(ex.table.cell(r, c));
    double eager_cost = 0;
    tree.FindBest(proj, model, &eager_cost, nullptr);
    LazyTargetSearch::QueryResult lazy_result =
        lazy.FindBest(proj, model, 100000, nullptr);
    ASSERT_FALSE(lazy_result.target.empty());
    EXPECT_FALSE(lazy_result.truncated);
    EXPECT_NEAR(lazy_result.cost, eager_cost, 1e-12) << "row " << r;
  }
}

TEST(LazyTargetsTest, MatchesEagerOnRandomInstances) {
  // Random sets over three overlapping synthetic FDs.
  Schema schema({{"a", ValueType::kString},
                 {"b", ValueType::kString},
                 {"c", ValueType::kString},
                 {"d", ValueType::kString}});
  FD f1 = std::move(FD::Make({0}, {1}, "f1")).ValueOrDie();
  FD f2 = std::move(FD::Make({1}, {2}, "f2")).ValueOrDie();
  FD f3 = std::move(FD::Make({2}, {3}, "f3")).ValueOrDie();
  Table table(schema);  // only used for the distance model
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(table
                    .AppendRow({Value("a" + std::to_string(i)),
                                Value("b" + std::to_string(i)),
                                Value("c" + std::to_string(i)),
                                Value("d" + std::to_string(i))})
                    .ok());
  }
  DistanceModel model(table);
  Rng rng(17);
  for (int iter = 0; iter < 20; ++iter) {
    auto rnd = [&rng](const char* prefix) {
      return Value(std::string(prefix) + std::to_string(rng.Index(4)));
    };
    std::vector<TargetTree::LevelInput> inputs(3);
    inputs[0].fd = &f1;
    inputs[1].fd = &f2;
    inputs[2].fd = &f3;
    for (int e = 0; e < 6; ++e) {
      inputs[0].elements.push_back({rnd("a"), rnd("b")});
      inputs[1].elements.push_back({rnd("b"), rnd("c")});
      inputs[2].elements.push_back({rnd("c"), rnd("d")});
    }
    std::vector<int> cols = {0, 1, 2, 3};
    auto eager = TargetTree::Build(inputs, cols, 1000000);
    auto lazy = LazyTargetSearch::Build(inputs, cols);
    if (!eager.ok()) {
      // Empty joins must agree (the lazy prefilter is a relaxation, so
      // it may only fail to *prove* emptiness, not invent targets).
      ASSERT_TRUE(eager.status().IsNotFound());
      if (lazy.ok()) {
        LazyTargetSearch::QueryResult q = lazy.value().FindBest(
            {Value("a0"), Value("b0"), Value("c0"), Value("d0")}, model,
            100000, nullptr);
        EXPECT_TRUE(q.target.empty());
      }
      continue;
    }
    ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
    std::vector<Value> probe = {rnd("a"), rnd("b"), rnd("c"), rnd("d")};
    double eager_cost = 0;
    eager.value().FindBest(probe, model, &eager_cost, nullptr);
    LazyTargetSearch::QueryResult q =
        lazy.value().FindBest(probe, model, 100000, nullptr);
    ASSERT_FALSE(q.target.empty());
    EXPECT_NEAR(q.cost, eager_cost, 1e-12) << "iter " << iter;
  }
}

TEST(LazyTargetsTest, PairwisePrefilterDetectsEmptyJoin) {
  Example13 ex;
  ex.inputs[0].elements = {{Value("New York"), Value("NY")}};
  ex.inputs[1].elements = {
      {Value("Boston"), Value("Main"), Value("Financial")}};
  auto result = LazyTargetSearch::Build(ex.inputs, ex.cols);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(LazyTargetsTest, VisitBudgetTruncates) {
  Example13 ex;
  LazyTargetSearch lazy =
      std::move(LazyTargetSearch::Build(ex.inputs, ex.cols)).ValueOrDie();
  DistanceModel model(ex.table);
  std::vector<Value> proj = {Value("Boston"), Value("Main"),
                             Value("Manhattan"), Value("NY")};
  LazyTargetSearch::QueryResult q = lazy.FindBest(proj, model, 1, nullptr);
  EXPECT_TRUE(q.truncated || !q.target.empty());
}

TEST(LazyTargetsTest, UncoveredColumnIsError) {
  Example13 ex;
  std::vector<TargetTree::LevelInput> inputs = {ex.inputs[0]};
  auto result = LazyTargetSearch::Build(inputs, {3, 4, 6});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace ftrepair
