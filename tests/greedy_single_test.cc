#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/expansion_single.h"
#include "core/greedy_single.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::RandomFDTable;

ViolationGraph Phi1Graph(const Table& t, const DistanceModel& model) {
  std::vector<FD> fds = CitizensFDs(t.schema());
  // tau = 0.30 reproduces the Fig. 2 graph exactly (see
  // expansion_single_test.cc for the 0.34 cross-cluster pair).
  return ViolationGraph::Build(BuildPatterns(t, fds[0].attrs()), fds[0],
                               model, FTOptions{0.5, 0.5, 0.30});
}

int PatternOf(const ViolationGraph& g, const char* education, double level) {
  for (int i = 0; i < g.num_patterns(); ++i) {
    if (g.pattern(i).values[0] == Value(education) &&
        g.pattern(i).values[1] == Value(level)) {
      return i;
    }
  }
  return -1;
}

TEST(GreedySingleTest, PaperExample9Outcome) {
  // Greedy-S over phi1 ends with the correct anchors chosen and
  // t9, t10 modified to t1's pattern, t6, t8 to t4's (Example 9).
  Table t = CitizensDirty();
  DistanceModel model(t);
  ViolationGraph g = Phi1Graph(t, model);
  SingleFDSolution solution = SolveGreedySingle(g);
  std::set<int> chosen(solution.chosen_set.begin(),
                       solution.chosen_set.end());
  int bachelors3 = PatternOf(g, "Bachelors", 3);
  int masters4 = PatternOf(g, "Masters", 4);
  int hsgrad9 = PatternOf(g, "HS-grad", 9);
  EXPECT_TRUE(chosen.count(bachelors3));
  EXPECT_TRUE(chosen.count(masters4));
  EXPECT_TRUE(chosen.count(hsgrad9));  // isolated: always kept
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(
                PatternOf(g, "Masers", 4))],
            masters4);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(
                PatternOf(g, "Masters", 3))],
            masters4);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(
                PatternOf(g, "Bachelors", 1))],
            bachelors3);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(
                PatternOf(g, "Bachelers", 3))],
            bachelors3);
}

class GreedyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyPropertyTest, ChosenSetIsMaximalIndependent) {
  Table t = RandomFDTable(50, 3, 6, 15, GetParam());
  FD fd = std::move(FD::Make({0, 2}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = ViolationGraph::Build(
      BuildPatterns(t, fd.attrs()), fd, model, FTOptions{0.5, 0.5, 0.5});
  SingleFDSolution solution = SolveGreedySingle(g);
  std::set<int> chosen(solution.chosen_set.begin(),
                       solution.chosen_set.end());
  // Independence.
  for (int v : solution.chosen_set) {
    for (const ViolationGraph::Edge& e : g.Neighbors(v)) {
      EXPECT_FALSE(chosen.count(e.to))
          << "edge inside chosen set: " << v << "-" << e.to;
    }
  }
  // Maximality + targets are chosen neighbors.
  for (int v = 0; v < g.num_patterns(); ++v) {
    if (chosen.count(v)) {
      EXPECT_EQ(solution.repair_target[static_cast<size_t>(v)], -1);
      continue;
    }
    int target = solution.repair_target[static_cast<size_t>(v)];
    ASSERT_GE(target, 0) << "excluded pattern without repair target";
    EXPECT_TRUE(chosen.count(target));
  }
}

TEST_P(GreedyPropertyTest, CostNeverBeatsExact) {
  Table t = RandomFDTable(25, 2, 4, 6, GetParam() * 7 + 3);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = ViolationGraph::Build(
      BuildPatterns(t, fd.attrs()), fd, model, FTOptions{0.5, 0.5, 0.6});
  SingleFDSolution greedy = SolveGreedySingle(g);
  auto exact = SolveExpansionSingle(g, ExpansionConfig{});
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_GE(greedy.cost + 1e-9, exact.value().cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GreedySingleTest, DeterministicAcrossRuns) {
  Table t = RandomFDTable(60, 2, 8, 20, 5);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = ViolationGraph::Build(
      BuildPatterns(t, fd.attrs()), fd, model, FTOptions{0.5, 0.5, 0.5});
  SingleFDSolution a = SolveGreedySingle(g);
  SingleFDSolution b = SolveGreedySingle(g);
  EXPECT_EQ(a.chosen_set, b.chosen_set);
  EXPECT_EQ(a.repair_target, b.repair_target);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(GreedySingleTest, EmptyGraph) {
  Table t(Schema({{"a", ValueType::kString}, {"b", ValueType::kString}}));
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = ViolationGraph::Build({}, fd, model,
                                           FTOptions{0.5, 0.5, 0.3});
  SingleFDSolution solution = SolveGreedySingle(g);
  EXPECT_TRUE(solution.chosen_set.empty());
  EXPECT_DOUBLE_EQ(solution.cost, 0.0);
}

TEST(GreedySingleTest, HighFrequencyPatternWins) {
  // One frequent correct pattern vs a singleton typo: greedy must keep
  // the frequent one and repair the typo toward it.
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(t.AppendRow({Value("aaaaaa"), Value("right")}).ok());
  }
  ASSERT_TRUE(t.AppendRow({Value("aaaaab"), Value("right")}).ok());
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = ViolationGraph::Build(
      BuildPatterns(t, fd.attrs()), fd, model, FTOptions{0.5, 0.5, 0.3});
  ASSERT_EQ(g.num_patterns(), 2);
  SingleFDSolution solution = SolveGreedySingle(g);
  ASSERT_EQ(solution.chosen_set.size(), 1u);
  int kept = solution.chosen_set[0];
  EXPECT_EQ(g.pattern(kept).values[0], Value("aaaaaa"));
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(1 - kept)], kept);
}

// ---------------------------------------------------------------------------
// Differential suite: the production grow loop uses a lazy-deletion
// priority queue; this is the historical full-rescan implementation it
// replaced, kept verbatim as the reference oracle. The two must select
// bit-identical solutions on every graph.

SingleFDSolution ReferenceGreedySingle(const ViolationGraph& graph,
                                       const std::vector<bool>* forced =
                                           nullptr) {
  SingleFDSolution solution;
  int n = graph.num_patterns();
  solution.repair_target.assign(static_cast<size_t>(n), -1);
  if (n == 0) return solution;
  constexpr double kInf = ViolationGraph::kInfinity;
  std::vector<bool> in_set(static_cast<size_t>(n), false);
  std::vector<int> blocked(static_cast<size_t>(n), 0);
  std::vector<double> best(static_cast<size_t>(n), kInf);
  std::vector<int> best_to(static_cast<size_t>(n), -1);
  int pending = 0;
  for (int v = 0; v < n; ++v) {
    if (graph.degree(v) == 0) {
      in_set[static_cast<size_t>(v)] = true;
      solution.chosen_set.push_back(v);
    } else {
      ++pending;
    }
  }
  auto add_member = [&](int t) {
    in_set[static_cast<size_t>(t)] = true;
    solution.chosen_set.push_back(t);
    --pending;
    for (const ViolationGraph::Edge& e : graph.Neighbors(t)) {
      ++blocked[static_cast<size_t>(e.to)];
      if (e.unit_cost < best[static_cast<size_t>(e.to)]) {
        best[static_cast<size_t>(e.to)] = e.unit_cost;
        best_to[static_cast<size_t>(e.to)] = t;
      }
    }
  };
  if (forced != nullptr) {
    for (int t = 0; t < n; ++t) {
      if (!(*forced)[static_cast<size_t>(t)] ||
          in_set[static_cast<size_t>(t)]) {
        continue;
      }
      add_member(t);
    }
  }
  auto regret = [&graph](int t) {
    double mec = graph.MinEdgeCost(t);
    return mec == kInf ? 0.0 : graph.pattern(t).count() * mec;
  };
  if (pending > 0) {
    int first = -1;
    double first_cost = kInf;
    for (int t = 0; t < n; ++t) {
      if (in_set[static_cast<size_t>(t)] ||
          blocked[static_cast<size_t>(t)] != 0) {
        continue;
      }
      double s = 0;
      for (const ViolationGraph::Edge& e : graph.Neighbors(t)) {
        s += graph.pattern(e.to).count() * e.unit_cost;
      }
      s -= regret(t);
      if (s < first_cost) {
        first_cost = s;
        first = t;
      }
    }
    if (first >= 0) add_member(first);
  }
  while (pending > 0) {
    int pick = -1;
    double pick_cost = kInf;
    for (int t = 0; t < n; ++t) {
      if (in_set[static_cast<size_t>(t)] ||
          blocked[static_cast<size_t>(t)] != 0) {
        continue;
      }
      double s = 0;
      for (const ViolationGraph::Edge& e : graph.Neighbors(t)) {
        int v = e.to;
        double m = graph.pattern(v).count();
        if (best[static_cast<size_t>(v)] == kInf) {
          s += m * e.unit_cost;
        } else if (e.unit_cost < best[static_cast<size_t>(v)]) {
          s += m * (e.unit_cost - best[static_cast<size_t>(v)]);
        }
      }
      s -= regret(t);
      if (s < pick_cost) {
        pick_cost = s;
        pick = t;
      }
    }
    if (pick < 0) break;
    add_member(pick);
  }
  solution.cost = 0;
  for (int v = 0; v < n; ++v) {
    if (in_set[static_cast<size_t>(v)]) continue;
    if (best[static_cast<size_t>(v)] == kInf) continue;
    solution.repair_target[static_cast<size_t>(v)] =
        best_to[static_cast<size_t>(v)];
    solution.cost += graph.pattern(v).count() * best[static_cast<size_t>(v)];
  }
  std::sort(solution.chosen_set.begin(), solution.chosen_set.end());
  return solution;
}

void ExpectSameSolution(const ViolationGraph& g,
                        const std::vector<bool>* forced = nullptr) {
  SingleFDSolution reference = ReferenceGreedySingle(g, forced);
  SingleFDSolution got = SolveGreedySingle(g, forced);
  EXPECT_EQ(reference.chosen_set, got.chosen_set);
  EXPECT_EQ(reference.repair_target, got.repair_target);
  EXPECT_EQ(reference.cost, got.cost);  // exact: same FP operation order
}

TEST(GreedyDifferentialTest, MatchesFullRescanOnCitizens) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  ExpectSameSolution(Phi1Graph(t, model));
}

TEST(GreedyDifferentialTest, MatchesFullRescanOnGenerators) {
  for (bool hosp : {true, false}) {
    Dataset ds =
        hosp ? std::move(GenerateHosp({.num_rows = 500, .seed = 13}))
                   .ValueOrDie()
             : std::move(GenerateTax({.num_rows = 500, .seed = 13}))
                   .ValueOrDie();
    NoiseOptions noise;
    noise.error_rate = 0.06;
    noise.seed = 17;
    Table dirty = std::move(InjectErrors(ds.clean, ds.fds, noise, nullptr))
                      .ValueOrDie();
    DistanceModel model(dirty);
    for (const FD& fd : ds.fds) {
      ViolationGraph g = ViolationGraph::Build(
          BuildPatterns(dirty, fd.attrs()), fd, model,
          FTOptions{ds.recommended_w_l, ds.recommended_w_r,
                    ds.recommended_tau.at(fd.name())});
      SCOPED_TRACE((hosp ? std::string("hosp fd=") : std::string("tax fd=")) +
                   fd.name());
      ExpectSameSolution(g);
    }
  }
}

TEST(GreedyDifferentialTest, MatchesFullRescanOnRandomTables) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Table t = RandomFDTable(300, 3, 40, 60, seed);
    FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
    DistanceModel model(t);
    ViolationGraph g = ViolationGraph::Build(
        BuildPatterns(t, fd.attrs()), fd, model, FTOptions{0.5, 0.5, 0.45});
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExpectSameSolution(g);
    // Also with a forced mask pinning a slice of the patterns.
    std::vector<bool> forced(static_cast<size_t>(g.num_patterns()), false);
    for (int i = 0; i < g.num_patterns(); i += 5) {
      forced[static_cast<size_t>(i)] = true;
    }
    ExpectSameSolution(g, &forced);
  }
}

}  // namespace
}  // namespace ftrepair
