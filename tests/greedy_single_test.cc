#include <set>

#include <gtest/gtest.h>

#include "core/expansion_single.h"
#include "core/greedy_single.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::RandomFDTable;

ViolationGraph Phi1Graph(const Table& t, const DistanceModel& model) {
  std::vector<FD> fds = CitizensFDs(t.schema());
  // tau = 0.30 reproduces the Fig. 2 graph exactly (see
  // expansion_single_test.cc for the 0.34 cross-cluster pair).
  return ViolationGraph::Build(BuildPatterns(t, fds[0].attrs()), fds[0],
                               model, FTOptions{0.5, 0.5, 0.30});
}

int PatternOf(const ViolationGraph& g, const char* education, double level) {
  for (int i = 0; i < g.num_patterns(); ++i) {
    if (g.pattern(i).values[0] == Value(education) &&
        g.pattern(i).values[1] == Value(level)) {
      return i;
    }
  }
  return -1;
}

TEST(GreedySingleTest, PaperExample9Outcome) {
  // Greedy-S over phi1 ends with the correct anchors chosen and
  // t9, t10 modified to t1's pattern, t6, t8 to t4's (Example 9).
  Table t = CitizensDirty();
  DistanceModel model(t);
  ViolationGraph g = Phi1Graph(t, model);
  SingleFDSolution solution = SolveGreedySingle(g);
  std::set<int> chosen(solution.chosen_set.begin(),
                       solution.chosen_set.end());
  int bachelors3 = PatternOf(g, "Bachelors", 3);
  int masters4 = PatternOf(g, "Masters", 4);
  int hsgrad9 = PatternOf(g, "HS-grad", 9);
  EXPECT_TRUE(chosen.count(bachelors3));
  EXPECT_TRUE(chosen.count(masters4));
  EXPECT_TRUE(chosen.count(hsgrad9));  // isolated: always kept
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(
                PatternOf(g, "Masers", 4))],
            masters4);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(
                PatternOf(g, "Masters", 3))],
            masters4);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(
                PatternOf(g, "Bachelors", 1))],
            bachelors3);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(
                PatternOf(g, "Bachelers", 3))],
            bachelors3);
}

class GreedyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyPropertyTest, ChosenSetIsMaximalIndependent) {
  Table t = RandomFDTable(50, 3, 6, 15, GetParam());
  FD fd = std::move(FD::Make({0, 2}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = ViolationGraph::Build(
      BuildPatterns(t, fd.attrs()), fd, model, FTOptions{0.5, 0.5, 0.5});
  SingleFDSolution solution = SolveGreedySingle(g);
  std::set<int> chosen(solution.chosen_set.begin(),
                       solution.chosen_set.end());
  // Independence.
  for (int v : solution.chosen_set) {
    for (const ViolationGraph::Edge& e : g.Neighbors(v)) {
      EXPECT_FALSE(chosen.count(e.to))
          << "edge inside chosen set: " << v << "-" << e.to;
    }
  }
  // Maximality + targets are chosen neighbors.
  for (int v = 0; v < g.num_patterns(); ++v) {
    if (chosen.count(v)) {
      EXPECT_EQ(solution.repair_target[static_cast<size_t>(v)], -1);
      continue;
    }
    int target = solution.repair_target[static_cast<size_t>(v)];
    ASSERT_GE(target, 0) << "excluded pattern without repair target";
    EXPECT_TRUE(chosen.count(target));
  }
}

TEST_P(GreedyPropertyTest, CostNeverBeatsExact) {
  Table t = RandomFDTable(25, 2, 4, 6, GetParam() * 7 + 3);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = ViolationGraph::Build(
      BuildPatterns(t, fd.attrs()), fd, model, FTOptions{0.5, 0.5, 0.6});
  SingleFDSolution greedy = SolveGreedySingle(g);
  auto exact = SolveExpansionSingle(g, ExpansionConfig{});
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_GE(greedy.cost + 1e-9, exact.value().cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GreedySingleTest, DeterministicAcrossRuns) {
  Table t = RandomFDTable(60, 2, 8, 20, 5);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = ViolationGraph::Build(
      BuildPatterns(t, fd.attrs()), fd, model, FTOptions{0.5, 0.5, 0.5});
  SingleFDSolution a = SolveGreedySingle(g);
  SingleFDSolution b = SolveGreedySingle(g);
  EXPECT_EQ(a.chosen_set, b.chosen_set);
  EXPECT_EQ(a.repair_target, b.repair_target);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(GreedySingleTest, EmptyGraph) {
  Table t(Schema({{"a", ValueType::kString}, {"b", ValueType::kString}}));
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = ViolationGraph::Build({}, fd, model,
                                           FTOptions{0.5, 0.5, 0.3});
  SingleFDSolution solution = SolveGreedySingle(g);
  EXPECT_TRUE(solution.chosen_set.empty());
  EXPECT_DOUBLE_EQ(solution.cost, 0.0);
}

TEST(GreedySingleTest, HighFrequencyPatternWins) {
  // One frequent correct pattern vs a singleton typo: greedy must keep
  // the frequent one and repair the typo toward it.
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(t.AppendRow({Value("aaaaaa"), Value("right")}).ok());
  }
  ASSERT_TRUE(t.AppendRow({Value("aaaaab"), Value("right")}).ok());
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = ViolationGraph::Build(
      BuildPatterns(t, fd.attrs()), fd, model, FTOptions{0.5, 0.5, 0.3});
  ASSERT_EQ(g.num_patterns(), 2);
  SingleFDSolution solution = SolveGreedySingle(g);
  ASSERT_EQ(solution.chosen_set.size(), 1u);
  int kept = solution.chosen_set[0];
  EXPECT_EQ(g.pattern(kept).values[0], Value("aaaaaa"));
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(1 - kept)], kept);
}

}  // namespace
}  // namespace ftrepair
