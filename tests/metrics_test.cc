#include "common/metrics.h"

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::IsValidJson;

TEST(MetricsTest, CounterStartsAtZeroAndIncrements) {
  Counter* c = Metrics().GetCounter("test.counter.basic");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(MetricsTest, GetCounterReturnsStablePointer) {
  Counter* a = Metrics().GetCounter("test.counter.stable");
  Counter* b = Metrics().GetCounter("test.counter.stable");
  EXPECT_EQ(a, b);
}

TEST(MetricsTest, LabeledCounterManglesPrometheusStyle) {
  Counter* c =
      Metrics().GetCounter("test.counter.labeled", "stage", "exact->greedy");
  Counter* same =
      Metrics().GetCounter("test.counter.labeled", "stage", "exact->greedy");
  Counter* other =
      Metrics().GetCounter("test.counter.labeled", "stage", "greedy->appro");
  EXPECT_EQ(c, same);
  EXPECT_NE(c, other);
  c->Increment(7);
  std::string json = Metrics().SnapshotJson();
  EXPECT_NE(json.find("test.counter.labeled{stage=exact->greedy}"),
            std::string::npos);
}

TEST(MetricsTest, ConcurrentIncrementsAreExact) {
  Counter* c = Metrics().GetCounter("test.counter.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int k = 0; k < kPerThread; ++k) c->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(),
            static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kPerThread));
}

TEST(MetricsTest, GaugeLastWriteWins) {
  Gauge* g = Metrics().GetGauge("test.gauge.basic");
  g->Set(1.5);
  g->Set(-3.25);
  EXPECT_DOUBLE_EQ(g->value(), -3.25);
}

TEST(MetricsTest, HistogramBucketPlacement) {
  Histogram* h = Metrics().GetHistogram("test.histogram.buckets");
  h->Observe(0.005);   // <= 0.01 -> bucket 0
  h->Observe(0.07);    // <= 0.1  -> bucket 2
  h->Observe(0.07);    // again
  h->Observe(40000);   // beyond every bound -> +inf bucket
  EXPECT_EQ(h->count(), 4u);
  EXPECT_NEAR(h->sum(), 40000.145, 1e-6);
  EXPECT_EQ(h->bucket_count(0), 1u);
  EXPECT_EQ(h->bucket_count(1), 0u);
  EXPECT_EQ(h->bucket_count(2), 2u);
  EXPECT_EQ(h->bucket_count(Histogram::kBoundsMs.size()), 1u);
}

TEST(MetricsTest, ConcurrentHistogramObservationsSumToCount) {
  Histogram* h = Metrics().GetHistogram("test.histogram.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int k = 0; k < kPerThread; ++k) {
        h->Observe(0.02 * (t + 1));  // spread over a few buckets
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h->count(),
            static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kPerThread));
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h->bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h->count());
}

TEST(MetricsTest, SnapshotJsonIsValidAndComplete) {
  Metrics().GetCounter("test.snapshot.counter")->Increment(3);
  Metrics().GetGauge("test.snapshot.gauge")->Set(2.5);
  Metrics().GetHistogram("test.snapshot.histogram")->Observe(1.0);
  std::string json = Metrics().SnapshotJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"+inf\""), std::string::npos);
}

TEST(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  Counter* c = Metrics().GetCounter("test.reset.counter");
  Histogram* h = Metrics().GetHistogram("test.reset.histogram");
  c->Increment(10);
  h->Observe(5.0);
  Metrics().Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.0);
  // Pointers stay valid and usable after Reset.
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
  EXPECT_EQ(Metrics().GetCounter("test.reset.counter"), c);
}

TEST(MetricsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(TraceTest, DisabledByDefaultAndSpansAreFree) {
  EXPECT_FALSE(Tracer::Instance().enabled());
  {
    FTR_TRACE_SPAN("test.disabled_span");
  }
  Tracer::Instance().Enable();
  {
    FTR_TRACE_SPAN("test.enabled_span", {{"key", "value"}});
  }
  Tracer::Instance().Disable();
  std::ostringstream out;
  Tracer::Instance().ExportJson(out);
  std::string json = out.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_EQ(json.find("test.disabled_span"), std::string::npos);
  EXPECT_NE(json.find("test.enabled_span"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"key\":\"value\""), std::string::npos);
}

TEST(TraceTest, EnableClearsPreviousEvents) {
  Tracer::Instance().Enable();
  { FTR_TRACE_SPAN("test.first_session"); }
  Tracer::Instance().Enable();  // restart
  { FTR_TRACE_SPAN("test.second_session"); }
  Tracer::Instance().Disable();
  std::ostringstream out;
  Tracer::Instance().ExportJson(out);
  std::string json = out.str();
  EXPECT_EQ(json.find("test.first_session"), std::string::npos);
  EXPECT_NE(json.find("test.second_session"), std::string::npos);
}

TEST(TraceTest, InstantEventsRecorded) {
  Tracer::Instance().Enable();
  Tracer::Instance().RecordInstant("test.instant",
                                   {{"reason", "unit-test"}});
  Tracer::Instance().Disable();
  std::ostringstream out;
  Tracer::Instance().ExportJson(out);
  std::string json = out.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("test.instant"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(TraceTest, ConcurrentSpansAllLand) {
  Tracer::Instance().Enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int k = 0; k < kPerThread; ++k) {
        FTR_TRACE_SPAN("test.concurrent_span");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Tracer::Instance().Disable();
  std::ostringstream out;
  Tracer::Instance().ExportJson(out);
  std::string json = out.str();
  EXPECT_TRUE(IsValidJson(json)) << json;
  size_t occurrences = 0;
  size_t pos = 0;
  while ((pos = json.find("test.concurrent_span", pos)) !=
         std::string::npos) {
    ++occurrences;
    pos += 1;
  }
  EXPECT_EQ(occurrences + Tracer::Instance().dropped(),
            static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace ftrepair
