#include <gtest/gtest.h>

#include "detect/pattern.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;

TEST(PatternTest, GroupsIdenticalProjections) {
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  // phi1 (Education, Level): t1, t2, t3 share (Bachelors, 3).
  std::vector<Pattern> patterns = BuildPatterns(t, fds[0].attrs());
  ASSERT_FALSE(patterns.empty());
  // First pattern by first-occurrence is (Bachelors, 3) carried by rows
  // 0, 1, 2 and also t10's corrected... no: t10 is (Bachelers, 3).
  EXPECT_EQ(patterns[0].values,
            (std::vector<Value>{Value("Bachelors"), Value(3.0)}));
  EXPECT_EQ(patterns[0].rows, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(patterns[0].count(), 3);
  // Distinct projections in Table 1 under phi1:
  // (Bachelors,3) (Masters,4) (Masers,4) (HS-grad,9) (Masters,3)
  // (Bachelors,1) (Bachelers,3) = 7.
  EXPECT_EQ(patterns.size(), 7u);
}

TEST(PatternTest, SingleColumnGrouping) {
  Table t = CitizensDirty();
  int city = t.schema().IndexOf("City");
  std::vector<Pattern> patterns = BuildPatterns(t, {city});
  ASSERT_EQ(patterns.size(), 3u);  // New York, Boston, Boton
  int total = 0;
  for (const Pattern& p : patterns) total += p.count();
  EXPECT_EQ(total, t.num_rows());
}

TEST(PatternTest, RestrictedRows) {
  Table t = CitizensDirty();
  int city = t.schema().IndexOf("City");
  std::vector<Pattern> patterns =
      BuildPatternsForRows(t, {city}, {0, 1, 4, 5});
  // Rows 0,1 New York; 4,5 Boston.
  ASSERT_EQ(patterns.size(), 2u);
  EXPECT_EQ(patterns[0].rows, (std::vector<int>{0, 1}));
  EXPECT_EQ(patterns[1].rows, (std::vector<int>{4, 5}));
}

TEST(PatternTest, EmptyRowsGiveNoPatterns) {
  Table t = CitizensDirty();
  EXPECT_TRUE(BuildPatternsForRows(t, {0}, {}).empty());
}

TEST(PatternTest, ToStringShowsValuesAndCount) {
  Pattern p;
  p.values = {Value("Boston"), Value("MA")};
  p.rows = {4, 7};
  EXPECT_EQ(p.ToString(), "(Boston, MA) x2");
}

TEST(PatternTest, ProjectionHashConsistent) {
  ProjectionHash hash;
  std::vector<Value> a{Value("x"), Value(1.0)};
  std::vector<Value> b{Value("x"), Value(1.0)};
  std::vector<Value> c{Value(1.0), Value("x")};  // order matters
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
}

}  // namespace
}  // namespace ftrepair
